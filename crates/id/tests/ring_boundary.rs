//! Regression tests for arithmetic at the 2^b ring boundary.
//!
//! The ring operations must wrap modulo `2^b`, not modulo the machine word:
//! a truncating `as` cast or a missed mask near `2^b − 1` silently corrupts
//! distances for ids close to zero, which is exactly where Chord's
//! clockwise-distance estimate (paper eq. 6) is most sensitive.

use peercache_id::{Id, IdSpace};

/// The widths most likely to expose boundary bugs: tiny spaces, the paper's
/// 32-bit space, widths adjacent to native integer sizes, and the full-word
/// 128-bit space where the mask is `u128::MAX`.
const WIDTHS: [u8; 8] = [1, 2, 8, 31, 32, 33, 127, 128];

fn top(space: IdSpace) -> Id {
    // The largest id of the space, 2^b − 1.
    space.normalize(u128::MAX)
}

#[test]
fn add_wraps_across_the_boundary() {
    for bits in WIDTHS {
        let s = IdSpace::new(bits).unwrap();
        let last = top(s);
        assert_eq!(s.add(last, 1), Id::new(0), "b={bits}: (2^b-1)+1 wraps to 0");
        assert_eq!(s.add(last, 2), Id::new(1), "b={bits}: (2^b-1)+2 wraps to 1");
        // Adding the full period is the identity.
        if let Some(n) = s.size() {
            assert_eq!(s.add(last, n), last, "b={bits}: +2^b is identity");
            assert_eq!(s.add(Id::new(0), n), Id::new(0));
        }
    }
}

#[test]
fn sub_wraps_across_the_boundary() {
    for bits in WIDTHS {
        let s = IdSpace::new(bits).unwrap();
        let last = top(s);
        assert_eq!(s.sub(Id::new(0), 1), last, "b={bits}: 0-1 wraps to 2^b-1");
        assert_eq!(s.sub(Id::new(1), 2), last, "b={bits}: 1-2 wraps to 2^b-1");
    }
}

#[test]
fn clockwise_distance_at_the_boundary() {
    for bits in WIDTHS {
        let s = IdSpace::new(bits).unwrap();
        let last = top(s);
        // One clockwise step from the last id reaches zero.
        assert_eq!(s.clockwise_distance(last, Id::new(0)), 1, "b={bits}");
        // The reverse direction is the whole ring minus one.
        if let Some(n) = s.size() {
            assert_eq!(s.clockwise_distance(Id::new(0), last), n - 1, "b={bits}");
        } else {
            assert_eq!(
                s.clockwise_distance(Id::new(0), last),
                u128::MAX,
                "b=128: distance is 2^128 - 1"
            );
        }
    }
}

#[test]
fn chord_hops_across_the_boundary() {
    for bits in WIDTHS {
        let s = IdSpace::new(bits).unwrap();
        let last = top(s);
        // Distance 1 always costs exactly one hop, even when it crosses 0.
        assert_eq!(s.chord_hops(last, Id::new(0)), 1, "b={bits}");
        // Going the long way round costs the maximum b hops (distance
        // 2^b − 1 has its leftmost 1 at position b) for every b ≥ 1.
        assert_eq!(
            s.chord_hops(Id::new(0), last),
            s.max_chord_hops(),
            "b={bits}"
        );
    }
}

#[test]
fn intervals_straddling_zero() {
    for bits in WIDTHS.into_iter().filter(|&b| b >= 2) {
        let s = IdSpace::new(bits).unwrap();
        let last = top(s);
        let penult = s.sub(last, 1);
        // (2^b-2, 1): contains 2^b-1 and 0.
        assert!(s.between_open(penult, last, Id::new(1)), "b={bits}");
        assert!(s.between_open(penult, Id::new(0), Id::new(1)), "b={bits}");
        assert!(!s.between_open(penult, Id::new(1), Id::new(1)), "b={bits}");
        assert!(
            s.between_open_closed(penult, Id::new(1), Id::new(1)),
            "b={bits}"
        );
        assert!(
            s.between_closed_open(penult, penult, Id::new(1)),
            "b={bits}"
        );
    }
}

#[test]
fn normalize_reduces_values_beyond_the_boundary() {
    let s = IdSpace::new(32).unwrap();
    assert_eq!(s.normalize(1u128 << 32), Id::new(0));
    assert_eq!(s.normalize((1u128 << 32) + 5), Id::new(5));
    assert_eq!(s.normalize(u128::MAX), Id::new(0xffff_ffff));
    // From<u64> must widen, never truncate: a u64 value above 2^32 keeps
    // its high bits until explicitly normalized.
    let wide = Id::from(u64::MAX);
    assert_eq!(wide.value(), u128::from(u64::MAX));
    assert_eq!(s.normalize(wide.value()), Id::new(0xffff_ffff));
}
