//! Property-based tests for the identifier-space primitives.

use peercache_id::{Id, IdSpace};
use proptest::prelude::*;

fn space_and_ids() -> impl Strategy<Value = (IdSpace, Id, Id, Id)> {
    (1u8..=64).prop_flat_map(|bits| {
        let space = IdSpace::new(bits).expect("valid bits");
        let max = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        (0..=max, 0..=max, 0..=max)
            .prop_map(move |(a, b, c)| (space, Id::new(a), Id::new(b), Id::new(c)))
    })
}

proptest! {
    #[test]
    fn clockwise_distance_zero_iff_equal((s, a, b, _c) in space_and_ids()) {
        let d = s.clockwise_distance(a, b);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn clockwise_distances_sum_to_ring_size((s, a, b, _c) in space_and_ids()) {
        prop_assume!(a != b);
        let fwd = s.clockwise_distance(a, b);
        let back = s.clockwise_distance(b, a);
        match s.size() {
            Some(n) => prop_assert_eq!(fwd + back, n),
            None => prop_assert_eq!(fwd.wrapping_add(back), 0),
        }
    }

    #[test]
    fn clockwise_triangle_walk((s, a, b, c) in space_and_ids()) {
        // Walking a→b→c clockwise covers a→c plus possibly whole laps.
        let ab = s.clockwise_distance(a, b);
        let bc = s.clockwise_distance(b, c);
        let ac = s.clockwise_distance(a, c);
        let total = ab.wrapping_add(bc);
        let reduced = match s.size() {
            Some(n) => total % n,
            None => total,
        };
        prop_assert_eq!(reduced, ac);
    }

    #[test]
    fn between_open_agrees_with_exhaustive_walk(
        bits in 1u8..=8,
        raw_a in 0u128..256,
        raw_c in 0u128..256,
    ) {
        // Only for small rings: check interval membership against a walk.
        let s = IdSpace::new(bits).expect("valid bits");
        let a = s.normalize(raw_a);
        let c = s.normalize(raw_c);
        let n = s.size().unwrap();
        let db = s.clockwise_distance(a, c);
        for x in 0..n {
            let x = Id::new(x);
            let dx = s.clockwise_distance(a, x);
            let expected = if a == c { x != a } else { dx > 0 && dx < db };
            prop_assert_eq!(s.between_open(a, x, c), expected);
        }
    }

    #[test]
    fn common_prefix_symmetric_and_bounded((s, a, b, _c) in space_and_ids()) {
        let l = s.common_prefix_len(a, b);
        prop_assert_eq!(l, s.common_prefix_len(b, a));
        prop_assert!(l <= s.bits());
        prop_assert_eq!(l == s.bits(), a == b);
    }

    #[test]
    fn common_prefix_of_triple_is_min_pairwise((s, a, b, c) in space_and_ids()) {
        // lcp(a, c) ≥ min(lcp(a, b), lcp(b, c)) — ultrametric-style bound.
        let ab = s.common_prefix_len(a, b);
        let bc = s.common_prefix_len(b, c);
        let ac = s.common_prefix_len(a, c);
        prop_assert!(ac >= ab.min(bc));
    }

    #[test]
    fn digits_reassemble_id((s, a, _b, _c) in space_and_ids(), d in 1u8..=8) {
        prop_assume!(d <= s.bits());
        let count = s.digit_count(d).unwrap();
        let mut rebuilt: u128 = 0;
        let mut used = 0u8;
        for i in 0..count {
            let hi = s.bits() - i * d;
            let width = d.min(hi);
            rebuilt = (rebuilt << width) | u128::from(s.digit(a, i, d).unwrap());
            used += width;
        }
        prop_assert_eq!(used, s.bits());
        prop_assert_eq!(rebuilt, a.value());
    }

    #[test]
    fn pastry_hops_metric_properties((s, a, b, c) in space_and_ids()) {
        let ab = s.pastry_hops(a, b, 1).unwrap();
        let ba = s.pastry_hops(b, a, 1).unwrap();
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(ab == 0, a == b, "identity of indiscernibles");
        // Trie distances obey the strong (ultrametric) triangle inequality.
        let bc = s.pastry_hops(b, c, 1).unwrap();
        let ac = s.pastry_hops(a, c, 1).unwrap();
        prop_assert!(ac <= ab.max(bc), "ultrametric inequality");
    }

    #[test]
    fn pastry_hops_digit_width_compresses((s, a, b, _c) in space_and_ids(), d in 2u8..=8) {
        prop_assume!(d <= s.bits());
        let bit_hops = s.pastry_hops(a, b, 1).unwrap();
        let digit_hops = s.pastry_hops(a, b, d).unwrap();
        prop_assert!(digit_hops <= bit_hops);
        prop_assert_eq!(digit_hops == 0, bit_hops == 0);
    }

    #[test]
    fn chord_hops_matches_float_log((s, a, b, _c) in space_and_ids()) {
        prop_assume!(a != b);
        let dist = s.clockwise_distance(a, b);
        let expected = 128 - dist.leading_zeros();
        prop_assert_eq!(s.chord_hops(a, b), expected);
        prop_assert!(expected <= s.max_chord_hops());
    }

    #[test]
    fn chord_hops_monotone_in_distance(bits in 3u8..=16, d1 in 1u128..100, d2 in 1u128..100) {
        let s = IdSpace::new(bits).expect("valid bits");
        let n = s.size().unwrap();
        prop_assume!(d1 < n && d2 < n && d1 <= d2);
        let h1 = s.chord_hops(Id::ZERO, s.normalize(d1));
        let h2 = s.chord_hops(Id::ZERO, s.normalize(d2));
        prop_assert!(h1 <= h2);
    }
}
