use std::error::Error;
use std::fmt;

/// Errors produced while constructing or using an identifier space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdError {
    /// The requested identifier width is outside `1..=128`.
    InvalidBits(u16),
    /// An [`crate::Id`] value does not fit in the space's `b` bits.
    OutOfRange {
        /// The offending raw identifier value.
        value: u128,
        /// The identifier width of the space.
        bits: u8,
    },
    /// A digit width `d` was requested that does not divide cleanly into the
    /// operations that need it (zero, or larger than the id width).
    InvalidDigitBits {
        /// The offending digit width.
        digit_bits: u8,
        /// The identifier width of the space.
        bits: u8,
    },
    /// A bit or digit index beyond the identifier width was requested.
    IndexOutOfRange {
        /// The offending index.
        index: u8,
        /// The number of valid positions.
        len: u8,
    },
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::InvalidBits(bits) => {
                write!(f, "identifier width must be in 1..=128, got {bits}")
            }
            IdError::OutOfRange { value, bits } => {
                write!(f, "id value {value:#x} does not fit in {bits} bits")
            }
            IdError::InvalidDigitBits { digit_bits, bits } => {
                write!(
                    f,
                    "digit width {digit_bits} invalid for {bits}-bit identifiers"
                )
            }
            IdError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for {len} positions")
            }
        }
    }
}

impl Error for IdError {}
