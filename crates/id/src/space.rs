use crate::convert;
use crate::{Id, IdError};

/// A circular identifier space of `b`-bit ids (`1 ≤ b ≤ 128`).
///
/// All ring arithmetic, interval tests, prefix/digit decomposition and the
/// paper's id-derived hop-distance estimates are methods on this type so
/// that the width `b` is threaded through exactly once.
///
/// ```
/// use peercache_id::{Id, IdSpace};
///
/// let ring = IdSpace::new(8).unwrap();
/// // 250 → 4 wraps past zero: clockwise distance 10.
/// assert_eq!(ring.clockwise_distance(Id::new(250), Id::new(4)), 10);
/// // The Chord hop estimate is the position of the leftmost 1 (eq. 6).
/// assert_eq!(ring.chord_hops(Id::new(250), Id::new(4)), 4);
/// // The Pastry estimate counts digits left to fix.
/// assert_eq!(ring.pastry_hops(Id::new(0b1010_0000), Id::new(0b1010_1111), 1).unwrap(), 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IdSpace {
    bits: u8,
    mask: u128,
}

impl IdSpace {
    /// Create a `bits`-bit identifier space.
    ///
    /// # Errors
    /// Returns [`IdError::InvalidBits`] unless `1 ≤ bits ≤ 128`.
    pub fn new(bits: u8) -> Result<Self, IdError> {
        if bits == 0 || bits > 128 {
            return Err(IdError::InvalidBits(u16::from(bits)));
        }
        let mask = if bits == 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        Ok(IdSpace { bits, mask })
    }

    /// The identifier space used by the paper's experiments (`b = 32`).
    pub const fn paper() -> Self {
        // `PAPER_ID_BITS` is 32, a statically valid width, so the space can
        // be built directly instead of unwrapping `IdSpace::new`.
        IdSpace {
            bits: crate::PAPER_ID_BITS,
            mask: (1u128 << crate::PAPER_ID_BITS) - 1,
        }
    }

    /// The identifier width `b`.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.bits
    }

    /// Number of distinct identifiers, `2^b`, or `None` if it overflows
    /// `u128` (i.e. `b = 128`).
    #[inline]
    pub const fn size(self) -> Option<u128> {
        if self.bits == 128 {
            None
        } else {
            Some(1u128 << self.bits)
        }
    }

    /// Reduce an arbitrary raw value into this space (keep the low `b` bits).
    #[inline]
    pub const fn normalize(self, value: u128) -> Id {
        Id(value & self.mask)
    }

    /// Whether `id` is a valid identifier of this space.
    #[inline]
    pub const fn contains(self, id: Id) -> bool {
        id.0 & self.mask == id.0
    }

    /// Validate that `id` fits in this space.
    ///
    /// # Errors
    /// Returns [`IdError::OutOfRange`] when `id` has bits above position `b`.
    pub fn check(self, id: Id) -> Result<Id, IdError> {
        if self.contains(id) {
            Ok(id)
        } else {
            Err(IdError::OutOfRange {
                value: id.0,
                bits: self.bits,
            })
        }
    }

    /// `(a + delta) mod 2^b`.
    #[inline]
    pub const fn add(self, a: Id, delta: u128) -> Id {
        Id(a.0.wrapping_add(delta) & self.mask)
    }

    /// `(a − delta) mod 2^b`.
    #[inline]
    pub const fn sub(self, a: Id, delta: u128) -> Id {
        Id(a.0.wrapping_sub(delta) & self.mask)
    }

    /// Clockwise (modular) distance from `a` to `b`: `(b − a) mod 2^b`.
    ///
    /// This is the quantity the Chord distance estimate (paper eq. 6) is
    /// defined over. It is zero iff `a == b` and is *not* symmetric.
    #[inline]
    pub const fn clockwise_distance(self, a: Id, b: Id) -> u128 {
        b.0.wrapping_sub(a.0) & self.mask
    }

    /// Whether `x` lies strictly inside the clockwise open interval
    /// `(a, b)`.
    ///
    /// When `a == b` the interval is the whole ring except `a` itself
    /// (the standard Chord convention).
    #[inline]
    pub fn between_open(self, a: Id, x: Id, b: Id) -> bool {
        let dx = self.clockwise_distance(a, x);
        let db = self.clockwise_distance(a, b);
        if a == b {
            x != a
        } else {
            dx > 0 && dx < db
        }
    }

    /// Whether `x` lies in the clockwise half-open interval `(a, b]`.
    ///
    /// When `a == b` the interval is the whole ring (every `x` qualifies),
    /// matching Chord's `find_successor` convention.
    #[inline]
    pub fn between_open_closed(self, a: Id, x: Id, b: Id) -> bool {
        if a == b {
            return true;
        }
        let dx = self.clockwise_distance(a, x);
        let db = self.clockwise_distance(a, b);
        dx > 0 && dx <= db
    }

    /// Whether `x` lies in the clockwise half-open interval `[a, b)`.
    #[inline]
    pub fn between_closed_open(self, a: Id, x: Id, b: Id) -> bool {
        if a == b {
            return true;
        }
        let dx = self.clockwise_distance(a, x);
        let db = self.clockwise_distance(a, b);
        dx < db
    }

    // ---- prefix / digit decomposition (Pastry) -------------------------

    /// Bit `index` of `id` counted from the most-significant end of the
    /// `b`-bit representation (`index = 0` is the top bit).
    ///
    /// # Errors
    /// Returns [`IdError::IndexOutOfRange`] if `index ≥ b`.
    pub fn bit(self, id: Id, index: u8) -> Result<bool, IdError> {
        if index >= self.bits {
            return Err(IdError::IndexOutOfRange {
                index,
                len: self.bits,
            });
        }
        let shift = self.bits - 1 - index;
        Ok((id.0 >> shift) & 1 == 1)
    }

    /// Length (in bits) of the longest common prefix of `a` and `b` within
    /// the `b`-bit representation. Equal ids share all `b` bits.
    #[inline]
    pub fn common_prefix_len(self, a: Id, b: Id) -> u8 {
        if a == b {
            return self.bits;
        }
        let diff = (a.0 ^ b.0) & self.mask;
        // `diff` is nonzero and confined to the low `bits` positions, so its
        // bit length is in `1..=bits` and the shared prefix is the rest.
        let bitlen = convert::u8_from_u32(128 - diff.leading_zeros());
        self.bits - bitlen
    }

    /// The number of whole base-`2^digit_bits` digits in an id of this
    /// space: `⌈b / d⌉`.
    ///
    /// # Errors
    /// Returns [`IdError::InvalidDigitBits`] when `digit_bits` is zero or
    /// exceeds the id width.
    pub fn digit_count(self, digit_bits: u8) -> Result<u8, IdError> {
        if digit_bits == 0 || digit_bits > self.bits {
            return Err(IdError::InvalidDigitBits {
                digit_bits,
                bits: self.bits,
            });
        }
        Ok(self.bits.div_ceil(digit_bits))
    }

    /// The `index`-th base-`2^digit_bits` digit of `id`, counted from the
    /// most-significant end. The final digit may be narrower than
    /// `digit_bits` when `d ∤ b`.
    ///
    /// # Errors
    /// Propagates [`IdError::InvalidDigitBits`]; rejects `digit_bits > 16`
    /// (the digit would not fit the `u16` return type); returns
    /// [`IdError::IndexOutOfRange`] when `index ≥ ⌈b/d⌉`.
    pub fn digit(self, id: Id, index: u8, digit_bits: u8) -> Result<u16, IdError> {
        let count = self.digit_count(digit_bits)?;
        if digit_bits > 16 {
            return Err(IdError::InvalidDigitBits {
                digit_bits,
                bits: self.bits,
            });
        }
        if index >= count {
            return Err(IdError::IndexOutOfRange { index, len: count });
        }
        let hi = self.bits - index * digit_bits; // exclusive top bit position
        let width = digit_bits.min(hi);
        let shift = hi - width;
        let mask = (1u128 << width) - 1;
        // `width ≤ 16` was checked above, so the masked value fits u16.
        Ok(convert::u16_from_u128((id.0 >> shift) & mask))
    }

    /// Length (in whole digits of `digit_bits` bits) of the longest common
    /// digit-aligned prefix of `a` and `b`: `⌊lcp_bits / d⌋` capped to the
    /// digit count.
    ///
    /// # Errors
    /// Propagates [`IdError::InvalidDigitBits`].
    pub fn common_prefix_digits(self, a: Id, b: Id, digit_bits: u8) -> Result<u8, IdError> {
        let count = self.digit_count(digit_bits)?;
        let lcp = self.common_prefix_len(a, b);
        if lcp == self.bits {
            // Equal ids share every digit, including a ragged final digit
            // narrower than `digit_bits`.
            return Ok(count);
        }
        Ok((lcp / digit_bits).min(count))
    }

    // ---- hop-distance estimates (the paper's d_uv) ---------------------

    /// Pastry hop-distance estimate between `u` and `v` (paper §IV): the
    /// number of digits that remain to be fixed, `⌈b/d⌉ − ⌊l/d⌋` where `l`
    /// is the common prefix length in bits. With `d = 1` this is the
    /// paper's `b − l`. Zero iff `u == v`.
    ///
    /// # Errors
    /// Propagates [`IdError::InvalidDigitBits`].
    pub fn pastry_hops(self, u: Id, v: Id, digit_bits: u8) -> Result<u32, IdError> {
        let count = u32::from(self.digit_count(digit_bits)?);
        let shared = u32::from(self.common_prefix_digits(u, v, digit_bits)?);
        Ok(count - shared)
    }

    /// Chord hop-distance estimate from `u` to `v` (paper eq. 6): the
    /// position of the leftmost `1` in the clockwise distance
    /// `(v − u) mod 2^b`, i.e. `⌊log₂ dist⌋ + 1`. Zero iff `u == v`.
    ///
    /// This is the steady-state upper bound on the number of hops a Chord
    /// lookup from `u` to `v` takes: each hop fixes at least the current
    /// top bit of the remaining distance. Unlike the Pastry estimate it is
    /// not symmetric.
    #[inline]
    pub fn chord_hops(self, u: Id, v: Id) -> u32 {
        let dist = self.clockwise_distance(u, v);
        if dist == 0 {
            0
        } else {
            128 - dist.leading_zeros()
        }
    }

    /// The maximum possible value of [`IdSpace::chord_hops`], i.e. `b`.
    #[inline]
    pub fn max_chord_hops(self) -> u32 {
        u32::from(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(bits: u8) -> IdSpace {
        IdSpace::new(bits).unwrap()
    }

    #[test]
    fn rejects_invalid_widths() {
        assert_eq!(IdSpace::new(0).unwrap_err(), IdError::InvalidBits(0));
        assert!(IdSpace::new(1).is_ok());
        assert!(IdSpace::new(128).is_ok());
    }

    #[test]
    fn size_and_mask() {
        assert_eq!(sp(4).size(), Some(16));
        assert_eq!(sp(127).size(), Some(1 << 127));
        assert_eq!(sp(128).size(), None);
    }

    #[test]
    fn normalize_wraps() {
        let s = sp(4);
        assert_eq!(s.normalize(16), Id::new(0));
        assert_eq!(s.normalize(31), Id::new(15));
        assert!(s.contains(Id::new(15)));
        assert!(!s.contains(Id::new(16)));
    }

    #[test]
    fn check_reports_out_of_range() {
        let s = sp(8);
        assert_eq!(s.check(Id::new(255)), Ok(Id::new(255)));
        assert_eq!(
            s.check(Id::new(256)),
            Err(IdError::OutOfRange {
                value: 256,
                bits: 8
            })
        );
    }

    #[test]
    fn add_sub_wrap_on_the_ring() {
        let s = sp(4);
        assert_eq!(s.add(Id::new(15), 1), Id::new(0));
        assert_eq!(s.sub(Id::new(0), 1), Id::new(15));
        assert_eq!(s.add(Id::new(3), 32), Id::new(3));
    }

    #[test]
    fn clockwise_distance_basics() {
        let s = sp(4);
        assert_eq!(s.clockwise_distance(Id::new(3), Id::new(3)), 0);
        assert_eq!(s.clockwise_distance(Id::new(3), Id::new(5)), 2);
        assert_eq!(s.clockwise_distance(Id::new(5), Id::new(3)), 14);
        assert_eq!(s.clockwise_distance(Id::new(15), Id::new(0)), 1);
    }

    #[test]
    fn clockwise_distance_full_width() {
        let s = sp(128);
        assert_eq!(
            s.clockwise_distance(Id::new(u128::MAX), Id::new(0)),
            1,
            "wraps at 2^128"
        );
    }

    #[test]
    fn between_open_interval() {
        let s = sp(4);
        // (3, 7): 4,5,6 inside; 3, 7 outside.
        assert!(s.between_open(Id::new(3), Id::new(5), Id::new(7)));
        assert!(!s.between_open(Id::new(3), Id::new(3), Id::new(7)));
        assert!(!s.between_open(Id::new(3), Id::new(7), Id::new(7)));
        // wrap-around (14, 2): 15, 0, 1 inside.
        assert!(s.between_open(Id::new(14), Id::new(0), Id::new(2)));
        assert!(!s.between_open(Id::new(14), Id::new(2), Id::new(2)));
        // degenerate (a, a): whole ring minus a.
        assert!(s.between_open(Id::new(5), Id::new(6), Id::new(5)));
        assert!(!s.between_open(Id::new(5), Id::new(5), Id::new(5)));
    }

    #[test]
    fn between_half_open_intervals() {
        let s = sp(4);
        assert!(s.between_open_closed(Id::new(3), Id::new(7), Id::new(7)));
        assert!(!s.between_open_closed(Id::new(3), Id::new(3), Id::new(7)));
        assert!(s.between_closed_open(Id::new(3), Id::new(3), Id::new(7)));
        assert!(!s.between_closed_open(Id::new(3), Id::new(7), Id::new(7)));
        // degenerate: full ring.
        assert!(s.between_open_closed(Id::new(5), Id::new(5), Id::new(5)));
        assert!(s.between_closed_open(Id::new(5), Id::new(9), Id::new(5)));
    }

    #[test]
    fn bit_indexing_from_msb() {
        let s = sp(4);
        let id = Id::new(0b1010);
        assert!(s.bit(id, 0).unwrap());
        assert!(!s.bit(id, 1).unwrap());
        assert!(s.bit(id, 2).unwrap());
        assert!(!s.bit(id, 3).unwrap());
        assert!(matches!(s.bit(id, 4), Err(IdError::IndexOutOfRange { .. })));
    }

    #[test]
    fn common_prefix_len_examples() {
        let s = sp(4);
        // Paper §IV example: ids 1011 and 1111 share l = 1 bit.
        assert_eq!(s.common_prefix_len(Id::new(0b1011), Id::new(0b1111)), 1);
        assert_eq!(s.common_prefix_len(Id::new(0b1011), Id::new(0b1011)), 4);
        assert_eq!(s.common_prefix_len(Id::new(0b0000), Id::new(0b1000)), 0);
        assert_eq!(s.common_prefix_len(Id::new(0b0010), Id::new(0b0011)), 3);
    }

    #[test]
    fn common_prefix_len_wide_space() {
        let s = sp(128);
        assert_eq!(s.common_prefix_len(Id::new(0), Id::new(1)), 127);
        assert_eq!(s.common_prefix_len(Id::new(0), Id::new(u128::MAX)), 0);
    }

    #[test]
    fn digit_extraction_base4() {
        let s = sp(8);
        let id = Id::new(0b11_01_00_10);
        assert_eq!(s.digit_count(2).unwrap(), 4);
        assert_eq!(s.digit(id, 0, 2).unwrap(), 0b11);
        assert_eq!(s.digit(id, 1, 2).unwrap(), 0b01);
        assert_eq!(s.digit(id, 2, 2).unwrap(), 0b00);
        assert_eq!(s.digit(id, 3, 2).unwrap(), 0b10);
        assert!(matches!(
            s.digit(id, 4, 2),
            Err(IdError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn digit_extraction_ragged_tail() {
        // b = 5, d = 2 → digits of widths 2,2,1.
        let s = sp(5);
        #[allow(clippy::unusual_byte_groupings)] // grouped by digit boundaries (2,2,1)
        let id = Id::new(0b10_11_1);
        assert_eq!(s.digit_count(2).unwrap(), 3);
        assert_eq!(s.digit(id, 0, 2).unwrap(), 0b10);
        assert_eq!(s.digit(id, 1, 2).unwrap(), 0b11);
        assert_eq!(s.digit(id, 2, 2).unwrap(), 0b1);
    }

    #[test]
    fn digit_rejects_bad_widths() {
        let s = sp(8);
        assert!(matches!(
            s.digit_count(0),
            Err(IdError::InvalidDigitBits { .. })
        ));
        assert!(matches!(
            s.digit_count(9),
            Err(IdError::InvalidDigitBits { .. })
        ));
    }

    #[test]
    fn digit_rejects_widths_beyond_u16() {
        // ⌈32/17⌉ = 2 digits is a fine *count*, but a 17-bit digit value
        // cannot be represented in the u16 return type.
        let s = sp(32);
        assert_eq!(s.digit_count(17).unwrap(), 2);
        assert!(matches!(
            s.digit(Id::new(0xffff_ffff), 0, 17),
            Err(IdError::InvalidDigitBits { .. })
        ));
        // 16-bit digits are the widest representable ones.
        assert_eq!(s.digit(Id::new(0xabcd_1234), 0, 16).unwrap(), 0xabcd);
        assert_eq!(s.digit(Id::new(0xabcd_1234), 1, 16).unwrap(), 0x1234);
    }

    #[test]
    fn paper_space_matches_new() {
        assert_eq!(
            IdSpace::paper(),
            IdSpace::new(crate::PAPER_ID_BITS).unwrap()
        );
        // `paper()` is const-constructible.
        const PAPER: IdSpace = IdSpace::paper();
        assert_eq!(PAPER.bits(), 32);
    }

    #[test]
    fn pastry_hops_matches_paper_example() {
        // Paper §IV: distance between 4-bit ids 1011 and 1111 is 3 (l = 1).
        let s = sp(4);
        assert_eq!(
            s.pastry_hops(Id::new(0b1011), Id::new(0b1111), 1).unwrap(),
            3
        );
        assert_eq!(
            s.pastry_hops(Id::new(0b1011), Id::new(0b1011), 1).unwrap(),
            0
        );
        assert_eq!(
            s.pastry_hops(Id::new(0b0000), Id::new(0b1000), 1).unwrap(),
            4
        );
    }

    #[test]
    fn pastry_hops_is_symmetric() {
        let s = sp(16);
        let (a, b) = (Id::new(0xa5a5 & 0xffff), Id::new(0xa5ff));
        assert_eq!(
            s.pastry_hops(a, b, 1).unwrap(),
            s.pastry_hops(b, a, 1).unwrap()
        );
    }

    #[test]
    fn pastry_hops_base16_counts_digits() {
        let s = sp(16);
        let a = Id::new(0xab00);
        let b = Id::new(0xab0f);
        // Shares 3 hex digits, differs in the last → 1 digit to fix.
        assert_eq!(s.pastry_hops(a, b, 4).unwrap(), 1);
        // In base 2 the same pair shares 12 bits → 4 hops.
        assert_eq!(s.pastry_hops(a, b, 1).unwrap(), 4);
    }

    #[test]
    fn chord_hops_is_leftmost_one_position() {
        let s = sp(4);
        let z = Id::ZERO;
        assert_eq!(s.chord_hops(z, z), 0);
        assert_eq!(s.chord_hops(z, Id::new(1)), 1); // 0001
        assert_eq!(s.chord_hops(z, Id::new(2)), 2); // 0010
        assert_eq!(s.chord_hops(z, Id::new(3)), 2); // 0011
        assert_eq!(s.chord_hops(z, Id::new(4)), 3); // 0100
        assert_eq!(s.chord_hops(z, Id::new(5)), 3); // 0101 — leftmost 1 at pos 3
        assert_eq!(s.chord_hops(z, Id::new(8)), 4);
        assert_eq!(s.chord_hops(z, Id::new(15)), 4);
    }

    #[test]
    fn chord_hops_is_asymmetric() {
        let s = sp(4);
        assert_eq!(s.chord_hops(Id::new(1), Id::new(2)), 1);
        assert_eq!(s.chord_hops(Id::new(2), Id::new(1)), 4); // distance 15
    }

    #[test]
    fn chord_hops_bounded_by_bits() {
        let s = sp(9);
        for v in 1..512u128 {
            let h = s.chord_hops(Id::ZERO, Id::new(v));
            assert!(h >= 1 && h <= s.max_chord_hops());
        }
    }
}
