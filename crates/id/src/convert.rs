//! Checked narrowing conversions for the id-space bit arithmetic.
//!
//! `IdSpace` works over `u128` words but reports bit positions as `u8` and
//! digits as `u16`. The narrowings below are provably in range at every call
//! site (the comments on each call site say why); routing them through
//! `TryFrom` here keeps bare `as` casts out of `crates/id`, where
//! `peercache-lint` rule L2 rejects them.

/// Narrow a bit count in `0..=128` to `u8`.
#[inline]
pub(crate) fn u8_from_u32(value: u32) -> u8 {
    u8::try_from(value).expect("bit counts are at most 128 and fit u8")
}

/// Narrow a masked digit value to the `u16` digit representation.
#[inline]
pub(crate) fn u16_from_u128(value: u128) -> u16 {
    u16::try_from(value).expect("digit values are masked to at most 16 bits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert() {
        assert_eq!(u8_from_u32(0), 0);
        assert_eq!(u8_from_u32(128), 128);
        assert_eq!(u16_from_u128(0xffff), 0xffff);
    }
}
