//! Identifier-space primitives for structured P2P overlays.
//!
//! Both Chord and Pastry place nodes and items in a circular identifier
//! space of `b`-bit ids (the paper uses `b = 32`). This crate provides the
//! shared substrate:
//!
//! * [`Id`] — an opaque identifier value,
//! * [`IdSpace`] — the ring of `b`-bit identifiers with modular ("clockwise")
//!   arithmetic, interval tests, and prefix/digit decomposition,
//! * the id-derived **hop-distance estimates** the selection algorithms are
//!   built on:
//!   * [`IdSpace::pastry_hops`] — `⌈(b − l)/d⌉` where `l` is the longest
//!     common prefix (paper §IV, with digit size `d`; `d = 1` gives the
//!     paper's `b − l`),
//!   * [`IdSpace::chord_hops`] — the position of the leftmost `1` in the
//!     clockwise distance `(v − u) mod 2^b` (paper eq. 6).
//!
//! The estimates are *steady-state upper bounds computed only from ids*: a
//! node selecting auxiliary neighbors cannot know the true positions of all
//! other nodes, so it prices a candidate pointer by how many id bits remain
//! to be fixed after taking it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod error;
mod id;
mod space;

pub use error::IdError;
pub use id::Id;
pub use space::IdSpace;

/// The identifier width used throughout the paper's experiments.
pub const PAPER_ID_BITS: u8 = 32;
