use std::fmt;

/// An identifier in a `b`-bit circular id space.
///
/// `Id` is a thin transparent wrapper over `u128`; all semantics (ring
/// arithmetic, prefixes, digits) live on [`crate::IdSpace`], which knows the
/// width `b`. Ids order as plain unsigned integers — use
/// [`crate::IdSpace::clockwise_distance`] for ring-aware comparisons.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Id(pub(crate) u128);

impl Id {
    /// Construct an id from a raw value.
    ///
    /// The value is *not* reduced modulo any space; pair with
    /// [`crate::IdSpace::normalize`] or validate via
    /// [`crate::IdSpace::contains`].
    #[inline]
    pub const fn new(value: u128) -> Self {
        Id(value)
    }

    /// The raw integer value of this id.
    #[inline]
    pub const fn value(self) -> u128 {
        self.0
    }

    /// The identifier `0`, i.e. the paper's "zero-node" vantage point for
    /// the Chord algorithms (§V).
    pub const ZERO: Id = Id(0);
}

impl From<u128> for Id {
    #[inline]
    fn from(value: u128) -> Self {
        Id(value)
    }
}

impl From<u64> for Id {
    #[inline]
    fn from(value: u64) -> Self {
        Id(u128::from(value))
    }
}

impl From<Id> for u128 {
    #[inline]
    fn from(id: Id) -> Self {
        id.0
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:#x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let id = Id::new(0xdead_beef);
        assert_eq!(id.value(), 0xdead_beef);
        assert_eq!(u128::from(id), 0xdead_beef);
        assert_eq!(Id::from(0xdead_beefu128), id);
        assert_eq!(Id::from(0xdead_beefu64), id);
    }

    #[test]
    fn zero_constant() {
        assert_eq!(Id::ZERO.value(), 0);
        assert_eq!(Id::default(), Id::ZERO);
    }

    #[test]
    fn ordering_is_integer_ordering() {
        assert!(Id::new(1) < Id::new(2));
        assert!(Id::new(u128::MAX) > Id::new(0));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Id::new(255).to_string(), "0xff");
        assert_eq!(format!("{:?}", Id::new(255)), "Id(0xff)");
    }
}
