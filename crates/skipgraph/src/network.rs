use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure, RouteTrace, StepScratch, WalkStep};
use peercache_id::{Id, IdSpace};

use crate::{SearchOutcome, SearchResult};

/// Configuration of a skip-graph deployment.
#[derive(Copy, Clone, Debug)]
pub struct SkipGraphConfig {
    /// The identifier (key) space.
    pub space: IdSpace,
    /// Defensive per-search hop budget.
    pub hop_limit: u32,
}

impl SkipGraphConfig {
    /// A configuration over `space` with a `4·b` hop budget.
    pub fn new(space: IdSpace) -> Self {
        SkipGraphConfig {
            space,
            hop_limit: 4 * u32::from(space.bits()),
        }
    }
}

/// Errors from membership operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The node id is already live.
    AlreadyPresent(Id),
    /// The node id is not live.
    NotPresent(Id),
    /// The id does not fit the configured key space.
    OutOfSpace(Id),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::AlreadyPresent(id) => write!(f, "node {id} already in the graph"),
            NetworkError::NotPresent(id) => write!(f, "node {id} not in the graph"),
            NetworkError::OutOfSpace(id) => write!(f, "node {id} outside the key space"),
        }
    }
}

impl Error for NetworkError {}

/// Deterministic membership vector: 64 pseudo-random bits derived from
/// the node id (SplitMix64 finalizer), so rebuilds are reproducible.
/// Truncating casts fold the 128-bit id into the 64-bit hash input.
#[allow(clippy::cast_possible_truncation)]
fn membership_vector(id: Id) -> u64 {
    let mut z = (id.value() as u64) ^ ((id.value() >> 64) as u64) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One skip-graph node: per-level ring links plus auxiliary neighbors.
#[derive(Clone, Debug)]
pub struct SkipNode {
    /// This node's key.
    pub id: Id,
    /// The membership vector (level `i` links nodes sharing its first
    /// `i` bits).
    pub mv: u64,
    /// Per level: the nearest clockwise node sharing `i` membership bits
    /// (SkipNet-style ring orientation; the counter-clockwise link is
    /// implied by the partner's entry).
    pub levels: Vec<Option<Id>>,
    /// Auxiliary neighbors installed by the selection algorithm.
    pub aux: Vec<Id>,
}

impl SkipNode {
    /// All distinct known nodes (level links + auxiliaries).
    pub fn known_neighbors(&self) -> Vec<Id> {
        self.known_neighbors_with(&self.aux)
    }

    /// [`known_neighbors`](Self::known_neighbors) with `extra` standing in
    /// for the installed auxiliary set, so read-only routing can resolve
    /// auxiliary pointers from a shared side table over one immutable
    /// snapshot.
    pub fn known_neighbors_with(&self, extra: &[Id]) -> Vec<Id> {
        let mut out: Vec<Id> = self
            .levels
            .iter()
            .flatten()
            .copied()
            .chain(extra.iter().copied())
            .filter(|&n| n != self.id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The core neighbors (level links only) — the `N_s` for selection.
    pub fn core_neighbors(&self) -> Vec<Id> {
        let mut out = Vec::new();
        self.core_neighbors_into(&mut out);
        out
    }

    /// [`core_neighbors`](Self::core_neighbors) into a caller-owned
    /// buffer — the arena-facing walk API: a sweep over many nodes reuses
    /// one buffer instead of allocating a fresh vector per node.
    pub fn core_neighbors_into(&self, out: &mut Vec<Id>) {
        out.clear();
        out.extend(
            self.levels
                .iter()
                .flatten()
                .copied()
                .filter(|&n| n != self.id),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Drop a discovered-dead neighbor.
    pub fn forget(&mut self, dead: Id) {
        for l in &mut self.levels {
            if *l == Some(dead) {
                *l = None;
            }
        }
        self.aux.retain(|&a| a != dead);
    }
}

/// The whole simulated skip graph (SkipNet-style ring orientation: keys
/// sorted on a ring, searches move clockwise, owner = predecessor).
///
/// ```
/// use peercache_id::{Id, IdSpace};
/// use peercache_skipgraph::{SkipGraphConfig, SkipGraphNetwork};
///
/// let space = IdSpace::new(8).unwrap();
/// let ids: Vec<Id> = [10u128, 80, 150, 220].map(Id::new).to_vec();
/// let mut graph = SkipGraphNetwork::build(SkipGraphConfig::new(space), &ids);
/// assert_eq!(graph.true_owner(Id::new(100)), Some(Id::new(80)));
/// let res = graph.search(Id::new(10), Id::new(100)).unwrap();
/// assert!(res.is_success());
/// // Level 0 links the whole ring; higher levels skip exponentially.
/// assert!(graph.node(Id::new(10)).unwrap().levels[0].is_some());
/// ```
#[derive(Clone)]
pub struct SkipGraphNetwork {
    config: SkipGraphConfig,
    nodes: BTreeMap<u128, SkipNode>,
}

impl SkipGraphNetwork {
    /// An empty graph.
    pub fn new(config: SkipGraphConfig) -> Self {
        SkipGraphNetwork {
            config,
            nodes: BTreeMap::new(),
        }
    }

    /// Bootstrap a stable graph with perfect level links.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-space ids.
    pub fn build(config: SkipGraphConfig, ids: &[Id]) -> Self {
        let mut net = SkipGraphNetwork::new(config);
        for &id in ids {
            assert!(config.space.contains(id), "node id {id} outside key space");
            let node = SkipNode {
                id,
                mv: membership_vector(id),
                levels: Vec::new(),
                aux: Vec::new(),
            };
            assert!(
                net.nodes.insert(id.value(), node).is_none(),
                "duplicate node id {id}"
            );
        }
        net.rebuild_all();
        net
    }

    /// The configuration.
    pub fn config(&self) -> &SkipGraphConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: Id) -> bool {
        self.nodes.contains_key(&id.value())
    }

    /// All live node ids in key order.
    pub fn live_ids(&self) -> Vec<Id> {
        self.nodes.keys().map(|&k| Id::new(k)).collect()
    }

    /// Immutable view of a node.
    pub fn node(&self, id: Id) -> Option<&SkipNode> {
        self.nodes.get(&id.value())
    }

    /// The true owner of `key`: its predecessor on the key ring.
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(..=key.value())
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(&k, _)| Id::new(k))
    }

    /// Recompute every node's level links from global truth: level `i`
    /// partitions the sorted membership by `i`-bit membership-vector
    /// prefix; each partition is a cyclic list in key order.
    pub fn rebuild_all(&mut self) {
        let ids = self.live_ids();
        let mvs: Vec<u64> = ids.iter().map(|id| self.nodes[&id.value()].mv).collect();
        let mut links: Vec<Vec<Option<Id>>> = vec![Vec::new(); ids.len()];
        let mut level = 0u32;
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        loop {
            groups.clear();
            let mask = if level == 0 {
                0
            } else if level >= 64 {
                u64::MAX
            } else {
                (1u64 << level) - 1
            };
            for (idx, &mv) in mvs.iter().enumerate() {
                groups.entry(mv & mask).or_default().push(idx);
            }
            let mut any_linked = false;
            for members in groups.values() {
                if members.len() < 2 {
                    for &m in members {
                        links[m].push(None);
                    }
                    continue;
                }
                any_linked = true;
                for (pos, &m) in members.iter().enumerate() {
                    let next = members[(pos + 1) % members.len()];
                    links[m].push(Some(ids[next]));
                }
            }
            level += 1;
            if !any_linked || level > 64 {
                break;
            }
        }
        for (idx, id) in ids.iter().enumerate() {
            self.nodes
                .get_mut(&id.value())
                .expect("relinked node is live")
                .levels = std::mem::take(&mut links[idx]);
        }
    }

    /// Re-link a single node's levels from global truth (the per-node
    /// repair a periodic stabilization performs): for each level, scan
    /// clockwise for the nearest live node sharing the level's membership
    /// prefix.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn refresh_node(&mut self, id: Id) -> Result<(), NetworkError> {
        let me = self
            .nodes
            .get(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        let my_mv = me.mv;
        let ids = self.live_ids();
        let start = ids
            .binary_search(&id)
            .expect("live node is in the live list");
        let mut levels = Vec::new();
        for level in 0u32..=64 {
            let mask = if level == 0 {
                0
            } else if level >= 64 {
                u64::MAX
            } else {
                (1u64 << level) - 1
            };
            let mut found = None;
            for step in 1..ids.len() {
                let w = ids[(start + step) % ids.len()];
                if self.nodes[&w.value()].mv & mask == my_mv & mask {
                    found = Some(w);
                    break;
                }
            }
            let done = found.is_none();
            levels.push(found);
            if done {
                break;
            }
        }
        self.nodes
            .get_mut(&id.value())
            .expect("relinked node is live")
            .levels = levels;
        Ok(())
    }

    /// A node joins; the whole structure is re-linked (the simulation
    /// analogue of the skip-graph join walking each level).
    ///
    /// # Errors
    /// [`NetworkError::AlreadyPresent`] / [`NetworkError::OutOfSpace`].
    pub fn join(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.config.space.contains(id) {
            return Err(NetworkError::OutOfSpace(id));
        }
        if self.nodes.contains_key(&id.value()) {
            return Err(NetworkError::AlreadyPresent(id));
        }
        self.nodes.insert(
            id.value(),
            SkipNode {
                id,
                mv: membership_vector(id),
                levels: Vec::new(),
                aux: Vec::new(),
            },
        );
        self.rebuild_all();
        Ok(())
    }

    /// A node crashes; survivors keep stale links until
    /// [`rebuild_all`](Self::rebuild_all) (searches route around corpses
    /// meanwhile, paying failed probes).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn fail(&mut self, id: Id) -> Result<(), NetworkError> {
        self.nodes
            .remove(&id.value())
            .map(|_| ())
            .ok_or(NetworkError::NotPresent(id))
    }

    /// Install the auxiliary neighbor set (dead entries dropped).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux(&mut self, id: Id, aux: Vec<Id>) -> Result<(), NetworkError> {
        let live: Vec<Id> = aux.into_iter().filter(|&a| self.is_live(a)).collect();
        let node = self
            .nodes
            .get_mut(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        node.aux = live;
        Ok(())
    }

    /// [`set_aux`](Self::set_aux) from a borrowed slice, recycling the
    /// node's installed buffer instead of taking ownership of a fresh
    /// `Vec`: the churn driver's refresh engine re-installs a retained
    /// selection every recompute tick, and at warmed capacity this
    /// installs without allocating. The live-entry filter is identical.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux_from_slice(&mut self, id: Id, aux: &[Id]) -> Result<(), NetworkError> {
        let mut live = match self.nodes.get_mut(&id.value()) {
            Some(node) => std::mem::take(&mut node.aux),
            None => return Err(NetworkError::NotPresent(id)),
        };
        live.clear();
        live.extend(aux.iter().copied().filter(|&a| self.is_live(a)));
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.aux = live;
        }
        Ok(())
    }

    /// Search for `key` from `from`: clockwise-monotone greedy over level
    /// links and auxiliaries (never overshooting the key), terminating at
    /// the believed predecessor.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn search(&mut self, from: Id, key: Id) -> Result<SearchResult, NetworkError> {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let space = self.config.space;
        let true_owner = self.true_owner(key).expect("non-empty graph");
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(SearchResult {
                    outcome: SearchOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            if current == key {
                return Ok(SearchResult {
                    outcome: SearchOutcome::Success,
                    hops,
                    failed_probes,
                    path,
                });
            }
            let mut candidates: Vec<Id> = self.nodes[&current.value()]
                .known_neighbors()
                .into_iter()
                .filter(|&w| space.between_open_closed(current, w, key))
                .collect();
            candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
            let mut next = None;
            for w in candidates {
                if self.is_live(w) {
                    next = Some(w);
                    break;
                }
                failed_probes += 1;
                self.nodes
                    .get_mut(&current.value())
                    .expect("route current node is live")
                    .forget(w);
            }
            match next {
                Some(w) => {
                    hops += 1;
                    path.push(w);
                    current = w;
                }
                None => {
                    let outcome = if current == true_owner {
                        SearchOutcome::Success
                    } else {
                        SearchOutcome::WrongOwner(current)
                    };
                    return Ok(SearchResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
            }
        }
    }

    /// Read-only [`search`](Self::search): auxiliary neighbors come from
    /// `aux_of` instead of the installed per-node sets, and dead entries
    /// probed along the way are counted as `failed_probes` but **not**
    /// forgotten. With every node live — the stable-mode contract — the
    /// walk is hop-for-hop identical to installing each `aux_of` set via
    /// [`set_aux`](Self::set_aux) and calling `search`, which lets a
    /// parallel sweep share one snapshot across threads.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn search_with_aux<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
    ) -> Result<SearchResult, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let space = self.config.space;
        // `from` is live, so the graph is non-empty and the key has an
        // owner; the else-branch is unreachable but typed.
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(SearchResult {
                    outcome: SearchOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            if current == key {
                return Ok(SearchResult {
                    outcome: SearchOutcome::Success,
                    hops,
                    failed_probes,
                    path,
                });
            }
            let mut candidates: Vec<Id> = self.nodes[&current.value()]
                .known_neighbors_with(aux_of(current))
                .into_iter()
                .filter(|&w| space.between_open_closed(current, w, key))
                .collect();
            candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
            let mut next = None;
            for w in candidates {
                if self.is_live(w) {
                    next = Some(w);
                    break;
                }
                failed_probes += 1;
            }
            match next {
                Some(w) => {
                    hops += 1;
                    path.push(w);
                    current = w;
                }
                None => {
                    let outcome = if current == true_owner {
                        SearchOutcome::Success
                    } else {
                        SearchOutcome::WrongOwner(current)
                    };
                    return Ok(SearchResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
            }
        }
    }

    /// Fault-injected read-only search: every contact goes through
    /// `plan`'s probe channel (crash/loss/unresponsive with bounded
    /// retry), auxiliary pointers are resolved through its staleness
    /// channel, and the walk records everything in a
    /// [`RouteTrace`](peercache_faults::RouteTrace).
    ///
    /// Degradation semantics mirror [`search`](Self::search): candidates
    /// that time out are skipped in clockwise-distance order (the walk
    /// is read-only — a repairing caller evicts `trace.dead_probed`
    /// afterwards). Under a non-transparent plan, the first timed-out
    /// **auxiliary-only** candidate at a hop falls the decision back to
    /// core candidates (`trace.fallbacks`); under a transparent plan the
    /// walk is bit-identical to
    /// [`search_with_aux`](Self::search_with_aux).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn search_with_aux_faults<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        plan: &FaultPlan,
    ) -> Result<FaultedRoute, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        if plan.node_crashed(from) {
            return Ok(FaultedRoute::origin_down(from));
        }
        let mut current = from;
        let mut trace = RouteTrace::start(from);
        let mut scratch = StepScratch::new();
        loop {
            match self.search_step_faults(
                current,
                key,
                true_owner,
                &aux_of,
                plan,
                &mut trace,
                &mut scratch,
            ) {
                WalkStep::Forward(next) => {
                    trace.hops += 1;
                    trace.path.push(next);
                    current = next;
                }
                WalkStep::Done(outcome) => return Ok(FaultedRoute { outcome, trace }),
            }
        }
    }

    /// One arrival of [`search_with_aux_faults`](Self::search_with_aux_faults):
    /// the full decision made at `current` — hop-budget check, staleness
    /// resolution of its cached pointers, candidate ranking, and the
    /// probe loop — ending in a forward or a terminal outcome. The
    /// monolithic walk and the `peercache-node` event loop both drive
    /// this same function, so their probe sequences are bit-identical.
    ///
    /// The caller owns the hop accounting: on [`WalkStep::Forward`] it
    /// must charge `trace.hops += 1` and extend `trace.path` before the
    /// next step. `true_owner` is the owner of `key` computed once per
    /// walk (see [`true_owner`](Self::true_owner)).
    #[allow(clippy::too_many_arguments)]
    pub fn search_step_faults<'a, F>(
        &'a self,
        current: Id,
        key: Id,
        true_owner: Id,
        aux_of: F,
        plan: &FaultPlan,
        trace: &mut RouteTrace,
        scratch: &mut StepScratch,
    ) -> WalkStep
    where
        F: Fn(Id) -> &'a [Id],
    {
        let space = self.config.space;
        if trace.hops >= self.config.hop_limit {
            return WalkStep::Done(Err(LookupFailure::HopLimit));
        }
        if current == key {
            return WalkStep::Done(Ok(current));
        }
        // The walk only steps to probed-live candidates, so `current`
        // is always present; if the map ever disagrees, degrade to a
        // dead end rather than panic (rule L10).
        let Some(node) = self.nodes.get(&current.value()) else {
            return WalkStep::Done(Err(LookupFailure::DeadEnd(current)));
        };
        plan.resolve_aux(space, current, aux_of(current), &mut scratch.aux);
        let mut candidates: Vec<Id> = node
            .known_neighbors_with(&scratch.aux)
            .into_iter()
            .filter(|&w| space.between_open_closed(current, w, key))
            .collect();
        candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
        // Sorted core view, for spotting aux-only candidates.
        let core = node.known_neighbors_with(&[]);
        let mut aux_banned = false;
        for w in candidates {
            let aux_only = core.binary_search(&w).is_err();
            if aux_banned && aux_only {
                continue;
            }
            if plan.probe(current, w, trace.hops, self.is_live(w), trace) {
                return WalkStep::Forward(w);
            }
            if aux_only && !aux_banned && !plan.is_transparent() {
                aux_banned = true;
                trace.fallbacks += 1;
            }
        }
        let outcome = if current == true_owner {
            Ok(current)
        } else {
            Err(LookupFailure::WrongOwner(current))
        };
        WalkStep::Done(outcome)
    }

    /// Evict `dead` from `id`'s routing structures. The fault-injected
    /// walks are read-only, so a repairing caller (the churn driver)
    /// applies their `dead_probed` pairs here afterwards. No-op when
    /// `id` is not live.
    pub fn forget_neighbor(&mut self, id: Id, dead: Id) {
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.forget(dead);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_vectors_are_deterministic_and_spread() {
        let a = membership_vector(Id::new(1));
        assert_eq!(a, membership_vector(Id::new(1)));
        let b = membership_vector(Id::new(2));
        assert_ne!(a, b);
        // Bits look balanced over many ids.
        let ones: u32 = (0..1000u128)
            .map(|i| (membership_vector(Id::new(i)) & 1) as u32)
            .sum();
        assert!((350..=650).contains(&ones), "bit balance: {ones}");
    }
}
