//! A skip-graph overlay simulator.
//!
//! The paper notes (§I) that "the techniques for Chord are applicable to
//! SkipGraphs \[2\]" — this crate demonstrates it. A skip graph (Aspnes &
//! Shah) arranges nodes in sorted key order; each node draws a random
//! **membership vector**, and level `i` links every node to its nearest
//! neighbors (left and right) among the nodes sharing its first `i`
//! membership bits — so level-`i` neighbors are ~`2^i` positions away in
//! expectation, the same exponential geometry as Chord fingers, but in
//! *rank* space rather than id space.
//!
//! Search walks toward the target key without overshooting, dropping
//! levels as it closes in — `O(log n)` hops w.h.p. Auxiliary neighbors
//! (the paper's contribution) are extra long-range links consulted
//! exactly like level links (§III-1). The Chord selection algorithm
//! transfers by running it in rank space: see the `ext_skipgraph`
//! experiment in `peercache-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;

pub use network::{NetworkError, SkipGraphConfig, SkipGraphNetwork, SkipNode};

use peercache_id::Id;

/// How a search ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Terminated at the true owner (the key's predecessor).
    Success,
    /// Terminated elsewhere (stale links under churn).
    WrongOwner(Id),
    /// Hop budget exhausted (defensive).
    HopLimit,
}

/// The result of one search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// How the search ended.
    pub outcome: SearchOutcome,
    /// Successful forwards taken.
    pub hops: u32,
    /// Dead neighbors probed (timeouts), not counted as hops.
    pub failed_probes: u32,
    /// Nodes visited, starting at the source.
    pub path: Vec<Id>,
}

impl SearchResult {
    /// Whether the search reached the true owner.
    pub fn is_success(&self) -> bool {
        self.outcome == SearchOutcome::Success
    }
}
