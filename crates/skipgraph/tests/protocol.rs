//! Skip-graph protocol tests: level structure, search correctness and
//! bounds, churn behaviour, and the transfer of the Chord selection
//! algorithm via rank space.

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_id::{Id, IdSpace};
use peercache_skipgraph::{SkipGraphConfig, SkipGraphNetwork};
use peercache_workload::random_ids;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn id(v: u128) -> Id {
    Id::new(v)
}

fn random_net(bits: u8, n: usize, seed: u64) -> (SkipGraphNetwork, Vec<Id>) {
    let space = IdSpace::new(bits).expect("valid bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = random_ids(space, n, &mut rng);
    ids.sort();
    let net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &ids);
    (net, ids)
}

#[test]
fn level_zero_is_the_full_ring() {
    let (net, ids) = random_net(16, 32, 1);
    for (pos, &nid) in ids.iter().enumerate() {
        let node = net.node(nid).unwrap();
        let successor = ids[(pos + 1) % ids.len()];
        assert_eq!(node.levels[0], Some(successor), "level 0 links the ring");
    }
}

#[test]
fn level_links_share_membership_prefixes() {
    let (net, ids) = random_net(16, 64, 2);
    for &nid in &ids {
        let node = net.node(nid).unwrap();
        for (level, link) in node.levels.iter().enumerate() {
            if let Some(w) = link {
                let peer = net.node(*w).unwrap();
                if level > 0 {
                    let mask = (1u64 << level) - 1;
                    assert_eq!(
                        node.mv & mask,
                        peer.mv & mask,
                        "level {level} must share {level} membership bits"
                    );
                }
            }
        }
    }
}

#[test]
fn level_links_span_exponential_rank_distances() {
    let (net, ids) = random_net(32, 256, 3);
    let rank: HashMap<Id, usize> = ids.iter().enumerate().map(|(r, &i)| (i, r)).collect();
    let n = ids.len();
    // Average rank distance of level-i links should roughly double per
    // level (2^i in expectation).
    let mut per_level: Vec<(f64, usize)> = vec![(0.0, 0); 8];
    for &nid in &ids {
        let node = net.node(nid).unwrap();
        for (level, link) in node.levels.iter().enumerate().take(8) {
            if let Some(w) = link {
                let d = (rank[w] + n - rank[&nid]) % n;
                per_level[level].0 += d as f64;
                per_level[level].1 += 1;
            }
        }
    }
    let avg: Vec<f64> = per_level
        .iter()
        .filter(|&&(_, c)| c > 0)
        .map(|&(s, c)| s / c as f64)
        .collect();
    assert!(avg.len() >= 5);
    for w in avg.windows(2) {
        assert!(
            w[1] > w[0] * 1.4,
            "rank spans must grow roughly geometrically: {avg:?}"
        );
    }
}

#[test]
fn search_reaches_owner_from_everywhere() {
    let (mut net, ids) = random_net(16, 48, 4);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u16>()));
        let res = net.search(from, key).unwrap();
        assert!(res.is_success(), "from {from} key {key}");
        assert_eq!(res.path.last(), Some(&net.true_owner(key).unwrap()));
        assert_eq!(res.failed_probes, 0);
    }
}

#[test]
fn search_hops_are_logarithmic() {
    let (mut net, ids) = random_net(32, 256, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let mut max_hops = 0;
    for _ in 0..2000 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        let res = net.search(from, key).unwrap();
        assert!(res.is_success());
        max_hops = max_hops.max(res.hops);
    }
    // O(log n) w.h.p.: log2(256) = 8; generous slack for the tail.
    assert!(max_hops <= 24, "max hops {max_hops}");
}

#[test]
fn aux_neighbors_shorten_searches() {
    let (mut net, ids) = random_net(32, 256, 8);
    let from = ids[0];
    let far = *ids
        .iter()
        .max_by_key(|&&t| net.search(from, t).unwrap().hops)
        .unwrap();
    assert!(net.search(from, far).unwrap().hops >= 2);
    net.set_aux(from, vec![far]).unwrap();
    let res = net.search(from, far).unwrap();
    assert!(res.is_success());
    assert_eq!(res.hops, 1);
}

#[test]
fn chord_selection_transfers_via_rank_space() {
    // §I's claim: run the Chord optimiser on the skip graph by mapping
    // nodes to their ranks (the geometry the level links live in).
    let (mut net, ids) = random_net(32, 192, 9);
    let me = ids[0];
    let n = ids.len();
    let rank_bits = 8u8; // 2^8 = 256 ≥ n
    let rank_space = IdSpace::new(rank_bits).unwrap();
    let core = net.node(me).unwrap().core_neighbors();
    let rank: HashMap<Id, usize> = ids.iter().enumerate().map(|(r, &i)| (i, r)).collect();
    // Zipf-ish weights by arbitrary order.
    let weights: Vec<(Id, f64)> = ids[1..]
        .iter()
        .enumerate()
        .map(|(i, &nid)| (nid, 1000.0 / (i + 1) as f64))
        .collect();
    let to_rank_id = |nid: Id| Id::new(((rank[&nid] + n - rank[&me]) % n) as u128);
    let candidates: Vec<Candidate> = weights
        .iter()
        .filter(|(nid, _)| !core.contains(nid))
        .map(|&(nid, w)| Candidate::new(to_rank_id(nid), w))
        .collect();
    let core_ranks: Vec<Id> = core.iter().map(|&c| to_rank_id(c)).collect();
    let problem = ChordProblem::new(rank_space, Id::new(0), core_ranks, candidates, 8).unwrap();
    let sel = select_fast(&problem).unwrap();
    // Map the chosen ranks back to node ids.
    let from_rank: HashMap<u128, Id> = ids
        .iter()
        .map(|&nid| (to_rank_id(nid).value(), nid))
        .collect();
    let aux: Vec<Id> = sel.aux.iter().map(|r| from_rank[&r.value()]).collect();

    let measure = |net: &mut SkipGraphNetwork| -> f64 {
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        weights
            .iter()
            .map(|&(nid, w)| w * f64::from(net.search(me, nid).unwrap().hops))
            .sum::<f64>()
            / total
    };
    net.set_aux(me, vec![]).unwrap();
    let base = measure(&mut net);
    net.set_aux(me, aux).unwrap();
    let optimal = measure(&mut net);
    // Random pick of equal size for contrast.
    let mut rng = StdRng::seed_from_u64(10);
    let mut pool: Vec<Id> = weights.iter().map(|&(nid, _)| nid).collect();
    use rand::seq::SliceRandom;
    pool.shuffle(&mut rng);
    net.set_aux(me, pool[..sel.aux.len()].to_vec()).unwrap();
    let random = measure(&mut net);

    assert!(optimal < base, "optimal {optimal} must beat no-aux {base}");
    assert!(
        optimal < random,
        "optimal {optimal} must beat random {random}"
    );
}

#[test]
fn searches_survive_failures_and_heal_after_rebuild() {
    let (mut net, ids) = random_net(16, 64, 11);
    for &victim in ids.iter().take(16) {
        net.fail(victim).unwrap();
    }
    // Stale links: searches degrade gracefully (a node whose only link
    // toward the key died stops early — skip graphs have no successor
    // list to fall back on), but most still succeed by probing around
    // corpses.
    let live = net.live_ids();
    let mut rng = StdRng::seed_from_u64(12);
    let mut ok = 0;
    for _ in 0..100 {
        let from = live[rng.gen_range(0..live.len())];
        let key = id(u128::from(rng.gen::<u16>()));
        let res = net.search(from, key).unwrap();
        if res.is_success() {
            ok += 1;
        }
    }
    assert!(ok >= 70, "only {ok}/100 searches survived the churn");
    // After a rebuild everything is clean and correct again.
    net.rebuild_all();
    for &nid in &live {
        let node = net.node(nid).unwrap();
        assert!(node.known_neighbors().iter().all(|w| net.is_live(*w)));
    }
    for _ in 0..100 {
        let from = live[rng.gen_range(0..live.len())];
        let key = id(u128::from(rng.gen::<u16>()));
        assert!(net.search(from, key).unwrap().is_success());
    }
}

#[test]
fn membership_errors_are_reported() {
    let (mut net, ids) = random_net(16, 8, 13);
    assert!(net.join(ids[0]).is_err(), "duplicate");
    assert!(net.join(id(1 << 20)).is_err(), "out of space");
    let ghost = id(65_000);
    assert!(!ids.contains(&ghost));
    assert!(net.fail(ghost).is_err());
    assert!(net.set_aux(ghost, vec![]).is_err());
    assert!(net.search(ghost, id(0)).is_err());
}

#[test]
fn single_node_owns_everything() {
    let space = IdSpace::new(8).unwrap();
    let mut net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &[id(99)]);
    for key in (0..256u128).step_by(37) {
        let res = net.search(id(99), id(key)).unwrap();
        assert!(res.is_success());
        assert_eq!(res.hops, 0);
    }
}
