//! Property tests for the skip graph: structural invariants of the level
//! rings and search correctness on randomized memberships.

use peercache_id::{Id, IdSpace};
use peercache_skipgraph::{SkipGraphConfig, SkipGraphNetwork};
use proptest::prelude::*;

fn memberships() -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::btree_set(0u16..1024, 2..48)
        .prop_map(|s| s.into_iter().collect::<Vec<u16>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn searches_always_reach_the_predecessor(raw in memberships(), key in 0u16..1024) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let mut net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &ids);
        let key = Id::new(u128::from(key));
        let owner = net.true_owner(key).unwrap();
        for &from in &ids {
            let res = net.search(from, key).unwrap();
            prop_assert!(res.is_success(), "from {} key {}", from, key);
            prop_assert_eq!(res.path.last(), Some(&owner));
        }
    }

    #[test]
    fn level_rings_partition_the_membership(raw in memberships()) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &ids);
        // Following level-i links from any node must cycle back to it,
        // visiting exactly the nodes sharing its i-bit membership prefix.
        for &start in &ids {
            let node = net.node(start).unwrap();
            for (level, link) in node.levels.iter().enumerate() {
                let Some(first) = link else { continue };
                let mask = if level == 0 { 0 } else { (1u64 << level) - 1 };
                let mut seen = vec![start];
                let mut cur = *first;
                let mut steps = 0;
                while cur != start {
                    prop_assert_eq!(
                        net.node(cur).unwrap().mv & mask,
                        node.mv & mask,
                        "level {} ring member with wrong prefix", level
                    );
                    seen.push(cur);
                    cur = net.node(cur).unwrap().levels[level]
                        .expect("ring members are linked");
                    steps += 1;
                    prop_assert!(steps <= ids.len(), "level ring must close");
                }
                // Ring covers every sharing node exactly once.
                let sharing = ids
                    .iter()
                    .filter(|&&w| net.node(w).unwrap().mv & mask == node.mv & mask)
                    .count();
                prop_assert_eq!(seen.len(), sharing);
            }
        }
    }

    #[test]
    fn search_paths_are_monotone_toward_the_key(raw in memberships(), key in 0u16..1024) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let mut net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &ids);
        let key = Id::new(u128::from(key));
        let from = ids[0];
        let res = net.search(from, key).unwrap();
        for pair in res.path.windows(2) {
            prop_assert!(
                space.clockwise_distance(pair[1], key)
                    < space.clockwise_distance(pair[0], key),
                "clockwise-monotone progress"
            );
        }
    }
}
