//! Differential battery (ISSUE 10 satellite 1): the event-loop runtime
//! replaying `run_stable`'s exact query stream under a transparent
//! [`FaultPlan`] must reproduce the sim's aware-pass metrics
//! **bit-for-bit** — same successes, same hop totals, same failed-probe
//! counts — across all four substrates, 32 seeds, and worker-pool
//! widths 1 and 4. A second leg checks the same equivalence under a
//! lossy plan against `run_stable_faulted`, where the full
//! [`FaultMetrics`] shape (retries, timeouts, fallbacks, failure
//! taxonomy) must match.

use peercache_faults::{FaultConfig, FaultPlan};
use peercache_node::NodeRuntime;
use peercache_pastry::RoutingMode;
use peercache_sim::{run_stable, run_stable_faulted, OverlayKind, RuntimeFixture, StableConfig};

const NODES: usize = 48;
const QUERIES: usize = 120;
const SEEDS: u64 = 32;
const THREADS: [usize; 2] = [1, 4];

fn kinds() -> [(&'static str, OverlayKind); 4] {
    [
        ("chord", OverlayKind::Chord),
        (
            "pastry",
            OverlayKind::Pastry {
                digit_bits: 1,
                mode: RoutingMode::LocalityAware,
            },
        ),
        ("tapestry", OverlayKind::Tapestry { digit_bits: 1 }),
        ("skipgraph", OverlayKind::SkipGraph),
    ]
}

fn config(kind: OverlayKind, seed: u64) -> StableConfig {
    let mut c = StableConfig::paper_defaults(kind, NODES, seed);
    c.queries = QUERIES;
    c
}

/// Replay the fixture's query stream through a fresh runtime with the
/// given plan and auxiliary table, returning it after the run drains.
fn replay<'a>(
    fixture: &'a RuntimeFixture,
    plan: FaultPlan,
    table: Vec<(peercache_id::Id, Vec<peercache_id::Id>)>,
) -> NodeRuntime<'a> {
    let mut runtime = NodeRuntime::new(fixture.overlay(), plan);
    runtime.install_aux(table);
    for (origin, key) in fixture.queries() {
        runtime.submit(origin, key);
    }
    runtime.run();
    runtime
}

#[test]
fn transparent_runtime_reproduces_run_stable_bit_for_bit() {
    for (label, kind) in kinds() {
        for seed in 0..SEEDS {
            let config = config(kind, seed);
            for threads in THREADS {
                peercache_par::with_threads(threads, || {
                    let reference = run_stable(&config);
                    let fixture = RuntimeFixture::build(&config);
                    let plan = FaultPlan::transparent(config.seed);

                    let aware = replay(&fixture, plan.clone(), fixture.aware_table());
                    assert_eq!(
                        aware.query_metrics(),
                        reference.aware,
                        "{label} seed {seed} threads {threads}: aware metrics diverged"
                    );
                    assert_eq!(
                        aware.joined().len(),
                        config.nodes,
                        "{label} seed {seed}: transparent plan must join every node"
                    );
                });
            }
        }
    }
}

#[test]
fn transparent_runtime_reproduces_the_oblivious_pass_too() {
    // The aware table is the headline; one substrate × a few seeds on
    // the oblivious table guards the aux plumbing against an accidental
    // aware-only special case.
    for (label, kind) in kinds() {
        for seed in [3, 17] {
            let config = config(kind, seed);
            let reference = run_stable(&config);
            let fixture = RuntimeFixture::build(&config);
            let plan = FaultPlan::transparent(config.seed);
            let oblivious = replay(&fixture, plan, fixture.oblivious_table());
            assert_eq!(
                oblivious.query_metrics(),
                reference.oblivious,
                "{label} seed {seed}: oblivious metrics diverged"
            );
        }
    }
}

#[test]
fn faulted_runtime_reproduces_run_stable_faulted() {
    let faults = FaultConfig {
        crash_rate: 0.08,
        unresponsive_rate: 0.05,
        loss_rate: 0.04,
        ..FaultConfig::default()
    };
    for (label, kind) in kinds() {
        for seed in 0..8 {
            let config = config(kind, seed);
            for threads in THREADS {
                peercache_par::with_threads(threads, || {
                    let reference = run_stable_faulted(&config, &faults);
                    let fixture = RuntimeFixture::build(&config);
                    let plan = FaultPlan::new(config.seed, &faults);
                    let aware = replay(&fixture, plan, fixture.aware_table());
                    assert_eq!(
                        aware.fault_metrics(),
                        reference.aware,
                        "{label} seed {seed} threads {threads}: faulted metrics diverged"
                    );
                });
            }
        }
    }
}
