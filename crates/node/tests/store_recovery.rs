//! Crash-recovery property battery for the persistent peer store
//! (ISSUE 10 satellite 2): over arbitrary stores, `save` → `load` is
//! the identity; over arbitrary *damage* — truncation at any byte,
//! corruption of any byte, wholesale garbage — `load` never panics and
//! every entry it does return is one the writer actually wrote. Expiry
//! and eviction are pure functions of virtual time. A committed fixture
//! corpus (`tests/fixtures/`) pins the concrete on-disk format so a
//! format drift fails loudly rather than silently reading zero rows.

use std::path::PathBuf;

use peercache_id::Id;
use peercache_node::{PeerEntry, PeerStore, StoreConfig};
use proptest::prelude::*;

/// A unique temp path per (test, case) — the battery runs cases in
/// sequence, so a per-test file is enough, but keep tests apart.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("peercache-store-recovery");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Arbitrary store contents: up to 24 peers with full-width ids and
/// arbitrary counters (duplicates collapse, last wins — same as load).
fn stores() -> impl Strategy<Value = PeerStore> {
    prop::collection::vec(
        (
            0u128..=u128::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
        ),
        0..24,
    )
    .prop_map(|rows| {
        PeerStore::from_entries(
            StoreConfig::default(),
            rows.into_iter().map(|(id, last_seen, s, f)| PeerEntry {
                id: Id::new(id),
                last_seen,
                successes: s,
                failures: f,
            }),
        )
    })
}

/// Every entry of `loaded` must be byte-identical to the corresponding
/// entry of `saved` — damage may lose a suffix of the file, but it must
/// never invent or alter a peer.
fn assert_subset(loaded: &PeerStore, saved: &PeerStore) -> Result<(), TestCaseError> {
    for entry in loaded.entries() {
        let original = saved.get(entry.id);
        prop_assert_eq!(
            original,
            Some(entry),
            "recovered an entry the writer never wrote"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_is_the_identity(store in stores()) {
        let path = scratch("roundtrip.jsonl");
        store.save(&path).expect("save");
        let reloaded = PeerStore::load(&path, store.config().clone());
        prop_assert_eq!(&reloaded, &store);
        // Idempotent: a second round trip changes nothing.
        reloaded.save(&path).expect("save again");
        prop_assert_eq!(PeerStore::load(&path, store.config().clone()), store);
    }

    #[test]
    fn truncation_at_any_byte_recovers_a_prefix(
        store in stores(),
        cut in 0usize..4096,
    ) {
        let path = scratch("truncated.jsonl");
        store.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read back");
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        std::fs::write(&path, &bytes).expect("truncate");
        let recovered = PeerStore::load(&path, store.config().clone());
        prop_assert!(recovered.len() <= store.len());
        assert_subset(&recovered, &store)?;
    }

    #[test]
    fn corrupting_any_byte_never_panics_or_invents_peers(
        store in stores(),
        offset in 0usize..4096,
        junk in 0u8..=255,
    ) {
        let path = scratch("corrupt.jsonl");
        store.save(&path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read back");
        if !bytes.is_empty() {
            let at = offset % bytes.len();
            bytes[at] = junk;
        }
        std::fs::write(&path, &bytes).expect("corrupt");
        // Never panics; and since a flipped byte can only mutate one
        // row's digits into other digits *within that row's own field*,
        // any surviving entry either matches the original or differs in
        // exactly the damaged row — so we only assert totality plus a
        // bound on size here, and leave byte-exactness to the
        // truncation property.
        let recovered = PeerStore::load(&path, store.config().clone());
        prop_assert!(recovered.len() <= store.len());
    }

    #[test]
    fn wholesale_garbage_loads_to_something_total(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let path = scratch("garbage.jsonl");
        std::fs::write(&path, &bytes).expect("write garbage");
        // Any byte soup — invalid UTF-8 included — must yield a store,
        // not a panic.
        let recovered = PeerStore::load(&path, StoreConfig::default());
        prop_assert!(recovered.len() <= 512);
    }

    #[test]
    fn expiry_and_eviction_are_pure_in_virtual_time(
        store in stores(),
        now in 0u64..=u64::MAX,
        max_peers in 1usize..16,
        expiry_age in 0u64..1024,
    ) {
        let config = StoreConfig { max_peers, expiry_age };
        let mut a = PeerStore::from_entries(config.clone(), store.entries().to_vec());
        let mut b = PeerStore::from_entries(config, store.entries().to_vec());
        let dropped_a = a.expire(now);
        let dropped_b = b.expire(now);
        prop_assert_eq!(dropped_a, dropped_b);
        prop_assert_eq!(&a, &b, "expire must be deterministic");
        prop_assert!(a.len() <= max_peers);
        for entry in a.entries() {
            prop_assert!(now.saturating_sub(entry.last_seen) <= expiry_age);
            prop_assert!(store.get(entry.id).is_some());
        }
        // Expiry is idempotent at the same instant.
        prop_assert_eq!(a.expire(now), 0);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn reconnect_order_is_a_permutation_and_stable(store in stores()) {
        let order = store.reconnect_order();
        prop_assert_eq!(order.len(), store.len());
        let mut sorted = order.clone();
        sorted.sort();
        let ids: Vec<Id> = store.entries().iter().map(|e| e.id).collect();
        prop_assert_eq!(sorted, ids, "order must be a permutation of the entries");
        prop_assert_eq!(store.reconnect_order(), order, "and stable across calls");
    }
}

#[test]
fn fixture_corpus_pins_the_on_disk_format() {
    let valid = PeerStore::load(&fixture("valid.jsonl"), StoreConfig::default());
    assert_eq!(valid.len(), 3);
    assert_eq!(
        valid.get(Id::new(42)),
        Some(&PeerEntry {
            id: Id::new(42),
            last_seen: 9,
            successes: 3,
            failures: 1,
        })
    );
    // Full-width identifiers survive (a lossy f64 reader would corrupt
    // this one).
    assert!(valid.get(Id::new(u128::MAX)).is_some());

    let truncated = PeerStore::load(&fixture("truncated.jsonl"), StoreConfig::default());
    assert_eq!(truncated.len(), 1, "rows before the torn tail survive");
    assert_eq!(truncated.get(Id::new(1)).map(|e| e.successes), Some(2));

    let corrupt = PeerStore::load(&fixture("corrupt.jsonl"), StoreConfig::default());
    assert!(
        corrupt.is_empty(),
        "a corrupt row stops the read at that row"
    );

    let empty = PeerStore::load(&fixture("empty.jsonl"), StoreConfig::default());
    assert!(empty.is_empty());

    let bad_version = PeerStore::load(&fixture("bad_version.jsonl"), StoreConfig::default());
    assert!(bad_version.is_empty(), "version drift loads as fresh");
}
