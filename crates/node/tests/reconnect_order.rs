//! Golden test (ISSUE 10 satellite 3): the startup reconnection order
//! is a public boot-sequence contract — reliability score descending,
//! ties broken by ascending id. A handcrafted score ladder pins the
//! comparator exactly, and a runtime-fed store pins the end-to-end
//! order (selection → admission → trace-fed scores → save → load →
//! reconnect) against drift anywhere in that chain.

use peercache_faults::{FaultConfig, FaultPlan};
use peercache_id::Id;
use peercache_node::{NodeRuntime, PeerEntry, PeerStore, StoreConfig};
use peercache_sim::{OverlayKind, RuntimeFixture, StableConfig};

fn entry(id: u128, successes: u64, failures: u64) -> PeerEntry {
    PeerEntry {
        id: Id::new(id),
        last_seen: 0,
        successes,
        failures,
    }
}

#[test]
fn the_comparator_is_score_descending_then_id_ascending() {
    let store = PeerStore::from_entries(
        StoreConfig::default(),
        [
            entry(90, 0, 3), // 1/5  = 0.20
            entry(10, 3, 0), // 4/5  = 0.80
            entry(50, 1, 1), // 2/4  = 0.50
            entry(40, 0, 0), // 1/2  = 0.50 (tie with 50 and 60 → id)
            entry(60, 1, 1), // 2/4  = 0.50
            entry(20, 9, 1), // 10/12 ≈ 0.83
            entry(30, 1, 0), // 2/3  ≈ 0.67
        ],
    );
    let order: Vec<u128> = store.reconnect_order().iter().map(|i| i.value()).collect();
    assert_eq!(
        order,
        vec![20, 10, 30, 40, 50, 60, 90],
        "score desc, ties by ascending id"
    );
}

#[test]
fn runtime_fed_store_reconnects_in_the_pinned_order() {
    // A fixed world: chord, 32 nodes, seed 11, a lossy plan so the
    // store accumulates both successes and failures, the busiest node
    // as the store owner.
    let mut config = StableConfig::paper_defaults(OverlayKind::Chord, 32, 11);
    config.queries = 200;
    let fixture = RuntimeFixture::build(&config);
    let faults = FaultConfig {
        unresponsive_rate: 0.2,
        loss_rate: 0.1,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::new(config.seed, &faults);
    let owner = fixture.node_ids().first().copied().expect("nodes exist");

    let mut runtime = NodeRuntime::new(fixture.overlay(), plan);
    runtime.install_aux(fixture.aware_table());
    runtime.attach_store(owner, PeerStore::new(StoreConfig::default()));
    for (origin, key) in fixture.queries() {
        runtime.submit(origin, key);
    }
    runtime.run();

    // Persist and reload through the real file path: the order must
    // survive the round trip bit-for-bit.
    let dir = std::env::temp_dir().join("peercache-reconnect-golden");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("peers.jsonl");
    let (_, store) = runtime.detach_store().expect("store attached");
    store.save(&path).expect("save");
    let reloaded = PeerStore::load(&path, StoreConfig::default());
    assert_eq!(reloaded, store, "round trip is the identity");

    let order = reloaded.reconnect_order();
    // The comparator's invariants hold over the real data…
    for pair in order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (ea, eb) = (
            reloaded.get(a).expect("ordered id is present"),
            reloaded.get(b).expect("ordered id is present"),
        );
        let score = |e: &PeerEntry| {
            (u128::from(e.successes) + 1) as f64
                / (u128::from(e.successes) + u128::from(e.failures) + 2) as f64
        };
        let (sa, sb) = (score(ea), score(eb));
        assert!(
            sa.total_cmp(&sb).is_ge(),
            "order must be score-descending: {sa} before {sb}"
        );
        if sa.total_cmp(&sb).is_eq() {
            assert!(a < b, "equal scores must tie-break by ascending id");
        }
    }
    // …and the concrete sequence is pinned: any change to selection,
    // trace feeding, scoring, or the comparator shows up here.
    let golden: Vec<u128> = order.iter().map(|i| i.value()).collect();
    let expected: Vec<u128> = vec![
        2202313053, 2348455264, 4012134934, 173269056, 542856705, 1222220149, 3625636405,
        2246642677,
    ];
    assert_eq!(golden, expected, "boot reconnection order drifted");
}
