//! A deterministic in-process node runtime with a persistent peer store.
//!
//! The simulation crates route lookups as monolithic walks — one
//! function call per query, the whole route decided inside it. This
//! crate promotes the same substrates to *live nodes* exchanging typed
//! messages ([`Message`]: `Join` / `Lookup` / `Probe` / `Refresh`) over
//! a seeded virtual clock: each lookup advances one arrival per
//! delivered message through the substrate step functions
//! (`peercache_faults::WalkStep`), and every delivery passes through the
//! same [`FaultPlan`](peercache_faults::FaultPlan) the sim walks use.
//! Because every fault decision is a pure hash of
//! `(seed, ids, hop, attempt)`, the runtime's probe sequences — and
//! therefore its metrics — are bit-identical to the monolithic walks'
//! (the `runtime_vs_sim` differential battery enforces it across all
//! four substrates).
//!
//! The paper's frequency-aware auxiliary selection doubles as the
//! admission policy of a [`PeerStore`]: a versioned JSON-lines file with
//! atomic temp-file-then-rename writes, stale-entry expiry by virtual
//! age, per-peer reliability scores fed by
//! [`RouteTrace`](peercache_faults::RouteTrace) outcomes, and
//! prioritized parallel reconnection on startup ordered by score
//! (modeled on maidsafe autonomi's `ant-bootstrap`). The store's file
//! I/O is this workspace's one sanctioned nondeterminism boundary
//! besides `peercache-par` — nothing routing-visible ever reads it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jsonl;
pub mod message;
pub mod runtime;
pub mod store;

pub use message::{Envelope, LookupJob, Message, Tick};
pub use runtime::NodeRuntime;
pub use store::{PeerEntry, PeerStore, StoreConfig, STORE_VERSION};
