//! Typed messages and the virtual-clock envelope ordering.

use peercache_faults::RouteTrace;
use peercache_id::Id;

/// Virtual time, in ticks. The runtime's clock only moves when a
/// message is delivered; nothing ever reads a wall clock.
pub type Tick = u64;

/// One in-flight lookup: the walk state a `Lookup` message carries from
/// arrival to arrival. Each delivery runs exactly one substrate step
/// (`peercache_faults::WalkStep`) against this state.
#[derive(Clone, Debug)]
pub struct LookupJob {
    /// Index of this query in the runtime's submission order.
    pub query: usize,
    /// The node that issued the lookup.
    pub origin: Id,
    /// The key being looked up.
    pub key: Id,
    /// The true owner of `key`, computed once at submission.
    pub true_owner: Id,
    /// The node this message is addressed to (the next arrival).
    pub current: Id,
    /// Everything the walk did so far.
    pub trace: RouteTrace,
}

/// A typed runtime message. Every delivery is mediated by the run's
/// `FaultPlan`: joins of plan-crashed nodes are dropped, and lookup /
/// probe contacts go through the plan's probe channel.
#[derive(Clone, Debug)]
pub enum Message {
    /// A node announces itself at boot; delivery registers it iff it is
    /// substrate-live and not plan-crashed.
    Join {
        /// The joining node.
        node: Id,
    },
    /// One lookup arrival (boxed: the job carries a full trace).
    Lookup(Box<LookupJob>),
    /// A standalone liveness probe (reconnection / maintenance), fed to
    /// the local peer store's reliability scores.
    Probe {
        /// The probing node.
        from: Id,
        /// The probed node.
        to: Id,
    },
    /// Peer-store maintenance at `node`: expire stale entries by
    /// virtual age and enforce the capacity bound.
    Refresh {
        /// The node whose store refreshes.
        node: Id,
    },
}

/// A message scheduled for delivery at a virtual tick. Envelopes order
/// by `(at, seq)` — the sequence number is unique per envelope, so the
/// delivery order is total and replayable regardless of how the
/// runtime's queue breaks ties internally.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Delivery tick.
    pub at: Tick,
    /// Enqueue sequence number (unique, monotone).
    pub seq: u64,
    /// The payload.
    pub message: Message,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Envelope {}

impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(at: Tick, seq: u64) -> Envelope {
        Envelope {
            at,
            seq,
            message: Message::Join { node: Id::new(1) },
        }
    }

    #[test]
    fn envelopes_order_by_tick_then_sequence() {
        assert!(env(0, 1) < env(1, 0));
        assert!(env(1, 0) < env(1, 1));
        assert_eq!(env(2, 3), env(2, 3));
        let mut heap = std::collections::BinaryHeap::new();
        for e in [env(1, 2), env(0, 1), env(1, 1), env(0, 0)] {
            heap.push(std::cmp::Reverse(e));
        }
        let order: Vec<(Tick, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|std::cmp::Reverse(e)| (e.at, e.seq))
            .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 1), (1, 2)]);
    }
}
