//! A minimal, total parser for the peer store's JSON-lines rows.
//!
//! The vendored `serde_json` shim is serialization-only, and the bench
//! crate's report parser reads every number as `f64` — lossy above
//! 2⁵³, which 128-bit peer identifiers routinely exceed. The store
//! therefore carries its own reader for the one shape it writes: a flat
//! JSON object whose values are nonnegative integers, parsed at full
//! `u128` precision.
//!
//! The parser is total by construction — reachable from
//! `PeerStore::load` (an L10 panic-free root), so it never indexes,
//! unwraps, or panics: any malformed byte yields `None` and the caller
//! degrades gracefully.

/// Parse one line of the form `{"key":123,"other":456}` (whitespace
/// tolerant) into its fields in source order. Returns `None` on any
/// deviation: non-object lines, string/float/negative values, escaped
/// keys, duplicate-brace noise, or trailing garbage.
pub(crate) fn parse_flat_u128(line: &str) -> Option<Vec<(String, u128)>> {
    let mut chars = line.chars().peekable();
    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            if chars.next()? != '"' {
                return None;
            }
            let mut key = String::new();
            loop {
                let c = chars.next()?;
                if c == '"' {
                    break;
                }
                // The store's keys are plain identifiers; an escape
                // marks a line this writer never produced.
                if c == '\\' {
                    return None;
                }
                key.push(c);
            }
            skip_ws(&mut chars);
            if chars.next()? != ':' {
                return None;
            }
            skip_ws(&mut chars);
            let mut digits = String::new();
            while let Some(c) = chars.peek().copied() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if digits.is_empty() {
                return None;
            }
            let value: u128 = digits.parse().ok()?;
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => {}
                Some('}') => break,
                _ => return None,
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_none() {
        Some(fields)
    } else {
        None
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\r')) {
        chars.next();
    }
}

/// The value of `key` in parsed `fields`, if present.
pub(crate) fn field(fields: &[(String, u128)], key: &str) -> Option<u128> {
    fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_shape_at_full_precision() {
        let line = format!("{{\"id\":{},\"last_seen\":7}}", u128::MAX);
        let fields = parse_flat_u128(&line).expect("well-formed line");
        assert_eq!(field(&fields, "id"), Some(u128::MAX));
        assert_eq!(field(&fields, "last_seen"), Some(7));
        assert_eq!(field(&fields, "absent"), None);
    }

    #[test]
    fn tolerates_whitespace_and_empty_objects() {
        let fields = parse_flat_u128("  { \"a\" : 1 , \"b\" : 2 }  ").expect("spaced line");
        assert_eq!(fields, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
        assert_eq!(parse_flat_u128("{}"), Some(Vec::new()));
        assert_eq!(parse_flat_u128(" {  } "), Some(Vec::new()));
    }

    #[test]
    fn rejects_everything_else() {
        for bad in [
            "",
            "[1]",
            "{\"a\":}",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":\"x\"}",
            "{\"a\":1",
            "{\"a\":1}}",
            "{\"a\\n\":1}",
            "{\"a\":1}{",
            "{\"a\":340282366920938463463374607431768211456}", // u128::MAX + 1
            "null",
            "{\"a\" 1}",
        ] {
            assert_eq!(parse_flat_u128(bad), None, "accepted: {bad:?}");
        }
    }
}
