//! The persistent peer store: a versioned JSON-lines cache of known
//! peers with reliability scores, virtual-age expiry, and atomic writes.
//!
//! Modeled on maidsafe autonomi's `ant-bootstrap` (SNIPPETS.md #1):
//! writes go to a sibling temp file and `rename` into place, so a crash
//! mid-save leaves either the old file or the new one, never a torn
//! hybrid; loads are *total* — a missing, truncated, or corrupted file
//! degrades to the entries that survived, never a panic
//! (`PeerStore::load` is an L10 panic-free lint root).
//!
//! Reliability is a Laplace-smoothed success rate,
//! `(successes + 1) / (successes + failures + 2)`, compared by integer
//! cross-multiplication — no floating point anywhere, so score order is
//! exact and platform-independent (the workspace's L8 rule banishes raw
//! `f64` comparisons from deterministic crates, this one included).

use std::io;
use std::path::{Path, PathBuf};

use peercache_id::Id;
use serde::Serialize;

use crate::jsonl;
use crate::message::Tick;

/// On-disk format version; bumped on any incompatible row change.
/// Loads reject other versions wholesale (a fresh store) rather than
/// guessing at field meanings.
pub const STORE_VERSION: u64 = 1;

/// Capacity and expiry policy of a [`PeerStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum entries kept by [`PeerStore::expire`]; the lowest-scored
    /// entries are evicted beyond it.
    pub max_peers: usize,
    /// Maximum virtual age (`now - last_seen`) an entry survives
    /// [`PeerStore::expire`].
    pub expiry_age: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_peers: 256,
            expiry_age: 1 << 16,
        }
    }
}

/// One known peer: identity, recency, and reliability counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's overlay identifier.
    pub id: Id,
    /// Virtual tick of the last admission, success, or failure.
    pub last_seen: Tick,
    /// Probes and lookup forwards this peer answered.
    pub successes: u64,
    /// Probes and lookup contacts this peer timed out on.
    pub failures: u64,
}

/// The serialized row shape (identifiers at full `u128` width).
#[derive(Serialize)]
struct EntryRow {
    id: u128,
    last_seen: u64,
    successes: u64,
    failures: u64,
}

#[derive(Serialize)]
struct HeaderRow {
    version: u64,
}

/// Serialize one row (the vendored renderer is infallible; the error
/// arm keeps the upstream `Result` shape without an `expect`).
fn render_row<T: Serialize>(row: &T) -> io::Result<String> {
    serde_json::to_string(row)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Full 128×128→256-bit product as `(hi, lo)` limbs; the pair's
/// lexicographic order is the 256-bit numeric order. The score
/// cross-products below reach 129 bits at saturated `u64` counters
/// (`(2⁶⁴)·(2⁶⁵)`), so a plain `u128` multiply would overflow.
fn wide_mul(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = lh.wrapping_add(hl);
    let mid_carry = u128::from(mid < lh);
    let lo = ll.wrapping_add(mid << 64);
    let lo_carry = u128::from(lo < ll);
    let hi = hh + (mid >> 64) + (mid_carry << 64) + lo_carry;
    (hi, lo)
}

/// Score order: higher Laplace score first, ties broken by ascending
/// id. `(sa+1)/(sa+fa+2) > (sb+1)/(sb+fb+2)` iff
/// `(sa+1)·(sb+fb+2) > (sb+1)·(sa+fa+2)` — cross-multiplied exactly in
/// 256 bits, no floating point (rule L8), no overflow at any counter.
fn score_order(a: &PeerEntry, b: &PeerEntry) -> std::cmp::Ordering {
    let lhs = wide_mul(
        u128::from(a.successes) + 1,
        u128::from(b.successes) + u128::from(b.failures) + 2,
    );
    let rhs = wide_mul(
        u128::from(b.successes) + 1,
        u128::from(a.successes) + u128::from(a.failures) + 2,
    );
    rhs.cmp(&lhs).then(a.id.cmp(&b.id))
}

/// A persistent, reliability-scored peer cache. Entries are kept sorted
/// by id; every operation is deterministic in virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerStore {
    config: StoreConfig,
    entries: Vec<PeerEntry>,
}

impl PeerStore {
    /// An empty store under `config`.
    pub fn new(config: StoreConfig) -> Self {
        PeerStore {
            config,
            entries: Vec::new(),
        }
    }

    /// A store seeded from explicit entries (fixture and property-test
    /// construction): entries are sorted by id, duplicate ids keep the
    /// last occurrence. Capacity is not enforced (see
    /// [`load`](Self::load) — policy applies at the next
    /// [`expire`](Self::expire)).
    pub fn from_entries<I: IntoIterator<Item = PeerEntry>>(
        config: StoreConfig,
        entries: I,
    ) -> Self {
        let mut store = PeerStore::new(config);
        for entry in entries {
            match store.entries.binary_search_by_key(&entry.id, |e| e.id) {
                Ok(pos) => {
                    if let Some(slot) = store.entries.get_mut(pos) {
                        *slot = entry;
                    }
                }
                Err(pos) => store.entries.insert(pos, entry),
            }
        }
        store
    }

    /// The store's capacity/expiry policy.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, sorted by id.
    pub fn entries(&self) -> &[PeerEntry] {
        &self.entries
    }

    /// The entry for `id`, if known.
    pub fn get(&self, id: Id) -> Option<&PeerEntry> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .and_then(|pos| self.entries.get(pos))
    }

    /// Admit `id` (the aux-selection admission path): insert a fresh
    /// entry, or touch `last_seen` if already known. Returns whether a
    /// new entry was inserted. Capacity is enforced lazily by
    /// [`expire`](Self::expire), so admissions never evict mid-run.
    pub fn admit(&mut self, id: Id, now: Tick) -> bool {
        match self.entries.binary_search_by_key(&id, |e| e.id) {
            Ok(pos) => {
                if let Some(entry) = self.entries.get_mut(pos) {
                    entry.last_seen = now;
                }
                false
            }
            Err(pos) => {
                self.entries.insert(
                    pos,
                    PeerEntry {
                        id,
                        last_seen: now,
                        successes: 0,
                        failures: 0,
                    },
                );
                true
            }
        }
    }

    /// [`admit`](Self::admit) a whole selection; returns how many were
    /// newly inserted.
    pub fn admit_all<I: IntoIterator<Item = Id>>(&mut self, ids: I, now: Tick) -> usize {
        ids.into_iter().filter(|&id| self.admit(id, now)).count()
    }

    /// Record a successful contact of `id` (admitting it if unknown).
    pub fn record_success(&mut self, id: Id, now: Tick) {
        self.admit(id, now);
        if let Ok(pos) = self.entries.binary_search_by_key(&id, |e| e.id) {
            if let Some(entry) = self.entries.get_mut(pos) {
                entry.successes = entry.successes.saturating_add(1);
                entry.last_seen = now;
            }
        }
    }

    /// Record a timed-out contact of `id` (admitting it if unknown).
    pub fn record_failure(&mut self, id: Id, now: Tick) {
        self.admit(id, now);
        if let Ok(pos) = self.entries.binary_search_by_key(&id, |e| e.id) {
            if let Some(entry) = self.entries.get_mut(pos) {
                entry.failures = entry.failures.saturating_add(1);
                entry.last_seen = now;
            }
        }
    }

    /// Expire entries older than the configured virtual age, then evict
    /// the lowest-scored entries beyond `max_peers`. Deterministic in
    /// `now`; returns how many entries were dropped.
    pub fn expire(&mut self, now: Tick) -> usize {
        let before = self.entries.len();
        let horizon = self.config.expiry_age;
        self.entries
            .retain(|e| now.saturating_sub(e.last_seen) <= horizon);
        if self.entries.len() > self.config.max_peers {
            let mut ranked = std::mem::take(&mut self.entries);
            ranked.sort_by(score_order);
            ranked.truncate(self.config.max_peers);
            ranked.sort_by_key(|e| e.id);
            self.entries = ranked;
        }
        before - self.entries.len()
    }

    /// The startup reconnection order: reliability score descending,
    /// ties broken by ascending id (pinned by the golden test — a
    /// reshuffle here silently changes every boot sequence).
    pub fn reconnect_order(&self) -> Vec<Id> {
        let mut ranked: Vec<&PeerEntry> = self.entries.iter().collect();
        ranked.sort_by(|a, b| score_order(a, b));
        ranked.into_iter().map(|e| e.id).collect()
    }

    /// Write the store to `path` atomically: serialize every row to a
    /// sibling `<path>.tmp`, then `rename` into place. A crash at any
    /// point leaves the previous file (or none), never a torn write.
    ///
    /// # Errors
    /// Propagates the underlying filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(&render_row(&HeaderRow {
            version: STORE_VERSION,
        })?);
        out.push('\n');
        for entry in &self.entries {
            out.push_str(&render_row(&EntryRow {
                id: entry.id.value(),
                last_seen: entry.last_seen,
                successes: entry.successes,
                failures: entry.failures,
            })?);
            out.push('\n');
        }
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }

    /// Load a store from `path`, *totally*: a missing or unreadable
    /// file, a bad or missing version header, or version drift all
    /// yield a fresh empty store; a malformed row stops the read there,
    /// keeping every entry before it (the crash-recovery contract — a
    /// truncated tail is exactly what an interrupted legacy writer
    /// leaves, and the atomic [`save`](Self::save) makes even that
    /// unreachable for this writer's own files). Never panics: this is
    /// an L10 panic-free lint root.
    ///
    /// Capacity is *not* enforced here — reload is an identity
    /// round-trip of what was saved; policy applies at the next
    /// [`expire`](Self::expire).
    pub fn load(path: &Path, config: StoreConfig) -> PeerStore {
        let mut store = PeerStore::new(config);
        let Ok(text) = std::fs::read_to_string(path) else {
            return store;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return store;
        };
        let Some(fields) = jsonl::parse_flat_u128(header) else {
            return store;
        };
        if jsonl::field(&fields, "version") != Some(u128::from(STORE_VERSION)) {
            return store;
        }
        for line in lines {
            let Some(fields) = jsonl::parse_flat_u128(line) else {
                break;
            };
            let entry = (|| {
                Some(PeerEntry {
                    id: Id::new(jsonl::field(&fields, "id")?),
                    last_seen: u64::try_from(jsonl::field(&fields, "last_seen")?).ok()?,
                    successes: u64::try_from(jsonl::field(&fields, "successes")?).ok()?,
                    failures: u64::try_from(jsonl::field(&fields, "failures")?).ok()?,
                })
            })();
            let Some(entry) = entry else {
                break;
            };
            match store.entries.binary_search_by_key(&entry.id, |e| e.id) {
                Ok(pos) => {
                    if let Some(slot) = store.entries.get_mut(pos) {
                        *slot = entry;
                    }
                }
                Err(pos) => store.entries.insert(pos, entry),
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn wide_mul_is_exact_beyond_u128() {
        assert_eq!(wide_mul(0, u128::MAX), (0, 0));
        assert_eq!(wide_mul(1, u128::MAX), (0, u128::MAX));
        assert_eq!(wide_mul(2, 1 << 127), (1, 0));
        assert_eq!(wide_mul(u128::MAX, u128::MAX), (u128::MAX - 1, 1));
        // The score path's worst case: (2⁶⁴)·(2⁶⁵ + 2) needs 130 bits.
        let (hi, lo) = wide_mul(1 << 64, (1 << 65) + 2);
        assert_eq!((hi, lo), (2, 2 << 64));
        // Saturated counters order without overflow.
        let all = PeerEntry {
            id: id(1),
            last_seen: 0,
            successes: u64::MAX,
            failures: 0,
        };
        let none = PeerEntry {
            id: id(2),
            last_seen: 0,
            successes: 0,
            failures: u64::MAX,
        };
        assert_eq!(score_order(&all, &none), std::cmp::Ordering::Less);
        assert_eq!(score_order(&none, &all), std::cmp::Ordering::Greater);
        assert_eq!(score_order(&all, &all), std::cmp::Ordering::Equal);
    }

    #[test]
    fn admission_is_idempotent_and_sorted() {
        let mut store = PeerStore::new(StoreConfig::default());
        assert!(store.is_empty());
        assert!(store.admit(id(30), 1));
        assert!(store.admit(id(10), 2));
        assert!(!store.admit(id(30), 5));
        assert_eq!(store.len(), 2);
        let ids: Vec<Id> = store.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![id(10), id(30)]);
        assert_eq!(store.get(id(30)).map(|e| e.last_seen), Some(5));
        assert_eq!(store.get(id(99)), None);
        assert_eq!(store.admit_all([id(10), id(40)], 6), 1);
    }

    #[test]
    fn scores_order_by_laplace_rate_then_id() {
        let mut store = PeerStore::new(StoreConfig::default());
        // 2/2 successes → (2+1)/(2+2) = 0.75
        store.record_success(id(5), 1);
        store.record_success(id(5), 2);
        // 1 success 1 failure → 2/4 = 0.5
        store.record_success(id(3), 1);
        store.record_failure(id(3), 2);
        // untouched admission → 1/2 = 0.5, tie with id(3) broken by id
        store.admit(id(2), 1);
        // 2 failures → 1/4 = 0.25
        store.record_failure(id(9), 1);
        store.record_failure(id(9), 2);
        assert_eq!(
            store.reconnect_order(),
            vec![id(5), id(2), id(3), id(9)],
            "score desc, ties id asc"
        );
    }

    #[test]
    fn expiry_and_eviction_are_deterministic() {
        let mut store = PeerStore::new(StoreConfig {
            max_peers: 2,
            expiry_age: 10,
        });
        store.admit(id(1), 0);
        store.record_success(id(2), 8);
        store.record_failure(id(3), 9);
        store.record_success(id(4), 9);
        // id(1) is 11 ticks old at 11 → expired; capacity 2 then evicts
        // the lowest score among {2, 3, 4} — the failure-laden id(3).
        assert_eq!(store.expire(11), 2);
        let ids: Vec<Id> = store.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![id(2), id(4)]);
        assert_eq!(store.config().max_peers, 2);
    }

    #[test]
    fn save_load_round_trips_and_is_atomic() {
        let dir = std::env::temp_dir().join("peercache-store-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("peers.jsonl");
        let mut store = PeerStore::new(StoreConfig::default());
        store.record_success(Id::new(u128::MAX), 3);
        store.record_failure(id(7), 4);
        store.save(&path).expect("save");
        // The temp file never lingers after a successful save.
        assert!(!dir.join("peers.jsonl.tmp").exists());
        let reloaded = PeerStore::load(&path, StoreConfig::default());
        assert_eq!(reloaded, store);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn load_is_total_on_garbage() {
        let dir = std::env::temp_dir().join("peercache-store-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("absent.jsonl");
        assert!(PeerStore::load(&path, StoreConfig::default()).is_empty());
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"version\":999}\n{\"id\":1}\n").expect("write");
        assert!(PeerStore::load(&bad, StoreConfig::default()).is_empty());
        std::fs::write(&bad, "{\"version\":1}\n{\"id\":1,\"last_seen\":0,\"successes\":1,\"failures\":0}\n{\"id\":2,\"last_se").expect("write");
        let partial = PeerStore::load(&bad, StoreConfig::default());
        assert_eq!(partial.len(), 1, "rows before the torn tail survive");
        std::fs::remove_file(&bad).expect("cleanup");
    }
}
