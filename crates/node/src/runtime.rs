//! The deterministic event loop: typed messages over a virtual clock,
//! one substrate step per `Lookup` delivery.
//!
//! # Determinism contract
//!
//! The runtime's delivery order is a pure function of its inputs: the
//! queue orders envelopes by `(tick, sequence)`, the sequence counter
//! is monotone, and the clock only advances to the delivered envelope's
//! tick. Every fault decision — join admission, probe verdicts, stale
//! pointers — comes from the run's [`FaultPlan`], whose decisions are
//! pure hashes with no internal state. Consequence: the per-query
//! [`RouteTrace`]s produced here are **bit-identical** to the
//! monolithic sim walks' for the same overlay, plan, and query list, at
//! any thread count and regardless of how many lookups are in flight —
//! the interleaving cannot leak between queries because all shared
//! state (overlay snapshot, aux tables, plan) is immutable during
//! routing. The `runtime_vs_sim` differential battery enforces this
//! across all four substrates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure, RouteTrace, StepScratch, WalkStep};
use peercache_id::Id;
use peercache_sim::{FaultMetrics, QueryMetrics, SimOverlay};

use crate::message::{Envelope, LookupJob, Message, Tick};
use crate::store::PeerStore;

/// A local node's attached persistent store.
struct LocalStore {
    owner: Id,
    store: PeerStore,
}

/// Resolve the installed auxiliary set of `id` (empty when absent).
fn aux_of(table: &[(Id, Vec<Id>)], id: Id) -> &[Id] {
    table
        .binary_search_by_key(&id, |&(n, _)| n)
        .ok()
        .and_then(|pos| table.get(pos))
        .map_or(&[], |(_, aux)| aux.as_slice())
}

/// The event-loop runtime hosting one overlay snapshot as live nodes.
///
/// Construction enqueues a `Join` for every substrate-live node at
/// tick 0; [`run`](Self::run) delivers messages in `(tick, sequence)`
/// order until the queue drains. Lookups advance one arrival per
/// delivery through the substrate step functions and re-enqueue
/// themselves at `now + 1 + jitter` per forward, so concurrent lookups
/// interleave exactly as real messages would — without changing any
/// per-query outcome (see the module docs).
pub struct NodeRuntime<'net> {
    overlay: &'net SimOverlay,
    plan: FaultPlan,
    aux: Vec<(Id, Vec<Id>)>,
    joined: Vec<Id>,
    queue: BinaryHeap<Reverse<Envelope>>,
    now: Tick,
    seq: u64,
    scratch: StepScratch,
    results: Vec<Option<FaultedRoute>>,
    store: Option<LocalStore>,
    delivered: u64,
}

impl<'net> NodeRuntime<'net> {
    /// A runtime over `overlay` under `plan`, with every substrate-live
    /// node's `Join` already enqueued at tick 0 (delivery registers a
    /// node iff it is live and not plan-crashed — a crashed node's
    /// lookups fail `OriginDown`, exactly as the sim walks fail them).
    pub fn new(overlay: &'net SimOverlay, plan: FaultPlan) -> Self {
        let mut runtime = NodeRuntime {
            overlay,
            plan,
            aux: Vec::new(),
            joined: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            scratch: StepScratch::new(),
            results: Vec::new(),
            store: None,
            delivered: 0,
        };
        for node in overlay.live_ids() {
            runtime.push(0, Message::Join { node });
        }
        runtime
    }

    /// Install per-node auxiliary sets (the aware or oblivious
    /// selection, in any order). Lookup steps resolve cached pointers
    /// from this table exactly as the sim's side-table passes do.
    pub fn install_aux(&mut self, table: Vec<(Id, Vec<Id>)>) {
        self.aux = table;
        self.aux.sort_by_key(|&(n, _)| n);
    }

    /// Attach a persistent peer store to `owner`. The owner's installed
    /// auxiliary selection is admitted immediately — the paper's aware
    /// selection acting as the cache-admission policy — and from then
    /// on the store's reliability scores are fed by every RouteTrace
    /// outcome observed at `owner` (forwards it answers, contacts that
    /// time out) plus standalone `Probe` verdicts.
    pub fn attach_store(&mut self, owner: Id, mut store: PeerStore) {
        let selection: Vec<Id> = aux_of(&self.aux, owner).to_vec();
        store.admit_all(selection, self.now);
        self.store = Some(LocalStore { owner, store });
    }

    /// The attached store and its owner, if any.
    pub fn store(&self) -> Option<(Id, &PeerStore)> {
        self.store.as_ref().map(|l| (l.owner, &l.store))
    }

    /// Detach and return the store (e.g. to save it at shutdown).
    pub fn detach_store(&mut self) -> Option<(Id, PeerStore)> {
        self.store.take().map(|l| (l.owner, l.store))
    }

    /// Submit one lookup; returns its query index (submission order).
    /// The first arrival is scheduled at the current tick; a key with
    /// no owner (empty overlay) or an unjoined origin resolves to
    /// `OriginDown`, mirroring the sim's origin checks.
    pub fn submit(&mut self, origin: Id, key: Id) -> usize {
        let query = self.results.len();
        self.results.push(None);
        match self.overlay.true_owner(key) {
            None => {
                if let Some(slot) = self.results.last_mut() {
                    *slot = Some(FaultedRoute::origin_down(origin));
                }
            }
            Some(true_owner) => {
                self.push(
                    self.now,
                    Message::Lookup(Box::new(LookupJob {
                        query,
                        origin,
                        key,
                        true_owner,
                        current: origin,
                        trace: RouteTrace::start(origin),
                    })),
                );
            }
        }
        query
    }

    /// Schedule a standalone liveness probe (store maintenance).
    pub fn schedule_probe(&mut self, from: Id, to: Id, at: Tick) {
        self.push(at.max(self.now), Message::Probe { from, to });
    }

    /// Schedule a peer-store refresh (expiry + capacity enforcement).
    pub fn schedule_refresh(&mut self, node: Id, at: Tick) {
        self.push(at.max(self.now), Message::Refresh { node });
    }

    /// Deliver messages in `(tick, sequence)` order until the queue is
    /// empty. Safe to call repeatedly: submissions made after a run are
    /// processed by the next.
    pub fn run(&mut self) {
        while let Some(Reverse(envelope)) = self.queue.pop() {
            self.now = envelope.at;
            self.delivered = self.delivered.saturating_add(1);
            match envelope.message {
                Message::Join { node } => self.deliver_join(node),
                Message::Lookup(job) => self.deliver_lookup(*job),
                Message::Probe { from, to } => self.deliver_probe(from, to),
                Message::Refresh { node } => self.deliver_refresh(node),
            }
        }
    }

    /// Prioritized parallel reconnection at startup: probe every stored
    /// peer in reliability-score order (`PeerStore::reconnect_order`),
    /// fanning the probes out over the worker pool — each verdict is a
    /// pure plan hash, so the fan-out is bit-identical at any thread
    /// count — then apply the outcomes to the store serially in
    /// priority order. Returns the successfully reconnected peers,
    /// highest score first.
    pub fn reconnect(&mut self) -> Vec<Id> {
        let Some(local) = self.store.as_ref() else {
            return Vec::new();
        };
        let owner = local.owner;
        let order = local.store.reconnect_order();
        let plan = &self.plan;
        let overlay = self.overlay;
        let verdicts = peercache_par::par_map(&order, |_, &peer| {
            let mut trace = RouteTrace::start(owner);
            plan.probe(owner, peer, 0, overlay.is_live(peer), &mut trace)
        });
        let now = self.now;
        let mut connected = Vec::new();
        if let Some(local) = self.store.as_mut() {
            for (&peer, &ok) in order.iter().zip(verdicts.iter()) {
                if ok {
                    local.store.record_success(peer, now);
                    connected.push(peer);
                } else {
                    local.store.record_failure(peer, now);
                }
            }
        }
        connected
    }

    /// The virtual clock (tick of the last delivery).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Registered (live, non-crashed) nodes, sorted by id.
    pub fn joined(&self) -> &[Id] {
        &self.joined
    }

    /// The completed route of query `index`, if it finished.
    pub fn route(&self, index: usize) -> Option<&FaultedRoute> {
        self.results.get(index).and_then(Option::as_ref)
    }

    /// Fold every completed route into the sim's [`QueryMetrics`] shape
    /// exactly as `run_stable`'s measurement passes do: success, hops,
    /// and timed-out probes per query (an `OriginDown` route counts as
    /// a zero-hop failure, matching the fault-free driver's handling of
    /// dead origins).
    pub fn query_metrics(&self) -> QueryMetrics {
        let mut metrics = QueryMetrics::default();
        for route in self.results.iter().flatten() {
            metrics.record(route.is_success(), route.trace.hops, route.trace.timeouts);
        }
        metrics
    }

    /// Fold every completed route into the sim's [`FaultMetrics`] shape
    /// exactly as `run_stable_faulted` does: `OriginDown` routes count
    /// via `record_origin_down`, everything else via `record`.
    pub fn fault_metrics(&self) -> FaultMetrics {
        let mut metrics = FaultMetrics::default();
        for route in self.results.iter().flatten() {
            if matches!(route.outcome, Err(LookupFailure::OriginDown(_))) {
                metrics.record_origin_down();
            } else {
                metrics.record(route);
            }
        }
        metrics
    }

    fn push(&mut self, at: Tick, message: Message) {
        let envelope = Envelope {
            at,
            seq: self.seq,
            message,
        };
        self.seq = self.seq.saturating_add(1);
        self.queue.push(Reverse(envelope));
    }

    fn deliver_join(&mut self, node: Id) {
        if self.overlay.is_live(node) && !self.plan.node_crashed(node) {
            if let Err(pos) = self.joined.binary_search(&node) {
                self.joined.insert(pos, node);
            }
        }
    }

    fn deliver_lookup(&mut self, mut job: LookupJob) {
        // Origin checks, once, at the first arrival: an unjoined origin
        // (substrate-dead or plan-crashed) fails OriginDown — the union
        // of the sim walks' NotPresent and node_crashed origin arms.
        if job.trace.hops == 0
            && job.current == job.origin
            && self.joined.binary_search(&job.origin).is_err()
        {
            self.finish(job.query, FaultedRoute::origin_down(job.origin));
            return;
        }
        let dead_before = job.trace.dead_probed.len();
        let delay_before = job.trace.delay_ticks;
        let aux = &self.aux;
        let step = self.overlay.query_step_faults(
            job.current,
            job.key,
            job.true_owner,
            |id| aux_of(aux, id),
            &self.plan,
            &mut job.trace,
            &mut self.scratch,
        );
        // Feed the local store from this arrival's RouteTrace delta:
        // contacts the owner saw time out, and the forward it answered.
        if let Some(local) = self.store.as_mut() {
            if local.owner == job.current {
                let mut failed: Vec<Id> = Vec::new();
                for &(prober, target) in job.trace.dead_probed.iter().skip(dead_before) {
                    if prober == local.owner {
                        failed.push(target);
                    }
                }
                for target in failed {
                    local.store.record_failure(target, self.now);
                }
                if let WalkStep::Forward(next) = step {
                    local.store.record_success(next, self.now);
                }
            }
        }
        match step {
            WalkStep::Forward(next) => {
                job.trace.hops += 1;
                job.trace.path.push(next);
                job.current = next;
                // One tick of transit per hop, plus whatever backoff and
                // jitter the plan charged during this arrival's probes.
                let transit = 1 + job.trace.delay_ticks.saturating_sub(delay_before);
                let at = self.now.saturating_add(transit);
                self.push(at, Message::Lookup(Box::new(job)));
            }
            WalkStep::Done(outcome) => {
                self.finish(
                    job.query,
                    FaultedRoute {
                        outcome,
                        trace: job.trace,
                    },
                );
            }
        }
    }

    fn deliver_probe(&mut self, from: Id, to: Id) {
        let mut trace = RouteTrace::start(from);
        let ok = self
            .plan
            .probe(from, to, 0, self.overlay.is_live(to), &mut trace);
        if let Some(local) = self.store.as_mut() {
            if local.owner == from {
                if ok {
                    local.store.record_success(to, self.now);
                } else {
                    local.store.record_failure(to, self.now);
                }
            }
        }
    }

    fn deliver_refresh(&mut self, node: Id) {
        if let Some(local) = self.store.as_mut() {
            if local.owner == node {
                local.store.expire(self.now);
            }
        }
    }

    fn finish(&mut self, query: usize, route: FaultedRoute) {
        if let Some(slot) = self.results.get_mut(query) {
            *slot = Some(route);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_id::IdSpace;
    use peercache_sim::OverlayKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_overlay() -> SimOverlay {
        let space = IdSpace::new(16).expect("valid width");
        let ids: Vec<Id> = (0..24u128).map(|i| Id::new(i * 2048 + 11)).collect();
        let mut rng = StdRng::seed_from_u64(9);
        SimOverlay::build(OverlayKind::Chord, space, &ids, &mut rng)
    }

    #[test]
    fn transparent_runtime_matches_the_monolithic_walk_per_query() {
        let overlay = tiny_overlay();
        let plan = FaultPlan::transparent(5);
        let mut runtime = NodeRuntime::new(&overlay, plan.clone());
        let origins = overlay.live_ids();
        let keys: Vec<Id> = origins.iter().rev().copied().collect();
        let mut expected = Vec::new();
        for (&origin, &key) in origins.iter().zip(&keys) {
            runtime.submit(origin, key);
            expected.push(overlay.query_with_aux_faults(origin, key, |_| &[], &plan));
        }
        runtime.run();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(runtime.route(i), Some(want), "query {i}");
        }
        assert_eq!(runtime.joined().len(), origins.len());
        assert!(runtime.delivered() > 0);
        assert!(runtime.now() > 0 || expected.iter().all(|r| r.trace.hops == 0));
    }

    #[test]
    fn unjoined_origin_fails_origin_down() {
        let overlay = tiny_overlay();
        let mut runtime = NodeRuntime::new(&overlay, FaultPlan::transparent(5));
        let ghost = Id::new(1); // not a member
        let key = overlay.live_ids().first().copied().expect("non-empty");
        let q = runtime.submit(ghost, key);
        runtime.run();
        let route = runtime.route(q).expect("completed");
        assert_eq!(route.outcome, Err(LookupFailure::OriginDown(ghost)));
        let metrics = runtime.fault_metrics();
        assert_eq!(metrics.origin_down, 1);
    }

    #[test]
    fn store_is_fed_by_lookup_outcomes_and_probes() {
        let overlay = tiny_overlay();
        let origins = overlay.live_ids();
        let origin = origins.first().copied().expect("non-empty");
        let far = origins.last().copied().expect("non-empty");
        let mut runtime = NodeRuntime::new(&overlay, FaultPlan::transparent(5));
        runtime.attach_store(origin, PeerStore::new(crate::store::StoreConfig::default()));
        runtime.submit(origin, far);
        runtime.schedule_probe(origin, far, 0);
        runtime.schedule_refresh(origin, 1000);
        runtime.run();
        let (owner, store) = runtime.store().expect("attached");
        assert_eq!(owner, origin);
        // The probe succeeded under a transparent plan, so `far` is
        // known with one success; the lookup's first forward added its
        // next hop too (unless origin == owner of far's key).
        assert!(store.get(far).is_some_and(|e| e.successes >= 1));
        let reconnected = runtime.reconnect();
        assert!(reconnected.contains(&far));
        let (_, store) = runtime.detach_store().expect("attached");
        assert!(store.get(far).is_some_and(|e| e.successes >= 2));
    }
}
