//! Property tests: the streaming estimators against exact ground truth.

use peercache_freq::{ExactCounter, FrequencyEstimator, SpaceSaving};
use peercache_id::Id;
use proptest::prelude::*;

fn stream() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so collisions (and evictions) actually happen.
    proptest::collection::vec(0u8..32, 1..400)
}

proptest! {
    #[test]
    fn space_saving_never_underestimates_monitored(s in stream(), cap in 1usize..16) {
        let mut exact = ExactCounter::new();
        let mut ss = SpaceSaving::new(cap);
        for &x in &s {
            exact.observe(Id::new(u128::from(x)));
            ss.observe(Id::new(u128::from(x)));
        }
        for x in 0u8..32 {
            let peer = Id::new(u128::from(x));
            let est = ss.estimate(peer);
            if est > 0 {
                prop_assert!(est >= exact.estimate(peer),
                    "peer {x}: est {est} < true {}", exact.estimate(peer));
            }
        }
    }

    #[test]
    fn space_saving_overestimate_bounded_by_n_over_m(s in stream(), cap in 1usize..16) {
        let mut exact = ExactCounter::new();
        let mut ss = SpaceSaving::new(cap);
        for &x in &s {
            exact.observe(Id::new(u128::from(x)));
            ss.observe(Id::new(u128::from(x)));
        }
        let bound = s.len() as u64 / cap as u64;
        for x in 0u8..32 {
            let peer = Id::new(u128::from(x));
            if ss.estimate(peer) > 0 {
                let over = ss.estimate(peer) - exact.estimate(peer);
                prop_assert!(over <= bound, "peer {x}: over {over} > N/m {bound}");
                prop_assert!(ss.over_estimation(peer) >= over,
                    "reported over-estimation must bound the actual error");
            }
        }
    }

    #[test]
    fn space_saving_monitors_all_heavy_hitters(s in stream(), cap in 1usize..16) {
        let mut exact = ExactCounter::new();
        let mut ss = SpaceSaving::new(cap);
        for &x in &s {
            exact.observe(Id::new(u128::from(x)));
            ss.observe(Id::new(u128::from(x)));
        }
        let threshold = s.len() as u64 / cap as u64;
        for x in 0u8..32 {
            let peer = Id::new(u128::from(x));
            if exact.estimate(peer) > threshold {
                prop_assert!(ss.estimate(peer) > 0,
                    "heavy hitter {x} (count {}) evicted", exact.estimate(peer));
            }
        }
    }

    #[test]
    fn space_saving_total_counts_conserved(s in stream(), cap in 1usize..16) {
        // Sum of (count − over) over monitored ≤ N = sum of counts' lower
        // bounds; and monitored set never exceeds capacity.
        let mut ss = SpaceSaving::new(cap);
        for &x in &s {
            ss.observe(Id::new(u128::from(x)));
        }
        prop_assert!(ss.monitored() <= cap);
        prop_assert_eq!(ss.observations(), s.len() as u64);
        let guaranteed: u64 = (0u8..32)
            .map(|x| ss.guaranteed_count(Id::new(u128::from(x))))
            .sum();
        prop_assert!(guaranteed <= s.len() as u64);
    }

    #[test]
    fn exact_counter_matches_naive(s in stream()) {
        let mut exact = ExactCounter::new();
        for &x in &s {
            exact.observe(Id::new(u128::from(x)));
        }
        for x in 0u8..32 {
            let naive = s.iter().filter(|&&y| y == x).count() as u64;
            prop_assert_eq!(exact.estimate(Id::new(u128::from(x))), naive);
        }
        let snap = exact.snapshot();
        prop_assert_eq!(snap.total_weight(), s.len() as f64);
    }

    #[test]
    fn snapshot_top_n_is_heaviest_subset(s in stream(), n in 1usize..8) {
        let mut exact = ExactCounter::new();
        for &x in &s {
            exact.observe(Id::new(u128::from(x)));
        }
        let full = exact.snapshot();
        let top = exact.snapshot().top_n(n);
        prop_assert!(top.len() <= n);
        // Every kept weight ≥ every dropped weight.
        let min_kept = top
            .entries()
            .iter()
            .map(|e| e.weight)
            .fold(f64::INFINITY, f64::min);
        for e in full.entries() {
            if top.weight_of(e.peer) == 0.0 {
                prop_assert!(e.weight <= min_kept);
            }
        }
    }
}
