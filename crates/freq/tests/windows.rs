//! Property tests for the time-based estimators: the sliding window
//! against an exact trailing-window count, and the decayed counter's
//! ordering guarantees.

use peercache_freq::{DecayingCounter, SlidingWindowCounter};
use peercache_id::Id;
use proptest::prelude::*;

/// (peer, inter-arrival gap ×0.1s) event streams with monotone time.
fn stream() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..30), 1..200)
}

proptest! {
    #[test]
    fn sliding_window_bounded_by_exact_counts(s in stream(), buckets in 1usize..8) {
        let window = 10.0;
        let mut counter = SlidingWindowCounter::new(window, buckets);
        let mut events: Vec<(f64, u8)> = Vec::new();
        let mut t = 0.0;
        for &(peer, gap) in &s {
            t += f64::from(gap) * 0.1;
            counter.observe_at(Id::new(u128::from(peer)), t);
            events.push((t, peer));
        }
        // Bucketing only UNDERCOUNTS: coverage is (lo, t] for some lo in
        // (t − window, t − window + slack], where slack is one sub-window.
        // Bound with small float margins around those endpoints.
        let slack = window / buckets as f64;
        let eps = 0.05;
        for peer in 0u8..8 {
            let lower = events
                .iter()
                .filter(|&&(et, ep)| ep == peer && et > t - window + slack + eps && et <= t)
                .count() as u64;
            let upper = events
                .iter()
                .filter(|&&(et, ep)| ep == peer && et > t - window - eps && et <= t)
                .count() as u64;
            let got = counter.count_at(Id::new(u128::from(peer)), t);
            prop_assert!(
                got >= lower && got <= upper,
                "peer {peer}: got {got}, bounds [{lower}, {upper}]"
            );
        }
    }

    #[test]
    fn sliding_window_total_never_exceeds_observations(s in stream(), buckets in 1usize..8) {
        let mut counter = SlidingWindowCounter::new(5.0, buckets);
        let mut t = 0.0;
        for &(peer, gap) in &s {
            t += f64::from(gap) * 0.1;
            counter.observe_at(Id::new(u128::from(peer)), t);
        }
        let snap = counter.snapshot_at(t);
        prop_assert!(snap.total_weight() <= s.len() as f64);
        prop_assert_eq!(counter.observations(), s.len() as u64);
    }

    #[test]
    fn decay_preserves_count_order_at_equal_times(s in stream()) {
        // If two peers' accesses happen at identical times, the one with
        // more accesses must end up with more decayed weight.
        let mut decayed = DecayingCounter::new(7.0);
        let mut counts = [0u64; 8];
        let mut t = 0.0;
        for &(peer, gap) in &s {
            t += f64::from(gap) * 0.1;
            // Mirror every event onto peer 0 as well, so peer 0's count
            // dominates everyone at identical observation times.
            decayed.observe_at(Id::new(u128::from(peer)), t);
            counts[peer as usize] += 1;
            decayed.observe_at(Id::new(0), t);
            counts[0] += 1;
        }
        let w0 = decayed.weight_at(Id::new(0), t);
        for peer in 1u8..8 {
            let w = decayed.weight_at(Id::new(u128::from(peer)), t);
            prop_assert!(
                w0 >= w - 1e-9,
                "peer 0 (count {}) must outweigh peer {peer} (count {})",
                counts[0],
                counts[peer as usize]
            );
        }
    }

    #[test]
    fn decayed_weight_never_exceeds_raw_count(s in stream()) {
        let mut decayed = DecayingCounter::new(3.0);
        let mut counts = [0u64; 8];
        let mut t = 0.0;
        for &(peer, gap) in &s {
            t += f64::from(gap) * 0.1;
            decayed.observe_at(Id::new(u128::from(peer)), t);
            counts[peer as usize] += 1;
        }
        for peer in 0u8..8 {
            let w = decayed.weight_at(Id::new(u128::from(peer)), t);
            prop_assert!(
                w <= counts[peer as usize] as f64 + 1e-9,
                "decay can only shrink: {w} vs {}",
                counts[peer as usize]
            );
        }
    }

    #[test]
    fn decay_is_time_consistent(s in stream(), dt in 0.0f64..50.0) {
        // Querying later never increases any weight.
        let mut decayed = DecayingCounter::new(5.0);
        let mut t = 0.0;
        for &(peer, gap) in &s {
            t += f64::from(gap) * 0.1;
            decayed.observe_at(Id::new(u128::from(peer)), t);
        }
        for peer in 0u8..8 {
            let now = decayed.weight_at(Id::new(u128::from(peer)), t);
            let later = decayed.weight_at(Id::new(u128::from(peer)), t + dt);
            prop_assert!(later <= now + 1e-12);
        }
    }
}
