use std::collections::{BTreeMap, BTreeSet, HashMap};

use peercache_id::Id;

use crate::{FrequencyEstimator, FrequencySnapshot};

#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Estimated count (never under-estimates the true count).
    count: u64,
    /// Maximum possible over-estimation: the evicted count this slot
    /// inherited when its peer was admitted.
    over: u64,
}

/// The Space-Saving top-`n` stream summary (Metwally, Agrawal, El Abbadi).
///
/// The paper suggests tracking only the top-`n` frequent peers "using
/// standard streaming algorithms \[3\]" when storage is limited (§III-2).
/// Space-Saving monitors at most `capacity` peers; on observing an
/// unmonitored peer while full, the minimum-count entry is evicted and its
/// count inherited.
///
/// Guarantees, for a stream of `N` observations:
///
/// * a monitored peer's [`estimate`](FrequencyEstimator::estimate) never
///   under-estimates its true count;
/// * the over-estimation of any entry is at most `⌊N / capacity⌋`;
/// * every peer whose true count exceeds `⌊N / capacity⌋` is monitored.
///
/// Count buckets are kept in a `BTreeMap`, giving `O(log C)` per update
/// (`C` = number of distinct count values), with deterministic eviction
/// (smallest id within the minimum-count bucket).
///
/// ```
/// use peercache_freq::{FrequencyEstimator, SpaceSaving};
/// use peercache_id::Id;
///
/// let mut top = SpaceSaving::new(2);
/// for _ in 0..10 { top.observe(Id::new(7)); }
/// top.observe(Id::new(1));
/// top.observe(Id::new(2)); // evicts 1 (min count), inherits its count
/// assert_eq!(top.estimate(Id::new(7)), 10);
/// assert_eq!(top.estimate(Id::new(1)), 0);
/// assert_eq!(top.estimate(Id::new(2)), 2);
/// assert_eq!(top.guaranteed_count(Id::new(2)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: HashMap<Id, Slot>,
    /// count → monitored peers at that count. Invariant: the union of all
    /// bucket sets is exactly `entries.keys()`.
    buckets: BTreeMap<u64, BTreeSet<Id>>,
    total: u64,
}

impl SpaceSaving {
    /// Create a summary monitoring at most `capacity` peers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a summary with no slots is a
    /// programming error, not a runtime condition.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity,
            entries: HashMap::with_capacity(capacity),
            buckets: BTreeMap::new(),
            total: 0,
        }
    }

    /// The maximum number of peers monitored simultaneously.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of peers currently monitored.
    pub fn monitored(&self) -> usize {
        self.entries.len()
    }

    /// Lower bound on the true count of `peer`: `estimate − over`.
    /// Zero for unmonitored peers.
    pub fn guaranteed_count(&self, peer: Id) -> u64 {
        self.entries
            .get(&peer)
            .map(|s| s.count - s.over)
            .unwrap_or(0)
    }

    /// The maximum over-estimation currently possible for `peer`.
    pub fn over_estimation(&self, peer: Id) -> u64 {
        self.entries.get(&peer).map(|s| s.over).unwrap_or(0)
    }

    /// The smallest monitored count (the eviction threshold), zero when
    /// not yet full.
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity {
            0
        } else {
            self.buckets
                .keys()
                .next()
                .copied()
                .expect("full summary has buckets")
        }
    }

    fn bucket_remove(&mut self, count: u64, peer: Id) {
        let bucket = self
            .buckets
            .get_mut(&count)
            .expect("slot count always has a bucket");
        bucket.remove(&peer);
        if bucket.is_empty() {
            self.buckets.remove(&count);
        }
    }

    fn bucket_insert(&mut self, count: u64, peer: Id) {
        self.buckets.entry(count).or_default().insert(peer);
    }
}

impl FrequencyEstimator for SpaceSaving {
    fn observe(&mut self, peer: Id) {
        self.total += 1;
        if let Some(slot) = self.entries.get(&peer).copied() {
            self.bucket_remove(slot.count, peer);
            self.bucket_insert(slot.count + 1, peer);
            self.entries.get_mut(&peer).expect("checked above").count += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(peer, Slot { count: 1, over: 0 });
            self.bucket_insert(1, peer);
            return;
        }
        // Evict the minimum-count entry (deterministically: the smallest id
        // in the minimum bucket) and inherit its count.
        let (&min, bucket) = self.buckets.iter_mut().next().expect("summary is full");
        let victim = *bucket.iter().next().expect("buckets are non-empty");
        self.bucket_remove(min, victim);
        self.entries.remove(&victim);
        self.entries.insert(
            peer,
            Slot {
                count: min + 1,
                over: min,
            },
        );
        self.bucket_insert(min + 1, peer);
    }

    fn estimate(&self, peer: Id) -> u64 {
        self.entries.get(&peer).map(|s| s.count).unwrap_or(0)
    }

    fn observations(&self) -> u64 {
        self.total
    }

    fn snapshot(&self) -> FrequencySnapshot {
        FrequencySnapshot::from_counts(self.entries.iter().map(|(&p, s)| (p, s.count)))
    }

    fn snapshot_into(&self, out: &mut FrequencySnapshot) {
        // Monitored peers are distinct, so the refill sums at most one
        // entry per peer — bit-identical to `snapshot()`.
        out.refill_from_counts(self.entries.iter().map(|(&p, s)| (p, s.count)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }

    #[test]
    fn exact_until_capacity() {
        let mut ss = SpaceSaving::new(3);
        for _ in 0..4 {
            ss.observe(id(1));
        }
        ss.observe(id(2));
        ss.observe(id(3));
        assert_eq!(ss.estimate(id(1)), 4);
        assert_eq!(ss.estimate(id(2)), 1);
        assert_eq!(ss.over_estimation(id(1)), 0);
        assert_eq!(ss.monitored(), 3);
        assert_eq!(ss.observations(), 6);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(id(1));
        ss.observe(id(1));
        ss.observe(id(2)); // full: {1:2, 2:1}
        ss.observe(id(3)); // evicts 2 (min count 1) → 3 has count 2, over 1
        assert_eq!(ss.estimate(id(2)), 0);
        assert_eq!(ss.estimate(id(3)), 2);
        assert_eq!(ss.over_estimation(id(3)), 1);
        assert_eq!(ss.guaranteed_count(id(3)), 1);
        assert_eq!(ss.guaranteed_count(id(1)), 2);
    }

    #[test]
    fn eviction_is_deterministic_smallest_id() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(id(5));
        ss.observe(id(9)); // both count 1
        ss.observe(id(7)); // evicts id 5 (smallest in min bucket)
        assert_eq!(ss.estimate(id(5)), 0);
        assert_eq!(ss.estimate(id(9)), 1);
        assert_eq!(ss.estimate(id(7)), 2);
    }

    #[test]
    fn min_count_zero_until_full() {
        let mut ss = SpaceSaving::new(3);
        assert_eq!(ss.min_count(), 0);
        ss.observe(id(1));
        assert_eq!(ss.min_count(), 0);
        ss.observe(id(2));
        ss.observe(id(3));
        assert_eq!(ss.min_count(), 1);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        // One peer with 40% of a stream of 1000, 600 singleton ids; with
        // capacity 20, the heavy hitter must be monitored with a tight
        // estimate (true ≤ est ≤ true + N/m).
        let mut ss = SpaceSaving::new(20);
        let n = 1000u64;
        for i in 0..n {
            if i % 5 < 2 {
                ss.observe(id(424242));
            } else {
                ss.observe(id(u128::from(i)));
            }
        }
        let est = ss.estimate(id(424242));
        let true_count = 400;
        assert!(est >= true_count, "no under-estimation: {est}");
        assert!(est <= true_count + n / 20, "over-estimation bounded: {est}");
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut ss = SpaceSaving::new(4);
        for i in 0..100u128 {
            ss.observe(id(i % 7));
        }
        let mut out = FrequencySnapshot::default();
        ss.snapshot_into(&mut out);
        assert_eq!(out, ss.snapshot());
    }

    #[test]
    fn snapshot_has_at_most_capacity_entries() {
        let mut ss = SpaceSaving::new(4);
        for i in 0..100u128 {
            ss.observe(id(i));
        }
        assert_eq!(ss.snapshot().len(), 4);
        assert_eq!(ss.monitored(), 4);
    }
}
