use std::collections::HashMap;

use peercache_id::Id;

use crate::FrequencySnapshot;

/// Exponentially decayed access weights.
///
/// Popularities drift over time; §IV-C motivates keeping the auxiliary set
/// current as "node popularities change". A decayed counter weights an
/// access observed `Δt` ago by `2^(−Δt / half_life)`, so the optimiser
/// favours *recent* popularity without a hard window cutoff.
///
/// Decay is applied lazily: each entry stores the weight as of its own last
/// update. [`DecayingCounter::compact`] drops entries whose decayed weight
/// fell below a threshold, bounding memory under churning access sets.
#[derive(Clone, Debug)]
pub struct DecayingCounter {
    half_life: f64,
    entries: HashMap<Id, DecayEntry>,
    observations: u64,
}

#[derive(Clone, Copy, Debug)]
struct DecayEntry {
    weight: f64,
    last_update: f64,
}

impl DecayingCounter {
    /// Create a counter with the given half-life (same time unit as the
    /// timestamps passed to [`observe_at`](DecayingCounter::observe_at)).
    ///
    /// # Panics
    /// Panics if `half_life` is not strictly positive and finite.
    pub fn new(half_life: f64) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half-life must be positive and finite"
        );
        DecayingCounter {
            half_life,
            entries: HashMap::new(),
            observations: 0,
        }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Total raw (undecayed) observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of peers currently tracked (including near-zero weights not
    /// yet compacted away).
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    fn decay_factor(&self, from: f64, to: f64) -> f64 {
        debug_assert!(to >= from, "time must be monotone per entry");
        (-(to - from) / self.half_life * std::f64::consts::LN_2).exp()
    }

    /// Record one access to `peer` at time `now`.
    ///
    /// Timestamps must be non-decreasing per peer; an older timestamp than
    /// the peer's last update is clamped to the last update (the weight is
    /// simply incremented without decay).
    pub fn observe_at(&mut self, peer: Id, now: f64) {
        self.observations += 1;
        let half_life = self.half_life;
        let entry = self.entries.entry(peer).or_insert(DecayEntry {
            weight: 0.0,
            last_update: now,
        });
        if now > entry.last_update {
            let dt = now - entry.last_update;
            entry.weight *= (-dt / half_life * std::f64::consts::LN_2).exp();
            entry.last_update = now;
        }
        entry.weight += 1.0;
    }

    /// The decayed weight of `peer` as of time `now` (zero when untracked).
    pub fn weight_at(&self, peer: Id, now: f64) -> f64 {
        match self.entries.get(&peer) {
            Some(e) if now >= e.last_update => e.weight * self.decay_factor(e.last_update, now),
            Some(e) => e.weight,
            None => 0.0,
        }
    }

    /// Drop entries whose decayed weight at `now` is below `threshold`.
    /// Returns the number of entries removed.
    pub fn compact(&mut self, now: f64, threshold: f64) -> usize {
        let before = self.entries.len();
        let half_life = self.half_life;
        self.entries.retain(|_, e| {
            let w = if now >= e.last_update {
                e.weight * (-(now - e.last_update) / half_life * std::f64::consts::LN_2).exp()
            } else {
                e.weight
            };
            w >= threshold
        });
        before - self.entries.len()
    }

    /// Freeze the decayed weights as of `now` into a snapshot.
    pub fn snapshot_at(&self, now: f64) -> FrequencySnapshot {
        FrequencySnapshot::from_pairs(
            self.entries
                .iter()
                .map(|(&p, _)| (p, self.weight_at(p, now).max(0.0))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        let _ = DecayingCounter::new(0.0);
    }

    #[test]
    fn weight_halves_after_half_life() {
        let mut c = DecayingCounter::new(10.0);
        c.observe_at(id(1), 0.0);
        let w = c.weight_at(id(1), 10.0);
        assert!((w - 0.5).abs() < 1e-12, "got {w}");
    }

    #[test]
    fn repeated_observations_accumulate_with_decay() {
        let mut c = DecayingCounter::new(10.0);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(1), 10.0); // old weight halves, then +1 → 1.5
        let w = c.weight_at(id(1), 10.0);
        assert!((w - 1.5).abs() < 1e-12, "got {w}");
    }

    #[test]
    fn untracked_peer_has_zero_weight() {
        let c = DecayingCounter::new(5.0);
        assert_eq!(c.weight_at(id(9), 100.0), 0.0);
    }

    #[test]
    fn recent_beats_stale_of_equal_raw_count() {
        let mut c = DecayingCounter::new(10.0);
        for t in 0..5 {
            c.observe_at(id(1), f64::from(t)); // early burst
        }
        for t in 95..100 {
            c.observe_at(id(2), f64::from(t)); // recent burst
        }
        assert!(c.weight_at(id(2), 100.0) > c.weight_at(id(1), 100.0));
        assert_eq!(c.observations(), 10);
    }

    #[test]
    fn compact_drops_faded_entries() {
        let mut c = DecayingCounter::new(1.0);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(2), 100.0);
        assert_eq!(c.tracked(), 2);
        let removed = c.compact(100.0, 1e-6);
        assert_eq!(removed, 1);
        assert_eq!(c.tracked(), 1);
        assert!(c.weight_at(id(2), 100.0) > 0.9);
    }

    #[test]
    fn snapshot_at_applies_decay() {
        let mut c = DecayingCounter::new(10.0);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(2), 10.0);
        let s = c.snapshot_at(10.0);
        assert!((s.weight_of(id(1)) - 0.5).abs() < 1e-12);
        assert!((s.weight_of(id(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_timestamp_is_clamped() {
        let mut c = DecayingCounter::new(10.0);
        c.observe_at(id(1), 100.0);
        c.observe_at(id(1), 50.0); // clamped: no decay applied, weight += 1
        let w = c.weight_at(id(1), 100.0);
        assert!((w - 2.0).abs() < 1e-12, "got {w}");
    }
}
