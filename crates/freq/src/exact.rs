use std::collections::HashMap;

use peercache_id::Id;

use crate::{FrequencyEstimator, FrequencySnapshot};

/// Exact per-peer access counters.
///
/// The reference estimator: one `u64` per distinct peer observed. This is
/// what the paper's evaluation effectively uses (every node tracks the full
/// access history for the measurement window).
#[derive(Clone, Debug, Default)]
pub struct ExactCounter {
    counts: HashMap<Id, u64>,
    total: u64,
}

impl ExactCounter {
    /// Create an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` accesses to `peer` at once.
    pub fn observe_many(&mut self, peer: Id, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(peer).or_insert(0) += count;
        self.total += count;
    }

    /// Number of distinct peers observed.
    pub fn distinct_peers(&self) -> usize {
        self.counts.len()
    }

    /// Forget everything (e.g. at the start of a new measurement window).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Iterate over `(peer, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, u64)> + '_ {
        self.counts.iter().map(|(&p, &c)| (p, c))
    }
}

impl FrequencyEstimator for ExactCounter {
    fn observe(&mut self, peer: Id) {
        self.observe_many(peer, 1);
    }

    fn estimate(&self, peer: Id) -> u64 {
        self.counts.get(&peer).copied().unwrap_or(0)
    }

    fn observations(&self) -> u64 {
        self.total
    }

    fn snapshot(&self) -> FrequencySnapshot {
        FrequencySnapshot::from_counts(self.iter())
    }

    fn snapshot_into(&self, out: &mut FrequencySnapshot) {
        // Counts are keyed by distinct peer, so the refill sums at most
        // one entry per peer — bit-identical to `snapshot()`.
        out.refill_from_counts(self.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn counts_accumulate() {
        let mut c = ExactCounter::new();
        c.observe(id(1));
        c.observe(id(1));
        c.observe(id(2));
        assert_eq!(c.estimate(id(1)), 2);
        assert_eq!(c.estimate(id(2)), 1);
        assert_eq!(c.estimate(id(3)), 0);
        assert_eq!(c.observations(), 3);
        assert_eq!(c.distinct_peers(), 2);
    }

    #[test]
    fn observe_many_batches() {
        let mut c = ExactCounter::new();
        c.observe_many(id(7), 100);
        c.observe_many(id(7), 0);
        assert_eq!(c.estimate(id(7)), 100);
        assert_eq!(c.observations(), 100);
    }

    #[test]
    fn clear_resets() {
        let mut c = ExactCounter::new();
        c.observe(id(1));
        c.clear();
        assert_eq!(c.estimate(id(1)), 0);
        assert_eq!(c.observations(), 0);
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut c = ExactCounter::new();
        for v in [3u128, 9, 3, 7, 3, 9] {
            c.observe(id(v));
        }
        let mut out = FrequencySnapshot::from_counts(vec![(id(1), 1)]);
        c.snapshot_into(&mut out);
        assert_eq!(out, c.snapshot());
    }

    #[test]
    fn snapshot_contains_all_counts() {
        let mut c = ExactCounter::new();
        c.observe_many(id(3), 5);
        c.observe_many(id(9), 2);
        let s = c.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s.weight_of(id(3)), 5.0);
        assert_eq!(s.weight_of(id(9)), 2.0);
        assert_eq!(s.total_weight(), 7.0);
    }
}
