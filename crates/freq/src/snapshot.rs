use peercache_id::Id;

/// One `(peer, weight)` row of a [`FrequencySnapshot`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    /// The peer the accesses were for.
    pub peer: Id,
    /// The (possibly estimated or decayed) access weight `f_v`.
    pub weight: f64,
}

/// A frozen access-frequency table: the input the selection algorithms in
/// `peercache-core` consume (the paper's `V` with frequencies `f_v`, §III).
///
/// Entries are deduplicated by peer and sorted by id so that consumers and
/// tests are deterministic regardless of the estimator's internal iteration
/// order. Weights are non-negative; zero-weight entries are dropped.
///
/// ```
/// use peercache_freq::FrequencySnapshot;
/// use peercache_id::Id;
///
/// let snapshot = FrequencySnapshot::from_counts(vec![
///     (Id::new(5), 10u64),
///     (Id::new(2), 3),
///     (Id::new(9), 1),
/// ]);
/// // The paper's §III-2 storage limitation: keep only the top-n peers.
/// let top = snapshot.top_n(2);
/// assert_eq!(top.weight_of(Id::new(5)), 10.0);
/// assert_eq!(top.weight_of(Id::new(9)), 0.0);
/// // Core neighbors are filtered out before selection.
/// let filtered = snapshot.without(vec![Id::new(2)]);
/// assert_eq!(filtered.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrequencySnapshot {
    entries: Vec<SnapshotEntry>,
}

impl FrequencySnapshot {
    /// Build a snapshot from raw `(peer, weight)` pairs.
    ///
    /// Duplicate peers have their weights summed; non-finite and
    /// non-positive weights are discarded.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Id, f64)>,
    {
        let mut entries: Vec<SnapshotEntry> = pairs
            .into_iter()
            .filter(|(_, w)| w.is_finite() && *w > 0.0)
            .map(|(peer, weight)| SnapshotEntry { peer, weight })
            .collect();
        entries.sort_by_key(|e| e.peer);
        entries.dedup_by(|dup, keep| {
            if dup.peer == keep.peer {
                keep.weight += dup.weight;
                true
            } else {
                false
            }
        });
        FrequencySnapshot { entries }
    }

    /// Build a snapshot from integer counts.
    pub fn from_counts<I>(counts: I) -> Self
    where
        I: IntoIterator<Item = (Id, u64)>,
    {
        Self::from_pairs(counts.into_iter().map(|(p, c)| (p, c as f64)))
    }

    /// Rebuild this snapshot **in place** from raw `(peer, weight)`
    /// pairs — the zero-alloc counterpart of
    /// [`from_pairs`](Self::from_pairs): once the entry buffer's
    /// capacity has warmed up, refilling allocates nothing.
    ///
    /// Semantics match `from_pairs` (non-finite and non-positive weights
    /// dropped, duplicates summed, entries sorted by peer) with one
    /// bit-level caveat: the sort is *unstable*, so when the input holds
    /// **three or more** entries for one peer the summation order — and
    /// thus the exact f64 bits — may differ from `from_pairs`. With at
    /// most two entries per peer the sum is a single two-operand IEEE
    /// addition, which is commutative, so the result is bit-identical.
    /// Every estimator and refresh-engine call site feeds at most two
    /// entries per peer (a base weight plus one counter estimate).
    pub fn refill_from_pairs<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (Id, f64)>,
    {
        self.entries.clear();
        self.entries.extend(
            pairs
                .into_iter()
                .filter(|(_, w)| w.is_finite() && *w > 0.0)
                .map(|(peer, weight)| SnapshotEntry { peer, weight }),
        );
        self.entries.sort_unstable_by_key(|e| e.peer);
        self.entries.dedup_by(|dup, keep| {
            if dup.peer == keep.peer {
                keep.weight += dup.weight;
                true
            } else {
                false
            }
        });
    }

    /// [`refill_from_pairs`](Self::refill_from_pairs) over integer
    /// counts — the in-place counterpart of
    /// [`from_counts`](Self::from_counts).
    pub fn refill_from_counts<I>(&mut self, counts: I)
    where
        I: IntoIterator<Item = (Id, u64)>,
    {
        self.refill_from_pairs(counts.into_iter().map(|(p, c)| (p, c as f64)));
    }

    /// Rebuild this snapshot **in place** as a filtered copy of
    /// `source`: keep exactly the entries whose peer satisfies `keep`,
    /// preserving order and weights. The in-place counterpart of
    /// [`without`](Self::without) for callers that already know the
    /// exclusion test (e.g. a sorted core-neighbor set to binary-search)
    /// — no exclusion vector is materialised and, at warmed capacity,
    /// nothing allocates.
    pub fn refill_filtered<F>(&mut self, source: &FrequencySnapshot, mut keep: F)
    where
        F: FnMut(Id) -> bool,
    {
        self.entries.clear();
        self.entries
            .extend(source.entries.iter().filter(|e| keep(e.peer)).copied());
    }

    /// The entries, sorted by peer id.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Number of distinct peers (the paper's `n = |V|`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no peer has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// The weight recorded for `peer`, or zero.
    pub fn weight_of(&self, peer: Id) -> f64 {
        self.entries
            .binary_search_by_key(&peer, |e| e.peer)
            .map(|i| self.entries[i].weight)
            .unwrap_or(0.0)
    }

    /// Restrict the snapshot to the `n` heaviest peers (ties broken by
    /// smaller id), modelling the paper's "store the top-n frequent nodes"
    /// storage-limitation strategy (§III-2). Returns a new snapshot.
    pub fn top_n(&self, n: usize) -> FrequencySnapshot {
        let mut by_weight = self.entries.clone();
        by_weight.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .expect("weights are finite")
                .then(a.peer.cmp(&b.peer))
        });
        by_weight.truncate(n);
        by_weight.sort_by_key(|e| e.peer);
        FrequencySnapshot { entries: by_weight }
    }

    /// Remove a set of peers (e.g. the selecting node itself and its core
    /// neighbors, which are never candidates for auxiliary selection).
    pub fn without<I>(&self, peers: I) -> FrequencySnapshot
    where
        I: IntoIterator<Item = Id>,
    {
        let mut excluded: Vec<Id> = peers.into_iter().collect();
        excluded.sort();
        excluded.dedup();
        let entries = self
            .entries
            .iter()
            .filter(|e| excluded.binary_search(&e.peer).is_err())
            .copied()
            .collect();
        FrequencySnapshot { entries }
    }

    /// Iterate over `(peer, weight)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, f64)> + '_ {
        self.entries.iter().map(|e| (e.peer, e.weight))
    }
}

impl FromIterator<(Id, f64)> for FrequencySnapshot {
    fn from_iter<I: IntoIterator<Item = (Id, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl FromIterator<(Id, u64)> for FrequencySnapshot {
    fn from_iter<I: IntoIterator<Item = (Id, u64)>>(iter: I) -> Self {
        Self::from_counts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn from_pairs_sorts_dedups_and_sums() {
        let s = FrequencySnapshot::from_pairs(vec![
            (id(5), 2.0),
            (id(1), 1.0),
            (id(5), 3.0),
            (id(2), 4.0),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.weight_of(id(5)), 5.0);
        assert_eq!(s.weight_of(id(1)), 1.0);
        let peers: Vec<_> = s.iter().map(|(p, _)| p.value()).collect();
        assert_eq!(peers, vec![1, 2, 5]);
    }

    #[test]
    fn drops_zero_negative_and_nonfinite_weights() {
        let s = FrequencySnapshot::from_pairs(vec![
            (id(1), 0.0),
            (id(2), -3.0),
            (id(3), f64::NAN),
            (id(4), f64::INFINITY),
            (id(5), 1.5),
        ]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.weight_of(id(5)), 1.5);
    }

    #[test]
    fn total_weight_sums_entries() {
        let s = FrequencySnapshot::from_counts(vec![(id(1), 3), (id(2), 7)]);
        assert_eq!(s.total_weight(), 10.0);
        assert_eq!(FrequencySnapshot::default().total_weight(), 0.0);
    }

    #[test]
    fn top_n_keeps_heaviest_with_id_tiebreak() {
        let s =
            FrequencySnapshot::from_counts(vec![(id(1), 5), (id(2), 9), (id(3), 5), (id(4), 1)]);
        let top = s.top_n(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top.weight_of(id(2)), 9.0);
        // tie between 1 and 3 at weight 5 → smaller id wins.
        assert_eq!(top.weight_of(id(1)), 5.0);
        assert_eq!(top.weight_of(id(3)), 0.0);
    }

    #[test]
    fn top_n_larger_than_len_is_identity() {
        let s = FrequencySnapshot::from_counts(vec![(id(1), 5), (id(2), 9)]);
        assert_eq!(s.top_n(10), s);
    }

    #[test]
    fn without_removes_listed_peers() {
        let s = FrequencySnapshot::from_counts(vec![(id(1), 5), (id(2), 9), (id(3), 2)]);
        let filtered = s.without(vec![id(2), id(9)]);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.weight_of(id(2)), 0.0);
        assert_eq!(filtered.weight_of(id(1)), 5.0);
    }

    #[test]
    fn weight_of_missing_is_zero() {
        let s = FrequencySnapshot::from_counts(vec![(id(1), 5)]);
        assert_eq!(s.weight_of(id(42)), 0.0);
    }

    #[test]
    fn refill_matches_from_pairs_on_two_way_duplicates() {
        let pairs = vec![(id(5), 2.5), (id(1), 1.0), (id(5), 3.25), (id(2), 4.0)];
        let fresh = FrequencySnapshot::from_pairs(pairs.clone());
        let mut refilled = FrequencySnapshot::default();
        refilled.refill_from_pairs(pairs.clone());
        assert_eq!(refilled, fresh);
        // Refilling again over stale contents fully replaces them.
        refilled.refill_from_pairs(pairs);
        assert_eq!(refilled, fresh);
    }

    #[test]
    fn refill_drops_invalid_weights_like_from_pairs() {
        let pairs = vec![(id(1), 0.0), (id(2), -1.0), (id(3), f64::NAN), (id(4), 2.0)];
        let mut s = FrequencySnapshot::from_counts(vec![(id(9), 7)]);
        s.refill_from_pairs(pairs.clone());
        assert_eq!(s, FrequencySnapshot::from_pairs(pairs));
        assert_eq!(s.weight_of(id(9)), 0.0, "stale entries are replaced");
    }

    #[test]
    fn refill_filtered_matches_without() {
        let s = FrequencySnapshot::from_counts(vec![(id(1), 5), (id(2), 9), (id(3), 2)]);
        let excluded = [id(2), id(9)];
        let mut filtered = FrequencySnapshot::default();
        filtered.refill_filtered(&s, |p| excluded.binary_search(&p).is_err());
        assert_eq!(filtered, s.without(excluded.iter().copied()));
    }
}
