use std::collections::HashMap;

use peercache_id::Id;

use crate::FrequencySnapshot;

/// Access counts restricted to a trailing time window.
///
/// §III describes maintaining access frequencies "based on past history of
/// accesses within a time window". This estimator approximates an exact
/// trailing window of length `window` with `buckets` sub-windows: counts
/// land in the current sub-window, and sub-windows older than `window` are
/// discarded wholesale. The approximation error is at most one sub-window's
/// worth of the oldest counts.
#[derive(Clone, Debug)]
pub struct SlidingWindowCounter {
    bucket_width: f64,
    buckets: usize,
    /// (bucket epoch index, counts) — newest last; at most `buckets` live.
    ring: Vec<(u64, HashMap<Id, u64>)>,
    observations: u64,
}

impl SlidingWindowCounter {
    /// A counter covering a trailing window of length `window`, divided
    /// into `buckets` sub-windows.
    ///
    /// # Panics
    /// Panics when `window` is non-positive/non-finite or `buckets` is 0.
    pub fn new(window: f64, buckets: usize) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive and finite"
        );
        assert!(buckets > 0, "need at least one bucket");
        SlidingWindowCounter {
            bucket_width: window / buckets as f64,
            buckets,
            ring: Vec::new(),
            observations: 0,
        }
    }

    /// The trailing window length.
    pub fn window(&self) -> f64 {
        self.bucket_width * self.buckets as f64
    }

    /// Total observations ever recorded (including expired ones).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    // The value is floored and clamped non-negative, and epoch counts stay
    // far below 2^53, so the f64 → u64 cast is exact.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn epoch(&self, now: f64) -> u64 {
        (now / self.bucket_width).floor().max(0.0) as u64
    }

    fn expire(&mut self, now: f64) {
        let current = self.epoch(now);
        let oldest_live = current.saturating_sub(self.buckets as u64 - 1);
        self.ring.retain(|(e, _)| *e >= oldest_live);
    }

    /// Record one access to `peer` at time `now`.
    ///
    /// Timestamps should be non-decreasing; an access with an older
    /// timestamp is credited to its own (possibly already-expired) bucket.
    pub fn observe_at(&mut self, peer: Id, now: f64) {
        self.observations += 1;
        self.expire(now);
        let epoch = self.epoch(now);
        match self.ring.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, counts)) => {
                *counts.entry(peer).or_insert(0) += 1;
            }
            None => {
                let mut counts = HashMap::new();
                counts.insert(peer, 1);
                self.ring.push((epoch, counts));
                self.ring.sort_by_key(|(e, _)| *e);
            }
        }
    }

    /// The in-window count for `peer` as of `now`.
    pub fn count_at(&self, peer: Id, now: f64) -> u64 {
        let current = self.epoch(now);
        let oldest_live = current.saturating_sub(self.buckets as u64 - 1);
        self.ring
            .iter()
            .filter(|(e, _)| *e >= oldest_live && *e <= current)
            .filter_map(|(_, counts)| counts.get(&peer))
            .sum()
    }

    /// Freeze the in-window counts as of `now` into a snapshot.
    pub fn snapshot_at(&self, now: f64) -> FrequencySnapshot {
        let current = self.epoch(now);
        let oldest_live = current.saturating_sub(self.buckets as u64 - 1);
        let mut merged: HashMap<Id, u64> = HashMap::new();
        for (_, counts) in self
            .ring
            .iter()
            .filter(|(e, _)| *e >= oldest_live && *e <= current)
        {
            for (&p, &c) in counts {
                *merged.entry(p).or_insert(0) += c;
            }
        }
        FrequencySnapshot::from_counts(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = SlidingWindowCounter::new(10.0, 0);
    }

    #[test]
    fn counts_within_window() {
        let mut c = SlidingWindowCounter::new(10.0, 5);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(1), 5.0);
        assert_eq!(c.count_at(id(1), 5.0), 2);
        assert_eq!(c.observations(), 2);
    }

    #[test]
    fn old_accesses_expire() {
        let mut c = SlidingWindowCounter::new(10.0, 5);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(2), 11.0);
        assert_eq!(c.count_at(id(1), 11.0), 0, "outside the window");
        assert_eq!(c.count_at(id(2), 11.0), 1);
    }

    #[test]
    fn window_boundary_is_bucket_granular() {
        // window 10, 2 buckets of width 5. Access at t=0 lands in epoch 0,
        // which stays live while the current epoch ≤ 1, i.e. until t < 10.
        let mut c = SlidingWindowCounter::new(10.0, 2);
        c.observe_at(id(1), 0.0);
        assert_eq!(c.count_at(id(1), 9.9), 1);
        assert_eq!(c.count_at(id(1), 10.0), 0);
    }

    #[test]
    fn snapshot_merges_buckets() {
        let mut c = SlidingWindowCounter::new(10.0, 5);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(1), 3.0);
        c.observe_at(id(2), 4.0);
        let s = c.snapshot_at(4.0);
        assert_eq!(s.weight_of(id(1)), 2.0);
        assert_eq!(s.weight_of(id(2)), 1.0);
    }

    #[test]
    fn snapshot_excludes_expired() {
        let mut c = SlidingWindowCounter::new(4.0, 2);
        c.observe_at(id(1), 0.0);
        c.observe_at(id(2), 5.0);
        let s = c.snapshot_at(5.0);
        assert_eq!(s.weight_of(id(1)), 0.0);
        assert_eq!(s.weight_of(id(2)), 1.0);
    }
}
