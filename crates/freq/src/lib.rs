//! Access-frequency tracking for auxiliary-neighbor selection.
//!
//! The paper's algorithms consume, per selecting node, the set `V` of peers
//! it has seen queries for together with an access frequency `f_v` for each
//! (§III). This crate provides the machinery for *maintaining* those
//! frequencies as queries stream past:
//!
//! * [`ExactCounter`] — one counter per observed peer; the reference
//!   estimator and the right choice when `|V|` is modest.
//! * [`SpaceSaving`] — the Space-Saving stream summary (Metwally et al.),
//!   which the paper points to ("standard streaming algorithms \[3\]") for
//!   tracking only the top-`n` frequent peers under a storage limit. Its
//!   count over-estimates are bounded by `N / capacity` for a stream of
//!   length `N`.
//! * [`DecayingCounter`] — exponentially decayed counts, so selections
//!   adapt as popularities drift (§IV-C motivates re-optimisation when
//!   "node popularities change").
//! * [`SlidingWindowCounter`] — counts restricted to a trailing time
//!   window, the "past history of accesses within a time window" of §III.
//!
//! All estimators produce a [`FrequencySnapshot`], the frozen
//! `(peer, weight)` table handed to the selection algorithms in
//! `peercache-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decay;
mod exact;
mod sliding;
mod snapshot;
mod space_saving;

pub use decay::DecayingCounter;
pub use exact::ExactCounter;
pub use sliding::SlidingWindowCounter;
pub use snapshot::{FrequencySnapshot, SnapshotEntry};
pub use space_saving::SpaceSaving;

use peercache_id::Id;

/// Common interface over the frequency estimators.
///
/// `observe` is called once per routed query with the id of the peer that
/// owned the queried item (§III: "noting the node containing the queried
/// item for every query"); `snapshot` freezes the current estimates for the
/// selection algorithms.
pub trait FrequencyEstimator {
    /// Record one access to `peer`.
    fn observe(&mut self, peer: Id);

    /// Current estimate of the number of accesses to `peer` (zero when the
    /// peer is not tracked).
    fn estimate(&self, peer: Id) -> u64;

    /// Total number of observations fed into the estimator.
    fn observations(&self) -> u64;

    /// Freeze the current estimates into a snapshot for the optimiser.
    fn snapshot(&self) -> FrequencySnapshot;

    /// [`snapshot`](Self::snapshot) into a caller-owned buffer: rebuild
    /// `out` in place from the current estimates. Semantically identical
    /// to `*out = self.snapshot()`; estimators whose estimates are
    /// per-peer counts override this with
    /// [`FrequencySnapshot::refill_from_counts`] so that, at warmed
    /// capacity, freezing a snapshot allocates nothing — the refresh
    /// engines call this on every recompute tick.
    fn snapshot_into(&self, out: &mut FrequencySnapshot) {
        *out = self.snapshot();
    }
}
