//! The per-arrival step interface shared by the substrate fault walks.
//!
//! Each substrate's fault-injected walk decomposes into *arrivals*: the
//! work done at one node — resolve cached pointers, rank candidates,
//! probe until one answers — ending in either a forward to the next node
//! or a terminal outcome. [`WalkStep`] is that decision, and a
//! [`StepScratch`] carries the per-arrival buffers so a driver can run
//! the step function hop by hop without reallocating.
//!
//! Two drivers consume the same step functions: the monolithic
//! `*_with_aux_faults` loops (sim mode) and the `peercache-node` event
//! loop, which delivers one arrival per `Lookup` message. Because every
//! fault decision in a [`FaultPlan`](crate::FaultPlan) is a pure hash —
//! no RNG state, no ordering dependence — both drivers observe
//! bit-identical probe sequences, traces, and outcomes.

use peercache_id::Id;

use crate::trace::LookupFailure;

/// The decision one arrival produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalkStep {
    /// Forward the lookup to this (probed-live) node. The driver charges
    /// the hop: `trace.hops += 1`, `trace.path.push(next)`.
    Forward(Id),
    /// The walk ends here with this outcome.
    Done(Result<Id, LookupFailure>),
}

/// Reusable per-arrival buffers for the step functions.
///
/// `aux` holds the staleness-resolved auxiliary pointers of the current
/// node; `dead` the candidates that timed out *at this arrival* (the
/// chord terminal reads it to reproduce the post-repair successor view).
/// Both are overwritten at each arrival — a driver allocates one scratch
/// per in-flight lookup and reuses it across hops.
#[derive(Clone, Debug, Default)]
pub struct StepScratch {
    /// Staleness-resolved auxiliary pointers of the current node.
    pub aux: Vec<Id>,
    /// Candidates that timed out at the current arrival.
    pub dead: Vec<Id>,
}

impl StepScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        StepScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_starts_empty() {
        let s = StepScratch::new();
        assert!(s.aux.is_empty());
        assert!(s.dead.is_empty());
    }

    #[test]
    fn steps_compare_structurally() {
        assert_eq!(WalkStep::Forward(Id::new(3)), WalkStep::Forward(Id::new(3)));
        assert_ne!(
            WalkStep::Forward(Id::new(3)),
            WalkStep::Done(Ok(Id::new(3)))
        );
        assert_eq!(
            WalkStep::Done(Err(LookupFailure::HopLimit)),
            WalkStep::Done(Err(LookupFailure::HopLimit))
        );
    }
}
