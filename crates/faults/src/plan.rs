//! The fault configuration and its resolved, integer-only plan.

use peercache_id::{Id, IdSpace};

use crate::trace::RouteTrace;

/// 2⁵³ as an `f64` — the probability scale. A rate in `[0, 1]` maps to
/// an integer threshold in `[0, 2⁵³]` compared against the top 53 bits
/// of a hash, so a rate of exactly 0 never fires and exactly 1 always
/// fires.
const SCALE: f64 = 9_007_199_254_740_992.0;

/// Cap on configured retries: bounds the backoff shift (`<< 15` at most)
/// and keeps every probe loop finitely short.
const MAX_RETRIES_CAP: u32 = 16;

// Decision channels: distinct odd constants keying the per-decision hash
// so the crash stream, loss stream, etc. never alias.
const CH_CRASH: u64 = 0x9e37_79b9_7f4a_7c15;
const CH_UNRESPONSIVE: u64 = 0xbf58_476d_1ce4_e5b9;
const CH_LOSS: u64 = 0x94d0_49bb_1331_11eb;
const CH_STALE: u64 = 0x2545_f491_4f6c_dd1d;
const CH_AGE: u64 = 0xd6e8_feb8_6659_fd93;
const CH_DELAY: u64 = 0xa076_1d64_78bd_642f;

/// The SplitMix64 finalizer: a strong 64-bit mixing step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold a 128-bit identifier into the 64-bit hash domain.
fn fold(id: Id) -> u64 {
    let v = id.value();
    // Identifiers are at most 64 bits in every experiment space; folding
    // the halves keeps wider ids collision-resistant anyway.
    #[allow(clippy::cast_possible_truncation)]
    {
        (v >> 64) as u64 ^ v as u64
    }
}

/// Convert a probability to its integer threshold (see [`SCALE`]).
fn threshold(rate: f64) -> u64 {
    // clamp maps out-of-range rates to the nearest endpoint; NaN passes
    // through clamp and then saturates to 0 in the cast (never fires).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (rate.clamp(0.0, 1.0) * SCALE) as u64
    }
}

/// User-facing fault rates and degradation knobs, in natural units.
///
/// All probabilities are per decision (see the matching [`FaultPlan`]
/// method for what one decision covers) and are clamped into `[0, 1]`
/// at plan construction.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Fraction of nodes permanently crashed for the whole run.
    pub crash_rate: f64,
    /// Probability a live node ignores one incoming probe attempt.
    pub unresponsive_rate: f64,
    /// Probability one probe attempt is lost on the wire.
    pub loss_rate: f64,
    /// Probability a cached auxiliary pointer is stale (stable for the
    /// run: the same pointer at the same owner is always stale or never).
    pub stale_rate: f64,
    /// Maximum backward identifier displacement of a stale pointer — the
    /// "age" of the corruption in id units. Zero disables corruption
    /// even at a nonzero `stale_rate`.
    pub staleness_age: u64,
    /// Maximum extra delay ticks added to each successful probe.
    pub delay_jitter: u64,
    /// Retries after a failed probe attempt (capped at 16).
    pub max_retries: u32,
    /// Backoff ticks charged for retry `i` (1-based): `base << (i - 1)`.
    pub backoff_base: u64,
}

impl FaultConfig {
    /// The all-zeros configuration: no faults, no retries, no jitter.
    pub fn none() -> Self {
        FaultConfig {
            crash_rate: 0.0,
            unresponsive_rate: 0.0,
            loss_rate: 0.0,
            stale_rate: 0.0,
            staleness_age: 0,
            delay_jitter: 0,
            max_retries: 0,
            backoff_base: 0,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A [`FaultConfig`] resolved against a run seed: every fault decision
/// is a pure integer function of `(seed, channel, ids, hop, attempt)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    crash_t: u64,
    unresponsive_t: u64,
    loss_t: u64,
    stale_t: u64,
    staleness_age: u64,
    delay_jitter: u64,
    max_retries: u32,
    backoff_base: u64,
}

impl FaultPlan {
    /// Resolve `config` against `seed`. Rates are converted to integer
    /// thresholds here, once — no further floating-point handling.
    pub fn new(seed: u64, config: &FaultConfig) -> Self {
        FaultPlan {
            seed,
            crash_t: threshold(config.crash_rate),
            unresponsive_t: threshold(config.unresponsive_rate),
            loss_t: threshold(config.loss_rate),
            stale_t: threshold(config.stale_rate),
            staleness_age: config.staleness_age,
            delay_jitter: config.delay_jitter,
            max_retries: config.max_retries.min(MAX_RETRIES_CAP),
            backoff_base: config.backoff_base,
        }
    }

    /// The all-zeros plan for `seed` (see [`FaultConfig::none`]).
    pub fn transparent(seed: u64) -> Self {
        Self::new(seed, &FaultConfig::none())
    }

    /// Whether every routing-visible fault rate is zero. A transparent
    /// plan never changes a probe verdict or an aux pointer, so walks
    /// through it are bit-identical to the fault-free walks (retries and
    /// jitter only touch tick accounting, never decisions).
    pub fn is_transparent(&self) -> bool {
        self.crash_t == 0 && self.unresponsive_t == 0 && self.loss_t == 0 && !self.corrupts_aux()
    }

    /// Whether stale-pointer corruption is active.
    fn corrupts_aux(&self) -> bool {
        self.stale_t > 0 && self.staleness_age > 0
    }

    /// One hash decision stream: seed and channel select the stream,
    /// `(a, b, c)` select the draw.
    fn mix(&self, channel: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut z = splitmix(self.seed ^ channel);
        z = splitmix(z ^ a);
        z = splitmix(z ^ b);
        splitmix(z ^ c)
    }

    /// Bernoulli draw: top 53 hash bits against the channel threshold.
    fn fires(&self, t: u64, channel: u64, a: u64, b: u64, c: u64) -> bool {
        t > 0 && (self.mix(channel, a, b, c) >> 11) < t
    }

    /// Whether `node` is crashed for the whole run.
    pub fn node_crashed(&self, node: Id) -> bool {
        self.fires(self.crash_t, CH_CRASH, fold(node), 0, 0)
    }

    /// One probe of `to` by `from` at hop index `hop`: up to
    /// `1 + max_retries` attempts with exponential backoff ticks. The
    /// probe succeeds when the target is substrate-live, not crashed,
    /// and one attempt dodges both wire loss and unresponsiveness.
    ///
    /// Every call appends `to` to `trace.probed` (the probe order);
    /// failure also counts a timeout and records `(from, to)` in
    /// `trace.dead_probed` so callers can evict the entry.
    pub fn probe(
        &self,
        from: Id,
        to: Id,
        hop: u32,
        substrate_live: bool,
        trace: &mut RouteTrace,
    ) -> bool {
        trace.probed.push(to);
        let down = !substrate_live || self.node_crashed(to);
        let (f, t) = (fold(from), fold(to));
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                trace.retries += 1;
                trace.delay_ticks += self.backoff_base << (attempt - 1);
            }
            trace.probes += 1;
            let key = (u64::from(hop) << 32) | u64::from(attempt);
            let lost = self.fires(self.loss_t, CH_LOSS, f, t, key);
            let deaf = self.fires(self.unresponsive_t, CH_UNRESPONSIVE, t, key, 0);
            if !(down || lost || deaf) {
                if self.delay_jitter > 0 {
                    trace.delay_ticks += self.mix(CH_DELAY, f, t, key) % (self.delay_jitter + 1);
                }
                return true;
            }
        }
        trace.timeouts += 1;
        trace.dead_probed.push((from, to));
        false
    }

    /// Resolve the cached auxiliary pointers of `owner` through the
    /// staleness channel into `out` (cleared first). A stale pointer is
    /// displaced backwards by `1 ..= staleness_age` id units — an id
    /// that almost never names a live node, so probing it times out and
    /// exercises the fallback path. The stale/fresh verdict per
    /// `(owner, pointer)` pair is stable for the whole run.
    pub fn resolve_aux(&self, space: IdSpace, owner: Id, aux: &[Id], out: &mut Vec<Id>) {
        out.clear();
        if !self.corrupts_aux() {
            out.extend_from_slice(aux);
            return;
        }
        let o = fold(owner);
        for &ptr in aux {
            let p = fold(ptr);
            if self.fires(self.stale_t, CH_STALE, o, p, 0) {
                let age = 1 + self.mix(CH_AGE, o, p, 0) % self.staleness_age;
                out.push(space.sub(ptr, u128::from(age)));
            } else {
                out.push(ptr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn transparent_plan_changes_nothing() {
        let plan = FaultPlan::transparent(7);
        assert!(plan.is_transparent());
        let mut trace = RouteTrace::start(id(1));
        assert!(plan.probe(id(1), id(2), 0, true, &mut trace));
        assert_eq!(trace.probes, 1);
        assert_eq!(trace.retries, 0);
        assert_eq!(trace.timeouts, 0);
        assert_eq!(trace.delay_ticks, 0);
        assert_eq!(trace.probed, vec![id(2)]);
        // Substrate-dead target: one attempt, one timeout — exactly the
        // fault-free walks' failed-probe accounting.
        assert!(!plan.probe(id(1), id(3), 0, false, &mut trace));
        assert_eq!(trace.probes, 2);
        assert_eq!(trace.timeouts, 1);
        assert_eq!(trace.dead_probed, vec![(id(1), id(3))]);

        let space = IdSpace::paper();
        let aux = vec![id(10), id(20)];
        let mut out = Vec::new();
        plan.resolve_aux(space, id(1), &aux, &mut out);
        assert_eq!(out, aux);
    }

    #[test]
    fn decisions_are_replayable() {
        let config = FaultConfig {
            crash_rate: 0.2,
            unresponsive_rate: 0.3,
            loss_rate: 0.25,
            stale_rate: 0.5,
            staleness_age: 1000,
            delay_jitter: 5,
            max_retries: 2,
            backoff_base: 4,
        };
        let a = FaultPlan::new(42, &config);
        let b = FaultPlan::new(42, &config);
        assert_eq!(a, b);
        assert!(!a.is_transparent());
        for v in 0..64u128 {
            assert_eq!(a.node_crashed(id(v)), b.node_crashed(id(v)));
            let mut ta = RouteTrace::start(id(0));
            let mut tb = RouteTrace::start(id(0));
            assert_eq!(
                a.probe(id(0), id(v), 3, true, &mut ta),
                b.probe(id(0), id(v), 3, true, &mut tb)
            );
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn crash_rate_hits_roughly_the_configured_fraction() {
        let config = FaultConfig {
            crash_rate: 0.25,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(11, &config);
        let crashed = (0..4000u128).filter(|&v| plan.node_crashed(id(v))).count();
        assert!((800..=1200).contains(&crashed), "crashed = {crashed}");
    }

    #[test]
    fn retries_and_backoff_are_bounded() {
        let config = FaultConfig {
            loss_rate: 1.0,
            max_retries: 100, // capped to 16
            backoff_base: 2,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(5, &config);
        let mut trace = RouteTrace::start(id(0));
        assert!(!plan.probe(id(0), id(9), 0, true, &mut trace));
        assert_eq!(trace.probes, 17);
        assert_eq!(trace.retries, 16);
        assert_eq!(trace.timeouts, 1);
        // Geometric backoff: 2·(2^16 − 1).
        assert_eq!(trace.delay_ticks, 2 * ((1 << 16) - 1));
    }

    #[test]
    fn stale_pointers_are_displaced_backwards_and_stably() {
        let config = FaultConfig {
            stale_rate: 1.0,
            staleness_age: 8,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(3, &config);
        let space = IdSpace::paper();
        let aux = vec![id(100), id(200)];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        plan.resolve_aux(space, id(1), &aux, &mut a);
        plan.resolve_aux(space, id(1), &aux, &mut b);
        assert_eq!(a, b);
        for (&orig, &got) in aux.iter().zip(&a) {
            let shift = space.clockwise_distance(got, orig);
            assert!((1..=8).contains(&shift), "shift = {shift}");
        }
    }

    #[test]
    fn out_of_range_rates_saturate() {
        let weird = FaultConfig {
            crash_rate: 7.5,
            loss_rate: -3.0,
            unresponsive_rate: f64::NAN,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(1, &weird);
        // crash_rate > 1 → every node crashed; negative/NaN → never.
        assert!(plan.node_crashed(id(123)));
        assert!(!plan.is_transparent());
    }
}
