//! Per-lookup trace and typed failure outcomes.

use peercache_id::Id;

/// Why a fault-injected lookup did not reach the true owner.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LookupFailure {
    /// Routing stopped at a node that believes it owns the key but is
    /// not the true owner.
    WrongOwner(Id),
    /// Routing stopped with no usable forward candidate.
    DeadEnd(Id),
    /// The per-walk hop budget ran out.
    HopLimit,
    /// The querying node itself is crashed or not live.
    OriginDown(Id),
}

/// Everything one fault-injected walk did: hop/probe accounting, the
/// tick clock, the nodes visited, and the probes that timed out.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteTrace {
    /// Successful forwards taken.
    pub hops: u32,
    /// Probe attempts sent (retries included).
    pub probes: u32,
    /// Retry attempts (probe attempts beyond each first).
    pub retries: u32,
    /// Probes that exhausted every retry.
    pub timeouts: u32,
    /// Failed-aux-pointer fallbacks to core-only candidates.
    pub fallbacks: u32,
    /// Deterministic clock: backoff and jitter ticks accumulated.
    pub delay_ticks: u64,
    /// Nodes visited, origin first.
    pub path: Vec<Id>,
    /// Every probe target in probe order (one entry per target, not per
    /// retry attempt).
    pub probed: Vec<Id>,
    /// `(prober, target)` pairs that timed out — the entries a repairing
    /// caller would evict from the prober's tables.
    pub dead_probed: Vec<(Id, Id)>,
}

impl RouteTrace {
    /// A fresh trace for a walk starting at `origin`.
    pub fn start(origin: Id) -> Self {
        RouteTrace {
            path: vec![origin],
            ..RouteTrace::default()
        }
    }
}

/// The outcome of one fault-injected lookup: the owner reached (or the
/// typed failure) plus the full [`RouteTrace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultedRoute {
    /// `Ok(owner)` when the walk ended at the true owner.
    pub outcome: Result<Id, LookupFailure>,
    /// What the walk did along the way.
    pub trace: RouteTrace,
}

impl FaultedRoute {
    /// Whether the walk reached the true owner.
    pub fn is_success(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The failed route for a down origin (empty trace, origin-only path).
    pub fn origin_down(origin: Id) -> Self {
        FaultedRoute {
            outcome: Err(LookupFailure::OriginDown(origin)),
            trace: RouteTrace::start(origin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_down_is_a_failure_with_an_origin_only_path() {
        let route = FaultedRoute::origin_down(Id::new(9));
        assert!(!route.is_success());
        assert_eq!(route.outcome, Err(LookupFailure::OriginDown(Id::new(9))));
        assert_eq!(route.trace.path, vec![Id::new(9)]);
        assert_eq!(route.trace.hops, 0);
    }
}
