//! Incremental membership tracking for the churn driver.
//!
//! Replaces the driver's per-query rebuild of a "live indices" scratch
//! vector: flips update the sorted live list in place, and uniform
//! origin sampling indexes it directly — the same ascending order the
//! rebuild produced, so RNG draws map to identical origins.

/// A set of node slots, each alive or dead, with the live slots
/// maintained as a sorted index list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    alive: Vec<bool>,
    live: Vec<usize>,
}

impl Liveness {
    /// Track the slots of `alive`, ascending.
    pub fn new(alive: &[bool]) -> Self {
        Liveness {
            alive: alive.to_vec(),
            live: (0..alive.len()).filter(|&i| alive[i]).collect(),
        }
    }

    /// Whether slot `idx` is alive (out-of-range slots are dead).
    pub fn is_alive(&self, idx: usize) -> bool {
        self.alive.get(idx).copied().unwrap_or(false)
    }

    /// Flip slot `idx` to `alive`, keeping the live list sorted. No-op
    /// when the slot is already in the requested state or out of range.
    pub fn set(&mut self, idx: usize, alive: bool) {
        if idx >= self.alive.len() || self.alive[idx] == alive {
            return;
        }
        self.alive[idx] = alive;
        match self.live.binary_search(&idx) {
            Ok(pos) if !alive => {
                self.live.remove(pos);
            }
            Err(pos) if alive => {
                self.live.insert(pos, idx);
            }
            _ => {}
        }
    }

    /// Number of live slots.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The `pos`-th live slot in ascending order.
    ///
    /// # Panics
    /// Panics when `pos >= live_count()` — callers sample `pos`
    /// uniformly from `0..live_count()`.
    pub fn live_at(&self, pos: usize) -> usize {
        self.live[pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_flips_in_sorted_order() {
        let mut l = Liveness::new(&[true, false, true, true]);
        assert_eq!(l.live_count(), 3);
        assert_eq!((0..3).map(|p| l.live_at(p)).collect::<Vec<_>>(), [0, 2, 3]);
        l.set(1, true);
        assert_eq!(
            (0..4).map(|p| l.live_at(p)).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        l.set(2, false);
        l.set(2, false); // idempotent
        assert!(!l.is_alive(2));
        assert!(l.is_alive(3));
        assert_eq!((0..3).map(|p| l.live_at(p)).collect::<Vec<_>>(), [0, 1, 3]);
        l.set(99, true); // out of range: ignored
        assert_eq!(l.live_count(), 3);
        assert!(!l.is_alive(99));
    }
}
