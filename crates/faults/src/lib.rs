//! Deterministic fault injection for the overlay routing walks.
//!
//! The substrate networks route over a perfect snapshot; this crate
//! supplies the messy part of a real overlay — crashed peers,
//! transiently unresponsive peers, lossy probe links, stale cached
//! auxiliary pointers, and message-delay jitter — as a pure function of
//! a run seed. A [`FaultPlan`] resolves every fault decision from
//! `(run_seed, channel, node/edge ids, hop_index, attempt)` through a
//! SplitMix64-style hash, so the same plan replayed on any thread count
//! (or any iteration order) produces bit-identical routes.
//!
//! The crate deliberately knows nothing about the substrates: the
//! chord/pastry/tapestry/skipgraph walks call [`FaultPlan::probe`] per
//! contact attempt and [`FaultPlan::resolve_aux`] per cached-pointer
//! read, and record what happened in a [`RouteTrace`]. All probability
//! handling happens once at plan construction (an `f64` rate becomes a
//! 53-bit integer threshold), so the per-probe hot path — and every
//! caller — is free of floating-point comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod liveness;
mod plan;
mod step;
mod trace;

pub use liveness::Liveness;
pub use plan::{FaultConfig, FaultPlan};
pub use step::{StepScratch, WalkStep};
pub use trace::{FaultedRoute, LookupFailure, RouteTrace};
