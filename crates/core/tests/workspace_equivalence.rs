//! Workspace-reuse equivalence: the zero-alloc `solve_into` entry points
//! must be **bit-identical** to the one-shot solvers, across many random
//! problems solved through the *same* workspace (so every solve after the
//! first runs on dirty, previously-warmed buffers).
//!
//! Costs are compared with `to_bits` equality, not a tolerance: the
//! workspace paths are required to perform the same floating-point
//! operations in the same order as the one-shot paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use peercache_core::chord::{select_fast, ChordWorkspace};
use peercache_core::pastry::{select_greedy, PastryWorkspace};
use peercache_core::{Candidate, ChordProblem, PastryProblem, SelectError, Selection};
use peercache_id::{Id, IdSpace};

/// Draw a random (bits, source, core, candidates, k) skeleton. Sizes vary
/// widely so the workspace sees growing *and* shrinking problems.
fn skeleton(rng: &mut StdRng) -> (u8, Id, Vec<Id>, Vec<Candidate>, usize) {
    let bits = rng.gen_range(4u8..=12);
    let max_nodes = 1usize << bits.min(7);
    let n = rng.gen_range(1..=max_nodes.min(60));
    let mut ids: Vec<u128> = Vec::new();
    while ids.len() < n + 1 {
        let id = rng.gen_range(0..(1u128 << bits));
        if !ids.contains(&id) {
            ids.push(id);
        }
        if ids.len() == 1usize << bits {
            break;
        }
    }
    let source = Id::new(ids[0]);
    let rest = &ids[1..];
    let n_core = rng.gen_range(0..=rest.len().min(4));
    let core: Vec<Id> = rest[..n_core].iter().copied().map(Id::new).collect();
    let candidates: Vec<Candidate> = rest[n_core..]
        .iter()
        .map(|&id| {
            let weight = rng.gen_range(0.0..100.0);
            if rng.gen_bool(0.25) {
                Candidate::with_max_hops(Id::new(id), weight, rng.gen_range(1..8))
            } else {
                Candidate::new(Id::new(id), weight)
            }
        })
        .collect();
    let k = rng.gen_range(0..=5);
    (bits, source, core, candidates, k)
}

fn assert_identical(case: &str, seed: u64, a: &Result<Selection, SelectError>, b: &Selection) {
    match a {
        Ok(one_shot) => {
            assert_eq!(one_shot.aux, b.aux, "{case} aux diverged at seed {seed}");
            assert_eq!(
                one_shot.cost.to_bits(),
                b.cost.to_bits(),
                "{case} cost not bit-identical at seed {seed}: {} vs {}",
                one_shot.cost,
                b.cost
            );
        }
        Err(e) => panic!("{case} one-shot failed ({e:?}) but workspace succeeded, seed {seed}"),
    }
}

#[test]
fn chord_workspace_matches_one_shot_across_seeds() {
    let mut ws = ChordWorkspace::new();
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (bits, source, core, candidates, k) = skeleton(&mut rng);
        let Ok(problem) =
            ChordProblem::new(IdSpace::new(bits).unwrap(), source, core, candidates, k)
        else {
            continue;
        };
        let one_shot = select_fast(&problem);
        match ws.solve_into(&problem) {
            Ok(sel) => assert_identical("chord", seed, &one_shot, sel),
            Err(ws_err) => match one_shot {
                Err(os_err) => assert_eq!(
                    format!("{ws_err:?}"),
                    format!("{os_err:?}"),
                    "chord error mismatch at seed {seed}"
                ),
                Ok(_) => panic!(
                    "chord workspace failed ({ws_err:?}) but one-shot succeeded, seed {seed}"
                ),
            },
        }
    }
}

#[test]
fn pastry_workspace_matches_one_shot_across_seeds() {
    let mut ws = PastryWorkspace::new();
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (bits, source, core, candidates, k) = skeleton(&mut rng);
        let digit_bits = if bits % 4 == 0 && rng.gen_bool(0.3) {
            4
        } else {
            1
        };
        let Ok(problem) = PastryProblem::new(
            IdSpace::new(bits).unwrap(),
            digit_bits,
            source,
            core,
            candidates,
            k,
        ) else {
            continue;
        };
        let one_shot = select_greedy(&problem);
        match ws.solve_into(&problem) {
            Ok(sel) => assert_identical("pastry", seed, &one_shot, sel),
            Err(ws_err) => match one_shot {
                Err(os_err) => assert_eq!(
                    format!("{ws_err:?}"),
                    format!("{os_err:?}"),
                    "pastry error mismatch at seed {seed}"
                ),
                Ok(_) => panic!(
                    "pastry workspace failed ({ws_err:?}) but one-shot succeeded, seed {seed}"
                ),
            },
        }
    }
}

#[test]
fn workspaces_interleave_large_and_small_problems() {
    // Shrinking after a large solve must not leak stale state into a
    // small one: alternate sizes through one workspace pair.
    let mut chord_ws = ChordWorkspace::new();
    let mut pastry_ws = PastryWorkspace::new();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..40u64 {
        let n = if round % 2 == 0 { 60 } else { 3 };
        let mut ids: Vec<u128> = (0..200u128).filter(|_| rng.gen_bool(0.6)).collect();
        ids.truncate(n + 1);
        if ids.len() < 2 {
            continue;
        }
        let source = Id::new(ids[0]);
        let candidates: Vec<Candidate> = ids[1..]
            .iter()
            .map(|&i| Candidate::new(Id::new(i), rng.gen_range(0.0..10.0)))
            .collect();
        let space = IdSpace::new(8).unwrap();
        let k = rng.gen_range(0..=4);
        let cp = ChordProblem::new(space, source, vec![], candidates.clone(), k).unwrap();
        assert_identical(
            "chord-interleave",
            round,
            &select_fast(&cp),
            chord_ws.solve_into(&cp).unwrap(),
        );
        let pp = PastryProblem::new(space, 1, source, vec![], candidates, k).unwrap();
        assert_identical(
            "pastry-interleave",
            round,
            &select_greedy(&pp),
            pastry_ws.solve_into(&pp).unwrap(),
        );
    }
}
