//! Randomised cross-validation of every optimiser in the crate.
//!
//! The validation lattice:
//!
//! * exhaustive search (ground truth, tiny instances)
//!   ← greedy Pastry, reference Pastry DP, naive Chord DP
//! * reference implementations (medium instances)
//!   ← greedy Pastry (vs the §IV-A DP), fast Chord (vs the §V-A DP)
//! * from-scratch solves ← incremental maintenance after random edits
//!
//! Costs are compared (optimal sets may differ on ties); the selected sets
//! are additionally re-priced through the direct eq.-1 evaluator to catch
//! any drift between the DP's internal accounting and the cost model.

use peercache_core::chord::{select_fast, select_naive};
use peercache_core::cost::{chord_cost, pastry_cost};
use peercache_core::exhaustive::{chord_exhaustive, pastry_exhaustive};
use peercache_core::pastry::{select_dp, select_greedy, PastryOptimizer};
use peercache_core::{Candidate, ChordProblem, PastryProblem, SelectError};
use peercache_id::{Id, IdSpace};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// A random problem skeleton: distinct ids (source excluded), a split into
/// core/candidates, weights, and optional QoS bounds.
#[derive(Debug, Clone)]
struct Instance {
    bits: u8,
    source: u128,
    core: Vec<u128>,
    candidates: Vec<(u128, f64, Option<u32>)>,
    k: usize,
}

fn instance(max_nodes: usize, with_qos: bool) -> impl Strategy<Value = Instance> {
    (4u8..=10, 0u32..1000)
        .prop_flat_map(move |(bits, seed)| {
            let n_ids = max_nodes.min(1usize << (bits - 1));
            (
                Just(bits),
                Just(seed),
                proptest::collection::btree_set(0u128..(1u128 << bits), 2..=n_ids),
                proptest::collection::vec(0.0f64..100.0, n_ids),
                proptest::collection::vec(proptest::option::weighted(0.3, 1u32..8), n_ids),
                0usize..4,
                0usize..5,
            )
        })
        .prop_map(move |(bits, _seed, ids, weights, bounds, n_core, k)| {
            let ids: Vec<u128> = ids.into_iter().collect();
            let source = ids[0];
            let rest = &ids[1..];
            let n_core = n_core.min(rest.len().saturating_sub(1));
            let core = rest[..n_core].to_vec();
            let candidates = rest[n_core..]
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let bound = if with_qos {
                        bounds[i % bounds.len()]
                    } else {
                        None
                    };
                    (id, weights[i % weights.len()], bound)
                })
                .collect();
            Instance {
                bits,
                source,
                core,
                candidates,
                k,
            }
        })
}

fn pastry_problem(inst: &Instance, digit_bits: u8) -> PastryProblem {
    PastryProblem::new(
        IdSpace::new(inst.bits).expect("valid bits"),
        digit_bits,
        Id::new(inst.source),
        inst.core.iter().copied().map(Id::new).collect(),
        inst.candidates
            .iter()
            .map(|&(id, w, b)| Candidate {
                id: Id::new(id),
                weight: w,
                max_hops: b,
            })
            .collect(),
        inst.k,
    )
    .expect("well-formed instance")
}

fn chord_problem(inst: &Instance) -> ChordProblem {
    ChordProblem::new(
        IdSpace::new(inst.bits).expect("valid bits"),
        Id::new(inst.source),
        inst.core.iter().copied().map(Id::new).collect(),
        inst.candidates
            .iter()
            .map(|&(id, w, b)| Candidate {
                id: Id::new(id),
                weight: w,
                max_hops: b,
            })
            .collect(),
        inst.k,
    )
    .expect("well-formed instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pastry_greedy_matches_exhaustive(inst in instance(9, false)) {
        let p = pastry_problem(&inst, 1);
        let greedy = select_greedy(&p).unwrap();
        let best = pastry_exhaustive(&p).unwrap();
        prop_assert!((greedy.cost - best.cost).abs() < EPS,
            "greedy {} vs exhaustive {}", greedy.cost, best.cost);
        prop_assert!((greedy.cost - pastry_cost(&p, &greedy.aux)).abs() < EPS,
            "internal cost accounting disagrees with eq. 1");
    }

    #[test]
    fn pastry_dp_matches_exhaustive(inst in instance(8, false)) {
        let p = pastry_problem(&inst, 1);
        let dp = select_dp(&p).unwrap();
        let best = pastry_exhaustive(&p).unwrap();
        prop_assert!((dp.cost - best.cost).abs() < EPS);
        prop_assert!((dp.cost - pastry_cost(&p, &dp.aux)).abs() < EPS);
    }

    #[test]
    fn pastry_greedy_matches_dp_medium(inst in instance(40, false)) {
        let p = pastry_problem(&inst, 1);
        let greedy = select_greedy(&p).unwrap();
        let dp = select_dp(&p).unwrap();
        prop_assert!((greedy.cost - dp.cost).abs() < EPS,
            "greedy {} vs dp {}", greedy.cost, dp.cost);
    }

    #[test]
    fn pastry_greedy_matches_dp_wide_digits(inst in instance(30, false), d in 2u8..=4) {
        prop_assume!(d <= inst.bits);
        let p = pastry_problem(&inst, d);
        let greedy = select_greedy(&p).unwrap();
        let dp = select_dp(&p).unwrap();
        prop_assert!((greedy.cost - dp.cost).abs() < EPS);
        prop_assert!((greedy.cost - pastry_cost(&p, &greedy.aux)).abs() < EPS);
    }

    #[test]
    fn pastry_qos_greedy_matches_exhaustive(inst in instance(8, true)) {
        let p = pastry_problem(&inst, 1);
        match (select_greedy(&p), pastry_exhaustive(&p)) {
            (Ok(greedy), Ok(best)) => {
                prop_assert!((greedy.cost - best.cost).abs() < EPS,
                    "qos greedy {} vs exhaustive {}", greedy.cost, best.cost);
                prop_assert!(
                    peercache_core::cost::pastry_qos_satisfied(&p, &greedy.aux),
                    "greedy selection violates a bound"
                );
            }
            (Err(SelectError::QosInfeasible { .. }), Err(SelectError::QosInfeasible { .. })) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn pastry_qos_dp_matches_exhaustive(inst in instance(8, true)) {
        let p = pastry_problem(&inst, 1);
        match (select_dp(&p), pastry_exhaustive(&p)) {
            (Ok(dp), Ok(best)) => {
                prop_assert!((dp.cost - best.cost).abs() < EPS);
                prop_assert!(peercache_core::cost::pastry_qos_satisfied(&p, &dp.aux));
            }
            (Err(SelectError::QosInfeasible { .. }), Err(SelectError::QosInfeasible { .. })) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn chord_naive_matches_exhaustive(inst in instance(9, false)) {
        let p = chord_problem(&inst);
        let naive = select_naive(&p).unwrap();
        let best = chord_exhaustive(&p).unwrap();
        prop_assert!((naive.cost - best.cost).abs() < EPS,
            "naive {} vs exhaustive {}", naive.cost, best.cost);
        prop_assert!((naive.cost - chord_cost(&p, &naive.aux)).abs() < EPS);
    }

    #[test]
    fn chord_fast_matches_naive_medium(inst in instance(48, false)) {
        let p = chord_problem(&inst);
        let naive = select_naive(&p).unwrap();
        let fast = select_fast(&p).unwrap();
        prop_assert!((fast.cost - naive.cost).abs() < EPS,
            "fast {} vs naive {}", fast.cost, naive.cost);
        prop_assert!((fast.cost - chord_cost(&p, &fast.aux)).abs() < EPS);
    }

    #[test]
    fn chord_qos_naive_matches_exhaustive(inst in instance(8, true)) {
        let p = chord_problem(&inst);
        match (select_naive(&p), chord_exhaustive(&p)) {
            (Ok(naive), Ok(best)) => {
                prop_assert!((naive.cost - best.cost).abs() < EPS,
                    "qos naive {} vs exhaustive {}", naive.cost, best.cost);
                prop_assert!(peercache_core::cost::chord_qos_satisfied(&p, &naive.aux));
            }
            (Err(SelectError::QosInfeasible { .. }), Err(SelectError::QosInfeasible { .. })) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn chord_qos_fast_matches_naive(inst in instance(32, true)) {
        let p = chord_problem(&inst);
        match (select_fast(&p), select_naive(&p)) {
            (Ok(fast), Ok(naive)) => {
                prop_assert!((fast.cost - naive.cost).abs() < EPS,
                    "qos fast {} vs naive {}", fast.cost, naive.cost);
                prop_assert!(peercache_core::cost::chord_qos_satisfied(&p, &fast.aux));
            }
            (Err(SelectError::QosInfeasible { required: r1, .. }),
             Err(SelectError::QosInfeasible { required: r2, .. })) => {
                prop_assert_eq!(r1, r2, "required counts must agree");
            }
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn incremental_tracks_scratch_after_random_edits(
        inst in instance(24, false),
        edits in proptest::collection::vec((0usize..32, 0.0f64..50.0), 1..12),
    ) {
        let p = pastry_problem(&inst, 1);
        let mut opt = PastryOptimizer::new(&p).unwrap();
        let mut current = p.clone();
        for (pick, w) in edits {
            if current.candidates.is_empty() {
                break;
            }
            match pick % 3 {
                // Re-weight an existing candidate.
                0 => {
                    let i = pick % current.candidates.len();
                    let id = current.candidates[i].id;
                    current.candidates[i].weight = w;
                    opt.update_weight(id, w).unwrap();
                }
                // Remove a candidate.
                1 => {
                    let i = pick % current.candidates.len();
                    let id = current.candidates[i].id;
                    current.candidates.remove(i);
                    opt.remove(id).unwrap();
                }
                // Insert a fresh candidate (skip when the id collides).
                _ => {
                    let space = IdSpace::new(inst.bits).expect("valid bits");
                    let id = space.normalize((pick as u128) * 7 + 3);
                    let collides = id == current.source
                        || current.core.contains(&id)
                        || current.candidates.iter().any(|c| c.id == id);
                    if !collides {
                        current.candidates.push(Candidate::new(id, w));
                        opt.insert(Candidate::new(id, w)).unwrap();
                    }
                }
            }
        }
        let scratch = select_greedy(&current).unwrap();
        let incr = opt.select().unwrap();
        prop_assert!((incr.cost - scratch.cost).abs() < EPS,
            "incremental {} vs scratch {}", incr.cost, scratch.cost);
        prop_assert!((incr.cost - pastry_cost(&current, &incr.aux)).abs() < EPS);
    }

    #[test]
    fn more_pointers_never_hurt(inst in instance(20, false)) {
        let p = pastry_problem(&inst, 1);
        let opt = PastryOptimizer::new(&p).unwrap();
        let mut prev = f64::INFINITY;
        for j in 0..=p.effective_k() {
            let sel = opt.selection(j).unwrap();
            prop_assert!(sel.cost <= prev + EPS, "cost rose at j={j}");
            prev = sel.cost;
        }

        let c = chord_problem(&inst);
        let mut prev_cost = f64::INFINITY;
        for j in 0..=c.effective_k() {
            let mut cj = c.clone();
            cj.k = j;
            let sel = select_naive(&cj).unwrap();
            prop_assert!(sel.cost <= prev_cost + EPS, "chord cost rose at k={j}");
            prev_cost = sel.cost;
        }
    }

    #[test]
    fn optimum_beats_oblivious_baseline(inst in instance(24, false), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = chord_problem(&inst);
        let opt = select_naive(&p).unwrap();
        let obl = peercache_core::baseline::chord_oblivious(&p, &mut rng);
        prop_assert!(opt.cost <= obl.cost + EPS,
            "optimal {} must not lose to oblivious {}", opt.cost, obl.cost);

        let pp = pastry_problem(&inst, 1);
        let opt = select_greedy(&pp).unwrap();
        let obl = peercache_core::baseline::pastry_oblivious(&pp, &mut rng);
        prop_assert!(opt.cost <= obl.cost + EPS);
    }
}
