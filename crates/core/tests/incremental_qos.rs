//! Property tests for the incremental Pastry optimiser under QoS
//! constraints: after ANY sequence of inserts/removals/re-weightings of
//! constrained and unconstrained candidates (plus core churn), the warm
//! optimiser must agree with a from-scratch solve — including on
//! feasibility.

use peercache_core::cost::{pastry_cost, pastry_qos_satisfied};
use peercache_core::pastry::{select_greedy, PastryOptimizer};
use peercache_core::{Candidate, PastryProblem, SelectError};
use peercache_id::{Id, IdSpace};
use proptest::prelude::*;

const BITS: u8 = 7;

#[derive(Debug, Clone)]
enum Edit {
    Insert {
        id: u8,
        weight: u8,
        bound: Option<u8>,
    },
    Remove(u8),
    Reweight {
        id: u8,
        weight: u8,
    },
    AddCore(u8),
    RemoveCore(u8),
}

fn edits() -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..128, 0u8..100, proptest::option::weighted(0.3, 1u8..5))
                .prop_map(|(id, weight, bound)| Edit::Insert { id, weight, bound }),
            (0u8..128).prop_map(Edit::Remove),
            ((0u8..128), (0u8..100)).prop_map(|(id, weight)| Edit::Reweight { id, weight }),
            (0u8..128).prop_map(Edit::AddCore),
            (0u8..128).prop_map(Edit::RemoveCore),
        ],
        1..40,
    )
}

/// A mirror of the problem state maintained alongside the optimiser.
#[derive(Default, Clone)]
struct Mirror {
    candidates: Vec<Candidate>,
    core: Vec<Id>,
}

impl Mirror {
    fn problem(&self, k: usize) -> PastryProblem {
        PastryProblem::new(
            IdSpace::new(BITS).expect("valid bits"),
            1,
            Id::new(127), // source outside the edited id range 0..127
            self.core.clone(),
            self.candidates.clone(),
            k,
        )
        .expect("mirror state is always valid")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_qos_agrees_with_scratch(seq in edits(), k in 0usize..5) {
        let mirror0 = Mirror::default();
        let mut mirror = mirror0.clone();
        let mut opt = PastryOptimizer::new(&mirror0.problem(k)).unwrap();

        for edit in seq {
            match edit {
                Edit::Insert { id, weight, bound } => {
                    let id = Id::new(u128::from(id));
                    let exists = mirror.candidates.iter().any(|c| c.id == id)
                        || mirror.core.contains(&id)
                        || id == Id::new(127);
                    let cand = Candidate {
                        id,
                        weight: f64::from(weight),
                        max_hops: bound.map(u32::from),
                    };
                    if exists {
                        prop_assert!(opt.insert(cand).is_err(), "duplicate insert must fail");
                    } else {
                        opt.insert(cand).unwrap();
                        mirror.candidates.push(cand);
                    }
                }
                Edit::Remove(id) => {
                    let id = Id::new(u128::from(id));
                    match mirror.candidates.iter().position(|c| c.id == id) {
                        Some(i) => {
                            opt.remove(id).unwrap();
                            mirror.candidates.remove(i);
                        }
                        None => prop_assert!(opt.remove(id).is_err()),
                    }
                }
                Edit::Reweight { id, weight } => {
                    let id = Id::new(u128::from(id));
                    match mirror.candidates.iter_mut().find(|c| c.id == id) {
                        Some(c) => {
                            c.weight = f64::from(weight);
                            opt.update_weight(id, f64::from(weight)).unwrap();
                        }
                        None => prop_assert!(opt.update_weight(id, f64::from(weight)).is_err()),
                    }
                }
                Edit::AddCore(id) => {
                    let id = Id::new(u128::from(id));
                    let exists = mirror.candidates.iter().any(|c| c.id == id)
                        || mirror.core.contains(&id)
                        || id == Id::new(127);
                    if exists {
                        prop_assert!(opt.add_core(id).is_err());
                    } else {
                        opt.add_core(id).unwrap();
                        mirror.core.push(id);
                    }
                }
                Edit::RemoveCore(id) => {
                    let id = Id::new(u128::from(id));
                    match mirror.core.iter().position(|&c| c == id) {
                        Some(i) => {
                            opt.remove_core(id).unwrap();
                            mirror.core.remove(i);
                        }
                        None => prop_assert!(opt.remove_core(id).is_err()),
                    }
                }
            }

            // After every edit: warm state ≡ from-scratch solve.
            let problem = mirror.problem(k);
            match (opt.select(), select_greedy(&problem)) {
                (Ok(warm), Ok(scratch)) => {
                    prop_assert!(
                        (warm.cost - scratch.cost).abs() < 1e-9,
                        "cost diverged: warm {} vs scratch {}",
                        warm.cost, scratch.cost
                    );
                    prop_assert!(
                        (warm.cost - pastry_cost(&problem, &warm.aux)).abs() < 1e-9,
                        "warm accounting vs eq.1"
                    );
                    prop_assert!(
                        pastry_qos_satisfied(&problem, &warm.aux),
                        "warm selection violates a bound"
                    );
                }
                (
                    Err(SelectError::QosInfeasible { required: r1, .. }),
                    Err(SelectError::QosInfeasible { required: r2, .. }),
                ) => {
                    prop_assert_eq!(r1, r2, "required counts diverged");
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "feasibility diverged: warm {a:?} vs scratch {b:?}"
                    )));
                }
            }
        }
    }

    #[test]
    fn selection_prefix_property_holds_under_qos(seq in edits()) {
        // Within a fixed trie state, j → j+1 selections nest (property P),
        // also in the presence of satisfied QoS constraints.
        let mut mirror = Mirror::default();
        for edit in seq {
            if let Edit::Insert { id, weight, bound } = edit {
                let id = Id::new(u128::from(id));
                if !mirror.candidates.iter().any(|c| c.id == id) && id != Id::new(127) {
                    mirror.candidates.push(Candidate {
                        id,
                        weight: f64::from(weight),
                        max_hops: bound.map(u32::from),
                    });
                }
            }
        }
        let k = mirror.candidates.len().min(6);
        let opt = PastryOptimizer::new(&mirror.problem(k)).unwrap();
        let mut prev: Option<Vec<Id>> = None;
        for j in 0..=k {
            match opt.selection(j) {
                Ok(sel) => {
                    if let Some(prev) = &prev {
                        for id in prev {
                            prop_assert!(
                                sel.aux.contains(id),
                                "property P violated at j={j}"
                            );
                        }
                    }
                    prev = Some(sel.aux);
                }
                Err(SelectError::QosInfeasible { .. }) => {
                    // Feasibility is monotone: once feasible, stays feasible.
                    prop_assert!(prev.is_none(), "feasibility must be monotone in j");
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
            }
        }
    }
}
