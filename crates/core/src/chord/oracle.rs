//! The `s(j, m)` oracle of paper §V-B.
//!
//! For each potential anchor (candidate rank or core neighbor) we
//! precompute, in `O(n·b·log n)`:
//!
//! * `pcount[r]` — how many candidates lie within estimated distance `r`
//!   of the anchor (the paper's `p_j(r)` as a rank count), and
//! * `wsum[r]` — the cumulative weighted cost `Σ_{r'≤r} r'·ΔF` of those
//!   candidates (a prefix-aggregated form of eq. 9, making each segment
//!   evaluation `O(1)` instead of `O(b)`).
//!
//! A full `s(j, m)` query then decomposes at the core neighbors between
//! `j` and `m` (eq. 10): one partial segment from the pointer, a
//! prefix-summed run of whole core segments, and one partial segment from
//! the last core. The rank↔core partition points those pieces need are
//! *also* precomputed (one merge walk over the two sorted distance lists
//! at build time), so a query performs no binary search at all — it is a
//! handful of flat table reads.
//!
//! The oracle owns every table in a flat `Vec` and exposes
//! [`rebuild`](SegmentOracle::rebuild), so a warmed-up workspace can
//! re-prime it for a new ring without allocating.

use crate::cast;
use crate::chord::ring::{bitlen, RingView};

/// Range-maximum sparse table over the QoS thresholds, so "is `s(j, m)`
/// feasible" is one `O(1)` query. All levels share one flat backing
/// vector (`offsets[level]` indexes the start of each level's row).
struct SparseMax {
    offsets: Vec<usize>,
    data: Vec<u128>,
}

impl SparseMax {
    fn empty() -> Self {
        SparseMax {
            offsets: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Rebuild in place from `values` (level 0 is the values themselves;
    /// level `L` holds maxima over windows of width `2^L`).
    fn rebuild(&mut self, values: impl Iterator<Item = u128>) {
        self.offsets.clear();
        self.data.clear();
        self.offsets.push(0);
        self.data.extend(values);
        let n = self.data.len();
        let mut width = 1usize;
        let mut prev = 0usize;
        while width * 2 <= n {
            let off = self.data.len();
            for i in 0..=n - width * 2 {
                let v = self.data[prev + i].max(self.data[prev + i + width]);
                self.data.push(v);
            }
            self.offsets.push(off);
            prev = off;
            width *= 2;
        }
    }

    /// Max over `values[lo..hi)`; 0 when the range is empty.
    fn max(&self, lo: usize, hi: usize) -> u128 {
        if lo >= hi {
            return 0;
        }
        let level = cast::usize_from_u32(usize::BITS - 1 - (hi - lo).leading_zeros());
        let width = 1usize << level;
        let off = self.offsets[level];
        self.data[off + lo].max(self.data[off + hi - width])
    }
}

/// Anchor tables, flattened: entry `a * (bits + 1) + r`.
struct AnchorTables {
    pcount: Vec<u32>,
    wsum: Vec<f64>,
}

impl AnchorTables {
    fn empty() -> Self {
        AnchorTables {
            pcount: Vec::new(),
            wsum: Vec::new(),
        }
    }

    fn rebuild(&mut self, ring: &RingView, anchors: &[u128]) {
        self.pcount.clear();
        self.wsum.clear();
        for &a in anchors {
            let mut prev_count = ring.dist.partition_point(|&d| d <= a);
            self.pcount.push(cast::index_to_u32(prev_count));
            self.wsum.push(0.0);
            let mut acc = 0.0;
            for r in 1..=ring.bits {
                let span = if r >= 128 {
                    u128::MAX
                } else {
                    (1u128 << r) - 1
                };
                let reach = a.saturating_add(span);
                let count = ring.dist.partition_point(|&d| d <= reach);
                acc += f64::from(r) * (ring.prefix_w[count] - ring.prefix_w[prev_count]);
                self.pcount.push(cast::index_to_u32(count));
                self.wsum.push(acc);
                prev_count = count;
            }
        }
    }
}

/// The oracle: precomputed structures answering `s(j, m)` queries.
///
/// Owns its tables (no borrow of the ring); every query method takes the
/// ring it was [`rebuild`](Self::rebuild)-primed with.
pub(crate) struct SegmentOracle {
    stride: usize,
    cand: AnchorTables,
    core: AnchorTables,
    /// `core_seg_prefix[q]` = Σ over core indices `q' < q` of the whole
    /// segment cost from core `q'` to just before core `q' + 1`.
    core_seg_prefix: Vec<f64>,
    /// Per candidate rank `r`: number of cores at distance ≤ `dist[r]`
    /// (the partition point `q1`/`q2` of eq. 10, precomputed).
    cores_through: Vec<u32>,
    /// Per core index `q`: first candidate rank at distance
    /// ≥ `core_dist[q]` (the partition point `r1` of eq. 10).
    first_rank_at: Vec<u32>,
    qos: SparseMax,
    has_qos: bool,
}

impl SegmentOracle {
    /// An unprimed oracle; call [`rebuild`](Self::rebuild) before querying.
    pub fn empty() -> Self {
        SegmentOracle {
            stride: 0,
            cand: AnchorTables::empty(),
            core: AnchorTables::empty(),
            core_seg_prefix: Vec::new(),
            cores_through: Vec::new(),
            first_rank_at: Vec::new(),
            qos: SparseMax::empty(),
            has_qos: false,
        }
    }

    /// Precompute the anchor tables for `ring` (`O(n·b)` space, built in
    /// `O(n·b·log n)` time); afterwards every [`s`](Self::s) query is
    /// `O(1)`.
    pub fn new(ring: &RingView) -> Self {
        let mut oracle = SegmentOracle::empty();
        oracle.rebuild(ring);
        oracle
    }

    /// Re-prime the oracle for `ring`, reusing every table's allocation.
    pub fn rebuild(&mut self, ring: &RingView) {
        self.stride = cast::usize_from_u32(ring.bits) + 1;
        self.cand.rebuild(ring, &ring.dist);
        self.core.rebuild(ring, &ring.core_dist);
        let n = ring.len();
        let c = ring.core_dist.len();

        // Rank↔core partition points by one merge walk each (both lists
        // are sorted by distance).
        self.cores_through.clear();
        let mut q = 0usize;
        for &d in &ring.dist {
            while q < c && ring.core_dist[q] <= d {
                q += 1;
            }
            self.cores_through.push(cast::index_to_u32(q));
        }
        self.first_rank_at.clear();
        let mut r = 0usize;
        for &cd in &ring.core_dist {
            while r < n && ring.dist[r] < cd {
                r += 1;
            }
            self.first_rank_at.push(cast::index_to_u32(r));
        }
        #[cfg(feature = "check-invariants")]
        self.assert_partition_tables_match_search(ring);

        self.core_seg_prefix.clear();
        self.core_seg_prefix.push(0.0);
        for q in 0..c {
            // Whole segment: ranks after core q, before core q + 1 (or the
            // end of the ring for the last core).
            let seg_end = if q + 1 < c {
                ring.dist.partition_point(|&d| d < ring.core_dist[q + 1])
            } else {
                n
            };
            let seg_start = ring.dist.partition_point(|&d| d <= ring.core_dist[q]);
            let cost = if seg_start >= seg_end {
                0.0 // no candidates between this core and the next
            } else {
                self.pure_from_core(ring, q, seg_end - 1)
            };
            let prev = self.core_seg_prefix[q];
            self.core_seg_prefix.push(prev + cost);
        }

        self.has_qos = ring.qos_lo.iter().any(std::option::Option::is_some);
        if self.has_qos {
            self.qos.rebuild(ring.qos_lo.iter().map(|q| q.unwrap_or(0)));
        }
    }

    /// Cross-check the merge-walk partition tables against the binary
    /// searches they replace.
    #[cfg(feature = "check-invariants")]
    fn assert_partition_tables_match_search(&self, ring: &RingView) {
        for (r, &d) in ring.dist.iter().enumerate() {
            let reference = ring.core_dist.partition_point(|&cd| cd <= d);
            debug_assert!(
                cast::index_from_u32(self.cores_through[r]) == reference,
                "cores_through[{r}] = {} disagrees with partition_point {reference}",
                self.cores_through[r],
            );
        }
        for (q, &cd) in ring.core_dist.iter().enumerate() {
            let reference = ring.dist.partition_point(|&d| d < cd);
            debug_assert!(
                cast::index_from_u32(self.first_rank_at[q]) == reference,
                "first_rank_at[{q}] = {} disagrees with partition_point {reference}",
                self.first_rank_at[q],
            );
        }
    }

    /// Cost of ranks `l` with `anchor_dist < dist[l] ≤ dist[m0]`, priced
    /// from the anchor (eq. 9 in prefix-aggregated form).
    fn pure(
        &self,
        ring: &RingView,
        tables: &AnchorTables,
        idx: usize,
        anchor_dist: u128,
        m0: usize,
    ) -> f64 {
        debug_assert!(
            anchor_dist <= ring.dist[m0],
            "anchor must not lie past the segment end"
        );
        let d_bits = bitlen(ring.dist[m0] - anchor_dist);
        if d_bits == 0 {
            return 0.0;
        }
        let d = cast::usize_from_u32(d_bits);
        let base = idx * self.stride;
        let inner = tables.wsum[base + d - 1];
        let covered = cast::index_from_u32(tables.pcount[base + d - 1]);
        inner + f64::from(d_bits) * (ring.prefix_w[m0 + 1] - ring.prefix_w[covered])
    }

    fn pure_from_cand(&self, ring: &RingView, j0: usize, m0: usize) -> f64 {
        self.pure(ring, &self.cand, j0, ring.dist[j0], m0)
    }

    fn pure_from_core(&self, ring: &RingView, q: usize, m0: usize) -> f64 {
        self.pure(ring, &self.core, q, ring.core_dist[q], m0)
    }

    /// `s(j, m)` over 0-indexed ranks: the cost of ranks `(j0 .. m0]` when
    /// the nearest auxiliary pointer is at rank `j0` (∞ when a QoS bound
    /// inside the range is out of the pointer's reach).
    pub fn s(&self, ring: &RingView, j0: usize, m0: usize) -> f64 {
        debug_assert!(j0 <= m0);
        if j0 == m0 {
            return 0.0;
        }
        if self.has_qos && self.qos.max(j0 + 1, m0 + 1) > ring.dist[j0] {
            return f64::INFINITY;
        }
        // Core neighbors strictly between the pointer and the target.
        let q1 = cast::index_from_u32(self.cores_through[j0]);
        let q2 = cast::index_from_u32(self.cores_through[m0]);
        if q1 == q2 {
            return self.pure_from_cand(ring, j0, m0);
        }
        // eq. 10: pointer segment + whole core segments + partial last.
        let mut total = 0.0;
        let r1 = cast::index_from_u32(self.first_rank_at[q1]);
        debug_assert!(r1 > j0);
        if r1 - 1 > j0 {
            total += self.pure_from_cand(ring, j0, r1 - 1);
        }
        total += self.core_seg_prefix[q2 - 1] - self.core_seg_prefix[q1];
        total += self.pure_from_core(ring, q2 - 1, m0);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Candidate, ChordProblem};
    use peercache_id::{Id, IdSpace};

    /// Direct (quadratic) evaluation of s(j, m) for cross-checking.
    fn s_direct(ring: &RingView, j0: usize, m0: usize) -> f64 {
        let mut total = 0.0;
        for l in j0 + 1..=m0 {
            if let Some(lo) = ring.qos_lo[l] {
                if ring.dist[j0] < lo {
                    return f64::INFINITY;
                }
            }
            total += ring.weight[l] * f64::from(ring.dist_via(j0, l));
        }
        total
    }

    fn ring_of(bits: u8, core: Vec<u128>, cands: Vec<(u128, f64)>) -> RingView {
        let problem = ChordProblem::new(
            IdSpace::new(bits).unwrap(),
            Id::ZERO,
            core.into_iter().map(Id::new).collect(),
            cands
                .into_iter()
                .map(|(i, w)| Candidate::new(Id::new(i), w))
                .collect(),
            1,
        )
        .unwrap();
        RingView::new(&problem).unwrap()
    }

    #[test]
    fn sparse_max_matches_scan() {
        let values = [3u128, 1, 4, 1, 5, 9, 2, 6];
        let mut sm = SparseMax::empty();
        sm.rebuild(values.iter().copied());
        for lo in 0..values.len() {
            for hi in lo..=values.len() {
                let expected = values[lo..hi].iter().copied().max().unwrap_or(0);
                assert_eq!(sm.max(lo, hi), expected, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn sparse_max_rebuild_reuses_cleanly() {
        let mut sm = SparseMax::empty();
        sm.rebuild([7u128, 7, 7, 7, 7, 7, 7, 7, 7].into_iter());
        let values = [3u128, 1, 4, 1, 5];
        sm.rebuild(values.iter().copied());
        for lo in 0..values.len() {
            for hi in lo..=values.len() {
                let expected = values[lo..hi].iter().copied().max().unwrap_or(0);
                assert_eq!(sm.max(lo, hi), expected, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn oracle_matches_direct_no_cores() {
        let ring = ring_of(
            6,
            vec![],
            vec![
                (3, 2.0),
                (7, 1.0),
                (12, 4.0),
                (30, 3.0),
                (45, 0.5),
                (61, 2.5),
            ],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(&ring, j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_matches_direct_with_cores() {
        let ring = ring_of(
            6,
            vec![5, 16, 33, 50],
            vec![
                (3, 2.0),
                (7, 1.0),
                (12, 4.0),
                (30, 3.0),
                (45, 0.5),
                (61, 2.5),
                (18, 1.5),
            ],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(&ring, j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_handles_empty_core_segments() {
        // Regression: consecutive core neighbors with NO candidate between
        // them used to anchor a segment past its end and underflow.
        let ring = ring_of(
            6,
            vec![10, 12, 14, 40],
            vec![(5, 2.0), (50, 3.0), (62, 1.0)],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(&ring, j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_handles_cores_past_all_candidates() {
        let ring = ring_of(6, vec![60, 62], vec![(5, 2.0), (20, 3.0)]);
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                assert!((oracle.s(&ring, j, m) - s_direct(&ring, j, m)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn oracle_rebuild_matches_fresh_build() {
        let warm = ring_of(6, vec![5, 16], vec![(3, 2.0), (30, 3.0), (61, 2.5)]);
        let ring = ring_of(
            6,
            vec![10, 12, 14, 40],
            vec![(5, 2.0), (18, 1.5), (50, 3.0), (62, 1.0)],
        );
        let mut reused = SegmentOracle::new(&warm);
        reused.rebuild(&ring);
        let fresh = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                assert_eq!(
                    reused.s(&ring, j, m).to_bits(),
                    fresh.s(&ring, j, m).to_bits(),
                    "s({j},{m}) differs after rebuild"
                );
            }
        }
    }

    #[test]
    fn oracle_matches_direct_with_qos() {
        let problem = ChordProblem::new(
            IdSpace::new(6).unwrap(),
            Id::ZERO,
            vec![Id::new(5)],
            vec![
                Candidate::new(Id::new(3), 2.0),
                Candidate::with_max_hops(Id::new(30), 3.0, 3),
                Candidate::new(Id::new(45), 0.5),
                Candidate::with_max_hops(Id::new(61), 2.5, 2),
            ],
            1,
        )
        .unwrap();
        let ring = RingView::new(&problem).unwrap();
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(&ring, j, m), s_direct(&ring, j, m));
                assert!(
                    fast == direct || (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }
}
