//! The `s(j, m)` oracle of paper §V-B.
//!
//! For each potential anchor (candidate rank or core neighbor) we
//! precompute, in `O(n·b·log n)`:
//!
//! * `pcount[r]` — how many candidates lie within estimated distance `r`
//!   of the anchor (the paper's `p_j(r)` as a rank count), and
//! * `wsum[r]` — the cumulative weighted cost `Σ_{r'≤r} r'·ΔF` of those
//!   candidates (a prefix-aggregated form of eq. 9, making each segment
//!   evaluation `O(1)` instead of `O(b)`).
//!
//! A full `s(j, m)` query then decomposes at the core neighbors between
//! `j` and `m` (eq. 10): one partial segment from the pointer, a
//! prefix-summed run of whole core segments, and one partial segment from
//! the last core — a handful of binary searches in total.

use crate::cast;
use crate::chord::ring::{bitlen, RingView};

/// Range-maximum sparse table over the QoS thresholds, so "is `s(j, m)`
/// feasible" is one `O(1)` query.
struct SparseMax {
    rows: Vec<Vec<u128>>,
}

impl SparseMax {
    fn new(values: &[u128]) -> Self {
        let n = values.len();
        let mut rows = Vec::new();
        let mut prev = values.to_vec();
        let mut width = 1;
        while width * 2 <= n {
            let next: Vec<u128> = (0..=n - width * 2)
                .map(|i| prev[i].max(prev[i + width]))
                .collect();
            rows.push(prev);
            prev = next;
            width *= 2;
        }
        rows.push(prev);
        SparseMax { rows }
    }

    /// Max over `values[lo..hi)`; 0 when the range is empty.
    fn max(&self, lo: usize, hi: usize) -> u128 {
        if lo >= hi {
            return 0;
        }
        let level = cast::usize_from_u32(usize::BITS - 1 - (hi - lo).leading_zeros());
        let width = 1usize << level;
        self.rows[level][lo].max(self.rows[level][hi - width])
    }
}

/// Anchor tables, flattened: entry `a * (bits + 1) + r`.
struct AnchorTables {
    pcount: Vec<u32>,
    wsum: Vec<f64>,
}

impl AnchorTables {
    fn build(ring: &RingView, anchors: &[u128]) -> Self {
        let stride = cast::usize_from_u32(ring.bits) + 1;
        let mut pcount = Vec::with_capacity(anchors.len() * stride);
        let mut wsum = Vec::with_capacity(anchors.len() * stride);
        for &a in anchors {
            let mut prev_count = ring.dist.partition_point(|&d| d <= a);
            pcount.push(cast::index_to_u32(prev_count));
            wsum.push(0.0);
            let mut acc = 0.0;
            for r in 1..=ring.bits {
                let span = if r >= 128 {
                    u128::MAX
                } else {
                    (1u128 << r) - 1
                };
                let reach = a.saturating_add(span);
                let count = ring.dist.partition_point(|&d| d <= reach);
                acc += f64::from(r) * (ring.prefix_w[count] - ring.prefix_w[prev_count]);
                pcount.push(cast::index_to_u32(count));
                wsum.push(acc);
                prev_count = count;
            }
        }
        AnchorTables { pcount, wsum }
    }
}

/// The oracle: precomputed structures answering `s(j, m)` queries.
pub(crate) struct SegmentOracle<'a> {
    ring: &'a RingView,
    stride: usize,
    cand: AnchorTables,
    core: AnchorTables,
    /// `core_seg_prefix[q]` = Σ over core indices `q' < q` of the whole
    /// segment cost from core `q'` to just before core `q' + 1`.
    core_seg_prefix: Vec<f64>,
    qos: Option<SparseMax>,
}

impl<'a> SegmentOracle<'a> {
    /// Precompute the anchor tables for `ring` (`O(n·b)` space, built in
    /// `O(n·b)` time); afterwards every [`s`](Self::s) query is `O(log n)`.
    pub fn new(ring: &'a RingView) -> Self {
        let stride = cast::usize_from_u32(ring.bits) + 1;
        let cand = AnchorTables::build(ring, &ring.dist);
        let core = AnchorTables::build(ring, &ring.core_dist);
        let n = ring.len();
        let c = ring.core_dist.len();
        let mut core_seg_prefix = Vec::with_capacity(c + 1);
        core_seg_prefix.push(0.0);
        let mut oracle = SegmentOracle {
            ring,
            stride,
            cand,
            core,
            core_seg_prefix,
            qos: None,
        };
        for q in 0..c {
            // Whole segment: ranks after core q, before core q + 1 (or the
            // end of the ring for the last core).
            let seg_end = if q + 1 < c {
                ring.dist.partition_point(|&d| d < ring.core_dist[q + 1])
            } else {
                n
            };
            let seg_start = ring.dist.partition_point(|&d| d <= ring.core_dist[q]);
            let cost = if seg_start >= seg_end {
                0.0 // no candidates between this core and the next
            } else {
                oracle.pure_from_core(q, seg_end - 1)
            };
            oracle
                .core_seg_prefix
                .push(oracle.core_seg_prefix[q] + cost);
        }
        if ring.qos_lo.iter().any(std::option::Option::is_some) {
            let values: Vec<u128> = ring.qos_lo.iter().map(|q| q.unwrap_or(0)).collect();
            oracle.qos = Some(SparseMax::new(&values));
        }
        oracle
    }

    /// Cost of ranks `l` with `anchor_dist < dist[l] ≤ dist[m0]`, priced
    /// from the anchor (eq. 9 in prefix-aggregated form).
    fn pure(&self, tables: &AnchorTables, idx: usize, anchor_dist: u128, m0: usize) -> f64 {
        debug_assert!(
            anchor_dist <= self.ring.dist[m0],
            "anchor must not lie past the segment end"
        );
        let d_bits = bitlen(self.ring.dist[m0] - anchor_dist);
        if d_bits == 0 {
            return 0.0;
        }
        let d = cast::usize_from_u32(d_bits);
        let base = idx * self.stride;
        let inner = tables.wsum[base + d - 1];
        let covered = cast::index_from_u32(tables.pcount[base + d - 1]);
        inner + f64::from(d_bits) * (self.ring.prefix_w[m0 + 1] - self.ring.prefix_w[covered])
    }

    fn pure_from_cand(&self, j0: usize, m0: usize) -> f64 {
        self.pure(&self.cand, j0, self.ring.dist[j0], m0)
    }

    fn pure_from_core(&self, q: usize, m0: usize) -> f64 {
        self.pure(&self.core, q, self.ring.core_dist[q], m0)
    }

    /// `s(j, m)` over 0-indexed ranks: the cost of ranks `(j0 .. m0]` when
    /// the nearest auxiliary pointer is at rank `j0` (∞ when a QoS bound
    /// inside the range is out of the pointer's reach).
    pub fn s(&self, j0: usize, m0: usize) -> f64 {
        debug_assert!(j0 <= m0);
        if j0 == m0 {
            return 0.0;
        }
        if let Some(qos) = &self.qos {
            if qos.max(j0 + 1, m0 + 1) > self.ring.dist[j0] {
                return f64::INFINITY;
            }
        }
        let ring = self.ring;
        // Core neighbors strictly between the pointer and the target.
        let q1 = ring.core_dist.partition_point(|&c| c <= ring.dist[j0]);
        let q2 = ring.core_dist.partition_point(|&c| c <= ring.dist[m0]);
        if q1 == q2 {
            return self.pure_from_cand(j0, m0);
        }
        // eq. 10: pointer segment + whole core segments + partial last.
        let mut total = 0.0;
        let r1 = ring.dist.partition_point(|&d| d < ring.core_dist[q1]);
        debug_assert!(r1 > j0);
        if r1 - 1 > j0 {
            total += self.pure_from_cand(j0, r1 - 1);
        }
        total += self.core_seg_prefix[q2 - 1] - self.core_seg_prefix[q1];
        total += self.pure_from_core(q2 - 1, m0);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Candidate, ChordProblem};
    use peercache_id::{Id, IdSpace};

    /// Direct (quadratic) evaluation of s(j, m) for cross-checking.
    fn s_direct(ring: &RingView, j0: usize, m0: usize) -> f64 {
        let mut total = 0.0;
        for l in j0 + 1..=m0 {
            if let Some(lo) = ring.qos_lo[l] {
                if ring.dist[j0] < lo {
                    return f64::INFINITY;
                }
            }
            total += ring.weight[l] * f64::from(ring.dist_via(j0, l));
        }
        total
    }

    fn ring_of(bits: u8, core: Vec<u128>, cands: Vec<(u128, f64)>) -> RingView {
        let problem = ChordProblem::new(
            IdSpace::new(bits).unwrap(),
            Id::ZERO,
            core.into_iter().map(Id::new).collect(),
            cands
                .into_iter()
                .map(|(i, w)| Candidate::new(Id::new(i), w))
                .collect(),
            1,
        )
        .unwrap();
        RingView::new(&problem).unwrap()
    }

    #[test]
    fn sparse_max_matches_scan() {
        let values = vec![3u128, 1, 4, 1, 5, 9, 2, 6];
        let sm = SparseMax::new(&values);
        for lo in 0..values.len() {
            for hi in lo..=values.len() {
                let expected = values[lo..hi].iter().copied().max().unwrap_or(0);
                assert_eq!(sm.max(lo, hi), expected, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn oracle_matches_direct_no_cores() {
        let ring = ring_of(
            6,
            vec![],
            vec![
                (3, 2.0),
                (7, 1.0),
                (12, 4.0),
                (30, 3.0),
                (45, 0.5),
                (61, 2.5),
            ],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_matches_direct_with_cores() {
        let ring = ring_of(
            6,
            vec![5, 16, 33, 50],
            vec![
                (3, 2.0),
                (7, 1.0),
                (12, 4.0),
                (30, 3.0),
                (45, 0.5),
                (61, 2.5),
                (18, 1.5),
            ],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_handles_empty_core_segments() {
        // Regression: consecutive core neighbors with NO candidate between
        // them used to anchor a segment past its end and underflow.
        let ring = ring_of(
            6,
            vec![10, 12, 14, 40],
            vec![(5, 2.0), (50, 3.0), (62, 1.0)],
        );
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(j, m), s_direct(&ring, j, m));
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn oracle_handles_cores_past_all_candidates() {
        let ring = ring_of(6, vec![60, 62], vec![(5, 2.0), (20, 3.0)]);
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                assert!((oracle.s(j, m) - s_direct(&ring, j, m)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn oracle_matches_direct_with_qos() {
        let problem = ChordProblem::new(
            IdSpace::new(6).unwrap(),
            Id::ZERO,
            vec![Id::new(5)],
            vec![
                Candidate::new(Id::new(3), 2.0),
                Candidate::with_max_hops(Id::new(30), 3.0, 3),
                Candidate::new(Id::new(45), 0.5),
                Candidate::with_max_hops(Id::new(61), 2.5, 2),
            ],
            1,
        )
        .unwrap();
        let ring = RingView::new(&problem).unwrap();
        let oracle = SegmentOracle::new(&ring);
        for j in 0..ring.len() {
            for m in j..ring.len() {
                let (fast, direct) = (oracle.s(j, m), s_direct(&ring, j, m));
                assert!(
                    fast == direct || (fast - direct).abs() < 1e-9,
                    "s({j},{m}) = {fast} vs {direct}"
                );
            }
        }
    }
}
