//! The simple `O(n²·k)` Chord dynamic program (paper §V-A).
//!
//! `C_i(m)` is the optimal cost of covering the first `m` successors with
//! `i` auxiliary pointers (eq. 7); `s(j, m)` — the cost of ranks
//! `(j..m]` when the last pointer sits at rank `j` — is accumulated
//! incrementally while `m` advances, so no `O(n²)` table is materialised.
//! Kept as the reference implementation the fast algorithm (§V-B) is
//! cross-validated against.

use peercache_id::Id;

use crate::cast;
use crate::chord::ring::RingView;
use crate::problem::{ChordProblem, SelectError, Selection};

/// Solve the eq.-7 recurrence layer by layer; returns per-layer cost rows
/// and the argmin choices for backtracking.
///
/// `layers[i][m]` = `C_i(m)`; `choice[i][m]` = the rank (1-based, i.e.
/// `j`) achieving it, with `choice[i][m] = 0` meaning "undefined/∞".
pub(crate) struct DpResult {
    pub layers: Vec<Vec<f64>>,
    pub choice: Vec<Vec<u32>>,
}

pub(crate) fn solve_naive(ring: &RingView, k: usize) -> DpResult {
    let n = ring.len();
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(k + 1);
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
    layers.push(ring.c0.clone());
    choice.push(vec![0; n + 1]);
    for i in 1..=k {
        let prev = &layers[i - 1];
        // "Exactly i pointers" semantics: C_i(m) = ∞ for m < i, including
        // C_i(0). The j = 1 transition reads C_{i−1}(0) via the special
        // case below rather than prev[0].
        let mut cur = vec![f64::INFINITY; n + 1];
        let mut ch = vec![0u32; n + 1];
        for j in 1..=n {
            let base = if j == 1 {
                // No nodes before the first pointer.
                if i == 1 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                prev[j - 1]
            };
            if base.is_infinite() {
                continue;
            }
            // Extend m from j to n, accumulating s(j, m) on the fly.
            let mut s = 0.0;
            let mut valid = true;
            for m in j..=n {
                let l = m - 1; // 0-indexed rank of the m-th successor
                if m > j {
                    // QoS: rank l needs a usable neighbor at distance
                    // ≥ qos_lo; the last pointer is at rank j − 1.
                    if let Some(lo) = ring.qos_lo[l] {
                        if ring.dist[j - 1] < lo {
                            valid = false;
                        }
                    }
                    if valid {
                        s += ring.weight[l] * f64::from(ring.dist_via(j - 1, l));
                    }
                }
                if !valid {
                    break;
                }
                let total = base + s;
                if total < cur[m] {
                    cur[m] = total;
                    ch[m] = cast::index_to_u32(j);
                }
            }
        }
        layers.push(cur);
        choice.push(ch);
    }
    DpResult { layers, choice }
}

/// Backtrack the chosen pointer ranks for `C_i(n)`.
pub(crate) fn backtrack(dp: &DpResult, i: usize, n: usize) -> Vec<usize> {
    let mut ranks = Vec::with_capacity(i);
    let (mut i, mut m) = (i, n);
    while i > 0 {
        let j = cast::index_from_u32(dp.choice[i][m]);
        debug_assert!(j >= 1, "backtracking a feasible cell");
        ranks.push(j - 1); // to 0-indexed rank
        m = j - 1;
        i -= 1;
    }
    ranks.reverse();
    ranks
}

pub(crate) fn selection_from(
    ring: &RingView,
    dp: &DpResult,
    k: usize,
) -> Result<Selection, SelectError> {
    let n = ring.len();
    if n == 0 {
        return Ok(Selection {
            aux: vec![],
            cost: 0.0,
        });
    }
    if dp.layers[k][n].is_finite() {
        let mut aux: Vec<Id> = backtrack(dp, k, n)
            .into_iter()
            .map(|r| ring.ids[r])
            .collect();
        aux.sort();
        return Ok(Selection {
            aux,
            cost: ring.total_weight() + dp.layers[k][n],
        });
    }
    // Infeasible at k: the smallest feasible layer (if computed) tells the
    // caller how many pointers the QoS bounds demand.
    let required = dp.layers.iter().position(|row| row[n].is_finite());
    Err(SelectError::QosInfeasible {
        required: required.map_or(u32::MAX, cast::index_to_u32),
        k: cast::index_to_u32(k),
    })
}

/// One-shot selection via the reference `O(n²·k)` dynamic program (§V-A).
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met with
/// `k` pointers (`required` reports the smallest feasible count, which
/// always exists at `k = n`).
pub fn select_naive(problem: &ChordProblem) -> Result<Selection, SelectError> {
    let ring = RingView::new(problem)?;
    let k = problem.effective_k();
    let mut dp = solve_naive(&ring, k);
    let n = ring.len();
    if n > 0 && !dp.layers[k][n].is_finite() {
        // Extend layers until feasible so `required` is exact (≤ n).
        let mut i = k;
        while i < n && !dp.layers[i][n].is_finite() {
            i += 1;
            dp = solve_naive(&ring, i);
        }
    }
    selection_from(&ring, &dp, k)
}
