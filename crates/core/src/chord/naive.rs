//! The simple `O(n²·k)` Chord dynamic program (paper §V-A).
//!
//! `C_i(m)` is the optimal cost of covering the first `m` successors with
//! `i` auxiliary pointers (eq. 7); `s(j, m)` — the cost of ranks
//! `(j..m]` when the last pointer sits at rank `j` — is accumulated
//! incrementally while `m` advances, so no `O(n²)` table is materialised.
//! Kept as the reference implementation the fast algorithm (§V-B) is
//! cross-validated against.

use crate::cast;
use crate::chord::ring::RingView;
use crate::problem::{ChordProblem, SelectError, Selection};

/// The layered DP solution in one flat allocation per table.
///
/// Cell `(i, m)` — `C_i(m)` and the 1-based rank `j` achieving it
/// (`0` meaning "undefined/∞") — lives at `i * stride + m` with
/// `stride = n + 1`. The flat layout lets solver workspaces reuse the
/// two backing vectors across solves without per-layer reallocation.
pub(crate) struct DpResult {
    /// Row stride `n + 1`.
    pub stride: usize,
    /// `C_i(m)` rows, concatenated.
    pub layers: Vec<f64>,
    /// Argmin choices, same layout (1-based rank `j`; 0 = undefined/∞).
    pub choice: Vec<u32>,
}

impl DpResult {
    /// An empty result, ready to be filled by a solver.
    pub fn new() -> Self {
        DpResult {
            stride: 0,
            layers: Vec::new(),
            choice: Vec::new(),
        }
    }

    /// `C_i(m)`.
    #[inline]
    pub fn cost(&self, i: usize, m: usize) -> f64 {
        self.layers[i * self.stride + m]
    }

    /// The 1-based rank choice achieving `C_i(m)` (0 = undefined/∞).
    #[inline]
    pub fn pick(&self, i: usize, m: usize) -> u32 {
        self.choice[i * self.stride + m]
    }

    /// Number of computed layers (`k + 1` after a budget-`k` solve).
    pub(crate) fn layer_count(&self) -> usize {
        self.layers.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Reset to layer 0 = `c0` (the core-only costs), dropping any DP
    /// layers from a previous solve but keeping the allocations.
    pub(crate) fn reset_to_c0(&mut self, ring: &RingView) {
        self.stride = ring.len() + 1;
        self.layers.clear();
        self.layers.extend_from_slice(&ring.c0);
        self.choice.clear();
        self.choice.resize(self.stride, 0);
    }

    /// Append one uninitialised (∞/0) layer and return its row offset.
    pub(crate) fn push_layer(&mut self) -> usize {
        let row = self.layers.len();
        self.layers.resize(row + self.stride, f64::INFINITY);
        self.choice.resize(row + self.stride, 0);
        row
    }
}

pub(crate) fn solve_naive(ring: &RingView, k: usize) -> DpResult {
    let n = ring.len();
    let mut dp = DpResult::new();
    dp.reset_to_c0(ring);
    for i in 1..=k {
        // "Exactly i pointers" semantics: C_i(m) = ∞ for m < i, including
        // C_i(0). The j = 1 transition reads C_{i−1}(0) via the special
        // case below rather than the previous row's cell 0.
        let prev_row = (i - 1) * dp.stride;
        let row = dp.push_layer();
        for j in 1..=n {
            let base = if j == 1 {
                // No nodes before the first pointer.
                if i == 1 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                dp.layers[prev_row + j - 1]
            };
            if base.is_infinite() {
                continue;
            }
            // Extend m from j to n, accumulating s(j, m) on the fly.
            let mut s = 0.0;
            let mut valid = true;
            for m in j..=n {
                let l = m - 1; // 0-indexed rank of the m-th successor
                if m > j {
                    // QoS: rank l needs a usable neighbor at distance
                    // ≥ qos_lo; the last pointer is at rank j − 1.
                    if let Some(lo) = ring.qos_lo[l] {
                        if ring.dist[j - 1] < lo {
                            valid = false;
                        }
                    }
                    if valid {
                        s += ring.weight[l] * f64::from(ring.dist_via(j - 1, l));
                    }
                }
                if !valid {
                    break;
                }
                let total = base + s;
                if total < dp.layers[row + m] {
                    dp.layers[row + m] = total;
                    dp.choice[row + m] = cast::index_to_u32(j);
                }
            }
        }
    }
    dp
}

/// Write the selection for `C_k(n)` into `out` without allocating beyond
/// `out`'s own (reused) buffers: backtrack the chosen ranks, map them to
/// ids, sort.
pub(crate) fn selection_into(
    ring: &RingView,
    dp: &DpResult,
    k: usize,
    out: &mut Selection,
) -> Result<(), SelectError> {
    let n = ring.len();
    out.aux.clear();
    out.cost = 0.0;
    if n == 0 {
        return Ok(());
    }
    if dp.cost(k, n).is_finite() {
        let (mut i, mut m) = (k, n);
        while i > 0 {
            let j = cast::index_from_u32(dp.pick(i, m));
            debug_assert!(j >= 1, "backtracking a feasible cell");
            out.aux.push(ring.ids[j - 1]);
            m = j - 1;
            i -= 1;
        }
        // Ids are unique, so the unstable sort is deterministic.
        out.aux.sort_unstable();
        out.cost = ring.total_weight() + dp.cost(k, n);
        return Ok(());
    }
    // Infeasible at k: the smallest feasible layer (if computed) tells the
    // caller how many pointers the QoS bounds demand.
    let required = (0..dp.layer_count()).position(|i| dp.cost(i, n).is_finite());
    Err(SelectError::QosInfeasible {
        required: required.map_or(u32::MAX, cast::index_to_u32),
        k: cast::index_to_u32(k),
    })
}

pub(crate) fn selection_from(
    ring: &RingView,
    dp: &DpResult,
    k: usize,
) -> Result<Selection, SelectError> {
    let mut out = Selection {
        aux: Vec::new(),
        cost: 0.0,
    };
    selection_into(ring, dp, k, &mut out)?;
    Ok(out)
}

/// One-shot selection via the reference `O(n²·k)` dynamic program (§V-A).
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met with
/// `k` pointers (`required` reports the smallest feasible count, which
/// always exists at `k = n`).
pub fn select_naive(problem: &ChordProblem) -> Result<Selection, SelectError> {
    let ring = RingView::new(problem)?;
    let k = problem.effective_k();
    let mut dp = solve_naive(&ring, k);
    let n = ring.len();
    if n > 0 && !dp.cost(k, n).is_finite() {
        // Extend layers until feasible so `required` is exact (≤ n).
        let mut i = k;
        while i < n && !dp.cost(i, n).is_finite() {
            i += 1;
            dp = solve_naive(&ring, i);
        }
    }
    selection_from(&ring, &dp, k)
}
