//! Auxiliary-neighbor selection for Chord (paper §V).
//!
//! Two interchangeable solvers over the same re-based ring model:
//!
//! * [`select_naive`] — the simple `O(n²·k)` dynamic program (§V-A);
//!   reference implementation.
//! * [`select_fast`] — the scalable algorithm (§V-B): precomputed
//!   segment oracles plus concavity-exploiting divide-and-conquer layers.
//!
//! Both honour per-candidate QoS delay bounds (§V-C).

mod fast;
pub(crate) mod naive;
pub(crate) mod oracle;
pub(crate) mod ring;

pub use fast::{select_fast, select_schedule, ChordWorkspace, PreparedChord};
pub use naive::select_naive;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::chord_cost;
    use crate::exhaustive::chord_exhaustive;
    use crate::problem::{Candidate, ChordProblem, SelectError};
    use peercache_id::{Id, IdSpace};

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn problem(
        bits: u8,
        source: u128,
        core: Vec<u128>,
        cands: Vec<(u128, f64)>,
        k: usize,
    ) -> ChordProblem {
        ChordProblem::new(
            IdSpace::new(bits).unwrap(),
            id(source),
            core.into_iter().map(id).collect(),
            cands
                .into_iter()
                .map(|(i, w)| Candidate::new(id(i), w))
                .collect(),
            k,
        )
        .unwrap()
    }

    #[test]
    fn naive_picks_the_heavy_distant_node() {
        // Node 9 is far (estimate 4) and hot; node 1 is already adjacent.
        let p = problem(4, 0, vec![1], vec![(9, 10.0), (2, 1.0)], 1);
        let sel = select_naive(&p).unwrap();
        assert_eq!(sel.aux, vec![id(9)]);
        assert_eq!(sel.cost, chord_cost(&p, &sel.aux));
    }

    #[test]
    fn naive_matches_exhaustive_small() {
        let p = problem(
            5,
            3,
            vec![4, 11],
            vec![(7, 3.0), (12, 1.0), (20, 7.0), (25, 2.0), (30, 5.0)],
            2,
        );
        let naive = select_naive(&p).unwrap();
        let best = chord_exhaustive(&p).unwrap();
        assert!(
            (naive.cost - best.cost).abs() < 1e-9,
            "{} vs {}",
            naive.cost,
            best.cost
        );
        assert_eq!(naive.cost, chord_cost(&p, &naive.aux));
    }

    #[test]
    fn fast_matches_naive_small() {
        let p = problem(
            6,
            10,
            vec![12, 20, 45],
            vec![
                (13, 3.0),
                (17, 1.0),
                (25, 7.0),
                (33, 2.0),
                (48, 5.0),
                (60, 4.0),
                (2, 1.5),
            ],
            3,
        );
        let fast = select_fast(&p).unwrap();
        let naive = select_naive(&p).unwrap();
        assert!(
            (fast.cost - naive.cost).abs() < 1e-9,
            "{} vs {}",
            fast.cost,
            naive.cost
        );
        assert_eq!(fast.cost, chord_cost(&p, &fast.aux));
    }

    #[test]
    fn k_zero_gives_core_only_cost() {
        let p = problem(4, 0, vec![2], vec![(3, 2.0), (9, 3.0)], 0);
        for sel in [select_naive(&p).unwrap(), select_fast(&p).unwrap()] {
            assert!(sel.aux.is_empty());
            assert_eq!(sel.cost, chord_cost(&p, &[]));
        }
    }

    #[test]
    fn k_exceeding_candidates_selects_everything() {
        let p = problem(4, 0, vec![], vec![(3, 1.0), (9, 1.0)], 5);
        for sel in [select_naive(&p).unwrap(), select_fast(&p).unwrap()] {
            assert_eq!(sel.aux.len(), 2);
            assert_eq!(sel.cost, 2.0, "all selected → Σ f_v");
        }
    }

    #[test]
    fn empty_candidates_is_fine() {
        let p = problem(4, 0, vec![2], vec![], 3);
        for sel in [select_naive(&p).unwrap(), select_fast(&p).unwrap()] {
            assert!(sel.aux.is_empty());
            assert_eq!(sel.cost, 0.0);
        }
    }

    #[test]
    fn pointers_do_not_help_preceding_nodes() {
        // A pointer close behind the source's far side cannot serve nodes
        // just after the source (Chord never routes backwards).
        let p = problem(4, 0, vec![], vec![(15, 1.0), (1, 8.0)], 1);
        let sel = select_naive(&p).unwrap();
        // Node 1's weight dominates; only a pointer at 1 brings it to 0
        // hops. A pointer at 15 would leave node 1 at the max estimate.
        assert_eq!(sel.aux, vec![id(1)]);
    }

    #[test]
    fn qos_forces_pointer_into_window() {
        // Node 12 demands ≤ 2 hops: a neighbor within distance window
        // [12 − 1, 12]. Heavy node 9 would otherwise win the only slot.
        let p = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![],
            vec![
                Candidate::with_max_hops(id(12), 0.1, 2),
                Candidate::new(id(9), 100.0),
            ],
            1,
        )
        .unwrap();
        for sel in [select_naive(&p).unwrap(), select_fast(&p).unwrap()] {
            assert_eq!(sel.aux, vec![id(12)]);
        }
    }

    #[test]
    fn qos_infeasible_reports_required_count() {
        let p = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![],
            vec![
                Candidate::with_max_hops(id(4), 1.0, 1),
                Candidate::with_max_hops(id(8), 1.0, 1),
                Candidate::with_max_hops(id(12), 1.0, 1),
            ],
            2,
        )
        .unwrap();
        for res in [select_naive(&p), select_fast(&p)] {
            match res {
                Err(SelectError::QosInfeasible { required, k }) => {
                    assert_eq!(required, 3);
                    assert_eq!(k, 2);
                }
                other => panic!("expected QosInfeasible, got {other:?}"),
            }
        }
    }

    #[test]
    fn qos_satisfied_by_core_is_free() {
        let p = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![id(11)],
            vec![
                Candidate::with_max_hops(id(12), 0.1, 2), // core 11 in window
                Candidate::new(id(9), 100.0),
            ],
            1,
        )
        .unwrap();
        for sel in [select_naive(&p).unwrap(), select_fast(&p).unwrap()] {
            assert_eq!(sel.aux, vec![id(9)], "budget free for the heavy node");
        }
    }

    #[test]
    fn quadrangle_inequality_holds() {
        // The property the divide-and-conquer layer relies on, checked on
        // a concrete instance with cores and QoS mixed in.
        use crate::chord::oracle::SegmentOracle;
        use crate::chord::ring::RingView;
        let p = ChordProblem::new(
            IdSpace::new(6).unwrap(),
            id(7),
            vec![id(9), id(30)],
            vec![
                Candidate::new(id(8), 3.0),
                Candidate::new(id(13), 1.0),
                Candidate::with_max_hops(id(22), 7.0, 4),
                Candidate::new(id(40), 2.0),
                Candidate::new(id(55), 5.0),
                Candidate::new(id(1), 4.0),
            ],
            2,
        )
        .unwrap();
        let ring = RingView::new(&p).unwrap();
        let oracle = SegmentOracle::new(&ring);
        let n = ring.len();
        for j in 0..n {
            for jp in j + 1..n {
                for m in jp..n {
                    for mp in m + 1..n {
                        let lhs = oracle.s(&ring, j, m) + oracle.s(&ring, jp, mp);
                        let rhs = oracle.s(&ring, j, mp) + oracle.s(&ring, jp, m);
                        assert!(
                            lhs <= rhs + 1e-9 || (lhs.is_infinite() && rhs.is_infinite()),
                            "QI violated at ({j},{jp},{m},{mp}): {lhs} vs {rhs}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_matches_per_budget_solves() {
        let p = problem(
            6,
            10,
            vec![12, 20],
            vec![
                (13, 3.0),
                (17, 1.0),
                (25, 7.0),
                (33, 2.0),
                (48, 5.0),
                (60, 4.0),
            ],
            4,
        );
        let schedule = select_schedule(&p).unwrap();
        assert_eq!(schedule.len(), 5, "budgets 0..=4 all feasible");
        let mut prev_cost = f64::INFINITY;
        for (i, sel) in &schedule {
            assert_eq!(sel.aux.len(), *i);
            let mut per_budget = p.clone();
            per_budget.k = *i;
            let direct = select_fast(&per_budget).unwrap();
            assert!(
                (sel.cost - direct.cost).abs() < 1e-9,
                "budget {i}: schedule {} vs direct {}",
                sel.cost,
                direct.cost
            );
            assert!(
                sel.cost <= prev_cost + 1e-9,
                "marginal value never negative"
            );
            prev_cost = sel.cost;
        }
    }

    #[test]
    fn schedule_omits_qos_infeasible_budgets() {
        let p = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![],
            vec![
                Candidate::with_max_hops(id(4), 1.0, 1),
                Candidate::with_max_hops(id(8), 1.0, 1),
                Candidate::new(id(12), 3.0),
            ],
            3,
        )
        .unwrap();
        let schedule = select_schedule(&p).unwrap();
        let budgets: Vec<usize> = schedule.iter().map(|(i, _)| *i).collect();
        assert_eq!(
            budgets,
            vec![2, 3],
            "budgets 0 and 1 cannot meet the bounds"
        );
    }

    #[test]
    fn wrap_around_sources_work() {
        // Source near the top of the ring; candidates wrap past zero.
        let p = problem(5, 30, vec![31], vec![(2, 4.0), (10, 1.0), (29, 2.0)], 1);
        let naive = select_naive(&p).unwrap();
        let fast = select_fast(&p).unwrap();
        let best = chord_exhaustive(&p).unwrap();
        assert!((naive.cost - best.cost).abs() < 1e-9);
        assert!((fast.cost - best.cost).abs() < 1e-9);
    }
}
