//! The re-based ring view shared by the Chord selection algorithms.
//!
//! All ids are re-based so the selecting node sits at the origin — the
//! paper's "zero-node" convention (§V) — and candidates are indexed by
//! rank in increasing clockwise distance. The hop estimate from a
//! neighbor `w` to a target `v` with `dist(w) ≤ dist(v)` is
//! `bitlen(dist(v) − dist(w))`, the position of the leftmost 1 (eq. 6);
//! neighbors *past* `v` are unusable because Chord only ever forwards to a
//! neighbor between the current node and the target.

use peercache_id::Id;

use crate::problem::{ChordProblem, SelectError};

/// Position of the leftmost 1 bit: `⌊log₂ x⌋ + 1`, and 0 for `x = 0`.
#[inline]
pub(crate) fn bitlen(x: u128) -> u32 {
    128 - x.leading_zeros()
}

/// Candidates and core neighbors of a [`ChordProblem`], re-based to the
/// source and sorted by clockwise distance.
pub(crate) struct RingView {
    /// Identifier width `b` — also the "unreachable" distance estimate.
    pub bits: u32,
    /// Candidate ids by rank (rank 0 = closest successor).
    pub ids: Vec<Id>,
    /// Clockwise distance from the source, by rank (strictly increasing).
    pub dist: Vec<u128>,
    /// Access frequency by rank.
    pub weight: Vec<f64>,
    /// `prefix_w[i] = Σ_{r < i} weight[r]` (length n + 1).
    pub prefix_w: Vec<f64>,
    /// Sorted clockwise distances of the core neighbors.
    pub core_dist: Vec<u128>,
    /// Per rank: hop estimate from the best *preceding* core neighbor
    /// (saturated to `bits` when no core precedes).
    pub dcore: Vec<u32>,
    /// Per rank: minimum distance a covering auxiliary pointer must have
    /// (QoS). `None` when the rank is unconstrained or its bound is
    /// already satisfied by a core neighbor.
    pub qos_lo: Vec<Option<u128>>,
    /// `c0[m]` = cost of ranks `0..m` using core neighbors only
    /// (`∞` once an unsatisfied QoS bound appears). Length n + 1.
    pub c0: Vec<f64>,
    /// Sort scratch reused across rebases: `(distance, candidate index)`.
    scratch: Vec<(u128, usize)>,
}

impl RingView {
    /// An empty view; populate it with [`rebase_into`](Self::rebase_into).
    pub fn empty() -> Self {
        RingView {
            bits: 0,
            ids: Vec::new(),
            dist: Vec::new(),
            weight: Vec::new(),
            prefix_w: Vec::new(),
            core_dist: Vec::new(),
            dcore: Vec::new(),
            qos_lo: Vec::new(),
            c0: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Re-base the problem around the source node: sort candidates by
    /// clockwise distance and precompute the distance, weight-prefix and
    /// QoS tables the DP recurrences consume.
    pub fn new(problem: &ChordProblem) -> Result<Self, SelectError> {
        let mut view = RingView::empty();
        view.rebase_into(problem)?;
        Ok(view)
    }

    /// [`new`](Self::new), but reusing this view's buffers: after the
    /// capacities have warmed up, rebasing a same-sized problem performs
    /// no allocation.
    pub fn rebase_into(&mut self, problem: &ChordProblem) -> Result<(), SelectError> {
        let space = problem.space;
        self.bits = u32::from(space.bits());

        // Distances from the same source are injective over distinct ids,
        // so the unstable sort on (distance, index) pairs is deterministic
        // and orders ranks exactly like the previous stable sort-by-key.
        self.scratch.clear();
        for (i, c) in problem.candidates.iter().enumerate() {
            self.scratch
                .push((space.clockwise_distance(problem.source, c.id), i));
        }
        self.scratch.sort_unstable();

        let n = self.scratch.len();
        self.ids.clear();
        self.dist.clear();
        self.weight.clear();
        for &(d, i) in &self.scratch {
            self.ids.push(problem.candidates[i].id);
            self.dist.push(d);
            self.weight.push(problem.candidates[i].weight);
        }

        self.prefix_w.clear();
        self.prefix_w.push(0.0);
        let mut acc_w = 0.0;
        for &w in &self.weight {
            acc_w += w;
            self.prefix_w.push(acc_w);
        }

        self.core_dist.clear();
        self.core_dist.extend(
            problem
                .core
                .iter()
                .map(|&c| space.clockwise_distance(problem.source, c)),
        );
        self.core_dist.sort_unstable();

        // Best preceding core neighbor per rank, plus the QoS window
        // bound, in one merge walk (both rank lists are sorted).
        //
        // QoS: a bound of x hops means d(v, N ∪ A) ≤ x − 1, i.e. a usable
        // neighbor within clockwise distance window
        // [dist(v) − (2^(x−1) − 1), dist(v)].
        self.dcore.clear();
        self.qos_lo.clear();
        let mut ci = 0usize; // number of cores at distance ≤ current rank
        for (r, &d) in self.dist.iter().enumerate() {
            while ci < self.core_dist.len() && self.core_dist[ci] <= d {
                ci += 1;
            }
            self.dcore.push(if ci == 0 {
                self.bits
            } else {
                bitlen(d - self.core_dist[ci - 1])
            });
            let lo = match problem.candidates[self.scratch[r].1].max_hops {
                None => None,
                Some(x) => {
                    let allowed = x - 1;
                    if allowed >= self.bits {
                        None // vacuous: even b hops satisfy it
                    } else {
                        let reach = (1u128 << allowed) - 1;
                        let lo = d.saturating_sub(reach);
                        // Satisfied outright by a core neighbor in window?
                        if ci > 0 && self.core_dist[ci - 1] >= lo {
                            None
                        } else {
                            // Any pointer at distance ≥ max(lo, 1) works
                            // (pointers all have distance ≥ 1).
                            Some(lo.max(1))
                        }
                    }
                }
            };
            self.qos_lo.push(lo);
        }

        // Core-only cost prefix (the DP's C_0), ∞ once a bound is unmet.
        self.c0.clear();
        self.c0.push(0.0);
        let mut acc: f64 = 0.0;
        for r in 0..n {
            if acc.is_finite() && self.qos_lo[r].is_some() {
                acc = f64::INFINITY;
            }
            if acc.is_finite() {
                acc += self.weight[r] * f64::from(self.dcore[r]);
            }
            self.c0.push(acc);
        }

        Ok(())
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Total candidate weight `Σ_v f_v`.
    pub fn total_weight(&self) -> f64 {
        // `prefix_w` always holds at least the leading 0.0 sentinel.
        self.prefix_w.last().copied().unwrap_or(0.0)
    }

    /// Hop estimate for target rank `l` with the nearest auxiliary pointer
    /// at rank `j ≤ l` (core neighbors still compete): the paper's
    /// per-node term inside `s(j, m)`.
    pub fn dist_via(&self, j: usize, l: usize) -> u32 {
        debug_assert!(j <= l);
        bitlen(self.dist[l] - self.dist[j]).min(self.dcore[l])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Candidate;
    use peercache_id::IdSpace;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn view(source: u128, core: Vec<u128>, cands: Vec<(u128, f64)>) -> RingView {
        let problem = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(source),
            core.into_iter().map(id).collect(),
            cands
                .into_iter()
                .map(|(i, w)| Candidate::new(id(i), w))
                .collect(),
            1,
        )
        .unwrap();
        RingView::new(&problem).unwrap()
    }

    #[test]
    fn bitlen_matches_leftmost_one() {
        assert_eq!(bitlen(0), 0);
        assert_eq!(bitlen(1), 1);
        assert_eq!(bitlen(2), 2);
        assert_eq!(bitlen(3), 2);
        assert_eq!(bitlen(4), 3);
        assert_eq!(bitlen(u128::MAX), 128);
    }

    #[test]
    fn ranks_sorted_by_clockwise_distance_with_wrap() {
        // Source 14 on a 16-ring: candidate 1 is at distance 3, candidate
        // 13 at distance 15.
        let v = view(14, vec![], vec![(13, 1.0), (1, 2.0), (15, 3.0)]);
        assert_eq!(v.dist, vec![1, 3, 15]);
        assert_eq!(v.ids, vec![id(15), id(1), id(13)]);
        assert_eq!(v.weight, vec![3.0, 2.0, 1.0]);
        assert_eq!(v.prefix_w, vec![0.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn dcore_uses_best_preceding_core() {
        // Core at distance 4; candidate at distance 5 → bitlen(1) = 1;
        // candidate at distance 2 → no preceding core → saturates at b = 4.
        let v = view(0, vec![4], vec![(5, 1.0), (2, 1.0)]);
        assert_eq!(v.dist, vec![2, 5]);
        assert_eq!(v.dcore, vec![4, 1]);
    }

    #[test]
    fn dist_via_takes_min_of_pointer_and_core() {
        let v = view(0, vec![4], vec![(5, 1.0), (6, 1.0)]);
        // Pointer at rank 0 (dist 5), target rank 1 (dist 6): bitlen(1)=1;
        // core gives bitlen(6−4)=2 → min 1.
        assert_eq!(v.dist_via(0, 1), 1);
        // Self-distance is 0.
        assert_eq!(v.dist_via(0, 0), 0);
    }

    #[test]
    fn c0_accumulates_core_only_costs() {
        let v = view(0, vec![1], vec![(2, 2.0), (9, 3.0)]);
        // rank 0: dist 2, core at 1 → bitlen(1) = 1 → 2·1 = 2
        // rank 1: dist 9, core at 1 → bitlen(8) = 4 → 3·4 = 12
        assert_eq!(v.c0, vec![0.0, 2.0, 14.0]);
    }

    #[test]
    fn qos_vacuous_and_core_covered_bounds_are_none() {
        let problem = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![id(7)],
            vec![
                Candidate::with_max_hops(id(3), 1.0, 5), // vacuous (b = 4)
                Candidate::with_max_hops(id(9), 1.0, 2), // core at 7: bitlen(2)=2 > 1
            ],
            1,
        )
        .unwrap();
        let v = RingView::new(&problem).unwrap();
        assert_eq!(v.qos_lo[0], None, "vacuous bound");
        // rank 1 = dist 9, bound 2 → window [9−1, 9] = [8,9]; core at 7 is
        // outside → needs a pointer at distance ≥ 8.
        assert_eq!(v.qos_lo[1], Some(8));
        assert!(v.c0[2].is_infinite());
    }

    #[test]
    fn qos_bound_covered_by_core_in_window() {
        let problem = ChordProblem::new(
            IdSpace::new(4).unwrap(),
            id(0),
            vec![id(8)],
            vec![Candidate::with_max_hops(id(9), 1.0, 2)],
            1,
        )
        .unwrap();
        let v = RingView::new(&problem).unwrap();
        assert_eq!(v.qos_lo[0], None, "core at 8 within [8, 9]");
        assert!(v.c0[1].is_finite());
    }
}
