//! The fast Chord dynamic program (paper §V-B).
//!
//! Two ingredients replace the naive `O(n²·k)` solve:
//!
//! 1. the [`SegmentOracle`](crate::chord::oracle) answers any `s(j, m)`
//!    query from `O(n·b·log n)`-precomputed tables, and
//! 2. each DP layer is solved with **divide-and-conquer optimisation**
//!    instead of scanning all `j` per `m`. This substitutes for the
//!    concave least-weight-subsequence algorithm of the paper's reference
//!    \[9\] (unavailable report): `s` satisfies the inverse quadrangle
//!    inequality — for `j < j'` and `m < m'`,
//!    `s(j, m) + s(j', m') ≤ s(j, m') + s(j', m)`, because the only
//!    asymmetric term is `w_{m'} · (δ(j', m') − δ(j, m')) ≤ 0` with the
//!    per-node estimate `δ` non-increasing in the pointer's proximity —
//!    so the per-row argmin is non-decreasing and each layer costs
//!    `O(n log n)` oracle queries. QoS infeasibility (∞ entries) preserves
//!    the inequality since `s(j, ·)` hits ∞ no later than `s(j', ·)` …
//!    see `quadrangle_inequality_holds` in the crate tests.

use crate::cast;
use crate::chord::naive::{selection_from, DpResult};
use crate::chord::oracle::SegmentOracle;
use crate::chord::ring::RingView;
use crate::problem::{ChordProblem, SelectError, Selection};

/// Solve one DP layer with divide-and-conquer over the monotone argmin.
///
/// `g[j]` = `C_{i−1}(j − 1)` for `j ∈ 1..=n` (`g[0]` unused); outputs
/// `cur[m]` and the achieving `j` in `ch[m]`.
fn layer_dc(oracle: &SegmentOracle<'_>, g: &[f64], cur: &mut [f64], ch: &mut [u32]) {
    let n = g.len() - 1;
    if n == 0 {
        return;
    }
    // Explicit work-stack recursion: (m_lo, m_hi, j_lo, j_hi) inclusive.
    let mut stack = vec![(1usize, n, 1usize, n)];
    while let Some((mlo, mhi, jlo, jhi)) = stack.pop() {
        if mlo > mhi {
            continue;
        }
        let mid = mlo + (mhi - mlo) / 2;
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        #[allow(clippy::needless_range_loop)] // j is the DP column index, not a slice walk
        for j in jlo..=jhi.min(mid) {
            if g[j].is_infinite() {
                continue;
            }
            let val = g[j] + oracle.s(j - 1, mid - 1);
            if val < best {
                best = val;
                best_j = j;
            }
        }
        cur[mid] = best;
        ch[mid] = cast::index_to_u32(best_j);
        if best_j == 0 {
            // Row infeasible: no information about the argmin; keep the
            // full column range on both sides.
            stack.push((mlo, mid.wrapping_sub(1), jlo, jhi));
            stack.push((mid + 1, mhi, jlo, jhi));
        } else {
            stack.push((mlo, mid.wrapping_sub(1), jlo, best_j));
            stack.push((mid + 1, mhi, best_j, jhi));
        }
    }
}

pub(crate) fn solve_fast(ring: &RingView, oracle: &SegmentOracle<'_>, k: usize) -> DpResult {
    let n = ring.len();
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(k + 1);
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
    layers.push(ring.c0.clone());
    choice.push(vec![0; n + 1]);
    for i in 1..=k {
        let prev = &layers[i - 1];
        // g[j] = C_{i−1}(j − 1) with the exactly-i placement convention:
        // C_{i−1}(0) is 0 only when i = 1.
        let mut g = vec![f64::INFINITY; n + 1];
        for j in 1..=n {
            g[j] = if j == 1 {
                if i == 1 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                prev[j - 1]
            };
        }
        let mut cur = vec![f64::INFINITY; n + 1];
        let mut ch = vec![0u32; n + 1];
        layer_dc(oracle, &g, &mut cur, &mut ch);
        layers.push(cur);
        choice.push(ch);
    }
    DpResult { layers, choice }
}

/// The full budget schedule from one fast-DP run: the optimal selection
/// for **every** feasible pointer budget `i ≤ k`, as `(i, selection)`
/// pairs in increasing `i`.
///
/// The layered DP computes all of `C_1 … C_k` anyway, so this costs no
/// more than [`select_fast`]; use it to explore the marginal value of
/// each additional routing-table slot (the maintenance-cost trade-off of
/// §I). Budgets made infeasible by QoS bounds are simply absent.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input.
pub fn select_schedule(problem: &ChordProblem) -> Result<Vec<(usize, Selection)>, SelectError> {
    let ring = RingView::new(problem)?;
    let oracle = SegmentOracle::new(&ring);
    let k = problem.effective_k();
    let dp = solve_fast(&ring, &oracle, k);
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_chord_fast_matches_naive(&ring, &dp, k);
    let mut out = Vec::with_capacity(k + 1);
    for i in 0..=k {
        if let Ok(sel) = selection_from(&ring, &dp, i) {
            out.push((i, sel));
        }
    }
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_schedule_costs_monotone(&out);
    Ok(out)
}

/// The §V-B solve split at its phase boundary: the source-rooted ring
/// rebase (candidate ranking, distance estimates, prefix aggregates) is
/// captured once at construction, and [`PreparedChord::solve`] then runs
/// the segment-oracle precompute plus the layered DP per budget.
///
/// Exposed so the `perf_baseline` timer can attribute cost to the two
/// phases separately, and so callers re-solving the same problem under
/// several budgets `k` skip the rebase.
pub struct PreparedChord {
    ring: RingView,
}

impl PreparedChord {
    /// Phase 1 of §V-B: rebase `problem` onto the source-rooted ring.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input.
    pub fn new(problem: &ChordProblem) -> Result<Self, SelectError> {
        Ok(PreparedChord {
            ring: RingView::new(problem)?,
        })
    }

    /// Number of ranked candidates in the rebased ring.
    #[must_use]
    pub fn candidates(&self) -> usize {
        self.ring.len()
    }

    /// Phase 2 of §V-B: segment-oracle precompute (`O(n·b·log n)`) plus
    /// the `k`-layer divide-and-conquer DP (`O(k·n·log n)`), escalating
    /// the layer count when QoS bounds make exactly-`k` placements
    /// infeasible (mirroring [`select_fast`]).
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] when delay bounds cannot be met
    /// with `k` pointers.
    pub fn solve(&self, k: usize) -> Result<Selection, SelectError> {
        let ring = &self.ring;
        let oracle = SegmentOracle::new(ring);
        let mut dp = solve_fast(ring, &oracle, k);
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_chord_fast_matches_naive(ring, &dp, k);
        let n = ring.len();
        if n > 0 && !dp.layers[k][n].is_finite() {
            let mut i = k;
            while i < n && !dp.layers[i][n].is_finite() {
                i += 1;
                dp = solve_fast(ring, &oracle, i);
            }
        }
        selection_from(ring, &dp, k)
    }
}

/// One-shot selection via the fast algorithm (paper §V-B):
/// `O(n·b·log n)` preprocessing plus `O(k·n·log n)` DP.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met with
/// `k` pointers.
pub fn select_fast(problem: &ChordProblem) -> Result<Selection, SelectError> {
    PreparedChord::new(problem)?.solve(problem.effective_k())
}
