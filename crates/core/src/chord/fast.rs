//! The fast Chord dynamic program (paper §V-B).
//!
//! Two ingredients replace the naive `O(n²·k)` solve:
//!
//! 1. the [`SegmentOracle`](crate::chord::oracle) answers any `s(j, m)`
//!    query from `O(n·b·log n)`-precomputed tables, and
//! 2. each DP layer is solved with **divide-and-conquer optimisation**
//!    instead of scanning all `j` per `m`. This substitutes for the
//!    concave least-weight-subsequence algorithm of the paper's reference
//!    \[9\] (unavailable report): `s` satisfies the inverse quadrangle
//!    inequality — for `j < j'` and `m < m'`,
//!    `s(j, m) + s(j', m') ≤ s(j, m') + s(j', m)`, because the only
//!    asymmetric term is `w_{m'} · (δ(j', m') − δ(j, m')) ≤ 0` with the
//!    per-node estimate `δ` non-increasing in the pointer's proximity —
//!    so the per-row argmin is non-decreasing and each layer costs
//!    `O(n log n)` oracle queries. QoS infeasibility (∞ entries) preserves
//!    the inequality since `s(j, ·)` hits ∞ no later than `s(j', ·)` …
//!    see `quadrangle_inequality_holds` in the crate tests.
//!
//! All solver state lives in flat, caller-owned buffers: the `_into`
//! entry points and [`ChordWorkspace`] make repeated solves allocation
//! free after warm-up.

use crate::cast;
use crate::chord::naive::{selection_from, selection_into, DpResult};
use crate::chord::oracle::SegmentOracle;
use crate::chord::ring::RingView;
use crate::problem::{ChordProblem, SelectError, Selection};

/// Solve one DP layer with divide-and-conquer over the monotone argmin.
///
/// `g[j]` = `C_{i−1}(j − 1)` for `j ∈ 1..=n` (`g[0]` unused); outputs
/// `cur[m]` and the achieving `j` in `ch[m]`. `stack` is the explicit
/// recursion stack, reused across layers.
fn layer_dc(
    oracle: &SegmentOracle,
    ring: &RingView,
    g: &[f64],
    cur: &mut [f64],
    ch: &mut [u32],
    stack: &mut Vec<(usize, usize, usize, usize)>,
) {
    let n = g.len() - 1;
    if n == 0 {
        return;
    }
    // Explicit work-stack recursion: (m_lo, m_hi, j_lo, j_hi) inclusive.
    stack.clear();
    stack.push((1usize, n, 1usize, n));
    while let Some((mlo, mhi, jlo, jhi)) = stack.pop() {
        if mlo > mhi {
            continue;
        }
        let mid = mlo + (mhi - mlo) / 2;
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        #[allow(clippy::needless_range_loop)] // j is the DP column index, not a slice walk
        for j in jlo..=jhi.min(mid) {
            if g[j].is_infinite() {
                continue;
            }
            let val = g[j] + oracle.s(ring, j - 1, mid - 1);
            if val < best {
                best = val;
                best_j = j;
            }
        }
        cur[mid] = best;
        ch[mid] = cast::index_to_u32(best_j);
        if best_j == 0 {
            // Row infeasible: no information about the argmin; keep the
            // full column range on both sides.
            stack.push((mlo, mid.wrapping_sub(1), jlo, jhi));
            stack.push((mid + 1, mhi, jlo, jhi));
        } else {
            stack.push((mlo, mid.wrapping_sub(1), jlo, best_j));
            stack.push((mid + 1, mhi, best_j, jhi));
        }
    }
}

/// The layered §V-B solve writing into caller-owned buffers: `dp` holds
/// the result, `g` and `stack` are per-layer scratch. No allocation once
/// all three have warmed-up capacity.
pub(crate) fn solve_fast_into(
    ring: &RingView,
    oracle: &SegmentOracle,
    k: usize,
    dp: &mut DpResult,
    g: &mut Vec<f64>,
    stack: &mut Vec<(usize, usize, usize, usize)>,
) {
    let n = ring.len();
    dp.reset_to_c0(ring);
    for i in 1..=k {
        // g[j] = C_{i−1}(j − 1) with the exactly-i placement convention:
        // C_{i−1}(0) is 0 only when i = 1.
        let prev_row = (i - 1) * dp.stride;
        g.clear();
        g.resize(n + 1, f64::INFINITY);
        if n >= 1 {
            g[1] = if i == 1 { 0.0 } else { f64::INFINITY };
        }
        if n >= 2 {
            g[2..=n].copy_from_slice(&dp.layers[prev_row + 1..prev_row + n]);
        }
        let row = dp.push_layer();
        let (_, cur) = dp.layers.split_at_mut(row);
        let (_, ch) = dp.choice.split_at_mut(row);
        layer_dc(oracle, ring, g, cur, ch, stack);
    }
}

pub(crate) fn solve_fast(ring: &RingView, oracle: &SegmentOracle, k: usize) -> DpResult {
    let mut dp = DpResult::new();
    let mut g = Vec::new();
    let mut stack = Vec::new();
    solve_fast_into(ring, oracle, k, &mut dp, &mut g, &mut stack);
    dp
}

/// The full budget schedule from one fast-DP run: the optimal selection
/// for **every** feasible pointer budget `i ≤ k`, as `(i, selection)`
/// pairs in increasing `i`.
///
/// The layered DP computes all of `C_1 … C_k` anyway, so this costs no
/// more than [`select_fast`]; use it to explore the marginal value of
/// each additional routing-table slot (the maintenance-cost trade-off of
/// §I). Budgets made infeasible by QoS bounds are simply absent.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input.
pub fn select_schedule(problem: &ChordProblem) -> Result<Vec<(usize, Selection)>, SelectError> {
    let ring = RingView::new(problem)?;
    let oracle = SegmentOracle::new(&ring);
    let k = problem.effective_k();
    let dp = solve_fast(&ring, &oracle, k);
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_chord_fast_matches_naive(&ring, &dp, k);
    let mut out = Vec::with_capacity(k + 1);
    for i in 0..=k {
        if let Ok(sel) = selection_from(&ring, &dp, i) {
            out.push((i, sel));
        }
    }
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_schedule_costs_monotone(&out);
    Ok(out)
}

/// The §V-B solve split at its phase boundary: the source-rooted ring
/// rebase (candidate ranking, distance estimates, prefix aggregates) is
/// captured once at construction, and [`PreparedChord::solve`] then runs
/// the segment-oracle precompute plus the layered DP per budget.
///
/// Exposed so the `perf_baseline` timer can attribute cost to the two
/// phases separately, and so callers re-solving the same problem under
/// several budgets `k` skip the rebase.
pub struct PreparedChord {
    ring: RingView,
}

impl PreparedChord {
    /// Phase 1 of §V-B: rebase `problem` onto the source-rooted ring.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input.
    pub fn new(problem: &ChordProblem) -> Result<Self, SelectError> {
        Ok(PreparedChord {
            ring: RingView::new(problem)?,
        })
    }

    /// Number of ranked candidates in the rebased ring.
    #[must_use]
    pub fn candidates(&self) -> usize {
        self.ring.len()
    }

    /// Phase 2 of §V-B: segment-oracle precompute (`O(n·b·log n)`) plus
    /// the `k`-layer divide-and-conquer DP (`O(k·n·log n)`), escalating
    /// the layer count when QoS bounds make exactly-`k` placements
    /// infeasible (mirroring [`select_fast`]).
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] when delay bounds cannot be met
    /// with `k` pointers.
    pub fn solve(&self, k: usize) -> Result<Selection, SelectError> {
        let ring = &self.ring;
        let oracle = SegmentOracle::new(ring);
        let mut dp = solve_fast(ring, &oracle, k);
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_chord_fast_matches_naive(ring, &dp, k);
        let n = ring.len();
        if n > 0 && !dp.cost(k, n).is_finite() {
            let mut i = k;
            while i < n && !dp.cost(i, n).is_finite() {
                i += 1;
                dp = solve_fast(ring, &oracle, i);
            }
        }
        selection_from(ring, &dp, k)
    }
}

/// A reusable §V-B solver: owns the rebased ring, the segment oracle, the
/// DP tables and every scratch buffer, so that repeated
/// [`solve_into`](Self::solve_into) calls allocate **nothing** once the
/// buffer capacities have warmed up to the problem size.
///
/// Results are bit-identical to the one-shot [`select_fast`]; the
/// workspace only changes where the intermediate state lives.
pub struct ChordWorkspace {
    ring: RingView,
    oracle: SegmentOracle,
    dp: DpResult,
    g: Vec<f64>,
    stack: Vec<(usize, usize, usize, usize)>,
    selection: Selection,
}

impl Default for ChordWorkspace {
    fn default() -> Self {
        ChordWorkspace::new()
    }
}

impl ChordWorkspace {
    /// An empty workspace; buffers grow to the largest problem solved.
    #[must_use]
    pub fn new() -> Self {
        ChordWorkspace {
            ring: RingView::empty(),
            oracle: SegmentOracle::empty(),
            dp: DpResult::new(),
            g: Vec::new(),
            stack: Vec::new(),
            selection: Selection {
                aux: Vec::new(),
                cost: 0.0,
            },
        }
    }

    /// Solve `problem` with the fast algorithm, reusing this workspace's
    /// buffers. The returned selection borrows the workspace and is
    /// overwritten by the next solve; clone it to keep it.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input;
    /// [`SelectError::QosInfeasible`] when delay bounds cannot be met
    /// with `k` pointers.
    pub fn solve_into(&mut self, problem: &ChordProblem) -> Result<&Selection, SelectError> {
        let k = problem.effective_k();
        self.ring.rebase_into(problem)?;
        self.oracle.rebuild(&self.ring);
        solve_fast_into(
            &self.ring,
            &self.oracle,
            k,
            &mut self.dp,
            &mut self.g,
            &mut self.stack,
        );
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_chord_fast_matches_naive(&self.ring, &self.dp, k);
        let n = self.ring.len();
        if n > 0 && !self.dp.cost(k, n).is_finite() {
            // Escalate the layer count so QosInfeasible reports the exact
            // smallest feasible budget, mirroring `PreparedChord::solve`.
            let mut i = k;
            while i < n && !self.dp.cost(i, n).is_finite() {
                i += 1;
                solve_fast_into(
                    &self.ring,
                    &self.oracle,
                    i,
                    &mut self.dp,
                    &mut self.g,
                    &mut self.stack,
                );
            }
        }
        selection_into(&self.ring, &self.dp, k, &mut self.selection)?;
        Ok(&self.selection)
    }
}

/// One-shot selection via the fast algorithm (paper §V-B):
/// `O(n·b·log n)` preprocessing plus `O(k·n·log n)` DP.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met with
/// `k` pointers.
pub fn select_fast(problem: &ChordProblem) -> Result<Selection, SelectError> {
    PreparedChord::new(problem)?.solve(problem.effective_k())
}
