//! # peercache-core
//!
//! Optimal auxiliary-neighbor selection for structured P2P overlays — a
//! from-scratch implementation of
//!
//! > *Accelerating Lookups in P2P Systems using Peer Caching*
//! > (Deb, Linga, Rastogi, Srinivasan — ICDE 2008).
//!
//! A DHT node routes with `O(log n)` **core neighbors** chosen for
//! worst-case hop counts. This crate answers the paper's question: given
//! the access frequencies `f_v` of the peers a node has seen queries for,
//! which `k` **auxiliary neighbors** should it additionally cache to
//! minimise the *average* lookup cost
//!
//! ```text
//! Cost(A) = Σ_v f_v · (1 + d(v, N ∪ A))          (eq. 1)
//! ```
//!
//! under the overlay's id-derived hop-distance estimate `d`?
//!
//! ## Solvers
//!
//! | Function | System | Algorithm | Complexity |
//! |----------|--------|-----------|------------|
//! | [`pastry::select_dp`] | Pastry | trie DP (§IV-A) | `O(n·k²·b)` |
//! | [`pastry::select_greedy`] | Pastry | greedy trie DP (§IV-B) | `O(n·k·b)` |
//! | [`pastry::PastryOptimizer`] | Pastry | incremental (§IV-C) | `O(k·b)` per change |
//! | [`chord::select_naive`] | Chord | ring DP (§V-A) | `O(n²·k)` |
//! | [`chord::select_fast`] | Chord | oracle + concave DP (§V-B) | `O(n·(b + k·log n)·log n)` |
//! | [`baseline::pastry_oblivious`], [`baseline::chord_oblivious`] | both | frequency-oblivious baseline (§VI-A) | `O(n)` |
//! | [`exhaustive::pastry_exhaustive`], [`exhaustive::chord_exhaustive`] | both | brute force (validation) | exponential |
//!
//! Every solver honours optional per-candidate **QoS delay bounds**
//! (§IV-D, §V-C): queries for a bounded peer must resolve within its
//! `max_hops`.
//!
//! ## Example
//!
//! ```
//! use peercache_core::{Candidate, ChordProblem, chord::select_fast};
//! use peercache_id::{Id, IdSpace};
//!
//! let space = IdSpace::new(16).unwrap();
//! let problem = ChordProblem::new(
//!     space,
//!     Id::new(0),                      // the selecting node
//!     vec![Id::new(1), Id::new(700)],  // its core neighbors
//!     vec![
//!         Candidate::new(Id::new(40_000), 120.0), // hot, far peer
//!         Candidate::new(Id::new(3), 2.0),        // cold, near peer
//!     ],
//!     1,
//! ).unwrap();
//! let selection = select_fast(&problem).unwrap();
//! assert_eq!(selection.aux, vec![Id::new(40_000)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub(crate) mod cast;
pub mod chord;
pub mod cost;
pub mod exhaustive;
#[cfg(feature = "check-invariants")]
pub(crate) mod invariants;
pub mod pastry;
mod problem;

pub use problem::{Candidate, ChordProblem, PastryProblem, SelectError, Selection};
