//! Paper-invariant checkers, compiled only under the `check-invariants`
//! feature.
//!
//! Each checker cross-validates a structural property the algorithms rely
//! on, at the point where the production code path has just exercised it:
//!
//! * **Fast vs. naive Chord DP agreement** — the divide-and-conquer layer
//!   solve of §V-B must reproduce the reference §V-A recurrence cell for
//!   cell (this is exactly the inverse-quadrangle-inequality argument made
//!   executable);
//! * **Cost monotonicity in `k`** — an extra auxiliary pointer can never
//!   make the optimal cost worse;
//! * **Subset property (P)** — the optimal `j − 1` pointers are contained
//!   in the optimal `j` pointers (§IV-B), the property the greedy trie
//!   algorithm's correctness rests on;
//! * **Greedy vs. full-DP agreement** — the greedy §IV-B optimiser must
//!   match the reference §IV-A dynamic program's optimal cost.
//!
//! All checks are `debug_assert!`-based, so a release build with the
//! feature enabled still compiles them away; the expensive cross-solves
//! are additionally size-gated so property tests over large instances stay
//! fast. Run the suite with `cargo test --workspace --features
//! check-invariants`.

use peercache_id::Id;

use crate::chord::naive::{solve_naive, DpResult};
use crate::chord::ring::RingView;
use crate::problem::{PastryProblem, Selection};

/// Largest candidate count for which the fast Chord DP is re-solved with
/// the naive recurrence on every call.
const CHORD_CROSS_CHECK_MAX_N: usize = 256;

/// Largest candidate count for which the greedy Pastry solve is re-solved
/// with the reference dynamic program on every call.
const PASTRY_CROSS_CHECK_MAX_N: usize = 64;

/// Relative/absolute tolerance for comparing accumulated f64 costs.
const COST_EPS: f64 = 1e-6;

fn costs_agree(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
        || (a - b).abs() <= COST_EPS * (1.0 + a.abs().min(b.abs()))
}

/// Check that every cell of a fast-DP solve matches the naive §V-A
/// recurrence. No-op above [`CHORD_CROSS_CHECK_MAX_N`] candidates.
pub(crate) fn assert_chord_fast_matches_naive(ring: &RingView, dp: &DpResult, k: usize) {
    let n = ring.len();
    if n > CHORD_CROSS_CHECK_MAX_N {
        return;
    }
    let reference = solve_naive(ring, k);
    for i in 0..=k {
        for m in 0..=n {
            debug_assert!(
                costs_agree(dp.cost(i, m), reference.cost(i, m)),
                "fast DP disagrees with naive DP at C_{i}({m}): \
                 fast = {}, naive = {}",
                dp.cost(i, m),
                reference.cost(i, m),
            );
        }
    }
}

/// Check that optimal costs are non-increasing in the pointer budget.
pub(crate) fn assert_schedule_costs_monotone(schedule: &[(usize, Selection)]) {
    for pair in schedule.windows(2) {
        debug_assert!(
            pair[1].1.cost <= pair[0].1.cost + COST_EPS * (1.0 + pair[0].1.cost.abs()),
            "optimal cost increased with the budget: k = {} gives {}, k = {} gives {}",
            pair[0].0,
            pair[0].1.cost,
            pair[1].0,
            pair[1].1.cost,
        );
    }
}

/// Check the subset property (P): every consecutive pair of selections in
/// a budget schedule must nest.
pub(crate) fn assert_schedule_selections_nested(schedule: &[(usize, Selection)]) {
    for pair in schedule.windows(2) {
        let (smaller, larger) = (&pair[0].1, &pair[1].1);
        debug_assert!(
            smaller.aux.iter().all(|id| larger.aux.contains(id)),
            "subset property (P) violated between budgets {} and {}: \
             {:?} is not contained in {:?}",
            pair[0].0,
            pair[1].0,
            smaller.aux,
            larger.aux,
        );
    }
}

/// Largest leaf count for which the trie's flat sorted leaf index is
/// cross-checked against a freshly built `BTreeMap` on every mutation.
const TRIE_INDEX_CHECK_MAX_N: usize = 256;

/// Check that the trie's flat sorted `Vec<(Id, vertex)>` leaf index is
/// exactly what the `BTreeMap` it replaced would hold: same length (no
/// duplicate ids) and same iteration order (sorted, so binary search is
/// valid). No-op above [`TRIE_INDEX_CHECK_MAX_N`] leaves.
pub(crate) fn assert_leaf_index_sorted(leaves: &[(Id, u32)]) {
    if leaves.len() > TRIE_INDEX_CHECK_MAX_N {
        return;
    }
    let reference: std::collections::BTreeMap<Id, u32> = leaves.iter().copied().collect();
    debug_assert_eq!(
        reference.len(),
        leaves.len(),
        "flat leaf index holds a duplicate id"
    );
    for (pair, (&id, &v)) in leaves.iter().zip(reference.iter()) {
        debug_assert_eq!(
            *pair,
            (id, v),
            "flat leaf index diverges from the BTreeMap reference"
        );
    }
}

/// Check that the greedy §IV-B result matches the reference §IV-A dynamic
/// program's optimal cost. No-op above [`PASTRY_CROSS_CHECK_MAX_N`]
/// candidates.
pub(crate) fn assert_greedy_matches_dp(problem: &PastryProblem, greedy: &Selection) {
    if problem.candidates.len() > PASTRY_CROSS_CHECK_MAX_N {
        return;
    }
    if let Ok(reference) = crate::pastry::select_dp(problem) {
        debug_assert!(
            costs_agree(greedy.cost, reference.cost),
            "greedy cost {} disagrees with DP optimum {} (aux {:?} vs {:?})",
            greedy.cost,
            reference.cost,
            greedy.aux,
            reference.aux,
        );
    }
}
