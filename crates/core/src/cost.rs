//! Direct evaluation of the paper's objective (eq. 1).
//!
//! These evaluators compute `Cost(A) = Σ_v f_v (1 + d(v, N ∪ A))` straight
//! from the definition, with no dynamic programming. They are the ground
//! truth every optimiser in this crate is validated against, and the
//! reporting path for experiments.

use peercache_id::{Id, IdSpace};

use crate::problem::{Candidate, ChordProblem, PastryProblem};

/// Pastry distance estimate `d(v, S)`: the minimum over `w ∈ S` of the
/// digits-to-fix estimate (paper §IV). With `S = ∅` the estimate is the
/// full digit count (nothing is known about `v`, routing may fix every
/// digit).
pub fn pastry_set_distance(space: IdSpace, digit_bits: u8, v: Id, set: &[Id]) -> u32 {
    let max = u32::from(
        space
            .digit_count(digit_bits)
            .expect("validated digit width"),
    );
    set.iter()
        .map(|&w| {
            space
                .pastry_hops(v, w, digit_bits)
                .expect("validated digit width")
        })
        .min()
        .unwrap_or(max)
}

/// Chord distance estimate `d(S, v)` as seen from `source`: the minimum
/// over usable `w ∈ S` of the leftmost-one estimate from `w` to `v`
/// (paper eq. 6).
///
/// Only neighbors on the clockwise arc from `source` to `v` are usable —
/// Chord forwards exclusively to a neighbor *between* the current node
/// and the target, so a neighbor past `v` never serves a lookup for `v`
/// (this is also what the paper's recurrences credit). With no usable
/// neighbor the estimate is `b` (worst case).
pub fn chord_set_distance(space: IdSpace, source: Id, v: Id, set: &[Id]) -> u32 {
    let dv = space.clockwise_distance(source, v);
    set.iter()
        .filter(|&&w| space.clockwise_distance(source, w) <= dv)
        .map(|&w| space.chord_hops(w, v))
        .min()
        .unwrap_or(space.max_chord_hops())
}

fn total_cost<F>(candidates: &[Candidate], mut dist: F) -> f64
where
    F: FnMut(Id) -> u32,
{
    candidates
        .iter()
        .map(|c| c.weight * (1.0 + f64::from(dist(c.id))))
        .sum()
}

/// Evaluate eq. (1) for a Pastry problem with auxiliary set `aux`.
pub fn pastry_cost(problem: &PastryProblem, aux: &[Id]) -> f64 {
    let mut neighbors: Vec<Id> = problem.core.clone();
    neighbors.extend_from_slice(aux);
    total_cost(&problem.candidates, |v| {
        pastry_set_distance(problem.space, problem.digit_bits, v, &neighbors)
    })
}

/// Evaluate eq. (1) for a Chord problem with auxiliary set `aux`.
pub fn chord_cost(problem: &ChordProblem, aux: &[Id]) -> f64 {
    let mut neighbors: Vec<Id> = problem.core.clone();
    neighbors.extend_from_slice(aux);
    total_cost(&problem.candidates, |v| {
        chord_set_distance(problem.space, problem.source, v, &neighbors)
    })
}

/// Whether every QoS delay bound in `candidates` is met by `N ∪ A` under
/// the Pastry distance estimate: `1 + d(v, N ∪ A) ≤ max_hops`.
#[allow(clippy::int_plus_one)] // mirrors the paper's `1 + d(v, N ∪ A) ≤ x` form
pub fn pastry_qos_satisfied(problem: &PastryProblem, aux: &[Id]) -> bool {
    let mut neighbors: Vec<Id> = problem.core.clone();
    neighbors.extend_from_slice(aux);
    problem.candidates.iter().all(|c| match c.max_hops {
        None => true,
        Some(bound) => {
            1 + pastry_set_distance(problem.space, problem.digit_bits, c.id, &neighbors) <= bound
        }
    })
}

/// Whether every QoS delay bound in `candidates` is met by `N ∪ A` under
/// the Chord distance estimate.
#[allow(clippy::int_plus_one)] // mirrors the paper's `1 + d(v, N ∪ A) ≤ x` form
pub fn chord_qos_satisfied(problem: &ChordProblem, aux: &[Id]) -> bool {
    let mut neighbors: Vec<Id> = problem.core.clone();
    neighbors.extend_from_slice(aux);
    problem.candidates.iter().all(|c| match c.max_hops {
        None => true,
        Some(bound) => {
            1 + chord_set_distance(problem.space, problem.source, c.id, &neighbors) <= bound
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Candidate;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn space() -> IdSpace {
        IdSpace::new(4).unwrap()
    }

    #[test]
    fn pastry_set_distance_takes_minimum() {
        let s = space();
        // v = 0b1011; 0b1111 shares 1 bit (dist 3), 0b1010 shares 3 (dist 1).
        let d = pastry_set_distance(s, 1, id(0b1011), &[id(0b1111), id(0b1010)]);
        assert_eq!(d, 1);
    }

    #[test]
    fn pastry_set_distance_empty_is_digit_count() {
        assert_eq!(pastry_set_distance(space(), 1, id(3), &[]), 4);
        assert_eq!(pastry_set_distance(space(), 2, id(3), &[]), 2);
    }

    #[test]
    fn pastry_member_distance_is_zero() {
        assert_eq!(pastry_set_distance(space(), 1, id(3), &[id(3)]), 0);
    }

    #[test]
    fn chord_set_distance_respects_direction() {
        let s = space();
        // From source 0 to v = 4: neighbor 3 precedes v (cw dist 3 ≤ 4)
        // and is 1 away; neighbor 5 is past v and unusable.
        assert_eq!(chord_set_distance(s, id(0), id(4), &[id(3)]), 1);
        assert_eq!(chord_set_distance(s, id(0), id(4), &[id(5)]), 4);
        assert_eq!(chord_set_distance(s, id(0), id(4), &[id(3), id(5)]), 1);
    }

    #[test]
    fn chord_set_distance_ignores_neighbors_past_target() {
        let s = space();
        // Neighbor 15 is 2 ids behind v = 1 on the raw ring (bitlen 2),
        // but from source 0 it lies PAST v, so Chord cannot use it.
        assert_eq!(chord_set_distance(s, id(0), id(1), &[id(15)]), 4);
        // From source 14 the same neighbor precedes v and is usable.
        assert_eq!(chord_set_distance(s, id(14), id(1), &[id(15)]), 2);
    }

    #[test]
    fn chord_set_distance_empty_is_bits() {
        assert_eq!(chord_set_distance(space(), id(0), id(4), &[]), 4);
    }

    #[test]
    fn pastry_cost_matches_hand_computation() {
        let s = space();
        let problem = PastryProblem::new(
            s,
            1,
            id(0b0000),
            vec![id(0b1000)], // core: shares 0 bits with 0b0111 → d 4... etc.
            vec![
                Candidate::new(id(0b1001), 2.0), // lcp with core 1000 = 3 → d 1
                Candidate::new(id(0b0111), 5.0), // lcp with core = 0 → d 4
            ],
            1,
        )
        .unwrap();
        // No aux: cost = 2(1+1) + 5(1+4) = 29.
        assert_eq!(pastry_cost(&problem, &[]), 29.0);
        // Aux at 0b0111: its distance drops to 0 → 2(1+1) + 5(1+0) = 9.
        assert_eq!(pastry_cost(&problem, &[id(0b0111)]), 9.0);
    }

    #[test]
    fn chord_cost_matches_hand_computation() {
        let s = space();
        let problem = ChordProblem::new(
            s,
            id(0),
            vec![id(1)],
            vec![
                Candidate::new(id(2), 1.0), // from core 1: cw 1 → d 1
                Candidate::new(id(9), 3.0), // from core 1: cw 8 → d 4
            ],
            1,
        )
        .unwrap();
        assert_eq!(chord_cost(&problem, &[]), 1.0 * 2.0 + 3.0 * 5.0);
        // Aux at 9 zeroes its own distance.
        assert_eq!(chord_cost(&problem, &[id(9)]), 1.0 * 2.0 + 3.0 * 1.0);
    }

    #[test]
    fn qos_checks_use_the_one_plus_distance_form() {
        let s = space();
        let problem = ChordProblem::new(
            s,
            id(0),
            vec![],
            vec![Candidate::with_max_hops(id(8), 1.0, 1)],
            1,
        )
        .unwrap();
        // Bound 1 hop ⇒ d must be 0 ⇒ only the node itself as neighbor works.
        assert!(!chord_qos_satisfied(&problem, &[]));
        assert!(chord_qos_satisfied(&problem, &[id(8)]));
    }
}
