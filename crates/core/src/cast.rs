//! Checked integer conversions for the DP index bookkeeping.
//!
//! The selection algorithms store candidate ranks and trie-vertex indices as
//! `u32` (halving the DP tables' cache footprint) while slices are indexed
//! with `usize`. Every conversion between the two goes through this module so
//! the narrowing direction is validated in exactly one place — bare `as`
//! casts in ring arithmetic and index bookkeeping are rejected by
//! `peercache-lint` rule L2.

/// Narrow a rank/index to the `u32` the DP tables store.
///
/// Problem validation caps candidate counts well below `u32::MAX`
/// (`Vec<f64>` tables of that size would exceed memory first), so the
/// expectation is unreachable in any constructible problem.
#[inline]
pub(crate) fn index_to_u32(value: usize) -> u32 {
    u32::try_from(value).expect("rank/index fits u32: problem sizes are memory-bounded")
}

/// Widen a stored `u32` rank/index back to `usize`.
#[inline]
pub(crate) fn index_from_u32(value: u32) -> usize {
    // usize is at least 32 bits on every supported target, so this cannot
    // fail; the `expect` documents the assumption instead of masking it.
    usize::try_from(value).expect("u32 fits usize on supported targets")
}

/// Widen a `u32` hop count / bit position into the `usize` domain used for
/// table strides and offsets. Same reasoning as [`index_from_u32`].
#[inline]
pub(crate) fn usize_from_u32(value: u32) -> usize {
    usize::try_from(value).expect("u32 fits usize on supported targets")
}

/// Narrow a trie child-slot index to the `u16` stored on each vertex.
///
/// Digit widths are validated to at most 16 bits, so slots range over
/// `0..2^16` and always fit.
#[inline]
pub(crate) fn slot_to_u16(value: usize) -> u16 {
    u16::try_from(value).expect("child slots are bounded by arity ≤ 2^16")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(index_to_u32(0), 0);
        assert_eq!(index_to_u32(123_456), 123_456);
        assert_eq!(index_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_from_u32(7), 7);
    }
}
