use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use peercache_id::{Id, IdSpace};

/// A peer the selecting node has seen queries for: a member of the paper's
/// set `V` with access frequency `f_v` (§III), plus an optional QoS bound.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The peer's identifier.
    pub id: Id,
    /// The access frequency `f_v` (any non-negative finite weight).
    pub weight: f64,
    /// QoS delay bound: queries for this peer must complete within this
    /// many hops, i.e. `1 + d(v, N ∪ A) ≤ max_hops` (§IV-D, §V-C).
    /// `None` means unconstrained.
    pub max_hops: Option<u32>,
}

impl Candidate {
    /// An unconstrained candidate.
    pub fn new(id: Id, weight: f64) -> Self {
        Candidate {
            id,
            weight,
            max_hops: None,
        }
    }

    /// A candidate whose queries carry a QoS delay bound (in hops,
    /// including the first hop out of the selecting node).
    pub fn with_max_hops(id: Id, weight: f64, max_hops: u32) -> Self {
        Candidate {
            id,
            weight,
            max_hops: Some(max_hops),
        }
    }
}

/// Errors from problem validation or selection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// The problem instance is malformed (duplicate/out-of-space ids,
    /// candidate equal to the source or a core neighbor, bad weights…).
    InvalidProblem(String),
    /// The QoS delay bounds cannot all be met with `k` auxiliary pointers.
    QosInfeasible {
        /// Minimum number of auxiliary pointers any feasible solution needs
        /// (`u32::MAX` when no number of pointers can satisfy a bound).
        required: u32,
        /// The number of pointers available.
        k: u32,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            SelectError::QosInfeasible { required, k } => write!(
                f,
                "QoS bounds need at least {required} auxiliary pointers, only {k} available"
            ),
        }
    }
}

impl Error for SelectError {}

/// The result of an auxiliary-neighbor selection.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// The chosen auxiliary neighbors `A_s`, sorted by id.
    pub aux: Vec<Id>,
    /// The objective value `Cost(A_s) = Σ_v f_v (1 + d(v, N_s ∪ A_s))`
    /// (paper eq. 1) over the problem's candidates.
    pub cost: f64,
}

fn validate_common(
    space: IdSpace,
    source: Id,
    core: &[Id],
    candidates: &[Candidate],
) -> Result<(), SelectError> {
    space
        .check(source)
        .map_err(|e| SelectError::InvalidProblem(format!("source: {e}")))?;
    let mut core_set = HashSet::with_capacity(core.len());
    for &c in core {
        space
            .check(c)
            .map_err(|e| SelectError::InvalidProblem(format!("core neighbor: {e}")))?;
        if c == source {
            return Err(SelectError::InvalidProblem(format!(
                "core neighbor {c} equals the source node"
            )));
        }
        if !core_set.insert(c) {
            return Err(SelectError::InvalidProblem(format!(
                "duplicate core neighbor {c}"
            )));
        }
    }
    let mut seen = HashSet::with_capacity(candidates.len());
    for cand in candidates {
        space
            .check(cand.id)
            .map_err(|e| SelectError::InvalidProblem(format!("candidate: {e}")))?;
        if !cand.weight.is_finite() || cand.weight < 0.0 {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {} has invalid weight {}",
                cand.id, cand.weight
            )));
        }
        if cand.id == source {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {} equals the source node",
                cand.id
            )));
        }
        if core_set.contains(&cand.id) {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {} is already a core neighbor; filter the \
                 frequency snapshot with `without` first",
                cand.id
            )));
        }
        if !seen.insert(cand.id) {
            return Err(SelectError::InvalidProblem(format!(
                "duplicate candidate {}",
                cand.id
            )));
        }
        if cand.max_hops == Some(0) {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {}: max_hops must be ≥ 1 (the first hop is always taken)",
                cand.id
            )));
        }
    }
    Ok(())
}

/// An auxiliary-neighbor selection problem for a Pastry node (§IV).
///
/// The selecting node `source` holds core neighbors `core` (its routing
/// table) and has observed queries for `candidates`; it wants the `k`
/// candidates that minimise eq. (1) under the prefix-routing distance
/// estimate `d_uv = ⌈b/d⌉ − ⌊lcp(u,v)/d⌋` digits.
#[derive(Clone, Debug)]
pub struct PastryProblem {
    /// The identifier space.
    pub space: IdSpace,
    /// Digit width `d` in bits (the paper exposits `d = 1`; footnote 2
    /// notes the extension to arbitrary bases, which we support).
    pub digit_bits: u8,
    /// The selecting node `s`.
    pub source: Id,
    /// The core neighbors `N_s` (Pastry routing-table entries).
    pub core: Vec<Id>,
    /// The observed peers `V` with access frequencies.
    pub candidates: Vec<Candidate>,
    /// Number of auxiliary pointers to choose (clamped to `|V|`).
    pub k: usize,
}

impl PastryProblem {
    /// Validate and construct a problem instance.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input (see the variant
    /// docs).
    pub fn new(
        space: IdSpace,
        digit_bits: u8,
        source: Id,
        core: Vec<Id>,
        candidates: Vec<Candidate>,
        k: usize,
    ) -> Result<Self, SelectError> {
        space
            .digit_count(digit_bits)
            .map_err(|e| SelectError::InvalidProblem(e.to_string()))?;
        if digit_bits > 16 {
            // Digits are represented as u16 and each trie vertex holds 2^d
            // child slots; wider digits are never useful and would overflow
            // both representations.
            return Err(SelectError::InvalidProblem(format!(
                "digit width {digit_bits} exceeds the supported maximum of 16 bits"
            )));
        }
        validate_common(space, source, &core, &candidates)?;
        Ok(PastryProblem {
            space,
            digit_bits,
            source,
            core,
            candidates,
            k,
        })
    }

    /// The effective number of pointers: `min(k, |V|)`.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.candidates.len())
    }
}

/// An auxiliary-neighbor selection problem for a Chord node (§V).
///
/// Distances use the Chord estimate `d_uv = position of the leftmost 1 in
/// (v − u) mod 2^b` (paper eq. 6). The algorithms re-base all ids so the
/// selecting node sits at the ring origin (the paper's "zero-node").
#[derive(Clone, Debug)]
pub struct ChordProblem {
    /// The identifier space.
    pub space: IdSpace,
    /// The selecting node `s`.
    pub source: Id,
    /// The core neighbors `N_s` (Chord fingers and successors).
    pub core: Vec<Id>,
    /// The observed peers `V` with access frequencies.
    pub candidates: Vec<Candidate>,
    /// Number of auxiliary pointers to choose (clamped to `|V|`).
    pub k: usize,
}

impl ChordProblem {
    /// Validate and construct a problem instance.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input.
    pub fn new(
        space: IdSpace,
        source: Id,
        core: Vec<Id>,
        candidates: Vec<Candidate>,
        k: usize,
    ) -> Result<Self, SelectError> {
        validate_common(space, source, &core, &candidates)?;
        Ok(ChordProblem {
            space,
            source,
            core,
            candidates,
            k,
        })
    }

    /// The effective number of pointers: `min(k, |V|)`.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn space() -> IdSpace {
        IdSpace::new(8).unwrap()
    }

    #[test]
    fn accepts_well_formed_problem() {
        let p = PastryProblem::new(
            space(),
            1,
            id(0),
            vec![id(128)],
            vec![Candidate::new(id(1), 2.0), Candidate::new(id(2), 3.0)],
            1,
        );
        assert!(p.is_ok());
        assert_eq!(p.unwrap().effective_k(), 1);
    }

    #[test]
    fn effective_k_clamps_to_candidates() {
        let p = ChordProblem::new(space(), id(0), vec![], vec![Candidate::new(id(1), 2.0)], 10)
            .unwrap();
        assert_eq!(p.effective_k(), 1);
    }

    #[test]
    fn rejects_candidate_equal_to_source() {
        let e = ChordProblem::new(space(), id(5), vec![], vec![Candidate::new(id(5), 1.0)], 1)
            .unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_candidate_in_core() {
        let e = ChordProblem::new(
            space(),
            id(0),
            vec![id(7)],
            vec![Candidate::new(id(7), 1.0)],
            1,
        )
        .unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_duplicate_candidates() {
        let e = ChordProblem::new(
            space(),
            id(0),
            vec![],
            vec![Candidate::new(id(7), 1.0), Candidate::new(id(7), 2.0)],
            1,
        )
        .unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_duplicate_core_neighbors() {
        let e = ChordProblem::new(space(), id(0), vec![id(7), id(7)], vec![], 1).unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_out_of_space_ids() {
        let e = ChordProblem::new(
            space(),
            id(0),
            vec![],
            vec![Candidate::new(id(256), 1.0)],
            1,
        )
        .unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_bad_weights() {
        for w in [f64::NAN, f64::INFINITY, -1.0] {
            let e = ChordProblem::new(space(), id(0), vec![], vec![Candidate::new(id(1), w)], 1)
                .unwrap_err();
            assert!(matches!(e, SelectError::InvalidProblem(_)), "weight {w}");
        }
    }

    #[test]
    fn rejects_zero_hop_bound() {
        let e = ChordProblem::new(
            space(),
            id(0),
            vec![],
            vec![Candidate::with_max_hops(id(1), 1.0, 0)],
            1,
        )
        .unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_invalid_digit_bits() {
        let e = PastryProblem::new(space(), 0, id(0), vec![], vec![], 1).unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
    }

    #[test]
    fn rejects_digit_bits_beyond_u16() {
        let wide = IdSpace::new(64).unwrap();
        let e = PastryProblem::new(wide, 17, id(0), vec![], vec![], 1).unwrap_err();
        assert!(matches!(e, SelectError::InvalidProblem(_)));
        assert!(PastryProblem::new(wide, 16, id(0), vec![], vec![], 1).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SelectError::QosInfeasible { required: 5, k: 2 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('2'));
    }
}
