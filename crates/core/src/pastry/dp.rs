//! The simple `O(n·k²·b)` dynamic program of paper §IV-A.
//!
//! Each vertex keeps, for every pointer count `j ≤ k`, the minimum cost
//! `C(T_a, j)` *and* the achieving leaf set (eq. 3) — the quadratic-in-`k`
//! storage the greedy algorithm of §IV-B eliminates. Kept as the reference
//! implementation: the greedy optimiser is cross-validated against it, and
//! the ablation benchmark measures the gap the paper's property (P) buys.

use peercache_id::Id;

use crate::cast;
use crate::pastry::trie::Trie;
use crate::problem::{PastryProblem, SelectError, Selection};

struct Table {
    /// `costs[j]` = min cost with exactly `j` pointers in the subtree
    /// (`∞` when infeasible or `j` exceeds the candidate supply).
    costs: Vec<f64>,
    /// Achieving-set bounds, parallel to `costs`: set `j` occupies
    /// `arena[bounds[j].0 .. bounds[j].1]`.
    bounds: Vec<(u32, u32)>,
    /// All achieving sets, flattened into one id arena. Superseded
    /// entries are left as dead ranges (this is the reference path; the
    /// greedy solver avoids the quadratic storage altogether).
    arena: Vec<Id>,
}

impl Table {
    fn with_budget(k: usize) -> Self {
        Table {
            costs: vec![f64::INFINITY; k + 1],
            bounds: vec![(0, 0); k + 1],
            arena: Vec::new(),
        }
    }

    fn set(&self, j: usize) -> &[Id] {
        let (lo, hi) = self.bounds[j];
        &self.arena[cast::usize_from_u32(lo)..cast::usize_from_u32(hi)]
    }

    /// Record the achieving set for budget `j` as the concatenation of
    /// two prior sets.
    fn record_set(&mut self, j: usize, left: &[Id], right: &[Id]) {
        let lo = cast::index_to_u32(self.arena.len());
        self.arena.extend_from_slice(left);
        self.arena.extend_from_slice(right);
        let hi = cast::index_to_u32(self.arena.len());
        self.bounds[j] = (lo, hi);
    }
}

fn solve(trie: &Trie, v: u32, k: usize) -> Table {
    let vert = trie.vertex(v);
    if let Some(leaf) = &vert.leaf {
        let mut table = Table::with_budget(k);
        table.costs[0] = 0.0;
        if !leaf.is_core {
            if k >= 1 {
                table.costs[1] = 0.0;
                table.record_set(1, &[leaf.id], &[]);
            }
            // A marked candidate leaf must be selected itself.
            if vert.mark_count > 0 {
                table.costs[0] = f64::INFINITY;
            }
        }
        return table;
    }

    let mut acc = Table::with_budget(k);
    acc.costs[0] = 0.0;
    for (_, c) in trie.children_of(v) {
        let child = solve(trie, c, k);
        let cv = trie.vertex(c);
        // Effective child cost with the eq.-2 edge-indicator term.
        let d_child = |t: usize| -> f64 {
            let edge = if t == 0 && cv.core_count == 0 {
                cv.weight
            } else {
                0.0
            };
            child.costs[t] + edge
        };
        let mut next = Table::with_budget(k);
        for j in 0..=k {
            for i in 0..=j {
                let (a, b) = (acc.costs[i], d_child(j - i));
                if a.is_infinite() || b.is_infinite() {
                    continue;
                }
                if (a + b).total_cmp(&next.costs[j]).is_lt() {
                    next.costs[j] = a + b;
                    next.record_set(j, acc.set(i), child.set(j - i));
                }
            }
        }
        acc = next;
    }
    // §IV-D: a marked subtree without a core neighbor needs ≥ 1 pointer.
    if vert.mark_count > 0 && vert.core_count == 0 {
        acc.costs[0] = f64::INFINITY;
        acc.bounds[0] = (0, 0);
    }
    acc
}

/// Refresh per-vertex aggregates (`weight`, counts) bottom-up; the DP needs
/// `F(T_a)` and the core-presence flags.
fn refresh_aggregates(trie: &mut Trie) {
    for v in trie.post_order() {
        let (weight, cand, core) = match &trie.vertex(v).leaf {
            Some(leaf) => (
                leaf.weight,
                u32::from(!leaf.is_core),
                u32::from(leaf.is_core),
            ),
            None => {
                let mut acc = (0.0, 0, 0);
                for (_, c) in trie.children_of(v) {
                    let cv = trie.vertex(c);
                    acc.0 += cv.weight;
                    acc.1 += cv.cand_count;
                    acc.2 += cv.core_count;
                }
                acc
            }
        };
        let vert = trie.vertex_mut(v);
        vert.weight = weight;
        vert.cand_count = cand;
        vert.core_count = core;
    }
}

/// One-shot selection via the reference `O(n·k²·b)` dynamic program
/// (paper §IV-A).
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when the delay bounds cannot be met
/// with `k` pointers.
pub fn select_dp(problem: &PastryProblem) -> Result<Selection, SelectError> {
    let mut trie = Trie::new(problem.space, problem.digit_bits)?;
    for cand in &problem.candidates {
        trie.insert_leaf(cand.id, cand.weight, false, cand.max_hops)?;
    }
    for &core in &problem.core {
        trie.insert_leaf(core, 0.0, true, None)?;
    }
    refresh_aggregates(&mut trie);
    let k = problem.effective_k();
    let table = solve(&trie, Trie::ROOT, k);
    if table.costs[k].is_infinite() {
        let required = table
            .costs
            .iter()
            .position(|c| c.is_finite())
            .map_or(u32::MAX, cast::index_to_u32);
        return Err(SelectError::QosInfeasible {
            required,
            k: cast::index_to_u32(k),
        });
    }
    let mut aux = table.set(k).to_vec();
    aux.sort();
    Ok(Selection {
        aux,
        cost: trie.total_weight() + table.costs[k],
    })
}
