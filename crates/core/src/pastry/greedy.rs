//! The `O(n·k·b)` greedy trie algorithm (paper §IV-B) and its `O(k·b)`
//! incremental form (§IV-C), with QoS constraints (§IV-D).
//!
//! Property (P) — the optimal `j − 1` pointers are a subset of the optimal
//! `j` pointers within every subtree — lets each vertex keep, instead of a
//! full cost table per split, a single *allocation order*: which child
//! receives the `j`-th pointer. Merging children is then a greedy
//! interleaving of their (non-increasing, by Lemma 4.1) marginal-gain
//! sequences. QoS marks become per-subtree lower bounds `req`; children's
//! required pointers are force-allocated before the greedy interleave,
//! which preserves optimality because constrained cost functions remain
//! concave above their requirement.

use peercache_id::Id;

use crate::cast;
use crate::pastry::trie::{Trie, NONE};
use crate::problem::{Candidate, PastryProblem, SelectError, Selection};

/// Tolerance for the non-negativity of marginal gains: interleaved
/// subtraction of eq. 1 sums accumulates rounding of this order.
const GAIN_EPS: f64 = 1e-9;

/// Incremental optimiser for Pastry auxiliary-neighbor selection.
///
/// Construction runs the full greedy algorithm in `O(n·k·b)`. Afterwards,
/// [`update_weight`](Self::update_weight),
/// [`insert`](Self::insert)/[`remove`](Self::remove) (peer churn) and
/// [`add_core`](Self::add_core)/[`remove_core`](Self::remove_core)
/// (routing-table churn) each re-solve only the root-path of the touched
/// leaf — `O(k·b)` per change — and [`selection`](Self::selection) yields
/// the optimal auxiliary set for *any* `j ≤ k` thanks to property (P).
///
/// ```
/// use peercache_core::pastry::PastryOptimizer;
/// use peercache_core::{Candidate, PastryProblem};
/// use peercache_id::{Id, IdSpace};
///
/// let space = IdSpace::new(8).unwrap();
/// let problem = PastryProblem::new(
///     space,
///     1,
///     Id::new(0),
///     vec![],
///     vec![
///         Candidate::new(Id::new(0b1000_0000), 10.0),
///         Candidate::new(Id::new(0b0100_0000), 5.0),
///     ],
///     1,
/// )
/// .unwrap();
/// let mut opt = PastryOptimizer::new(&problem).unwrap();
/// assert_eq!(opt.select().unwrap().aux, vec![Id::new(0b1000_0000)]);
/// // A popularity shift re-optimises in O(k·b), not O(n·k·b).
/// opt.update_weight(Id::new(0b0100_0000), 50.0).unwrap();
/// assert_eq!(opt.select().unwrap().aux, vec![Id::new(0b0100_0000)]);
/// ```
pub struct PastryOptimizer {
    trie: Trie,
    k: usize,
    source: Id,
    /// Scratch for `resolve_vertex`: the live `(slot, child)` pairs.
    child_scratch: Vec<(u16, u32)>,
    /// Scratch for `resolve_vertex`: per-child pointer counts.
    t_scratch: Vec<u32>,
    /// Scratch for `resolve_all`: the post-order visit sequence.
    order_scratch: Vec<u32>,
    /// Scratch for `resolve_all`: the post-order DFS stack.
    stack_scratch: Vec<(u32, bool)>,
}

impl PastryOptimizer {
    /// Build the trie for `problem` and solve it.
    ///
    /// # Errors
    /// Propagates problem-construction issues as
    /// [`SelectError::InvalidProblem`]. QoS infeasibility is *not* an error
    /// here — it surfaces from [`selection`](Self::selection), because
    /// subsequent incremental updates may restore feasibility.
    pub fn new(problem: &PastryProblem) -> Result<Self, SelectError> {
        let mut opt = PastryOptimizer {
            trie: Trie::new(problem.space, problem.digit_bits)?,
            k: problem.k,
            source: problem.source,
            child_scratch: Vec::new(),
            t_scratch: Vec::new(),
            order_scratch: Vec::new(),
            stack_scratch: Vec::new(),
        };
        opt.fill(problem)?;
        Ok(opt)
    }

    /// Re-target this optimiser at a new problem, reusing the trie slab,
    /// the solver tables and every scratch buffer. Equivalent to (and
    /// bit-identical with) `PastryOptimizer::new(problem)`, but allocation
    /// free once the buffer capacities have warmed up.
    ///
    /// # Errors
    /// As for [`new`](Self::new). On error the optimiser holds the
    /// partially built trie; call `rebuild` again before further use.
    pub fn rebuild(&mut self, problem: &PastryProblem) -> Result<(), SelectError> {
        self.trie.reset(problem.space, problem.digit_bits)?;
        self.k = problem.k;
        self.source = problem.source;
        self.fill(problem)
    }

    /// Shared tail of [`new`](Self::new)/[`rebuild`](Self::rebuild):
    /// populate the (empty) trie and run the full greedy solve.
    fn fill(&mut self, problem: &PastryProblem) -> Result<(), SelectError> {
        for cand in &problem.candidates {
            self.trie
                .insert_leaf(cand.id, cand.weight, false, cand.max_hops)?;
        }
        for &core in &problem.core {
            self.trie.insert_leaf(core, 0.0, true, None)?;
        }
        self.resolve_all();
        Ok(())
    }

    /// The pointer budget the solver was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total candidate weight `Σ_v f_v`.
    pub fn total_weight(&self) -> f64 {
        self.trie.total_weight()
    }

    /// Number of selectable candidates currently in the trie.
    pub fn candidate_count(&self) -> u32 {
        self.trie.vertex(Trie::ROOT).cand_count
    }

    /// Minimum auxiliary pointers any feasible solution needs (QoS).
    pub fn required_pointers(&self) -> u32 {
        self.trie.vertex(Trie::ROOT).req
    }

    // ---- solving --------------------------------------------------------

    fn resolve_all(&mut self) {
        let mut order = std::mem::take(&mut self.order_scratch);
        let mut stack = std::mem::take(&mut self.stack_scratch);
        self.trie.post_order_into(&mut order, &mut stack);
        for &v in &order {
            self.resolve_vertex(v);
        }
        self.order_scratch = order;
        self.stack_scratch = stack;
    }

    fn resolve_path(&mut self, from: u32) {
        let mut v = from;
        while v != NONE {
            self.resolve_vertex(v);
            v = self.trie.vertex(v).parent;
        }
    }

    /// Recompute aggregates and solver state of `v` from its children
    /// (which must already be resolved) or its leaf payload.
    fn resolve_vertex(&mut self, v: u32) {
        let k = u32::try_from(self.k).unwrap_or(u32::MAX);
        // Leaf vertices have no children by construction (full-depth trie).
        if let Some(leaf) = self.trie.vertex(v).leaf {
            debug_assert!(self.trie.children_of(v).next().is_none());
            let vert = self.trie.vertex_mut(v);
            vert.weight = leaf.weight;
            vert.core_count = u32::from(leaf.is_core);
            vert.cand_count = u32::from(!leaf.is_core);
            vert.base = 0;
            // A marked leaf must itself be a neighbor.
            vert.req = if vert.mark_count > 0 && !leaf.is_core {
                1
            } else {
                0
            };
            vert.impossible = vert.req > vert.cand_count;
            let cap = k.min(vert.cand_count);
            vert.costs.clear();
            vert.alloc.clear();
            if !(vert.impossible || vert.req > cap) {
                vert.costs.resize(cast::usize_from_u32(cap) + 1, 0.0);
                vert.alloc.resize(cast::usize_from_u32(cap), 0);
            }
            return;
        }

        let mut children = std::mem::take(&mut self.child_scratch);
        children.clear();
        children.extend(self.trie.children_of(v));
        let mut weight = 0.0;
        let mut cand_count = 0u32;
        let mut core_count = 0u32;
        let mut base = 0u32;
        let mut impossible = false;
        for &(_, c) in &children {
            let cv = self.trie.vertex(c);
            weight += cv.weight;
            cand_count += cv.cand_count;
            core_count += cv.core_count;
            base += cv.req;
            impossible |= cv.impossible;
        }
        let mark_count = self.trie.vertex(v).mark_count;
        let req = if mark_count > 0 && core_count == 0 {
            base.max(1)
        } else {
            base
        };
        impossible |= req > cand_count;
        let cap = k.min(cand_count);

        if impossible || base > cap {
            let vert = self.trie.vertex_mut(v);
            vert.weight = weight;
            vert.cand_count = cand_count;
            vert.core_count = core_count;
            vert.base = base;
            vert.req = req;
            vert.impossible = impossible;
            vert.costs.clear();
            vert.alloc.clear();
            self.child_scratch = children;
            return;
        }

        // Effective child cost: D_c(t) = C(T_c, t) + F(T_c)·[t = 0 ∧ no
        // core neighbor in T_c] (the edge-indicator term of eq. 2).
        let d_of = |trie: &Trie, c: u32, t: u32| -> f64 {
            let cv = trie.vertex(c);
            let edge = if t == 0 && cv.core_count == 0 {
                cv.weight
            } else {
                0.0
            };
            cv.cost_at(t) + edge
        };

        // Force each child's requirement, then greedily interleave gains.
        let mut t_child = std::mem::take(&mut self.t_scratch);
        t_child.clear();
        t_child.extend(children.iter().map(|&(_, c)| self.trie.vertex(c).req));
        let mut cost = 0.0;
        for (i, &(_, c)) in children.iter().enumerate() {
            cost += d_of(&self.trie, c, t_child[i]);
        }
        let steps = cast::usize_from_u32(cap - base);
        let (mut costs, mut alloc) = {
            let vert = self.trie.vertex_mut(v);
            (
                std::mem::take(&mut vert.costs),
                std::mem::take(&mut vert.alloc),
            )
        };
        costs.clear();
        alloc.clear();
        costs.push(cost);
        for _ in 0..steps {
            let mut best: Option<(f64, usize)> = None;
            for (i, &(_, c)) in children.iter().enumerate() {
                let t = t_child[i];
                let child_cap = self
                    .trie
                    .vertex(c)
                    .cap()
                    .expect("children of a feasible vertex are solved");
                if t + 1 > child_cap {
                    continue;
                }
                let gain = d_of(&self.trie, c, t) - d_of(&self.trie, c, t + 1);
                let better = match best {
                    None => true,
                    Some((bg, _)) => gain.total_cmp(&bg).is_gt(),
                };
                if better {
                    best = Some((gain, i));
                }
            }
            let (gain, i) = best.expect("cap ≤ Σ child caps guarantees a step");
            debug_assert!(gain >= -GAIN_EPS, "marginal gains are non-negative");
            t_child[i] += 1;
            cost -= gain;
            costs.push(cost);
            alloc.push(children[i].0);
        }

        let vert = self.trie.vertex_mut(v);
        vert.weight = weight;
        vert.cand_count = cand_count;
        vert.core_count = core_count;
        vert.base = base;
        vert.req = req;
        vert.impossible = false;
        vert.costs = costs;
        vert.alloc = alloc;
        self.child_scratch = children;
        self.t_scratch = t_child;
    }

    // ---- extraction ------------------------------------------------------

    /// The optimal auxiliary set of size `min(j, |candidates|)` and its
    /// eq.-(1) cost.
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] when the delay bounds cannot be met
    /// with `j` pointers (or at all).
    pub fn selection(&self, j: usize) -> Result<Selection, SelectError> {
        let mut out = Selection {
            aux: Vec::new(),
            cost: 0.0,
        };
        self.selection_into(j, &mut Vec::new(), &mut Vec::new(), &mut out)?;
        Ok(out)
    }

    /// [`selection`](Self::selection) writing into caller-owned buffers:
    /// `stack` and `counts` are traversal scratch, `out` receives the
    /// selection. Allocation free once capacities have warmed up — the
    /// extraction path for retained optimizers that re-select after
    /// incremental updates without materialising a fresh `Selection`.
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] as for `selection`.
    pub fn selection_into(
        &self,
        j: usize,
        stack: &mut Vec<(u32, u32)>,
        counts: &mut Vec<u32>,
        out: &mut Selection,
    ) -> Result<(), SelectError> {
        let root = self.trie.vertex(Trie::ROOT);
        if root.impossible {
            return Err(SelectError::QosInfeasible {
                required: u32::MAX,
                k: u32::try_from(j).unwrap_or(u32::MAX),
            });
        }
        // min(j, k) clamped into u32 first; the result is then capped by
        // cand_count, which is already a u32.
        let j_eff = root
            .cand_count
            .min(u32::try_from(j.min(self.k)).unwrap_or(u32::MAX));
        if j_eff < root.req || root.costs.is_empty() {
            return Err(SelectError::QosInfeasible {
                required: root.req,
                k: j_eff,
            });
        }
        out.aux.clear();
        self.collect_into(j_eff, stack, counts, &mut out.aux);
        // Ids are unique (trie leaves), so the unstable sort is
        // deterministic and matches the previous stable sort.
        out.aux.sort_unstable();
        debug_assert_eq!(out.aux.len(), cast::usize_from_u32(j_eff));
        out.cost = self.total_weight() + root.cost_at(j_eff);
        Ok(())
    }

    /// [`selection`](Self::selection) at the full budget `k`.
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] as for `selection`.
    pub fn select(&self) -> Result<Selection, SelectError> {
        self.selection(self.k)
    }

    /// The full budget schedule: the optimal selection for **every**
    /// feasible pointer budget `j ≤ k`, as `(j, selection)` pairs in
    /// increasing `j`. By property (P) consecutive selections nest, so
    /// this enumerates the order in which routing-table slots pay off
    /// (the maintenance-cost trade-off of §I). Budgets below the QoS
    /// requirement are absent.
    pub fn selection_schedule(&self) -> Vec<(usize, Selection)> {
        let mut out = Vec::with_capacity(self.k + 1);
        for j in 0..=self.k {
            if let Ok(sel) = self.selection(j) {
                if out
                    .last()
                    .is_some_and(|(_, prev): &(usize, Selection)| prev.aux.len() == sel.aux.len())
                {
                    break; // budget exceeds the candidate supply
                }
                out.push((j, sel));
            }
        }
        #[cfg(feature = "check-invariants")]
        {
            crate::invariants::assert_schedule_costs_monotone(&out);
            crate::invariants::assert_schedule_selections_nested(&out);
        }
        out
    }

    /// Walk the allocation tree, pushing the `t`-pointer optimal leaf set.
    /// Iterative (explicit `stack`) with a dense per-slot count buffer so
    /// extraction reuses caller scratch instead of allocating per vertex.
    /// Visit order differs from the old recursive walk, but the caller
    /// sorts `out`, so the final selection is identical.
    fn collect_into(
        &self,
        t_root: u32,
        stack: &mut Vec<(u32, u32)>,
        counts: &mut Vec<u32>,
        out: &mut Vec<Id>,
    ) {
        stack.clear();
        stack.push((Trie::ROOT, t_root));
        while let Some((v, t)) = stack.pop() {
            if t == 0 {
                continue;
            }
            let vert = self.trie.vertex(v);
            if let Some(leaf) = &vert.leaf {
                debug_assert_eq!(t, 1);
                debug_assert!(!leaf.is_core);
                out.push(leaf.id);
                continue;
            }
            // Per-child totals: forced requirement + greedy allocations.
            counts.clear();
            counts.resize(self.trie.arity, 0);
            for (slot, c) in self.trie.children_of(v) {
                counts[usize::from(slot)] = self.trie.vertex(c).req;
            }
            let extra = cast::usize_from_u32(t - vert.base);
            for &slot in &vert.alloc[..extra] {
                counts[usize::from(slot)] += 1;
            }
            let mut assigned = 0u32;
            for (slot, c) in self.trie.children_of(v) {
                let count = counts[usize::from(slot)];
                if count > 0 {
                    assigned += count;
                    stack.push((c, count));
                }
            }
            debug_assert_eq!(assigned, t, "alloc refers to live children");
        }
    }

    // ---- incremental maintenance (§IV-C) --------------------------------

    /// Change the access frequency of an existing candidate. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown, is a core leaf, or `weight`
    /// is invalid.
    pub fn update_weight(&mut self, id: Id, weight: f64) -> Result<(), SelectError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(SelectError::InvalidProblem(format!(
                "invalid weight {weight}"
            )));
        }
        let v = self
            .trie
            .leaf_vertex(id)
            .ok_or_else(|| SelectError::InvalidProblem(format!("unknown peer {id}")))?;
        let leaf = self
            .trie
            .vertex_mut(v)
            .leaf
            .as_mut()
            .expect("leaf map points at leaves");
        if leaf.is_core {
            return Err(SelectError::InvalidProblem(format!(
                "{id} is a core neighbor, not a candidate"
            )));
        }
        leaf.weight = weight;
        self.resolve_path(v);
        Ok(())
    }

    /// Add a newly observed peer. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` on duplicates or invalid weight.
    pub fn insert(&mut self, cand: Candidate) -> Result<(), SelectError> {
        if !cand.weight.is_finite() || cand.weight < 0.0 {
            return Err(SelectError::InvalidProblem(format!(
                "invalid weight {}",
                cand.weight
            )));
        }
        if cand.max_hops == Some(0) {
            return Err(SelectError::InvalidProblem(
                "max_hops must be ≥ 1".to_string(),
            ));
        }
        if cand.id == self.source {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {} equals the source node",
                cand.id
            )));
        }
        let v = self
            .trie
            .insert_leaf(cand.id, cand.weight, false, cand.max_hops)?;
        self.resolve_path(v);
        Ok(())
    }

    /// Remove a departed peer. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown or is a core leaf (use
    /// [`remove_core`](Self::remove_core)).
    pub fn remove(&mut self, id: Id) -> Result<(), SelectError> {
        match self.trie.leaf_vertex(id) {
            Some(v) if self.trie.vertex(v).leaf.as_ref().is_some_and(|l| l.is_core) => {
                return Err(SelectError::InvalidProblem(format!(
                    "{id} is a core neighbor; use remove_core"
                )));
            }
            Some(_) => {}
            None => {
                return Err(SelectError::InvalidProblem(format!("unknown peer {id}")));
            }
        }
        let survivor = self.trie.remove_leaf(id)?;
        self.resolve_path(survivor);
        Ok(())
    }

    /// Register a new core neighbor (e.g. after a routing-table repair).
    /// `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is already present.
    pub fn add_core(&mut self, id: Id) -> Result<(), SelectError> {
        if id == self.source {
            return Err(SelectError::InvalidProblem(format!(
                "core neighbor {id} equals the source node"
            )));
        }
        let v = self.trie.insert_leaf(id, 0.0, true, None)?;
        self.resolve_path(v);
        Ok(())
    }

    /// Remove a core neighbor that left the routing table. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown or not a core leaf.
    pub fn remove_core(&mut self, id: Id) -> Result<(), SelectError> {
        match self.trie.leaf_vertex(id) {
            Some(v) if self.trie.vertex(v).leaf.as_ref().is_some_and(|l| l.is_core) => {}
            Some(_) => {
                return Err(SelectError::InvalidProblem(format!(
                    "{id} is a candidate, not a core neighbor"
                )));
            }
            None => {
                return Err(SelectError::InvalidProblem(format!("unknown peer {id}")));
            }
        }
        let survivor = self.trie.remove_leaf(id)?;
        self.resolve_path(survivor);
        Ok(())
    }
}

/// A reusable §IV-B solver: owns the trie slab, the per-vertex solver
/// tables and every traversal scratch buffer, so that repeated
/// [`solve_into`](Self::solve_into) calls allocate **nothing** once the
/// buffer capacities have warmed up to the problem size.
///
/// Results are bit-identical to the one-shot [`select_greedy`]; the
/// workspace only changes where the intermediate state lives.
pub struct PastryWorkspace {
    opt: Option<PastryOptimizer>,
    stack: Vec<(u32, u32)>,
    counts: Vec<u32>,
    selection: Selection,
}

impl Default for PastryWorkspace {
    fn default() -> Self {
        PastryWorkspace::new()
    }
}

impl PastryWorkspace {
    /// An empty workspace; buffers grow to the largest problem solved.
    #[must_use]
    pub fn new() -> Self {
        PastryWorkspace {
            opt: None,
            stack: Vec::new(),
            counts: Vec::new(),
            selection: Selection {
                aux: Vec::new(),
                cost: 0.0,
            },
        }
    }

    /// Solve `problem` with the greedy algorithm, reusing this workspace's
    /// buffers. The returned selection borrows the workspace and is
    /// overwritten by the next solve; clone it to keep it.
    ///
    /// # Errors
    /// [`SelectError::InvalidProblem`] on malformed input;
    /// [`SelectError::QosInfeasible`] when delay bounds cannot be met
    /// with `k` pointers.
    pub fn solve_into(&mut self, problem: &PastryProblem) -> Result<&Selection, SelectError> {
        let opt = match self.opt.take() {
            Some(mut opt) => {
                opt.rebuild(problem)?;
                opt
            }
            None => PastryOptimizer::new(problem)?,
        };
        let solved = opt.selection_into(
            problem.k,
            &mut self.stack,
            &mut self.counts,
            &mut self.selection,
        );
        self.opt = Some(opt);
        solved?;
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_greedy_matches_dp(problem, &self.selection);
        Ok(&self.selection)
    }
}

/// One-shot greedy selection (paper §IV-B): `O(n·k·b)`.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met.
pub fn select_greedy(problem: &PastryProblem) -> Result<Selection, SelectError> {
    let selection = PastryOptimizer::new(problem)?.select()?;
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_greedy_matches_dp(problem, &selection);
    Ok(selection)
}
