//! The `O(n·k·b)` greedy trie algorithm (paper §IV-B) and its `O(k·b)`
//! incremental form (§IV-C), with QoS constraints (§IV-D).
//!
//! Property (P) — the optimal `j − 1` pointers are a subset of the optimal
//! `j` pointers within every subtree — lets each vertex keep, instead of a
//! full cost table per split, a single *allocation order*: which child
//! receives the `j`-th pointer. Merging children is then a greedy
//! interleaving of their (non-increasing, by Lemma 4.1) marginal-gain
//! sequences. QoS marks become per-subtree lower bounds `req`; children's
//! required pointers are force-allocated before the greedy interleave,
//! which preserves optimality because constrained cost functions remain
//! concave above their requirement.

use peercache_id::Id;

use crate::cast;
use crate::pastry::trie::{Trie, NONE};
use crate::problem::{Candidate, PastryProblem, SelectError, Selection};

/// Tolerance for the non-negativity of marginal gains: interleaved
/// subtraction of eq. 1 sums accumulates rounding of this order.
const GAIN_EPS: f64 = 1e-9;

/// Incremental optimiser for Pastry auxiliary-neighbor selection.
///
/// Construction runs the full greedy algorithm in `O(n·k·b)`. Afterwards,
/// [`update_weight`](Self::update_weight),
/// [`insert`](Self::insert)/[`remove`](Self::remove) (peer churn) and
/// [`add_core`](Self::add_core)/[`remove_core`](Self::remove_core)
/// (routing-table churn) each re-solve only the root-path of the touched
/// leaf — `O(k·b)` per change — and [`selection`](Self::selection) yields
/// the optimal auxiliary set for *any* `j ≤ k` thanks to property (P).
///
/// ```
/// use peercache_core::pastry::PastryOptimizer;
/// use peercache_core::{Candidate, PastryProblem};
/// use peercache_id::{Id, IdSpace};
///
/// let space = IdSpace::new(8).unwrap();
/// let problem = PastryProblem::new(
///     space,
///     1,
///     Id::new(0),
///     vec![],
///     vec![
///         Candidate::new(Id::new(0b1000_0000), 10.0),
///         Candidate::new(Id::new(0b0100_0000), 5.0),
///     ],
///     1,
/// )
/// .unwrap();
/// let mut opt = PastryOptimizer::new(&problem).unwrap();
/// assert_eq!(opt.select().unwrap().aux, vec![Id::new(0b1000_0000)]);
/// // A popularity shift re-optimises in O(k·b), not O(n·k·b).
/// opt.update_weight(Id::new(0b0100_0000), 50.0).unwrap();
/// assert_eq!(opt.select().unwrap().aux, vec![Id::new(0b0100_0000)]);
/// ```
pub struct PastryOptimizer {
    trie: Trie,
    k: usize,
    source: Id,
}

impl PastryOptimizer {
    /// Build the trie for `problem` and solve it.
    ///
    /// # Errors
    /// Propagates problem-construction issues as
    /// [`SelectError::InvalidProblem`]. QoS infeasibility is *not* an error
    /// here — it surfaces from [`selection`](Self::selection), because
    /// subsequent incremental updates may restore feasibility.
    pub fn new(problem: &PastryProblem) -> Result<Self, SelectError> {
        let mut trie = Trie::new(problem.space, problem.digit_bits)?;
        for cand in &problem.candidates {
            trie.insert_leaf(cand.id, cand.weight, false, cand.max_hops)?;
        }
        for &core in &problem.core {
            trie.insert_leaf(core, 0.0, true, None)?;
        }
        let mut opt = PastryOptimizer {
            trie,
            k: problem.k,
            source: problem.source,
        };
        opt.resolve_all();
        Ok(opt)
    }

    /// The pointer budget the solver was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total candidate weight `Σ_v f_v`.
    pub fn total_weight(&self) -> f64 {
        self.trie.total_weight()
    }

    /// Number of selectable candidates currently in the trie.
    pub fn candidate_count(&self) -> u32 {
        self.trie.vertex(Trie::ROOT).cand_count
    }

    /// Minimum auxiliary pointers any feasible solution needs (QoS).
    pub fn required_pointers(&self) -> u32 {
        self.trie.vertex(Trie::ROOT).req
    }

    // ---- solving --------------------------------------------------------

    fn resolve_all(&mut self) {
        for v in self.trie.post_order() {
            self.resolve_vertex(v);
        }
    }

    fn resolve_path(&mut self, from: u32) {
        for v in self.trie.path_to_root(from) {
            self.resolve_vertex(v);
        }
    }

    /// Recompute aggregates and solver state of `v` from its children
    /// (which must already be resolved) or its leaf payload.
    fn resolve_vertex(&mut self, v: u32) {
        let k = u32::try_from(self.k).unwrap_or(u32::MAX);
        // Leaf vertices have no children by construction (full-depth trie).
        if let Some(leaf) = self.trie.vertex(v).leaf.clone() {
            debug_assert!(self.trie.children_of(v).next().is_none());
            let vert = self.trie.vertex_mut(v);
            vert.weight = leaf.weight;
            vert.core_count = u32::from(leaf.is_core);
            vert.cand_count = u32::from(!leaf.is_core);
            vert.base = 0;
            // A marked leaf must itself be a neighbor.
            vert.req = if vert.mark_count > 0 && !leaf.is_core {
                1
            } else {
                0
            };
            vert.impossible = vert.req > vert.cand_count;
            let cap = k.min(vert.cand_count);
            if vert.impossible || vert.req > cap {
                vert.costs.clear();
                vert.alloc.clear();
            } else {
                vert.costs = vec![0.0; cast::usize_from_u32(cap) + 1];
                vert.alloc = vec![0; cast::usize_from_u32(cap)];
            }
            return;
        }

        let children: Vec<(u16, u32)> = self.trie.children_of(v).collect();
        let mut weight = 0.0;
        let mut cand_count = 0u32;
        let mut core_count = 0u32;
        let mut base = 0u32;
        let mut impossible = false;
        for &(_, c) in &children {
            let cv = self.trie.vertex(c);
            weight += cv.weight;
            cand_count += cv.cand_count;
            core_count += cv.core_count;
            base += cv.req;
            impossible |= cv.impossible;
        }
        let mark_count = self.trie.vertex(v).mark_count;
        let req = if mark_count > 0 && core_count == 0 {
            base.max(1)
        } else {
            base
        };
        impossible |= req > cand_count;
        let cap = k.min(cand_count);

        if impossible || base > cap {
            let vert = self.trie.vertex_mut(v);
            vert.weight = weight;
            vert.cand_count = cand_count;
            vert.core_count = core_count;
            vert.base = base;
            vert.req = req;
            vert.impossible = impossible;
            vert.costs.clear();
            vert.alloc.clear();
            return;
        }

        // Effective child cost: D_c(t) = C(T_c, t) + F(T_c)·[t = 0 ∧ no
        // core neighbor in T_c] (the edge-indicator term of eq. 2).
        let d_of = |trie: &Trie, c: u32, t: u32| -> f64 {
            let cv = trie.vertex(c);
            let edge = if t == 0 && cv.core_count == 0 {
                cv.weight
            } else {
                0.0
            };
            cv.cost_at(t) + edge
        };

        // Force each child's requirement, then greedily interleave gains.
        let mut t_child: Vec<u32> = children
            .iter()
            .map(|&(_, c)| self.trie.vertex(c).req)
            .collect();
        let mut cost = 0.0;
        for (i, &(_, c)) in children.iter().enumerate() {
            cost += d_of(&self.trie, c, t_child[i]);
        }
        let steps = cast::usize_from_u32(cap - base);
        let mut costs = Vec::with_capacity(steps + 1);
        let mut alloc = Vec::with_capacity(steps);
        costs.push(cost);
        for _ in 0..steps {
            let mut best: Option<(f64, usize)> = None;
            for (i, &(_, c)) in children.iter().enumerate() {
                let t = t_child[i];
                let child_cap = self
                    .trie
                    .vertex(c)
                    .cap()
                    .expect("children of a feasible vertex are solved");
                if t + 1 > child_cap {
                    continue;
                }
                let gain = d_of(&self.trie, c, t) - d_of(&self.trie, c, t + 1);
                let better = match best {
                    None => true,
                    Some((bg, _)) => gain.total_cmp(&bg).is_gt(),
                };
                if better {
                    best = Some((gain, i));
                }
            }
            let (gain, i) = best.expect("cap ≤ Σ child caps guarantees a step");
            debug_assert!(gain >= -GAIN_EPS, "marginal gains are non-negative");
            t_child[i] += 1;
            cost -= gain;
            costs.push(cost);
            alloc.push(children[i].0);
        }

        let vert = self.trie.vertex_mut(v);
        vert.weight = weight;
        vert.cand_count = cand_count;
        vert.core_count = core_count;
        vert.base = base;
        vert.req = req;
        vert.impossible = false;
        vert.costs = costs;
        vert.alloc = alloc;
    }

    // ---- extraction ------------------------------------------------------

    /// The optimal auxiliary set of size `min(j, |candidates|)` and its
    /// eq.-(1) cost.
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] when the delay bounds cannot be met
    /// with `j` pointers (or at all).
    pub fn selection(&self, j: usize) -> Result<Selection, SelectError> {
        let root = self.trie.vertex(Trie::ROOT);
        if root.impossible {
            return Err(SelectError::QosInfeasible {
                required: u32::MAX,
                k: u32::try_from(j).unwrap_or(u32::MAX),
            });
        }
        // min(j, k) clamped into u32 first; the result is then capped by
        // cand_count, which is already a u32.
        let j_eff = root
            .cand_count
            .min(u32::try_from(j.min(self.k)).unwrap_or(u32::MAX));
        if j_eff < root.req || root.costs.is_empty() {
            return Err(SelectError::QosInfeasible {
                required: root.req,
                k: j_eff,
            });
        }
        let mut aux = Vec::with_capacity(cast::usize_from_u32(j_eff));
        self.collect(Trie::ROOT, j_eff, &mut aux);
        aux.sort();
        debug_assert_eq!(aux.len(), cast::usize_from_u32(j_eff));
        let cost = self.total_weight() + root.cost_at(j_eff);
        Ok(Selection { aux, cost })
    }

    /// [`selection`](Self::selection) at the full budget `k`.
    ///
    /// # Errors
    /// [`SelectError::QosInfeasible`] as for `selection`.
    pub fn select(&self) -> Result<Selection, SelectError> {
        self.selection(self.k)
    }

    /// The full budget schedule: the optimal selection for **every**
    /// feasible pointer budget `j ≤ k`, as `(j, selection)` pairs in
    /// increasing `j`. By property (P) consecutive selections nest, so
    /// this enumerates the order in which routing-table slots pay off
    /// (the maintenance-cost trade-off of §I). Budgets below the QoS
    /// requirement are absent.
    pub fn selection_schedule(&self) -> Vec<(usize, Selection)> {
        let mut out = Vec::with_capacity(self.k + 1);
        for j in 0..=self.k {
            if let Ok(sel) = self.selection(j) {
                if out
                    .last()
                    .is_some_and(|(_, prev): &(usize, Selection)| prev.aux.len() == sel.aux.len())
                {
                    break; // budget exceeds the candidate supply
                }
                out.push((j, sel));
            }
        }
        #[cfg(feature = "check-invariants")]
        {
            crate::invariants::assert_schedule_costs_monotone(&out);
            crate::invariants::assert_schedule_selections_nested(&out);
        }
        out
    }

    fn collect(&self, v: u32, t: u32, out: &mut Vec<Id>) {
        if t == 0 {
            return;
        }
        let vert = self.trie.vertex(v);
        if let Some(leaf) = &vert.leaf {
            debug_assert_eq!(t, 1);
            debug_assert!(!leaf.is_core);
            out.push(leaf.id);
            return;
        }
        // Per-child totals: forced requirement + greedy allocations.
        let extra = cast::usize_from_u32(t - vert.base);
        let mut per_slot: Vec<(u16, u32)> = self
            .trie
            .children_of(v)
            .map(|(slot, c)| (slot, self.trie.vertex(c).req))
            .collect();
        for &slot in &vert.alloc[..extra] {
            let entry = per_slot
                .iter_mut()
                .find(|(s, _)| *s == slot)
                .expect("alloc refers to live children");
            entry.1 += 1;
        }
        for (slot, count) in per_slot {
            if count > 0 {
                let child = self.trie.vertex(v).children[usize::from(slot)];
                debug_assert_ne!(child, NONE);
                self.collect(child, count, out);
            }
        }
    }

    // ---- incremental maintenance (§IV-C) --------------------------------

    /// Change the access frequency of an existing candidate. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown, is a core leaf, or `weight`
    /// is invalid.
    pub fn update_weight(&mut self, id: Id, weight: f64) -> Result<(), SelectError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(SelectError::InvalidProblem(format!(
                "invalid weight {weight}"
            )));
        }
        let v = self
            .trie
            .leaf_vertex(id)
            .ok_or_else(|| SelectError::InvalidProblem(format!("unknown peer {id}")))?;
        let leaf = self
            .trie
            .vertex_mut(v)
            .leaf
            .as_mut()
            .expect("leaf map points at leaves");
        if leaf.is_core {
            return Err(SelectError::InvalidProblem(format!(
                "{id} is a core neighbor, not a candidate"
            )));
        }
        leaf.weight = weight;
        self.resolve_path(v);
        Ok(())
    }

    /// Add a newly observed peer. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` on duplicates or invalid weight.
    pub fn insert(&mut self, cand: Candidate) -> Result<(), SelectError> {
        if !cand.weight.is_finite() || cand.weight < 0.0 {
            return Err(SelectError::InvalidProblem(format!(
                "invalid weight {}",
                cand.weight
            )));
        }
        if cand.max_hops == Some(0) {
            return Err(SelectError::InvalidProblem(
                "max_hops must be ≥ 1".to_string(),
            ));
        }
        if cand.id == self.source {
            return Err(SelectError::InvalidProblem(format!(
                "candidate {} equals the source node",
                cand.id
            )));
        }
        let v = self
            .trie
            .insert_leaf(cand.id, cand.weight, false, cand.max_hops)?;
        self.resolve_path(v);
        Ok(())
    }

    /// Remove a departed peer. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown or is a core leaf (use
    /// [`remove_core`](Self::remove_core)).
    pub fn remove(&mut self, id: Id) -> Result<(), SelectError> {
        match self.trie.leaf_vertex(id) {
            Some(v) if self.trie.vertex(v).leaf.as_ref().is_some_and(|l| l.is_core) => {
                return Err(SelectError::InvalidProblem(format!(
                    "{id} is a core neighbor; use remove_core"
                )));
            }
            Some(_) => {}
            None => {
                return Err(SelectError::InvalidProblem(format!("unknown peer {id}")));
            }
        }
        let survivor = self.trie.remove_leaf(id)?;
        self.resolve_path(survivor);
        Ok(())
    }

    /// Register a new core neighbor (e.g. after a routing-table repair).
    /// `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is already present.
    pub fn add_core(&mut self, id: Id) -> Result<(), SelectError> {
        if id == self.source {
            return Err(SelectError::InvalidProblem(format!(
                "core neighbor {id} equals the source node"
            )));
        }
        let v = self.trie.insert_leaf(id, 0.0, true, None)?;
        self.resolve_path(v);
        Ok(())
    }

    /// Remove a core neighbor that left the routing table. `O(k·b)`.
    ///
    /// # Errors
    /// `InvalidProblem` if `id` is unknown or not a core leaf.
    pub fn remove_core(&mut self, id: Id) -> Result<(), SelectError> {
        match self.trie.leaf_vertex(id) {
            Some(v) if self.trie.vertex(v).leaf.as_ref().is_some_and(|l| l.is_core) => {}
            Some(_) => {
                return Err(SelectError::InvalidProblem(format!(
                    "{id} is a candidate, not a core neighbor"
                )));
            }
            None => {
                return Err(SelectError::InvalidProblem(format!("unknown peer {id}")));
            }
        }
        let survivor = self.trie.remove_leaf(id)?;
        self.resolve_path(survivor);
        Ok(())
    }
}

/// One-shot greedy selection (paper §IV-B): `O(n·k·b)`.
///
/// # Errors
/// [`SelectError::InvalidProblem`] on malformed input;
/// [`SelectError::QosInfeasible`] when delay bounds cannot be met.
pub fn select_greedy(problem: &PastryProblem) -> Result<Selection, SelectError> {
    let selection = PastryOptimizer::new(problem)?.select()?;
    #[cfg(feature = "check-invariants")]
    crate::invariants::assert_greedy_matches_dp(problem, &selection);
    Ok(selection)
}
