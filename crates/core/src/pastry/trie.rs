//! The trie of observed ids underlying the Pastry selection algorithms.
//!
//! Each observed peer (and each core neighbor) is a leaf at depth `⌈b/d⌉`;
//! interior vertices correspond to id prefixes. Proposition 4.1: the hop
//! estimate between two nodes equals the height of their lowest common
//! ancestor, so the objective decomposes over trie edges (eq. 2): an edge
//! from vertex `a` down to child subtree `T_c` contributes `F(T_c)` to the
//! cost exactly when `T_c` contains no neighbor (core or auxiliary).
//!
//! The trie also carries the QoS machinery of §IV-D: a delay bound of `x`
//! hops on leaf `v` marks `v`'s ancestor at height `x − 1`; a marked
//! subtree without a core neighbor must receive at least one auxiliary
//! pointer (`req`).

use std::collections::BTreeMap;

use peercache_id::{Id, IdSpace};

use crate::cast;
use crate::problem::SelectError;

/// Sentinel for "no vertex".
pub(crate) const NONE: u32 = u32::MAX;

/// Leaf payload: one observed peer or core neighbor.
#[derive(Clone, Debug)]
pub(crate) struct Leaf {
    pub id: Id,
    /// Access frequency `f_v`; zero for pure core-neighbor leaves.
    pub weight: f64,
    pub is_core: bool,
    /// QoS delay bound in total hops (≥ 1), as in [`crate::Candidate`].
    pub max_hops: Option<u32>,
}

/// One trie vertex. Aggregates (`weight`, `cand_count`, `core_count`) cover
/// the whole subtree; `mark_count` counts QoS marks anchored *at* this
/// vertex. Solver fields (`req`, `base`, `costs`, `alloc`) are maintained
/// by the greedy optimiser.
#[derive(Clone, Debug)]
pub(crate) struct Vertex {
    pub parent: u32,
    /// Which child slot of `parent` this vertex occupies.
    pub slot: u16,
    /// Child vertex per digit value (`NONE` = absent).
    pub children: Vec<u32>,
    /// Depth in digits (root = 0); structural metadata used by tests and
    /// diagnostics.
    #[cfg_attr(not(test), allow(dead_code))]
    pub depth: u8,
    pub leaf: Option<Leaf>,
    /// `F(T_a)`: total candidate weight in the subtree.
    pub weight: f64,
    /// Number of candidate (selectable) leaves in the subtree.
    pub cand_count: u32,
    /// Number of core-neighbor leaves in the subtree.
    pub core_count: u32,
    /// QoS marks anchored at this vertex (subtree must hold a neighbor).
    pub mark_count: u32,
    /// Minimum auxiliary pointers any feasible solution places in `T_a`.
    pub req: u32,
    /// `Σ_children req` — the index of the first entry of `costs`.
    pub base: u32,
    /// True when some subtree requirement exceeds its candidate supply.
    pub impossible: bool,
    /// `C(T_a, j)` for `j ∈ base ..= cap`; empty when unsatisfiable at
    /// this `k`.
    pub costs: Vec<f64>,
    /// `alloc[i]`: child slot receiving the `(base + 1 + i)`-th pointer.
    pub alloc: Vec<u16>,
}

impl Vertex {
    fn new(parent: u32, slot: u16, depth: u8, arity: usize) -> Self {
        Vertex {
            parent,
            slot,
            children: vec![NONE; arity],
            depth,
            leaf: None,
            weight: 0.0,
            cand_count: 0,
            core_count: 0,
            mark_count: 0,
            req: 0,
            base: 0,
            impossible: false,
            costs: Vec::new(),
            alloc: Vec::new(),
        }
    }

    /// Largest pointer count this vertex has a cost for, if any.
    pub(crate) fn cap(&self) -> Option<u32> {
        if self.costs.is_empty() {
            None
        } else {
            Some(self.base + cast::index_to_u32(self.costs.len()) - 1)
        }
    }

    /// `C(T_a, t)` — only valid for `t` within `[base, cap]`.
    pub(crate) fn cost_at(&self, t: u32) -> f64 {
        self.costs[cast::usize_from_u32(t - self.base)]
    }
}

/// The trie of observed ids, with slab storage and a free list so that
/// churn (insert/remove) does not leak vertices.
pub(crate) struct Trie {
    pub space: IdSpace,
    pub digit_bits: u8,
    pub digit_count: u8,
    pub arity: usize,
    vertices: Vec<Vertex>,
    free: Vec<u32>,
    /// id → leaf vertex.
    leaves: BTreeMap<Id, u32>,
}

impl Trie {
    /// An empty trie over `space` with `2^digit_bits`-ary branching;
    /// fails when the digit width does not divide the id width.
    pub fn new(space: IdSpace, digit_bits: u8) -> Result<Self, SelectError> {
        let digit_count = space
            .digit_count(digit_bits)
            .map_err(|e| SelectError::InvalidProblem(e.to_string()))?;
        let arity = 1usize << digit_bits;
        let root = Vertex::new(NONE, 0, 0, arity);
        Ok(Trie {
            space,
            digit_bits,
            digit_count,
            arity,
            vertices: vec![root],
            free: Vec::new(),
            leaves: BTreeMap::new(),
        })
    }

    /// Index of the root vertex (always allocated, never freed).
    pub const ROOT: u32 = 0;

    /// The vertex at index `v`; panics on a dangling index.
    pub fn vertex(&self, v: u32) -> &Vertex {
        &self.vertices[cast::index_from_u32(v)]
    }

    /// Mutable access to the vertex at index `v`.
    pub fn vertex_mut(&mut self, v: u32) -> &mut Vertex {
        &mut self.vertices[cast::index_from_u32(v)]
    }

    /// The leaf vertex currently holding candidate `id`, if present.
    pub fn leaf_vertex(&self, id: Id) -> Option<u32> {
        self.leaves.get(&id).copied()
    }

    /// Number of live vertices (diagnostics / tests).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len() - self.free.len()
    }

    fn alloc_vertex(&mut self, parent: u32, slot: u16, depth: u8) -> u32 {
        let arity = self.arity;
        match self.free.pop() {
            Some(idx) => {
                self.vertices[cast::index_from_u32(idx)] = Vertex::new(parent, slot, depth, arity);
                idx
            }
            None => {
                let idx = cast::index_to_u32(self.vertices.len());
                self.vertices.push(Vertex::new(parent, slot, depth, arity));
                idx
            }
        }
    }

    /// Insert a leaf for `id`, creating the digit path from the root.
    ///
    /// # Errors
    /// `InvalidProblem` if a leaf for `id` already exists.
    pub fn insert_leaf(
        &mut self,
        id: Id,
        weight: f64,
        is_core: bool,
        max_hops: Option<u32>,
    ) -> Result<u32, SelectError> {
        if self.leaves.contains_key(&id) {
            return Err(SelectError::InvalidProblem(format!(
                "leaf {id} already present in trie"
            )));
        }
        let mut v = Self::ROOT;
        for depth in 0..self.digit_count {
            let digit = self
                .space
                .digit(id, depth, self.digit_bits)
                .expect("depth < digit_count and digit width ≤ 16");
            let digit_idx = usize::from(digit);
            let child = self.vertices[cast::index_from_u32(v)].children[digit_idx];
            v = if child == NONE {
                let c = self.alloc_vertex(v, digit, depth + 1);
                self.vertices[cast::index_from_u32(v)].children[digit_idx] = c;
                c
            } else {
                child
            };
        }
        self.vertices[cast::index_from_u32(v)].leaf = Some(Leaf {
            id,
            weight,
            is_core,
            max_hops,
        });
        self.leaves.insert(id, v);
        if let Some(bound) = max_hops {
            let mark = self.mark_vertex_for(v, bound);
            if let Some(m) = mark {
                self.vertices[cast::index_from_u32(m)].mark_count += 1;
            }
        }
        Ok(v)
    }

    /// The vertex a delay bound of `max_hops` total hops marks: the
    /// ancestor of `leaf` at height `max_hops − 1`. `None` when the bound
    /// is loose enough to be vacuous (`max_hops − 1 ≥ digit_count`).
    fn mark_vertex_for(&self, leaf: u32, max_hops: u32) -> Option<u32> {
        debug_assert!(max_hops >= 1);
        let allowed = max_hops - 1;
        if allowed >= u32::from(self.digit_count) {
            return None;
        }
        let mut v = leaf;
        for _ in 0..allowed {
            v = self.vertices[cast::index_from_u32(v)].parent;
            debug_assert_ne!(v, NONE);
        }
        Some(v)
    }

    /// Remove the leaf for `id`, pruning now-empty ancestors. Returns the
    /// deepest *surviving* ancestor (always at least the root), from which
    /// solver state must be refreshed.
    ///
    /// # Errors
    /// `InvalidProblem` if no leaf for `id` exists.
    pub fn remove_leaf(&mut self, id: Id) -> Result<u32, SelectError> {
        let v = self
            .leaves
            .remove(&id)
            .ok_or_else(|| SelectError::InvalidProblem(format!("leaf {id} not present in trie")))?;
        let leaf = self.vertices[cast::index_from_u32(v)]
            .leaf
            .take()
            .expect("leaf map points at leaf vertices");
        if let Some(bound) = leaf.max_hops {
            if let Some(m) = self.mark_vertex_for(v, bound) {
                debug_assert!(self.vertices[cast::index_from_u32(m)].mark_count > 0);
                self.vertices[cast::index_from_u32(m)].mark_count -= 1;
            }
        }
        // Prune upward while a vertex has no leaf, no children, and no marks.
        let mut cur = v;
        loop {
            let vert = &self.vertices[cast::index_from_u32(cur)];
            let prunable = vert.leaf.is_none()
                && vert.mark_count == 0
                && vert.children.iter().all(|&c| c == NONE)
                && cur != Self::ROOT;
            if !prunable {
                return Ok(cur);
            }
            let parent = vert.parent;
            let slot = usize::from(vert.slot);
            self.vertices[cast::index_from_u32(parent)].children[slot] = NONE;
            self.free.push(cur);
            cur = parent;
        }
    }

    /// Iterate the live children of `v`.
    pub fn children_of(&self, v: u32) -> impl Iterator<Item = (u16, u32)> + '_ {
        self.vertices[cast::index_from_u32(v)]
            .children
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != NONE)
            .map(|(slot, &c)| (cast::slot_to_u16(slot), c))
    }

    /// Vertices from `v` (inclusive) up to the root (inclusive).
    pub fn path_to_root(&self, v: u32) -> Vec<u32> {
        let mut path = Vec::with_capacity(usize::from(self.digit_count) + 1);
        let mut cur = v;
        while cur != NONE {
            path.push(cur);
            cur = self.vertices[cast::index_from_u32(cur)].parent;
        }
        path
    }

    /// All vertices in post-order (children before parents).
    pub fn post_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.vertex_count());
        let mut stack = vec![(Self::ROOT, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for (_, c) in self.children_of(v) {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Total candidate weight in the trie (root aggregate).
    pub fn total_weight(&self) -> f64 {
        self.vertices[cast::index_from_u32(Self::ROOT)].weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(bits: u8, d: u8) -> Trie {
        Trie::new(IdSpace::new(bits).unwrap(), d).unwrap()
    }

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn insert_creates_full_depth_path() {
        let mut t = trie(4, 1);
        let v = t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        assert_eq!(t.vertex(v).depth, 4);
        assert_eq!(t.vertex_count(), 5, "root + 4 path vertices");
        assert_eq!(t.leaf_vertex(id(0b1010)), Some(v));
    }

    #[test]
    fn shared_prefixes_share_vertices() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b1011), 1.0, false, None).unwrap();
        // Shared path of 3 + two distinct leaves + root = 6.
        assert_eq!(t.vertex_count(), 6);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(3), 1.0, false, None).unwrap();
        assert!(t.insert_leaf(id(3), 2.0, false, None).is_err());
    }

    #[test]
    fn remove_prunes_exclusive_path() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b0101), 1.0, false, None).unwrap();
        let survivor = t.remove_leaf(id(0b1010)).unwrap();
        assert_eq!(survivor, Trie::ROOT);
        assert_eq!(t.vertex_count(), 5, "root + remaining path");
        assert_eq!(t.leaf_vertex(id(0b1010)), None);
        assert!(t.remove_leaf(id(0b1010)).is_err(), "double remove");
    }

    #[test]
    fn remove_stops_at_shared_vertex() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b1011), 1.0, false, None).unwrap();
        let survivor = t.remove_leaf(id(0b1011)).unwrap();
        assert_eq!(t.vertex(survivor).depth, 3, "the shared prefix vertex");
        assert_eq!(t.vertex_count(), 5);
    }

    #[test]
    fn free_list_recycles_vertices() {
        let mut t = trie(8, 1);
        t.insert_leaf(id(0xAA), 1.0, false, None).unwrap();
        let before = t.vertex_count();
        t.remove_leaf(id(0xAA)).unwrap();
        t.insert_leaf(id(0x55), 1.0, false, None).unwrap();
        assert_eq!(t.vertex_count(), before, "recycled, not grown");
    }

    #[test]
    fn qos_mark_lands_at_height_bound_minus_one() {
        let mut t = trie(4, 1);
        let leaf = t.insert_leaf(id(0b1010), 1.0, false, Some(3)).unwrap();
        // max_hops 3 → allowed distance 2 → ancestor at height 2 (depth 2).
        let mut v = leaf;
        v = t.vertex(v).parent;
        v = t.vertex(v).parent;
        assert_eq!(t.vertex(v).depth, 2);
        assert_eq!(t.vertex(v).mark_count, 1);
    }

    #[test]
    fn vacuous_qos_bound_adds_no_mark() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, Some(5)).unwrap();
        let marks: u32 = t.post_order().iter().map(|&v| t.vertex(v).mark_count).sum();
        assert_eq!(marks, 0);
    }

    #[test]
    fn tight_qos_bound_marks_the_leaf() {
        let mut t = trie(4, 1);
        let leaf = t.insert_leaf(id(0b1010), 1.0, false, Some(1)).unwrap();
        assert_eq!(t.vertex(leaf).mark_count, 1);
    }

    #[test]
    fn remove_clears_qos_mark() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, Some(2)).unwrap();
        t.remove_leaf(id(0b1010)).unwrap();
        assert_eq!(t.vertex_count(), 1, "everything pruned back to root");
    }

    #[test]
    fn post_order_visits_children_first() {
        let mut t = trie(3, 1);
        t.insert_leaf(id(0b101), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b100), 1.0, false, None).unwrap();
        let order = t.post_order();
        assert_eq!(*order.last().unwrap(), Trie::ROOT);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        for &v in &order {
            for (_, c) in t.children_of(v) {
                assert!(pos(c) < pos(v), "child before parent");
            }
        }
    }

    #[test]
    fn base16_digits_build_shallow_tries() {
        let mut t = trie(8, 4);
        let v = t.insert_leaf(id(0xAB), 1.0, false, None).unwrap();
        assert_eq!(t.vertex(v).depth, 2, "two hex digits");
        assert_eq!(t.arity, 16);
    }
}
