//! The trie of observed ids underlying the Pastry selection algorithms.
//!
//! Each observed peer (and each core neighbor) is a leaf at depth `⌈b/d⌉`;
//! interior vertices correspond to id prefixes. Proposition 4.1: the hop
//! estimate between two nodes equals the height of their lowest common
//! ancestor, so the objective decomposes over trie edges (eq. 2): an edge
//! from vertex `a` down to child subtree `T_c` contributes `F(T_c)` to the
//! cost exactly when `T_c` contains no neighbor (core or auxiliary).
//!
//! The trie also carries the QoS machinery of §IV-D: a delay bound of `x`
//! hops on leaf `v` marks `v`'s ancestor at height `x − 1`; a marked
//! subtree without a core neighbor must receive at least one auxiliary
//! pointer (`req`).
//!
//! ## Memory layout
//!
//! Hot state lives in flat vectors rather than per-vertex heap objects:
//! child links occupy one slab (`child_arena`, `arity` slots per vertex)
//! and the id → leaf index is a sorted `Vec` probed by binary search
//! (deterministic by construction, so L6-clean — see DESIGN.md). The slab
//! plus free list let [`reset`](Trie::reset) rebuild the trie for a new
//! problem without allocating once capacities have warmed up.

use peercache_id::{Id, IdSpace};

use crate::cast;
use crate::problem::SelectError;

/// Sentinel for "no vertex".
pub(crate) const NONE: u32 = u32::MAX;

/// Leaf payload: one observed peer or core neighbor.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Leaf {
    pub id: Id,
    /// Access frequency `f_v`; zero for pure core-neighbor leaves.
    pub weight: f64,
    pub is_core: bool,
    /// QoS delay bound in total hops (≥ 1), as in [`crate::Candidate`].
    pub max_hops: Option<u32>,
}

/// One trie vertex. Aggregates (`weight`, `cand_count`, `core_count`) cover
/// the whole subtree; `mark_count` counts QoS marks anchored *at* this
/// vertex. Solver fields (`req`, `base`, `costs`, `alloc`) are maintained
/// by the greedy optimiser. Child links live in the trie's `child_arena`,
/// not here.
#[derive(Clone, Debug)]
pub(crate) struct Vertex {
    pub parent: u32,
    /// Which child slot of `parent` this vertex occupies.
    pub slot: u16,
    /// Depth in digits (root = 0); structural metadata used by tests and
    /// diagnostics.
    #[cfg_attr(not(test), allow(dead_code))]
    pub depth: u8,
    pub leaf: Option<Leaf>,
    /// `F(T_a)`: total candidate weight in the subtree.
    pub weight: f64,
    /// Number of candidate (selectable) leaves in the subtree.
    pub cand_count: u32,
    /// Number of core-neighbor leaves in the subtree.
    pub core_count: u32,
    /// QoS marks anchored at this vertex (subtree must hold a neighbor).
    pub mark_count: u32,
    /// Minimum auxiliary pointers any feasible solution places in `T_a`.
    pub req: u32,
    /// `Σ_children req` — the index of the first entry of `costs`.
    pub base: u32,
    /// True when some subtree requirement exceeds its candidate supply.
    pub impossible: bool,
    /// `C(T_a, j)` for `j ∈ base ..= cap`; empty when unsatisfiable at
    /// this `k`.
    pub costs: Vec<f64>,
    /// `alloc[i]`: child slot receiving the `(base + 1 + i)`-th pointer.
    pub alloc: Vec<u16>,
}

impl Vertex {
    fn new(parent: u32, slot: u16, depth: u8) -> Self {
        Vertex {
            parent,
            slot,
            depth,
            leaf: None,
            weight: 0.0,
            cand_count: 0,
            core_count: 0,
            mark_count: 0,
            req: 0,
            base: 0,
            impossible: false,
            costs: Vec::new(),
            alloc: Vec::new(),
        }
    }

    /// Re-initialise in place, keeping the `costs`/`alloc` capacities.
    fn reset(&mut self, parent: u32, slot: u16, depth: u8) {
        self.parent = parent;
        self.slot = slot;
        self.depth = depth;
        self.leaf = None;
        self.weight = 0.0;
        self.cand_count = 0;
        self.core_count = 0;
        self.mark_count = 0;
        self.req = 0;
        self.base = 0;
        self.impossible = false;
        self.costs.clear();
        self.alloc.clear();
    }

    /// Largest pointer count this vertex has a cost for, if any.
    pub(crate) fn cap(&self) -> Option<u32> {
        if self.costs.is_empty() {
            None
        } else {
            Some(self.base + cast::index_to_u32(self.costs.len()) - 1)
        }
    }

    /// `C(T_a, t)` — only valid for `t` within `[base, cap]`.
    pub(crate) fn cost_at(&self, t: u32) -> f64 {
        self.costs[cast::usize_from_u32(t - self.base)]
    }
}

/// The trie of observed ids, with slab storage and a free list so that
/// churn (insert/remove) does not leak vertices and [`reset`](Trie::reset)
/// can rebuild without allocating.
pub(crate) struct Trie {
    pub space: IdSpace,
    pub digit_bits: u8,
    pub digit_count: u8,
    pub arity: usize,
    vertices: Vec<Vertex>,
    free: Vec<u32>,
    /// Child links, `arity` consecutive slots per vertex (`NONE` = absent).
    child_arena: Vec<u32>,
    /// id → leaf vertex, sorted by id (binary-search index).
    leaves: Vec<(Id, u32)>,
}

impl Trie {
    /// An empty trie over `space` with `2^digit_bits`-ary branching;
    /// fails when the digit width does not divide the id width.
    pub fn new(space: IdSpace, digit_bits: u8) -> Result<Self, SelectError> {
        let digit_count = space
            .digit_count(digit_bits)
            .map_err(|e| SelectError::InvalidProblem(e.to_string()))?;
        let arity = 1usize << digit_bits;
        Ok(Trie {
            space,
            digit_bits,
            digit_count,
            arity,
            vertices: vec![Vertex::new(NONE, 0, 0)],
            free: Vec::new(),
            child_arena: vec![NONE; arity],
            leaves: Vec::new(),
        })
    }

    /// Index of the root vertex (always allocated, never freed).
    pub const ROOT: u32 = 0;

    /// Clear the trie for a new problem over `space`, keeping the vertex
    /// slab (including warmed `costs`/`alloc` capacities), the child
    /// arena and the leaf index. Freed slots are queued so that
    /// allocation order matches a fresh build — a rebuild with the same
    /// insertion sequence assigns every vertex the same index and role.
    ///
    /// # Errors
    /// `InvalidProblem` when the digit width does not divide the id width.
    pub fn reset(&mut self, space: IdSpace, digit_bits: u8) -> Result<(), SelectError> {
        let digit_count = space
            .digit_count(digit_bits)
            .map_err(|e| SelectError::InvalidProblem(e.to_string()))?;
        let arity = 1usize << digit_bits;
        self.space = space;
        self.digit_bits = digit_bits;
        self.digit_count = digit_count;
        if arity != self.arity {
            self.arity = arity;
            self.child_arena.clear();
            self.child_arena.resize(self.vertices.len() * arity, NONE);
        }
        self.leaves.clear();
        self.free.clear();
        // Push descending so pops ascend: slot 1 is handed out first,
        // exactly like a fresh build's first push.
        for idx in (1..self.vertices.len()).rev() {
            self.free.push(cast::index_to_u32(idx));
        }
        self.reset_slot(Self::ROOT, NONE, 0, 0);
        Ok(())
    }

    /// The vertex at index `v`; panics on a dangling index.
    pub fn vertex(&self, v: u32) -> &Vertex {
        &self.vertices[cast::index_from_u32(v)]
    }

    /// Mutable access to the vertex at index `v`.
    pub fn vertex_mut(&mut self, v: u32) -> &mut Vertex {
        &mut self.vertices[cast::index_from_u32(v)]
    }

    /// The child of `v` in `slot` (`NONE` = absent).
    fn child(&self, v: u32, slot: usize) -> u32 {
        self.child_arena[cast::index_from_u32(v) * self.arity + slot]
    }

    fn set_child(&mut self, v: u32, slot: usize, c: u32) {
        self.child_arena[cast::index_from_u32(v) * self.arity + slot] = c;
    }

    /// The leaf vertex currently holding candidate `id`, if present.
    pub fn leaf_vertex(&self, id: Id) -> Option<u32> {
        self.leaves
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|pos| self.leaves[pos].1)
    }

    /// Number of live vertices (diagnostics / tests).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len() - self.free.len()
    }

    /// Re-initialise slot `idx` (vertex fields and child links) in place.
    fn reset_slot(&mut self, idx: u32, parent: u32, slot: u16, depth: u8) {
        let base = cast::index_from_u32(idx) * self.arity;
        for c in &mut self.child_arena[base..base + self.arity] {
            *c = NONE;
        }
        self.vertices[cast::index_from_u32(idx)].reset(parent, slot, depth);
    }

    fn alloc_vertex(&mut self, parent: u32, slot: u16, depth: u8) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.reset_slot(idx, parent, slot, depth);
                idx
            }
            None => {
                let idx = cast::index_to_u32(self.vertices.len());
                self.vertices.push(Vertex::new(parent, slot, depth));
                self.child_arena
                    .resize(self.child_arena.len() + self.arity, NONE);
                idx
            }
        }
    }

    /// Insert a leaf for `id`, creating the digit path from the root.
    ///
    /// # Errors
    /// `InvalidProblem` if a leaf for `id` already exists.
    pub fn insert_leaf(
        &mut self,
        id: Id,
        weight: f64,
        is_core: bool,
        max_hops: Option<u32>,
    ) -> Result<u32, SelectError> {
        let pos = match self.leaves.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(_) => {
                return Err(SelectError::InvalidProblem(format!(
                    "leaf {id} already present in trie"
                )));
            }
            Err(pos) => pos,
        };
        let mut v = Self::ROOT;
        for depth in 0..self.digit_count {
            let digit = self
                .space
                .digit(id, depth, self.digit_bits)
                .expect("depth < digit_count and digit width ≤ 16");
            let digit_idx = usize::from(digit);
            let child = self.child(v, digit_idx);
            v = if child == NONE {
                let c = self.alloc_vertex(v, digit, depth + 1);
                self.set_child(v, digit_idx, c);
                c
            } else {
                child
            };
        }
        self.vertices[cast::index_from_u32(v)].leaf = Some(Leaf {
            id,
            weight,
            is_core,
            max_hops,
        });
        self.leaves.insert(pos, (id, v));
        if let Some(bound) = max_hops {
            let mark = self.mark_vertex_for(v, bound);
            if let Some(m) = mark {
                self.vertices[cast::index_from_u32(m)].mark_count += 1;
            }
        }
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_leaf_index_sorted(&self.leaves);
        Ok(v)
    }

    /// The vertex a delay bound of `max_hops` total hops marks: the
    /// ancestor of `leaf` at height `max_hops − 1`. `None` when the bound
    /// is loose enough to be vacuous (`max_hops − 1 ≥ digit_count`).
    fn mark_vertex_for(&self, leaf: u32, max_hops: u32) -> Option<u32> {
        debug_assert!(max_hops >= 1);
        let allowed = max_hops - 1;
        if allowed >= u32::from(self.digit_count) {
            return None;
        }
        let mut v = leaf;
        for _ in 0..allowed {
            v = self.vertices[cast::index_from_u32(v)].parent;
            debug_assert_ne!(v, NONE);
        }
        Some(v)
    }

    /// Remove the leaf for `id`, pruning now-empty ancestors. Returns the
    /// deepest *surviving* ancestor (always at least the root), from which
    /// solver state must be refreshed.
    ///
    /// # Errors
    /// `InvalidProblem` if no leaf for `id` exists.
    pub fn remove_leaf(&mut self, id: Id) -> Result<u32, SelectError> {
        let pos = self
            .leaves
            .binary_search_by_key(&id, |&(i, _)| i)
            .map_err(|_| SelectError::InvalidProblem(format!("leaf {id} not present in trie")))?;
        let (_, v) = self.leaves.remove(pos);
        let leaf = self.vertices[cast::index_from_u32(v)]
            .leaf
            .take()
            .expect("leaf map points at leaf vertices");
        if let Some(bound) = leaf.max_hops {
            if let Some(m) = self.mark_vertex_for(v, bound) {
                debug_assert!(self.vertices[cast::index_from_u32(m)].mark_count > 0);
                self.vertices[cast::index_from_u32(m)].mark_count -= 1;
            }
        }
        #[cfg(feature = "check-invariants")]
        crate::invariants::assert_leaf_index_sorted(&self.leaves);
        // Prune upward while a vertex has no leaf, no children, and no marks.
        let mut cur = v;
        loop {
            let vert = &self.vertices[cast::index_from_u32(cur)];
            let prunable = vert.leaf.is_none()
                && vert.mark_count == 0
                && cur != Self::ROOT
                && self.children_of(cur).next().is_none();
            if !prunable {
                return Ok(cur);
            }
            let vert = &self.vertices[cast::index_from_u32(cur)];
            let parent = vert.parent;
            let slot = usize::from(vert.slot);
            self.set_child(parent, slot, NONE);
            self.free.push(cur);
            cur = parent;
        }
    }

    /// Iterate the live children of `v` in ascending slot order.
    pub fn children_of(&self, v: u32) -> impl Iterator<Item = (u16, u32)> + '_ {
        let base = cast::index_from_u32(v) * self.arity;
        self.child_arena[base..base + self.arity]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != NONE)
            .map(|(slot, &c)| (cast::slot_to_u16(slot), c))
    }

    /// All vertices in post-order (children before parents), written into
    /// caller-owned buffers (`stack` is DFS scratch).
    pub fn post_order_into(&self, order: &mut Vec<u32>, stack: &mut Vec<(u32, bool)>) {
        order.clear();
        stack.clear();
        stack.push((Self::ROOT, false));
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for (_, c) in self.children_of(v) {
                    stack.push((c, false));
                }
            }
        }
    }

    /// All vertices in post-order (children before parents).
    pub fn post_order(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.vertex_count());
        let mut stack = Vec::new();
        self.post_order_into(&mut order, &mut stack);
        order
    }

    /// Total candidate weight in the trie (root aggregate).
    pub fn total_weight(&self) -> f64 {
        self.vertices[cast::index_from_u32(Self::ROOT)].weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(bits: u8, d: u8) -> Trie {
        Trie::new(IdSpace::new(bits).unwrap(), d).unwrap()
    }

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn insert_creates_full_depth_path() {
        let mut t = trie(4, 1);
        let v = t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        assert_eq!(t.vertex(v).depth, 4);
        assert_eq!(t.vertex_count(), 5, "root + 4 path vertices");
        assert_eq!(t.leaf_vertex(id(0b1010)), Some(v));
    }

    #[test]
    fn shared_prefixes_share_vertices() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b1011), 1.0, false, None).unwrap();
        // Shared path of 3 + two distinct leaves + root = 6.
        assert_eq!(t.vertex_count(), 6);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(3), 1.0, false, None).unwrap();
        assert!(t.insert_leaf(id(3), 2.0, false, None).is_err());
    }

    #[test]
    fn remove_prunes_exclusive_path() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b0101), 1.0, false, None).unwrap();
        let survivor = t.remove_leaf(id(0b1010)).unwrap();
        assert_eq!(survivor, Trie::ROOT);
        assert_eq!(t.vertex_count(), 5, "root + remaining path");
        assert_eq!(t.leaf_vertex(id(0b1010)), None);
        assert!(t.remove_leaf(id(0b1010)).is_err(), "double remove");
    }

    #[test]
    fn remove_stops_at_shared_vertex() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b1011), 1.0, false, None).unwrap();
        let survivor = t.remove_leaf(id(0b1011)).unwrap();
        assert_eq!(t.vertex(survivor).depth, 3, "the shared prefix vertex");
        assert_eq!(t.vertex_count(), 5);
    }

    #[test]
    fn free_list_recycles_vertices() {
        let mut t = trie(8, 1);
        t.insert_leaf(id(0xAA), 1.0, false, None).unwrap();
        let before = t.vertex_count();
        t.remove_leaf(id(0xAA)).unwrap();
        t.insert_leaf(id(0x55), 1.0, false, None).unwrap();
        assert_eq!(t.vertex_count(), before, "recycled, not grown");
    }

    #[test]
    fn reset_rebuild_reassigns_identical_indices() {
        let mut t = trie(8, 1);
        let ids = [0xAAu128, 0x55, 0x5A, 0xA5];
        let fresh: Vec<u32> = ids
            .iter()
            .map(|&i| t.insert_leaf(id(i), 1.0, false, None).unwrap())
            .collect();
        let slab_size = t.vertex_count();
        t.reset(IdSpace::new(8).unwrap(), 1).unwrap();
        assert_eq!(t.vertex_count(), 1, "reset leaves only the root live");
        let rebuilt: Vec<u32> = ids
            .iter()
            .map(|&i| t.insert_leaf(id(i), 1.0, false, None).unwrap())
            .collect();
        assert_eq!(fresh, rebuilt, "same insertion order, same slots");
        assert_eq!(t.vertex_count(), slab_size, "slab reused, not grown");
    }

    #[test]
    fn qos_mark_lands_at_height_bound_minus_one() {
        let mut t = trie(4, 1);
        let leaf = t.insert_leaf(id(0b1010), 1.0, false, Some(3)).unwrap();
        // max_hops 3 → allowed distance 2 → ancestor at height 2 (depth 2).
        let mut v = leaf;
        v = t.vertex(v).parent;
        v = t.vertex(v).parent;
        assert_eq!(t.vertex(v).depth, 2);
        assert_eq!(t.vertex(v).mark_count, 1);
    }

    #[test]
    fn vacuous_qos_bound_adds_no_mark() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, Some(5)).unwrap();
        let marks: u32 = t.post_order().iter().map(|&v| t.vertex(v).mark_count).sum();
        assert_eq!(marks, 0);
    }

    #[test]
    fn tight_qos_bound_marks_the_leaf() {
        let mut t = trie(4, 1);
        let leaf = t.insert_leaf(id(0b1010), 1.0, false, Some(1)).unwrap();
        assert_eq!(t.vertex(leaf).mark_count, 1);
    }

    #[test]
    fn remove_clears_qos_mark() {
        let mut t = trie(4, 1);
        t.insert_leaf(id(0b1010), 1.0, false, Some(2)).unwrap();
        t.remove_leaf(id(0b1010)).unwrap();
        assert_eq!(t.vertex_count(), 1, "everything pruned back to root");
    }

    #[test]
    fn post_order_visits_children_first() {
        let mut t = trie(3, 1);
        t.insert_leaf(id(0b101), 1.0, false, None).unwrap();
        t.insert_leaf(id(0b100), 1.0, false, None).unwrap();
        let order = t.post_order();
        assert_eq!(*order.last().unwrap(), Trie::ROOT);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        for &v in &order {
            for (_, c) in t.children_of(v) {
                assert!(pos(c) < pos(v), "child before parent");
            }
        }
    }

    #[test]
    fn base16_digits_build_shallow_tries() {
        let mut t = trie(8, 4);
        let v = t.insert_leaf(id(0xAB), 1.0, false, None).unwrap();
        assert_eq!(t.vertex(v).depth, 2, "two hex digits");
        assert_eq!(t.arity, 16);
    }

    #[test]
    fn reset_to_wider_digits_regrows_arena() {
        let mut t = trie(8, 1);
        t.insert_leaf(id(0xAB), 1.0, false, None).unwrap();
        t.reset(IdSpace::new(8).unwrap(), 4).unwrap();
        assert_eq!(t.arity, 16);
        let v = t.insert_leaf(id(0xAB), 1.0, false, None).unwrap();
        assert_eq!(t.vertex(v).depth, 2);
        assert_eq!(t.leaf_vertex(id(0xAB)), Some(v));
    }
}
