//! Auxiliary-neighbor selection for Pastry (paper §IV).
//!
//! Three interchangeable solvers over the same id-trie model:
//!
//! * [`select_dp`] — the simple `O(n·k²·b)` dynamic program (§IV-A);
//!   reference implementation.
//! * [`select_greedy`] — the `O(n·k·b)` greedy algorithm built on the
//!   subset property (P) (§IV-B); the production path.
//! * [`PastryOptimizer`] — the greedy solver kept warm for `O(k·b)`
//!   incremental maintenance under popularity changes and churn (§IV-C).
//!
//! All three honour per-candidate QoS delay bounds (§IV-D).

mod dp;
mod greedy;
pub(crate) mod trie;

pub use dp::select_dp;
pub use greedy::{select_greedy, PastryOptimizer, PastryWorkspace};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::pastry_cost;
    use crate::exhaustive::pastry_exhaustive;
    use crate::problem::{Candidate, PastryProblem, SelectError};
    use peercache_id::{Id, IdSpace};

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn problem(bits: u8, core: Vec<u128>, cands: Vec<(u128, f64)>, k: usize) -> PastryProblem {
        PastryProblem::new(
            IdSpace::new(bits).unwrap(),
            1,
            Id::ZERO,
            core.into_iter().map(id).collect(),
            cands
                .into_iter()
                .map(|(i, w)| Candidate::new(id(i), w))
                .collect(),
            k,
        )
        .unwrap()
    }

    #[test]
    fn greedy_picks_the_heavy_subtree() {
        // Source 0000; candidates 1000 (heavy) and 0001 (close already).
        let p = problem(4, vec![], vec![(0b1000, 10.0), (0b0001, 1.0)], 1);
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux, vec![id(0b1000)]);
        assert_eq!(sel.cost, pastry_cost(&p, &sel.aux));
    }

    #[test]
    fn greedy_cost_matches_direct_evaluation() {
        let p = problem(
            5,
            vec![0b10000],
            vec![
                (0b00001, 3.0),
                (0b01100, 7.0),
                (0b11010, 2.0),
                (0b10101, 4.5),
            ],
            2,
        );
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux.len(), 2);
        let direct = pastry_cost(&p, &sel.aux);
        assert!((sel.cost - direct).abs() < 1e-9, "{} vs {direct}", sel.cost);
    }

    #[test]
    fn greedy_matches_exhaustive_small() {
        let p = problem(
            4,
            vec![0b1100],
            vec![
                (0b0001, 3.0),
                (0b0110, 7.0),
                (0b1010, 2.0),
                (0b1111, 4.0),
                (0b0011, 1.0),
            ],
            2,
        );
        let greedy = select_greedy(&p).unwrap();
        let best = pastry_exhaustive(&p).unwrap();
        assert!((greedy.cost - best.cost).abs() < 1e-9);
    }

    #[test]
    fn dp_matches_exhaustive_small() {
        let p = problem(
            4,
            vec![0b0100],
            vec![(0b0001, 3.0), (0b0110, 7.0), (0b1010, 2.0), (0b1111, 4.0)],
            2,
        );
        let dp = select_dp(&p).unwrap();
        let best = pastry_exhaustive(&p).unwrap();
        assert!((dp.cost - best.cost).abs() < 1e-9);
        assert_eq!(dp.cost, pastry_cost(&p, &dp.aux));
    }

    #[test]
    fn core_neighbor_suppresses_redundant_pointer() {
        // Core already covers subtree 1xxx; the single auxiliary pointer
        // should go to the *other* half even though 1xxx is heavier.
        let p = problem(4, vec![0b1010], vec![(0b1011, 10.0), (0b0010, 6.0)], 1);
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux, vec![id(0b0010)]);
    }

    #[test]
    fn k_zero_gives_core_only_cost() {
        let p = problem(4, vec![0b1000], vec![(0b1001, 2.0), (0b0001, 3.0)], 0);
        let sel = select_greedy(&p).unwrap();
        assert!(sel.aux.is_empty());
        assert_eq!(sel.cost, pastry_cost(&p, &[]));
    }

    #[test]
    fn k_exceeding_candidates_selects_everything() {
        let p = problem(4, vec![], vec![(1, 1.0), (2, 1.0), (3, 1.0)], 10);
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux.len(), 3);
        // Every candidate selected → every distance 0 → cost = Σ f_v.
        assert_eq!(sel.cost, 3.0);
    }

    #[test]
    fn empty_candidates_is_fine() {
        let p = problem(4, vec![0b1000], vec![], 3);
        let sel = select_greedy(&p).unwrap();
        assert!(sel.aux.is_empty());
        assert_eq!(sel.cost, 0.0);
    }

    #[test]
    fn optimizer_selection_is_monotone_in_j() {
        let p = problem(
            6,
            vec![0b100000],
            vec![
                (0b000001, 3.0),
                (0b000110, 7.0),
                (0b101010, 2.0),
                (0b111100, 4.0),
                (0b010101, 5.0),
                (0b001100, 1.0),
            ],
            4,
        );
        let opt = PastryOptimizer::new(&p).unwrap();
        let mut prev_cost = f64::INFINITY;
        let mut prev_set: Vec<Id> = vec![];
        for j in 0..=4 {
            let sel = opt.selection(j).unwrap();
            assert_eq!(sel.aux.len(), j);
            assert!(sel.cost <= prev_cost + 1e-9, "cost weakly decreasing");
            // Property (P): the (j−1)-optimal set is a subset of the j-set.
            for prev_id in &prev_set {
                assert!(sel.aux.contains(prev_id), "property P violated at j={j}");
            }
            prev_cost = sel.cost;
            prev_set = sel.aux;
        }
    }

    #[test]
    fn selection_schedule_nests_and_matches_per_budget() {
        let p = problem(
            6,
            vec![0b100000],
            vec![
                (0b000001, 3.0),
                (0b000110, 7.0),
                (0b101010, 2.0),
                (0b111100, 4.0),
                (0b010101, 5.0),
            ],
            4,
        );
        let opt = PastryOptimizer::new(&p).unwrap();
        let schedule = opt.selection_schedule();
        assert_eq!(schedule.len(), 5, "budgets 0..=4");
        for (w, sel) in schedule.windows(2).map(|w| (&w[0], &w[1].1)) {
            for id in &w.1.aux {
                assert!(sel.aux.contains(id), "schedule must nest");
            }
        }
        for (j, sel) in &schedule {
            let direct = opt.selection(*j).unwrap();
            assert_eq!(sel.aux, direct.aux);
        }
    }

    #[test]
    fn schedule_stops_at_candidate_supply() {
        let p = problem(4, vec![], vec![(1, 1.0), (2, 1.0)], 5);
        let opt = PastryOptimizer::new(&p).unwrap();
        let schedule = opt.selection_schedule();
        assert_eq!(schedule.len(), 3, "budgets 0, 1, 2 only");
    }

    #[test]
    fn incremental_update_tracks_from_scratch() {
        let p = problem(
            5,
            vec![0b10000],
            vec![
                (0b00001, 3.0),
                (0b01100, 7.0),
                (0b11010, 2.0),
                (0b10101, 4.0),
            ],
            2,
        );
        let mut opt = PastryOptimizer::new(&p).unwrap();
        opt.update_weight(id(0b11010), 50.0).unwrap();
        let incremental = opt.select().unwrap();

        let mut p2 = p.clone();
        p2.candidates
            .iter_mut()
            .find(|c| c.id == id(0b11010))
            .unwrap()
            .weight = 50.0;
        let scratch = select_greedy(&p2).unwrap();
        assert!((incremental.cost - scratch.cost).abs() < 1e-9);
        assert!(incremental.aux.contains(&id(0b11010)));
    }

    #[test]
    fn incremental_insert_and_remove_track_from_scratch() {
        let p = problem(5, vec![], vec![(0b00001, 3.0), (0b01100, 7.0)], 2);
        let mut opt = PastryOptimizer::new(&p).unwrap();
        opt.insert(Candidate::new(id(0b11111), 9.0)).unwrap();
        opt.remove(id(0b00001)).unwrap();

        let p2 = problem(5, vec![], vec![(0b01100, 7.0), (0b11111, 9.0)], 2);
        let scratch = select_greedy(&p2).unwrap();
        let incr = opt.select().unwrap();
        assert!((incr.cost - scratch.cost).abs() < 1e-9);
        assert_eq!(incr.aux, scratch.aux);
    }

    #[test]
    fn incremental_core_churn_tracks_from_scratch() {
        let p = problem(5, vec![0b10000], vec![(0b10001, 5.0), (0b00011, 4.0)], 1);
        let mut opt = PastryOptimizer::new(&p).unwrap();
        // Losing core 10000 makes the 1xxxx subtree uncovered.
        opt.remove_core(id(0b10000)).unwrap();
        opt.add_core(id(0b00010)).unwrap();

        let p2 = problem(5, vec![0b00010], vec![(0b10001, 5.0), (0b00011, 4.0)], 1);
        let scratch = select_greedy(&p2).unwrap();
        let incr = opt.select().unwrap();
        assert!((incr.cost - scratch.cost).abs() < 1e-9);
    }

    #[test]
    fn incremental_rejects_bad_operations() {
        let p = problem(4, vec![0b1000], vec![(0b0001, 1.0)], 1);
        let mut opt = PastryOptimizer::new(&p).unwrap();
        assert!(opt.update_weight(id(0b0010), 1.0).is_err(), "unknown id");
        assert!(opt.update_weight(id(0b1000), 1.0).is_err(), "core id");
        assert!(opt.update_weight(id(0b0001), f64::NAN).is_err());
        assert!(opt.remove(id(0b1000)).is_err(), "core via remove");
        assert!(
            opt.remove_core(id(0b0001)).is_err(),
            "candidate via remove_core"
        );
        assert!(opt.insert(Candidate::new(id(0b0001), 1.0)).is_err(), "dup");
    }

    #[test]
    fn qos_bound_forces_selection() {
        // Node 0b1111 (weight tiny) demands ≤ 2 hops; node 0b0001 is heavy.
        // With k = 1, QoS forces the pointer into 0b1111's height-1 subtree.
        let space = IdSpace::new(4).unwrap();
        let p = PastryProblem::new(
            space,
            1,
            Id::ZERO,
            vec![],
            vec![
                Candidate::with_max_hops(id(0b1111), 0.1, 2),
                Candidate::new(id(0b0001), 100.0),
            ],
            1,
        )
        .unwrap();
        let sel = select_greedy(&p).unwrap();
        // The only candidate inside 0b111x is 0b1111 itself.
        assert_eq!(sel.aux, vec![id(0b1111)]);
        let dp = select_dp(&p).unwrap();
        assert_eq!(dp.aux, sel.aux);
    }

    #[test]
    fn qos_satisfied_by_core_neighbor_is_free() {
        let space = IdSpace::new(4).unwrap();
        let p = PastryProblem::new(
            space,
            1,
            Id::ZERO,
            vec![id(0b1110)], // covers the height-1 subtree of 0b1111
            vec![
                Candidate::with_max_hops(id(0b1111), 0.1, 2),
                Candidate::new(id(0b0001), 100.0),
            ],
            1,
        )
        .unwrap();
        let sel = select_greedy(&p).unwrap();
        assert_eq!(sel.aux, vec![id(0b0001)], "core covers the bound");
    }

    #[test]
    fn qos_infeasible_when_k_too_small() {
        let space = IdSpace::new(4).unwrap();
        let p = PastryProblem::new(
            space,
            1,
            Id::ZERO,
            vec![],
            vec![
                Candidate::with_max_hops(id(0b1111), 1.0, 1),
                Candidate::with_max_hops(id(0b0001), 1.0, 1),
            ],
            1,
        )
        .unwrap();
        match select_greedy(&p) {
            Err(SelectError::QosInfeasible { required, k }) => {
                assert_eq!(required, 2);
                assert_eq!(k, 1);
            }
            other => panic!("expected QosInfeasible, got {other:?}"),
        }
        assert!(matches!(
            select_dp(&p),
            Err(SelectError::QosInfeasible { .. })
        ));
    }

    #[test]
    fn qos_feasibility_restored_by_incremental_removal() {
        let space = IdSpace::new(4).unwrap();
        let p = PastryProblem::new(
            space,
            1,
            Id::ZERO,
            vec![],
            vec![
                Candidate::with_max_hops(id(0b1111), 1.0, 1),
                Candidate::with_max_hops(id(0b0001), 1.0, 1),
            ],
            1,
        )
        .unwrap();
        let mut opt = PastryOptimizer::new(&p).unwrap();
        assert!(opt.select().is_err());
        assert_eq!(opt.required_pointers(), 2);
        opt.remove(id(0b0001)).unwrap();
        let sel = opt.select().unwrap();
        assert_eq!(sel.aux, vec![id(0b1111)]);
    }

    #[test]
    fn wider_digits_change_the_metric() {
        // With d = 2 over b = 4, ids are 2 digits; 0b1110 and 0b1111 differ
        // in the last digit only → distance 1 digit.
        let space = IdSpace::new(4).unwrap();
        let p = PastryProblem::new(
            space,
            2,
            Id::ZERO,
            vec![],
            vec![
                Candidate::new(id(0b1110), 1.0),
                Candidate::new(id(0b1111), 1.0),
            ],
            1,
        )
        .unwrap();
        let sel = select_greedy(&p).unwrap();
        // Either choice covers the other at distance 1: cost = 1·1 + 1·2 = 3.
        assert_eq!(sel.cost, 3.0);
        assert_eq!(sel.cost, pastry_cost(&p, &sel.aux));
    }
}
