//! The frequency-oblivious baseline of the paper's evaluation (§VI-A).
//!
//! The comparison scheme picks the `k` auxiliary neighbors *without*
//! looking at access frequencies, but still spread structurally:
//!
//! * **Chord**: with `k = r·log n`, pick `r` random candidates per
//!   distance slice `(2^i, 2^{i+1}]` (equivalently: per value of the hop
//!   estimate) for every non-empty slice;
//! * **Pastry**: pick `r` random candidates per length of the prefix
//!   shared with the selecting node.
//!
//! Slices with too few candidates donate their leftover budget to a
//! uniform draw over the remaining pool, so exactly `min(k, n)` pointers
//! are always returned.

use std::collections::BTreeMap;

use peercache_id::Id;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::cost::{chord_cost, pastry_cost};
use crate::problem::{ChordProblem, PastryProblem, Selection};

/// Draw `k` ids slice-balanced: `⌊k / #slices⌋` (+1 for the first
/// `k mod #slices` slices) from each slice at random, then top up from
/// the leftover pool.
fn slice_balanced<R: Rng + ?Sized>(
    slices: BTreeMap<u32, Vec<Id>>,
    k: usize,
    rng: &mut R,
) -> Vec<Id> {
    let total: usize = slices.values().map(Vec::len).sum();
    let k = k.min(total);
    if k == 0 {
        return Vec::new();
    }
    let nslices = slices.len();
    let per = k / nslices;
    let extra = k % nslices;
    let mut chosen = Vec::with_capacity(k);
    let mut leftovers: Vec<Id> = Vec::new();
    for (i, (_, mut ids)) in slices.into_iter().enumerate() {
        let quota = per + usize::from(i < extra);
        ids.shuffle(rng);
        let take = quota.min(ids.len());
        chosen.extend(ids.drain(..take));
        leftovers.extend(ids);
    }
    if chosen.len() < k {
        leftovers.shuffle(rng);
        let need = k - chosen.len();
        chosen.extend(leftovers.drain(..need));
    }
    chosen.sort();
    chosen
}

/// Frequency-oblivious auxiliary selection for Chord: random picks per
/// distance slice (hop-estimate value), ignoring weights.
pub fn chord_oblivious<R: Rng + ?Sized>(problem: &ChordProblem, rng: &mut R) -> Selection {
    let mut slices: BTreeMap<u32, Vec<Id>> = BTreeMap::new();
    for cand in &problem.candidates {
        let slice = problem.space.chord_hops(problem.source, cand.id);
        slices.entry(slice).or_default().push(cand.id);
    }
    let aux = slice_balanced(slices, problem.effective_k(), rng);
    let cost = chord_cost(problem, &aux);
    Selection { aux, cost }
}

/// Frequency-oblivious auxiliary selection for Pastry: random picks per
/// shared-prefix length with the source, ignoring weights.
pub fn pastry_oblivious<R: Rng + ?Sized>(problem: &PastryProblem, rng: &mut R) -> Selection {
    let mut slices: BTreeMap<u32, Vec<Id>> = BTreeMap::new();
    for cand in &problem.candidates {
        let slice = u32::from(
            problem
                .space
                .common_prefix_digits(cand.id, problem.source, problem.digit_bits)
                .expect("validated digit width"),
        );
        slices.entry(slice).or_default().push(cand.id);
    }
    let aux = slice_balanced(slices, problem.effective_k(), rng);
    let cost = pastry_cost(problem, &aux);
    Selection { aux, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Candidate;
    use peercache_id::IdSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    fn chord_problem(k: usize) -> ChordProblem {
        ChordProblem::new(
            IdSpace::new(6).unwrap(),
            id(0),
            vec![id(1)],
            (2..40u128)
                .map(|i| Candidate::new(id(i), (i % 7) as f64 + 1.0))
                .collect(),
            k,
        )
        .unwrap()
    }

    #[test]
    fn returns_exactly_k_distinct_pointers() {
        let p = chord_problem(6);
        let mut rng = StdRng::seed_from_u64(7);
        let sel = chord_oblivious(&p, &mut rng);
        assert_eq!(sel.aux.len(), 6);
        let mut dedup = sel.aux.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "no duplicates");
        assert_eq!(sel.cost, chord_cost(&p, &sel.aux));
    }

    #[test]
    fn k_larger_than_pool_takes_everything() {
        let p = chord_problem(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let sel = chord_oblivious(&p, &mut rng);
        assert_eq!(sel.aux.len(), 38);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let p = chord_problem(0);
        let mut rng = StdRng::seed_from_u64(7);
        let sel = chord_oblivious(&p, &mut rng);
        assert!(sel.aux.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = chord_problem(5);
        let a = chord_oblivious(&p, &mut StdRng::seed_from_u64(42));
        let b = chord_oblivious(&p, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_across_distance_slices() {
        // Candidates in three distinct slices; k = 3 must hit all three.
        let p = ChordProblem::new(
            IdSpace::new(6).unwrap(),
            id(0),
            vec![],
            vec![
                Candidate::new(id(2), 1.0),  // slice 2
                Candidate::new(id(3), 1.0),  // slice 2
                Candidate::new(id(9), 1.0),  // slice 4
                Candidate::new(id(12), 1.0), // slice 4
                Candidate::new(id(40), 1.0), // slice 6
                Candidate::new(id(60), 1.0), // slice 6
            ],
            3,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = chord_oblivious(&p, &mut rng);
        let slices: std::collections::HashSet<u32> = sel
            .aux
            .iter()
            .map(|&a| p.space.chord_hops(p.source, a))
            .collect();
        assert_eq!(slices.len(), 3, "one per slice: {:?}", sel.aux);
    }

    #[test]
    fn pastry_variant_spreads_across_prefix_slices() {
        let p = PastryProblem::new(
            IdSpace::new(4).unwrap(),
            1,
            id(0b0000),
            vec![],
            vec![
                Candidate::new(id(0b1000), 1.0), // shares 0 bits
                Candidate::new(id(0b1111), 1.0), // shares 0 bits
                Candidate::new(id(0b0100), 1.0), // shares 1 bit
                Candidate::new(id(0b0111), 1.0), // shares 1 bit
                Candidate::new(id(0b0010), 1.0), // shares 2 bits
                Candidate::new(id(0b0011), 1.0), // shares 2 bits
            ],
            3,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sel = pastry_oblivious(&p, &mut rng);
        assert_eq!(sel.aux.len(), 3);
        let slices: std::collections::HashSet<u8> = sel
            .aux
            .iter()
            .map(|&a| p.space.common_prefix_digits(a, p.source, 1).unwrap())
            .collect();
        assert_eq!(slices.len(), 3, "one per prefix slice: {:?}", sel.aux);
        assert_eq!(sel.cost, pastry_cost(&p, &sel.aux));
    }

    #[test]
    fn shortfall_slices_donate_budget() {
        // Slice "2" has one candidate, slice "4" has five; k = 4 must
        // still return 4 pointers.
        let p = ChordProblem::new(
            IdSpace::new(6).unwrap(),
            id(0),
            vec![],
            vec![
                Candidate::new(id(2), 1.0),
                Candidate::new(id(8), 1.0),
                Candidate::new(id(9), 1.0),
                Candidate::new(id(10), 1.0),
                Candidate::new(id(11), 1.0),
                Candidate::new(id(12), 1.0),
            ],
            4,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let sel = chord_oblivious(&p, &mut rng);
        assert_eq!(sel.aux.len(), 4);
    }
}
