//! Exhaustive-search reference optimisers.
//!
//! These enumerate every size-`k` candidate subset and evaluate eq. (1)
//! directly. They are exponential and exist to validate the polynomial
//! algorithms (and for users who want certainty on tiny instances).

use peercache_id::Id;

use crate::cast;
use crate::cost::{chord_cost, chord_qos_satisfied, pastry_cost, pastry_qos_satisfied};
use crate::problem::{ChordProblem, PastryProblem, SelectError, Selection};

/// Visit all `C(n, k)` index subsets of `0..n` of size `k`.
fn for_each_subset<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    let mut idx: Vec<usize> = (0..k).collect();
    if k > n {
        return;
    }
    loop {
        f(&idx);
        // Advance to the next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn best_subset<C, Q>(
    n: usize,
    k: usize,
    ids: &[Id],
    cost: C,
    feasible: Q,
) -> Result<(Vec<Id>, f64), SelectError>
where
    C: Fn(&[Id]) -> f64,
    Q: Fn(&[Id]) -> bool,
{
    let mut best: Option<(Vec<Id>, f64)> = None;
    let mut any_feasible = false;
    for_each_subset(n, k, |subset| {
        let aux: Vec<Id> = subset.iter().map(|&i| ids[i]).collect();
        if !feasible(&aux) {
            return;
        }
        any_feasible = true;
        let c = cost(&aux);
        let better = match &best {
            None => true,
            Some((_, bc)) => c < *bc,
        };
        if better {
            best = Some((aux, c));
        }
    });
    if k == 0 {
        // The empty selection — still subject to feasibility.
        if feasible(&[]) {
            return Ok((vec![], cost(&[])));
        }
        return Err(SelectError::QosInfeasible {
            required: u32::MAX,
            k: 0,
        });
    }
    match best {
        Some((mut aux, c)) => {
            aux.sort();
            Ok((aux, c))
        }
        None => {
            debug_assert!(!any_feasible);
            Err(SelectError::QosInfeasible {
                required: u32::MAX,
                k: cast::index_to_u32(k),
            })
        }
    }
}

/// Optimal Pastry auxiliary set by exhaustive search. Exponential; only
/// use on tiny instances.
///
/// # Errors
/// [`SelectError::QosInfeasible`] when no size-`k` subset meets every
/// delay bound.
pub fn pastry_exhaustive(problem: &PastryProblem) -> Result<Selection, SelectError> {
    let ids: Vec<Id> = problem.candidates.iter().map(|c| c.id).collect();
    let k = problem.effective_k();
    let (aux, cost) = best_subset(
        ids.len(),
        k,
        &ids,
        |aux| pastry_cost(problem, aux),
        |aux| pastry_qos_satisfied(problem, aux),
    )?;
    Ok(Selection { aux, cost })
}

/// Optimal Chord auxiliary set by exhaustive search. Exponential; only
/// use on tiny instances.
///
/// # Errors
/// [`SelectError::QosInfeasible`] when no size-`k` subset meets every
/// delay bound.
pub fn chord_exhaustive(problem: &ChordProblem) -> Result<Selection, SelectError> {
    let ids: Vec<Id> = problem.candidates.iter().map(|c| c.id).collect();
    let k = problem.effective_k();
    let (aux, cost) = best_subset(
        ids.len(),
        k,
        &ids,
        |aux| chord_cost(problem, aux),
        |aux| chord_qos_satisfied(problem, aux),
    )?;
    Ok(Selection { aux, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Candidate;
    use peercache_id::IdSpace;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0;
        for_each_subset(5, 3, |_| count += 1);
        assert_eq!(count, 10);
        count = 0;
        for_each_subset(4, 4, |_| count += 1);
        assert_eq!(count, 1);
        count = 0;
        for_each_subset(3, 5, |_| count += 1);
        assert_eq!(count, 0, "k > n yields nothing");
        count = 0;
        for_each_subset(3, 0, |_| count += 1);
        assert_eq!(count, 1, "the empty subset");
    }

    #[test]
    fn picks_the_heavy_candidate() {
        let s = IdSpace::new(4).unwrap();
        let problem = ChordProblem::new(
            s,
            id(0),
            vec![],
            vec![Candidate::new(id(8), 100.0), Candidate::new(id(9), 1.0)],
            1,
        )
        .unwrap();
        let sel = chord_exhaustive(&problem).unwrap();
        assert_eq!(sel.aux, vec![id(8)]);
    }

    #[test]
    fn k_zero_returns_core_only_cost() {
        let s = IdSpace::new(4).unwrap();
        let problem =
            ChordProblem::new(s, id(0), vec![id(1)], vec![Candidate::new(id(2), 1.0)], 0).unwrap();
        let sel = chord_exhaustive(&problem).unwrap();
        assert!(sel.aux.is_empty());
        assert_eq!(sel.cost, 2.0); // f=1, d from core 1 → 1, cost 1·(1+1)
    }

    #[test]
    fn infeasible_qos_is_reported() {
        let s = IdSpace::new(4).unwrap();
        // Two nodes demand to BE the pointer (bound 1 hop) but k = 1.
        let problem = ChordProblem::new(
            s,
            id(0),
            vec![],
            vec![
                Candidate::with_max_hops(id(4), 1.0, 1),
                Candidate::with_max_hops(id(8), 1.0, 1),
            ],
            1,
        )
        .unwrap();
        assert!(matches!(
            chord_exhaustive(&problem),
            Err(SelectError::QosInfeasible { .. })
        ));
    }

    #[test]
    fn qos_constrains_choice_away_from_pure_optimum() {
        let s = IdSpace::new(4).unwrap();
        // Unconstrained optimum would pick the heavy node 8; the QoS bound
        // on node 4 forces the single pointer to node 4.
        let problem = ChordProblem::new(
            s,
            id(0),
            vec![],
            vec![
                Candidate::with_max_hops(id(4), 0.001, 1),
                Candidate::new(id(8), 100.0),
            ],
            1,
        )
        .unwrap();
        let sel = chord_exhaustive(&problem).unwrap();
        assert_eq!(sel.aux, vec![id(4)]);
    }
}
