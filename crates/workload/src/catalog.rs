use std::collections::HashSet;

use peercache_id::{Id, IdSpace};
use rand::Rng;

/// Draw `count` *distinct* random identifiers from `space`.
///
/// # Panics
/// Panics when `count` exceeds the size of the id space (cannot be
/// distinct) or when `count` is more than half the space (rejection
/// sampling would crawl; the experiments never get near this).
pub fn random_ids<R: Rng + ?Sized>(space: IdSpace, count: usize, rng: &mut R) -> Vec<Id> {
    if let Some(size) = space.size() {
        assert!(
            (count as u128) <= size / 2,
            "{count} ids requested from a space of {size}; use a wider id space"
        );
    }
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let hi = u128::from(rng.gen::<u64>());
        let lo = u128::from(rng.gen::<u64>());
        let id = space.normalize((hi << 64) | lo);
        if seen.insert(id) {
            out.push(id);
        }
    }
    out
}

/// A set of items with random distinct identifiers ("keys").
#[derive(Clone, Debug)]
pub struct ItemCatalog {
    keys: Vec<Id>,
}

impl ItemCatalog {
    /// `count` items with distinct random keys.
    pub fn random<R: Rng + ?Sized>(space: IdSpace, count: usize, rng: &mut R) -> Self {
        ItemCatalog {
            keys: random_ids(space, count, rng),
        }
    }

    /// Build from explicit keys (used by tests).
    pub fn from_keys(keys: Vec<Id>) -> Self {
        ItemCatalog { keys }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of item `index`.
    pub fn key(&self, index: usize) -> Id {
        self.keys[index]
    }

    /// All keys.
    pub fn keys(&self) -> &[Id] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_are_distinct_and_in_space() {
        let space = IdSpace::new(10).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ids = random_ids(space, 300, &mut rng);
        assert_eq!(ids.len(), 300);
        let set: HashSet<Id> = ids.iter().copied().collect();
        assert_eq!(set.len(), 300);
        assert!(ids.iter().all(|&i| space.contains(i)));
    }

    #[test]
    #[should_panic(expected = "wider id space")]
    fn overfull_request_panics() {
        let space = IdSpace::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = random_ids(space, 12, &mut rng);
    }

    #[test]
    fn catalog_exposes_keys() {
        let space = IdSpace::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let cat = ItemCatalog::random(space, 10, &mut rng);
        assert_eq!(cat.len(), 10);
        assert!(!cat.is_empty());
        assert_eq!(cat.key(3), cat.keys()[3]);
    }

    #[test]
    fn wide_spaces_use_full_width() {
        let space = IdSpace::new(128).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ids = random_ids(space, 100, &mut rng);
        // With 128-bit ids, some draw must exceed 64 bits.
        assert!(ids.iter().any(|i| i.value() > u128::from(u64::MAX)));
    }
}
