use rand::seq::SliceRandom;
use rand::Rng;

/// A popularity ranking: a permutation from rank (0 = most popular) to
/// item index, with the inverse kept for `O(1)` lookups both ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranking {
    /// `order[rank]` = item index.
    order: Vec<usize>,
    /// `inverse[item]` = rank.
    inverse: Vec<usize>,
}

impl Ranking {
    /// The identity ranking: item `i` has rank `i`.
    pub fn identity(n: usize) -> Self {
        Ranking {
            order: (0..n).collect(),
            inverse: (0..n).collect(),
        }
    }

    /// Build from an explicit rank → item order.
    ///
    /// # Errors
    /// Returns a description unless `order` is a permutation of `0..n`.
    pub fn from_order(order: Vec<usize>) -> Result<Self, String> {
        let n = order.len();
        let mut inverse = vec![usize::MAX; n];
        for (rank, &item) in order.iter().enumerate() {
            if item >= n {
                return Err(format!("item index {item} out of range 0..{n}"));
            }
            if inverse[item] != usize::MAX {
                return Err(format!("item {item} appears twice"));
            }
            inverse[item] = rank;
        }
        Ok(Ranking { order, inverse })
    }

    /// A uniformly random ranking.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Self::from_order(order).expect("a shuffle is a permutation")
    }

    /// Number of items ranked.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The item at popularity rank `rank`.
    pub fn item_at_rank(&self, rank: usize) -> usize {
        self.order[rank]
    }

    /// The popularity rank of `item`.
    pub fn rank_of(&self, item: usize) -> usize {
        self.inverse[item]
    }
}

/// The paper's Chord-side setup: a small pool of distinct rankings (five
/// in §VI-A), with each node assigned one at random.
#[derive(Clone, Debug)]
pub struct RankingAssignment {
    rankings: Vec<Ranking>,
    /// Per node index: which pool entry it uses.
    assignment: Vec<usize>,
}

impl RankingAssignment {
    /// Identical ranking at every node (the Pastry plots).
    pub fn identical(items: usize, nodes: usize) -> Self {
        RankingAssignment {
            rankings: vec![Ranking::identity(items)],
            assignment: vec![0; nodes],
        }
    }

    /// `pool` distinct random rankings, one assigned per node at random
    /// (the Chord plots use `pool = 5`).
    ///
    /// # Panics
    /// Panics when `pool` is zero.
    pub fn random_pool<R: Rng + ?Sized>(
        items: usize,
        nodes: usize,
        pool: usize,
        rng: &mut R,
    ) -> Self {
        assert!(pool > 0, "need at least one ranking");
        let rankings = (0..pool).map(|_| Ranking::random(items, rng)).collect();
        let assignment = (0..nodes).map(|_| rng.gen_range(0..pool)).collect();
        RankingAssignment {
            rankings,
            assignment,
        }
    }

    /// The ranking pool.
    pub fn rankings(&self) -> &[Ranking] {
        &self.rankings
    }

    /// The ranking node `node` uses.
    pub fn for_node(&self, node: usize) -> &Ranking {
        &self.rankings[self.assignment[node]]
    }

    /// The pool index node `node` was assigned (for caching per-ranking
    /// aggregates).
    pub fn pool_index(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// Number of nodes assigned.
    pub fn nodes(&self) -> usize {
        self.assignment.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_roundtrips() {
        let r = Ranking::identity(5);
        for i in 0..5 {
            assert_eq!(r.item_at_rank(i), i);
            assert_eq!(r.rank_of(i), i);
        }
    }

    #[test]
    fn from_order_validates_permutations() {
        assert!(Ranking::from_order(vec![2, 0, 1]).is_ok());
        assert!(Ranking::from_order(vec![0, 0, 1]).is_err(), "duplicate");
        assert!(Ranking::from_order(vec![0, 3]).is_err(), "out of range");
    }

    #[test]
    fn inverse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        let r = Ranking::random(20, &mut rng);
        for rank in 0..20 {
            assert_eq!(r.rank_of(r.item_at_rank(rank)), rank);
        }
    }

    #[test]
    fn random_rankings_differ() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Ranking::random(50, &mut rng);
        let b = Ranking::random(50, &mut rng);
        assert_ne!(a, b, "astronomically unlikely to collide");
    }

    #[test]
    fn identical_assignment_shares_one_ranking() {
        let a = RankingAssignment::identical(10, 4);
        assert_eq!(a.rankings().len(), 1);
        for node in 0..4 {
            assert_eq!(a.for_node(node), &Ranking::identity(10));
        }
    }

    #[test]
    fn pool_assignment_uses_every_entry_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = RankingAssignment::random_pool(10, 200, 5, &mut rng);
        assert_eq!(a.rankings().len(), 5);
        assert_eq!(a.nodes(), 200);
        let used: std::collections::HashSet<usize> = a.assignment.iter().copied().collect();
        assert_eq!(used.len(), 5, "200 nodes over 5 rankings hit all");
    }
}
