use rand::Rng;

/// An exact Zipf(α) sampler over ranks `0..n`.
///
/// Rank `r` (0-based) is drawn with probability `(r+1)^{−α} / H_{n,α}`
/// where `H_{n,α}` is the generalised harmonic number. The full CDF is
/// precomputed (`O(n)` memory) and sampling is one uniform draw plus a
/// binary search — exact, branch-free of rejection loops, and fast enough
/// for the millions of samples the experiments draw.
///
/// ```
/// use peercache_workload::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.2).unwrap();
/// // Rank 0 is 2^1.2 ≈ 2.3× more likely than rank 1.
/// assert!(zipf.rank_probability(0) > 2.0 * zipf.rank_probability(1));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    alpha: f64,
    /// `cdf[r]` = P(rank ≤ r); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `alpha ≥ 0`.
    ///
    /// `alpha = 0` degenerates to the uniform distribution — handy for
    /// "no skew" control runs.
    ///
    /// # Errors
    /// Returns a description when `n = 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("Zipf support must be non-empty".into());
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(format!("Zipf exponent must be finite and ≥ 0, got {alpha}"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Zipf { alpha, cdf })
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// P(rank = r).
    pub fn rank_probability(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        for alpha in [0.0, 0.91, 1.2, 2.5] {
            let z = Zipf::new(100, alpha).unwrap();
            let total: f64 = (0..100).map(|r| z.rank_probability(r)).sum();
            assert!((total - 1.0).abs() < 1e-12, "alpha {alpha}");
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for r in 0..10 {
            assert!((z.rank_probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_probabilities_follow_power_law() {
        let z = Zipf::new(100, 1.2).unwrap();
        // P(0)/P(1) = 2^1.2.
        let ratio = z.rank_probability(0) / z.rank_probability(1);
        assert!((ratio - 2f64.powf(1.2)).abs() < 1e-9);
        assert!(z.rank_probability(99) > 0.0);
        assert_eq!(z.rank_probability(100), 0.0, "outside the support");
    }

    #[test]
    fn empirical_frequencies_match_theory() {
        let z = Zipf::new(20, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.rank_probability(r);
            let observed = count as f64 / f64::from(n);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let z = Zipf::new(50, 1.0).unwrap();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
