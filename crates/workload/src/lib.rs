//! Workload generation for the peercache experiments (paper §VI-A).
//!
//! The evaluation setup: nodes and items get random identifiers; item
//! popularities follow a Zipf distribution with parameter `α`; queries are
//! samples from it. Item popularity *rankings* are either identical at all
//! nodes (the Pastry plots) or drawn from a small set of distinct rankings
//! assigned randomly to nodes (the Chord plots — five lists).
//!
//! * [`Zipf`] — an exact inverse-CDF Zipf sampler (no external
//!   distribution crate needed; the CDF is precomputed once).
//! * [`Ranking`] — a permutation mapping popularity rank → item index.
//! * [`ItemCatalog`] — random distinct item ids in an id space.
//! * [`NodeWorkload`] — a per-node query generator combining the three.
//! * [`random_ids`] — distinct random identifiers for nodes/items.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod ranking;
mod zipf;

pub use catalog::{random_ids, ItemCatalog};
pub use ranking::{Ranking, RankingAssignment};
pub use zipf::Zipf;

use peercache_id::Id;
use rand::Rng;

/// A per-node query workload: Zipf-over-ranking on an item catalog.
#[derive(Clone, Debug)]
pub struct NodeWorkload {
    zipf: Zipf,
    ranking: Ranking,
}

impl NodeWorkload {
    /// Combine a sampler with a ranking. The ranking must cover at least
    /// as many items as the sampler draws ranks for.
    ///
    /// # Panics
    /// Panics when the ranking is smaller than the Zipf support.
    pub fn new(zipf: Zipf, ranking: Ranking) -> Self {
        assert!(
            ranking.len() >= zipf.support(),
            "ranking covers {} items, sampler needs {}",
            ranking.len(),
            zipf.support()
        );
        NodeWorkload { zipf, ranking }
    }

    /// Draw the index (into the item catalog) of the next queried item.
    pub fn sample_item<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.ranking.item_at_rank(self.zipf.sample(rng))
    }

    /// The probability that a query goes to catalog item `item`.
    pub fn item_probability(&self, item: usize) -> f64 {
        self.zipf.rank_probability(self.ranking.rank_of(item))
    }

    /// Aggregate the per-item probabilities into per-owner weights: the
    /// *node popularity* distribution the selection algorithms consume.
    ///
    /// `owner_of(item_index)` maps an item to the node responsible for it
    /// under the overlay's assignment rule.
    pub fn node_weights<F>(&self, items: usize, mut owner_of: F) -> Vec<(Id, f64)>
    where
        F: FnMut(usize) -> Id,
    {
        let mut weights: std::collections::HashMap<Id, f64> = std::collections::HashMap::new();
        for item in 0..items {
            *weights.entry(owner_of(item)).or_insert(0.0) += self.item_probability(item);
        }
        let mut out: Vec<(Id, f64)> = weights.into_iter().collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_samples_respect_ranking() {
        let zipf = Zipf::new(4, 2.0).unwrap();
        // Ranking puts item 3 at rank 0 (most popular).
        let ranking = Ranking::from_order(vec![3, 1, 0, 2]).unwrap();
        let wl = NodeWorkload::new(zipf, ranking);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[wl.sample_item(&mut rng)] += 1;
        }
        assert!(
            counts[3] > counts[1] && counts[1] > counts[0] && counts[0] > counts[2],
            "counts follow the ranking: {counts:?}"
        );
    }

    #[test]
    fn item_probabilities_sum_to_one() {
        let wl = NodeWorkload::new(Zipf::new(10, 1.2).unwrap(), Ranking::identity(10));
        let total: f64 = (0..10).map(|i| wl.item_probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_weights_aggregate_by_owner() {
        let wl = NodeWorkload::new(Zipf::new(4, 1.0).unwrap(), Ranking::identity(4));
        // Items 0,1 → node 7; items 2,3 → node 9.
        let weights = wl.node_weights(4, |i| Id::new(if i < 2 { 7 } else { 9 }));
        assert_eq!(weights.len(), 2);
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(
            weights[0].1 > weights[1].1,
            "items 0,1 are the popular ones"
        );
    }

    #[test]
    #[should_panic(expected = "sampler needs")]
    fn undersized_ranking_panics() {
        let _ = NodeWorkload::new(Zipf::new(5, 1.0).unwrap(), Ranking::identity(3));
    }
}
