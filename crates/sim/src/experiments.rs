//! One runner per table/figure in the paper's evaluation (§VI).
//!
//! Each runner returns serialisable rows that the `peercache-bench`
//! binaries print (and EXPERIMENTS.md records). A [`Scale`] knob lets the
//! integration tests exercise the identical code path at toy sizes.
//!
//! Every figure is a sweep of independent parameter points, so the
//! runners fan the points out over the [`peercache_par`] pool (see
//! [`SweepJob`]); by the pool's determinism contract the resulting tables
//! are bit-identical at any thread count, including fully serial.

use peercache_pastry::RoutingMode;
use serde::Serialize;

use crate::churn::{run_churn, ChurnConfig};
use crate::overlay::OverlayKind;
use crate::stable::{run_stable, RankingMode, StableConfig};

/// Experiment scale: paper-faithful or test-sized.
#[derive(Copy, Clone, Debug)]
pub struct Scale {
    /// Divisor on node counts (paper = 1).
    pub node_divisor: usize,
    /// Item-catalog size (fixed hot catalog; see EXPERIMENTS.md).
    pub items: usize,
    /// Measurement queries per stable run.
    pub queries: usize,
    /// Simulated seconds per churn run.
    pub churn_duration: f64,
    /// Warmup portion of a churn run.
    pub churn_warmup: f64,
}

impl Scale {
    /// Paper-faithful sizes.
    pub fn paper() -> Self {
        Scale {
            node_divisor: 1,
            items: 64,
            queries: 50_000,
            churn_duration: 7200.0,
            churn_warmup: 1800.0,
        }
    }

    /// Toy sizes for tests (same code path, ~100× faster).
    pub fn quick() -> Self {
        Scale {
            node_divisor: 8,
            items: 64,
            queries: 4_000,
            churn_duration: 600.0,
            churn_warmup: 150.0,
        }
    }
}

/// One figure row: a single (parameter point, comparison) result.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FigureRow {
    /// Which figure the row reproduces.
    pub figure: String,
    /// "pastry" or "chord".
    pub system: String,
    /// "stable" or "churn".
    pub mode: String,
    /// Node count.
    pub n: usize,
    /// Auxiliary pointers per node.
    pub k: usize,
    /// `k` as a multiple of log₂ n (the paper's x-axis for Figs 4/6).
    pub k_factor: usize,
    /// Zipf exponent.
    pub alpha: f64,
    /// Average hops, frequency-aware.
    pub avg_hops_aware: f64,
    /// Average hops, frequency-oblivious.
    pub avg_hops_oblivious: f64,
    /// Average hops with no auxiliary neighbors (stable runs only).
    pub avg_hops_core_only: Option<f64>,
    /// The paper's metric: % reduction vs the oblivious baseline.
    pub reduction_pct: f64,
    /// Success rate under the aware strategy (1.0 in stable mode).
    pub success_rate_aware: f64,
    /// Success rate under the oblivious baseline.
    pub success_rate_oblivious: f64,
}

/// `round(log2 n)` — the paper's `k = log n` budget rule.
// Rounded log2 of a node count is tiny and non-negative, so the
// f64 → usize cast is exact.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn log2(n: usize) -> usize {
    (n as f64).log2().round() as usize
}

fn pastry_kind() -> OverlayKind {
    OverlayKind::Pastry {
        digit_bits: 1,
        mode: RoutingMode::LocalityAware,
    }
}

/// One parameter point of a figure sweep: everything needed to produce a
/// [`FigureRow`] independently of every other point, so a figure's rows
/// fan out over the [`peercache_par`] pool. Row order in the output is
/// the construction order of the jobs (`par_map` preserves it), and each
/// job re-derives all randomness from its own config seed, so the table
/// is bit-identical at any thread count.
enum SweepJob {
    /// A stable-mode point.
    Stable {
        figure: &'static str,
        system: &'static str,
        config: StableConfig,
        k_factor: usize,
    },
    /// A churn-mode point (paired strategies inside).
    Churn {
        figure: &'static str,
        config: ChurnConfig,
        k_factor: usize,
    },
}

fn run_sweep(jobs: &[SweepJob]) -> Vec<FigureRow> {
    peercache_par::par_map(jobs, |_, job| match job {
        SweepJob::Stable {
            figure,
            system,
            config,
            k_factor,
        } => stable_row(figure, system, config, *k_factor),
        SweepJob::Churn {
            figure,
            config,
            k_factor,
        } => churn_row(figure, config, *k_factor),
    })
}

fn stable_row(figure: &str, system: &str, config: &StableConfig, k_factor: usize) -> FigureRow {
    let report = run_stable(config);
    FigureRow {
        figure: figure.to_string(),
        system: system.to_string(),
        mode: "stable".to_string(),
        n: config.nodes,
        k: config.k,
        k_factor,
        alpha: config.alpha,
        avg_hops_aware: report.aware.avg_hops(),
        avg_hops_oblivious: report.oblivious.avg_hops(),
        avg_hops_core_only: Some(report.core_only.avg_hops()),
        reduction_pct: report.reduction_pct,
        success_rate_aware: report.aware.success_rate(),
        success_rate_oblivious: report.oblivious.success_rate(),
    }
}

fn churn_row(figure: &str, config: &ChurnConfig, k_factor: usize) -> FigureRow {
    let report = run_churn(config);
    FigureRow {
        figure: figure.to_string(),
        system: "chord".to_string(),
        mode: "churn".to_string(),
        n: config.nodes,
        k: config.k,
        k_factor,
        alpha: config.alpha,
        avg_hops_aware: report.aware.avg_hops(),
        avg_hops_oblivious: report.oblivious.avg_hops(),
        avg_hops_core_only: None,
        reduction_pct: report.reduction_pct,
        success_rate_aware: report.aware.success_rate(),
        success_rate_oblivious: report.oblivious.success_rate(),
    }
}

/// Figure 3: Pastry, % hop reduction vs `n` for α ∈ {1.2, 0.91}
/// (`k = log₂ n`, identical rankings, stable mode).
pub fn fig3(scale: &Scale, seed: u64) -> Vec<FigureRow> {
    let mut jobs = Vec::new();
    for &n_paper in &[256usize, 512, 1024, 2048] {
        let n = (n_paper / scale.node_divisor).max(16);
        for &alpha in &[1.2, 0.91] {
            let mut config = StableConfig::paper_defaults(pastry_kind(), n, seed);
            config.alpha = alpha;
            config.items = scale.items;
            config.queries = scale.queries;
            config.ranking = RankingMode::Identical;
            jobs.push(SweepJob::Stable {
                figure: "fig3",
                system: "pastry",
                config,
                k_factor: 1,
            });
        }
    }
    run_sweep(&jobs)
}

/// Figure 4: Pastry, % hop reduction vs `k ∈ {1, 2, 3}·log₂ n`
/// (`n = 1024`, α ∈ {1.2, 0.91}, stable mode, locality-aware routing).
pub fn fig4(scale: &Scale, seed: u64) -> Vec<FigureRow> {
    let n = (1024 / scale.node_divisor).max(16);
    let mut jobs = Vec::new();
    for k_factor in 1..=3 {
        for &alpha in &[1.2, 0.91] {
            let mut config = StableConfig::paper_defaults(pastry_kind(), n, seed);
            config.alpha = alpha;
            config.items = scale.items;
            config.queries = scale.queries;
            config.k = k_factor * log2(n);
            config.ranking = RankingMode::Identical;
            jobs.push(SweepJob::Stable {
                figure: "fig4",
                system: "pastry",
                config,
                k_factor,
            });
        }
    }
    run_sweep(&jobs)
}

/// Figure 5: Chord, % hop reduction vs `n`, stable and churn-intensive
/// modes (`k = log₂ n`, α = 1.2, 5 distinct rankings).
pub fn fig5(scale: &Scale, seed: u64) -> Vec<FigureRow> {
    let mut jobs = Vec::new();
    for &n_paper in &[128usize, 256, 512, 1024] {
        let n = (n_paper / scale.node_divisor).max(16);
        let mut stable = StableConfig::paper_defaults(OverlayKind::Chord, n, seed);
        stable.items = scale.items;
        stable.queries = scale.queries;
        jobs.push(SweepJob::Stable {
            figure: "fig5",
            system: "chord",
            config: stable,
            k_factor: 1,
        });

        let mut churn = ChurnConfig::paper_defaults(n, seed);
        churn.items = scale.items;
        churn.duration = scale.churn_duration;
        churn.warmup = scale.churn_warmup;
        jobs.push(SweepJob::Churn {
            figure: "fig5",
            config: churn,
            k_factor: 1,
        });
    }
    run_sweep(&jobs)
}

/// Figure 6: Chord, % hop reduction vs `k ∈ {1, 2, 3}·log₂ n`
/// (`n = 1024`, stable and churn modes).
pub fn fig6(scale: &Scale, seed: u64) -> Vec<FigureRow> {
    let n = (1024 / scale.node_divisor).max(16);
    let mut jobs = Vec::new();
    for k_factor in 1..=3 {
        let k = k_factor * log2(n);
        let mut stable = StableConfig::paper_defaults(OverlayKind::Chord, n, seed);
        stable.items = scale.items;
        stable.queries = scale.queries;
        stable.k = k;
        jobs.push(SweepJob::Stable {
            figure: "fig6",
            system: "chord",
            config: stable,
            k_factor,
        });

        let mut churn = ChurnConfig::paper_defaults(n, seed);
        churn.items = scale.items;
        churn.duration = scale.churn_duration;
        churn.warmup = scale.churn_warmup;
        churn.k = k;
        jobs.push(SweepJob::Churn {
            figure: "fig6",
            config: churn,
            k_factor,
        });
    }
    run_sweep(&jobs)
}

/// Render rows as an aligned text table (what the bench binaries print).
pub fn render_table(rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "figure  system  mode    n      k   k/log n  alpha  hops(aware)  hops(obliv)  hops(core)  reduction%  success(aware)\n",
    );
    for r in rows {
        let core = r
            .avg_hops_core_only
            .map(|h| format!("{h:10.3}"))
            .unwrap_or_else(|| format!("{:>10}", "-"));
        out.push_str(&format!(
            "{:<7} {:<7} {:<7} {:<6} {:<3} {:<8} {:<6.2} {:>11.3} {:>12.3} {core} {:>10.1} {:>14.3}\n",
            r.figure,
            r.system,
            r.mode,
            r.n,
            r.k,
            r.k_factor,
            r.alpha,
            r.avg_hops_aware,
            r.avg_hops_oblivious,
            r.reduction_pct,
            r.success_rate_aware,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &str) -> FigureRow {
        FigureRow {
            figure: "fig9".into(),
            system: "chord".into(),
            mode: mode.into(),
            n: 64,
            k: 6,
            k_factor: 1,
            alpha: 1.2,
            avg_hops_aware: 1.5,
            avg_hops_oblivious: 3.0,
            avg_hops_core_only: if mode == "stable" { Some(4.0) } else { None },
            reduction_pct: 50.0,
            success_rate_aware: 1.0,
            success_rate_oblivious: 1.0,
        }
    }

    #[test]
    fn render_table_formats_all_columns() {
        let out = render_table(&[row("stable"), row("churn")]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[0].contains("reduction%"));
        assert!(lines[1].contains("fig9"));
        assert!(lines[1].contains("4.000"), "core-only hops shown");
        assert!(lines[2].contains('-'), "missing core-only shown as dash");
        assert!(lines[1].contains("50.0"));
    }

    #[test]
    fn scales_have_sane_relationships() {
        let paper = Scale::paper();
        let quick = Scale::quick();
        assert!(quick.node_divisor > paper.node_divisor);
        assert!(quick.queries < paper.queries);
        assert!(quick.churn_duration < paper.churn_duration);
        assert!(quick.churn_warmup < quick.churn_duration);
    }

    #[test]
    fn log2_rounds_to_nearest() {
        assert_eq!(log2(1024), 10);
        assert_eq!(log2(96), 7);
        assert_eq!(log2(128), 7);
    }
}
