//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by `(time, sequence)` — the sequence number breaks
//! time ties in scheduling order, so a run is fully reproducible given the
//! RNG seeds. The engine is deliberately single-threaded: determinism is
//! worth more to an experiment harness than parallel speed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        // Defer to Ord's total_cmp so NaN times compare consistently
        // with the heap order (and rule L8 stays happy).
        self.cmp(other).is_eq()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use peercache_sim::engine::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(2.5, "later");
/// queue.schedule(1.0, "sooner");
/// assert_eq!(queue.pop(), Some((1.0, "sooner")));
/// assert_eq!(queue.now(), 1.0);
/// queue.schedule_in(0.5, "relative");
/// assert_eq!(queue.pop(), Some((1.5, "relative")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// An empty queue at time zero with heap storage for `capacity`
    /// events, so a driver that knows its population (one churn event per
    /// node, plus the periodic ticks) pays for the event list once
    /// instead of growing it through the warm-up.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at` (clamped to now — the
    /// engine never travels backwards).
    pub fn schedule(&mut self, at: f64, event: E) {
        let time = if at < self.now { self.now } else { at };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedule `event` `delay` from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0, "delays are non-negative");
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }
}

/// Draw from an exponential distribution with the given mean (the paper's
/// alive/dead durations, §VI-C).
pub fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 7.5);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "later");
        q.pop();
        q.schedule(1.0, "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 5.0, "clamped");
        assert_eq!(e, "past");
    }

    #[test]
    fn exp_sample_has_requested_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| exp_sample(900.0, &mut rng)).sum();
        let mean = total / f64::from(n);
        assert!(
            (mean - 900.0).abs() < 15.0,
            "sample mean {mean} should be ≈ 900"
        );
    }

    #[test]
    fn exp_sample_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(exp_sample(0.001, &mut rng) > 0.0);
        }
    }
}
