//! The scale engine: fig3's stable-mode comparison at populations
//! (10⁵–10⁶ nodes) the materialised substrates cannot hold.
//!
//! The materialised [`PastryNetwork`](peercache_pastry::PastryNetwork)
//! build is O(n²) and the monolithic oblivious baseline draws Θ(n) per
//! node, so the paper path stops at a few thousand nodes. This engine
//! swaps both for virtual counterparts over a [`PastryArena`] — routing
//! state derived on demand from the sorted id array — while keeping the
//! experiment's shape: identical Zipf rankings, exact owner
//! popularities, the optimal aware selection per node, a slice-balanced
//! oblivious baseline, and three measurement passes over one shared
//! query stream.
//!
//! **Documented divergence from the paper path** (see DESIGN.md): arena
//! routing tables are deterministic hash picks (distributionally
//! equivalent to the materialised "first encountered" fill, not
//! bit-identical), and the oblivious baseline draws from per-node
//! seeded streams instead of one serial stream (statistically
//! equivalent; a serial stream would forbid the per-shard fan-out).
//! Within the engine everything is a pure function of the config:
//! results are bit-identical at any shard and thread count, which the
//! scale tests and the CI gate pin down.
//!
//! Memory discipline: selections live in per-shard fixed-stride slabs,
//! measurement streams into fixed [`HopAccumulator`]s, and per-node
//! state never outlives its shard task — the bytes-per-node gauge in
//! `fig3_scale` holds the whole engine to a committed ceiling.

use peercache_core::pastry::PastryWorkspace;
use peercache_core::{Candidate, PastryProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_pastry::{ArenaScratch, PastryArena, PastryConfig, RoutingMode};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::metrics::{reduction_pct, HopAccumulator, QueryMetrics};
use crate::refresh::CounterSlab;
use crate::sharded::{AuxSlab, ShardLayout, QUERY_CHUNK};

/// Configuration of one scale run (Pastry substrate only — fig3's).
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Identifier width (the paper uses 32).
    pub bits: u8,
    /// Digit width in bits (fig3 uses 1).
    pub digit_bits: u8,
    /// Next-hop tie-breaking policy.
    pub mode: RoutingMode,
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Hot-catalog size.
    pub items: usize,
    /// Zipf exponent `α`.
    pub alpha: f64,
    /// Auxiliary pointers per node `k`.
    pub k: usize,
    /// Measurement queries to route.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Shard count (defaults to [`shard_count_for`]).
    ///
    /// [`shard_count_for`]: crate::sharded::shard_count_for
    pub shards: usize,
}

impl ScaleConfig {
    /// fig3-style defaults at population `nodes`: 32-bit ids, 1-bit
    /// digits, locality-aware routing, 64-item catalog, `k = log₂ n`,
    /// α = 1.2, 50 000 queries.
    pub fn paper_defaults(nodes: usize, seed: u64) -> Self {
        ScaleConfig {
            bits: 32,
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
            nodes,
            items: 64,
            alpha: 1.2,
            k: crate::experiments::log2(nodes),
            queries: 50_000,
            seed,
            shards: crate::sharded::shard_count_for(nodes),
        }
    }
}

/// The outcome of one scale run — the same three-pass comparison as
/// [`StableReport`](crate::stable::StableReport).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScaleReport {
    /// Metrics with the frequency-aware optimal auxiliary sets.
    pub aware: QueryMetrics,
    /// Metrics with the frequency-oblivious baseline sets.
    pub oblivious: QueryMetrics,
    /// Metrics with no auxiliary neighbors at all.
    pub core_only: QueryMetrics,
    /// The paper's metric: % reduction of aware vs oblivious.
    pub reduction_pct: f64,
}

/// SplitMix64 — the per-node seed derivation for the oblivious draws
/// (same mixer as the arena's hash picks).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard's selection slabs (aware + oblivious), owned exclusively
/// by its build task and shared read-only during measurement.
struct ShardSlabs {
    start: usize,
    aware: AuxSlab,
    oblivious: AuxSlab,
}

/// The `[lo, hi)` index range of arena members whose top `p` bits equal
/// `source`'s, over the sorted id array.
fn prefix_range(ids: &[Id], source: Id, p: u32, b: u32) -> (usize, usize) {
    if p == 0 {
        return (0, ids.len());
    }
    if p >= b {
        let lo = ids.partition_point(|&x| x < source);
        let hi = ids.partition_point(|&x| x <= source);
        return (lo, hi);
    }
    let shift = b - p;
    let low = (source.value() >> shift) << shift;
    let high_incl = low | ((1u128 << shift) - 1);
    (
        ids.partition_point(|&x| x.value() < low),
        ids.partition_point(|&x| x.value() <= high_incl),
    )
}

/// One prefix slice of the sorted ring: members sharing *exactly* `l`
/// digits with the source — the outer prefix range minus the nested
/// inner one, i.e. up to two contiguous index ranges.
#[derive(Clone, Copy)]
struct Slice {
    outer: (usize, usize),
    inner: (usize, usize),
}

impl Slice {
    /// Structural member count (source included — it always falls in
    /// the inner range, so it never appears here).
    fn len(&self) -> usize {
        (self.outer.1 - self.outer.0) - (self.inner.1 - self.inner.0)
    }

    /// The arena index of the slice's `i`-th member.
    fn index(&self, i: usize) -> usize {
        let left = self.inner.0 - self.outer.0;
        if i < left {
            self.outer.0 + i
        } else {
            self.inner.1 + (i - left)
        }
    }
}

/// The slice-balanced oblivious baseline at scale: the same per-slice
/// quota rule as [`baseline::pastry_oblivious`] (⌊k/#slices⌋ + 1 for
/// the first `k mod #slices` non-empty slices, shortfalls topped up
/// round-robin), drawing *distinct* members of each contiguous prefix
/// range by indexed sampling instead of materialising the Θ(n) pool —
/// O(k + b + |core|) per node. Per-node seeded, so the draw is a pure
/// function of `(seed, rank)` and independent of shard/thread count.
///
/// [`baseline::pastry_oblivious`]: peercache_core::baseline::pastry_oblivious
fn oblivious_at_scale(
    arena: &PastryArena,
    rank: usize,
    core: &[Id],
    k: usize,
    seed: u64,
    slices_buf: &mut Vec<(Slice, usize)>,
    out: &mut Vec<Id>,
) {
    out.clear();
    if k == 0 {
        return;
    }
    let ids = arena.ids();
    let source = ids[rank];
    let config = arena.config();
    let space = config.space;
    let b = u32::from(space.bits());
    let d = u32::from(config.digit_bits);
    // fold(rank) into the run seed: `rank` is an array index, far below
    // 2^53, so the u64 conversion is exact.
    let mut rng = StdRng::seed_from_u64(mix64(
        seed.wrapping_add(3) ^ u64::try_from(rank).unwrap_or(u64::MAX),
    ));

    // Eligible count per slice = structural members minus core members
    // landing in it (the source itself sits in every inner range).
    slices_buf.clear();
    for l in 0..u32::from(config.digit_count) {
        let outer_bits = (l * d).min(b);
        let inner_bits = ((l + 1) * d).min(b);
        if outer_bits >= b {
            break;
        }
        let slice = Slice {
            outer: prefix_range(ids, source, outer_bits, b),
            inner: prefix_range(ids, source, inner_bits, b),
        };
        let core_inside = core
            .iter()
            .filter(|&&c| {
                space
                    .common_prefix_digits(c, source, config.digit_bits)
                    .is_ok_and(|shared| u32::from(shared) == l)
            })
            .count();
        let eligible = slice.len().saturating_sub(core_inside);
        if eligible > 0 {
            slices_buf.push((slice, eligible));
        }
    }
    let total: usize = slices_buf.iter().map(|&(_, e)| e).sum();
    let k = k.min(total);
    if k == 0 {
        return;
    }

    // Quotas, then round-robin top-up for shortfall slices.
    let nslices = slices_buf.len();
    let per = k / nslices;
    let extra = k % nslices;
    for (i, &(slice, eligible)) in slices_buf.iter().enumerate() {
        let quota = (per + usize::from(i < extra)).min(eligible);
        draw_from_slice(ids, &slice, source, core, quota, &mut rng, out);
    }
    let mut guard = 0;
    while out.len() < k && guard < k {
        guard += 1;
        for &(slice, eligible) in slices_buf.iter() {
            if out.len() >= k {
                break;
            }
            let already = (0..slice.len())
                .filter(|&i| out.contains(&ids[slice.index(i)]))
                .count();
            if already < eligible {
                draw_from_slice(ids, &slice, source, core, 1, &mut rng, out);
            }
        }
    }
    out.sort_unstable();
}

/// Draw `quota` distinct eligible members of `slice` into `out`.
/// Rejection-sample huge slices (the acceptance rate is ≥ 1 − (|core| +
/// k)/|slice|, essentially 1 at scale); enumerate small ones.
fn draw_from_slice<R: Rng + ?Sized>(
    ids: &[Id],
    slice: &Slice,
    source: Id,
    core: &[Id],
    quota: usize,
    rng: &mut R,
    out: &mut Vec<Id>,
) {
    if quota == 0 {
        return;
    }
    let s = slice.len();
    let eligible_id = |id: Id, out: &[Id]| -> bool {
        id != source && core.binary_search(&id).is_err() && !out.contains(&id)
    };
    if s <= 128 {
        let mut pool: Vec<Id> = (0..s)
            .map(|i| ids[slice.index(i)])
            .filter(|&id| eligible_id(id, out))
            .collect();
        pool.shuffle(rng);
        out.extend(pool.into_iter().take(quota));
        return;
    }
    let mut taken = 0;
    // The attempt bound keeps the loop total; with |slice| > 128 and a
    // handful of exclusions it is effectively never hit.
    for _ in 0..64 * quota.max(1) + 256 {
        if taken == quota {
            break;
        }
        let id = ids[slice.index(rng.gen_range(0..s))];
        if eligible_id(id, out) {
            out.push(id);
            taken += 1;
        }
    }
}

/// Run one scale comparison. See the module docs for what is shared
/// with — and what diverges from — the paper-scale stable driver.
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes/items, α invalid) —
/// experiment definitions, not runtime inputs.
pub fn run_scale_stable(config: &ScaleConfig) -> ScaleReport {
    assert!(config.nodes > 0 && config.items > 0);
    let space = IdSpace::new(config.bits).expect("valid id width");
    let mut rng_topology = StdRng::seed_from_u64(config.seed);

    let node_ids = random_ids(space, config.nodes, &mut rng_topology);
    let catalog = ItemCatalog::random(space, config.items, &mut rng_topology);
    let arena = PastryArena::new(
        PastryConfig::new(space, config.digit_bits).with_mode(config.mode),
        node_ids,
    );
    let n = arena.len();

    // Identical rankings (fig3): ONE shared workload instead of n
    // copies, and one exact owner-popularity snapshot for every node.
    let zipf = Zipf::new(config.items, config.alpha).expect("valid Zipf");
    let workload = NodeWorkload::new(zipf, Ranking::identity(config.items));
    let owners: Vec<Id> = (0..config.items)
        .map(|i| arena.true_owner(catalog.key(i)).expect("non-empty arena"))
        .collect();
    let weights = FrequencySnapshot::from_pairs(workload.node_weights(config.items, |i| owners[i]));

    // Both strategies' selections, fanned out one task per shard, each
    // writing its own slabs — no cross-shard state, no per-node vectors
    // retained past the solve.
    let layout = ShardLayout::new(n, config.shards);
    let stride = config.k.max(1);
    let mut shards: Vec<ShardSlabs> = (0..layout.shards())
        .map(|s| {
            let (start, end) = layout.bounds(s);
            ShardSlabs {
                start,
                aware: AuxSlab::new(stride, end - start),
                oblivious: AuxSlab::new(stride, end - start),
            }
        })
        .collect();
    peercache_par::par_map_mut(&mut shards, |s, shard| {
        let (start, end) = layout.bounds(s);
        let mut workspace = PastryWorkspace::new();
        let mut core = Vec::new();
        let mut slices_buf = Vec::new();
        let mut draw = Vec::new();
        for rank in start..end {
            let node = arena.ids()[rank];
            arena.core_neighbors_into(rank, &mut core);
            let candidates: Vec<Candidate> = weights
                .without(core.iter().copied().chain(std::iter::once(node)))
                .iter()
                .map(|(id, w)| Candidate::new(id, w))
                .collect();
            let problem = PastryProblem::new(
                space,
                config.digit_bits,
                node,
                core.clone(),
                candidates,
                config.k,
            )
            .expect("scale problems are well-formed");
            let aware = &workspace
                .solve_into(&problem)
                .expect("scale problems are well-formed")
                .aux;
            shard.aware.set(rank - start, aware);
            oblivious_at_scale(
                &arena,
                rank,
                &core,
                config.k,
                config.seed,
                &mut slices_buf,
                &mut draw,
            );
            shard.oblivious.set(rank - start, &draw);
        }
    });

    // One pre-generated query stream, measured under all three
    // strategies in fixed-size chunks of streaming accumulators.
    let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(2));
    let queries: Vec<(usize, usize)> = (0..config.queries)
        .map(|_| {
            (
                rng_queries.gen_range(0..n),
                workload.sample_item(&mut rng_queries),
            )
        })
        .collect();

    // Cross-shard pointer resolution: arena rank (the flat global
    // index) → owning shard → slab slice. A plain fn so the returned
    // slice borrows from the slab storage, not the routing closure.
    fn resolve<'a>(
        arena: &PastryArena,
        layout: &ShardLayout,
        shards: &'a [ShardSlabs],
        slab: fn(&ShardSlabs) -> &AuxSlab,
        id: Id,
    ) -> &'a [Id] {
        const NO_AUX: &[Id] = &[];
        let Some(rank) = arena.rank_of(id) else {
            return NO_AUX;
        };
        let shard = &shards[layout.shard_of(rank)];
        slab(shard).get(rank - shard.start)
    }

    let measure = |select: Option<fn(&ShardSlabs) -> &AuxSlab>| -> QueryMetrics {
        let accs = peercache_par::par_map_chunked(&queries, QUERY_CHUNK, |_, chunk| {
            let mut acc = HopAccumulator::new();
            let mut scratch = ArenaScratch::new();
            for &(origin, item) in chunk {
                let from = arena.ids()[origin];
                let key = catalog.key(item);
                let route = arena.route_with_aux(
                    from,
                    key,
                    |id| match select {
                        Some(slab) => resolve(&arena, &layout, &shards, slab, id),
                        None => &[],
                    },
                    &mut scratch,
                );
                match route {
                    Some(route) => acc.record(route.is_success(), route.hops, 0),
                    None => acc.record(false, 0, 0),
                }
            }
            vec![acc]
        });
        let mut total = HopAccumulator::new();
        for acc in &accs {
            total.merge(acc);
        }
        total.into_metrics()
    };

    let core_only = measure(None);
    let aware = measure(Some(|s: &ShardSlabs| &s.aware));
    let oblivious = measure(Some(|s: &ShardSlabs| &s.oblivious));
    let reduction = reduction_pct(aware.avg_hops(), oblivious.avg_hops());
    ScaleReport {
        aware,
        oblivious,
        core_only,
        reduction_pct: reduction,
    }
}

/// Configuration of the scale-churn probe: the churn driver's
/// flip → observe → refresh cycle re-homed onto the virtual arena, at
/// populations the materialised driver cannot hold.
#[derive(Clone, Debug)]
pub struct ScaleChurnConfig {
    /// The underlying scale parameters (population, `k`, α, shards…).
    /// `scale.queries` is ignored — the churn probe routes
    /// [`queries_per_round`](Self::queries_per_round) per round.
    pub scale: ScaleConfig,
    /// Flip → route → refresh rounds to run.
    pub rounds: usize,
    /// Membership flips (alive ↔ dead toggles) drawn per round.
    pub flips_per_round: usize,
    /// Queries routed — and observed into the counters — per round.
    pub queries_per_round: usize,
    /// Monitored peers per node counter (the Space-Saving stride of the
    /// [`CounterSlab`]); clamped to `[1, 255]`.
    pub counter_stride: usize,
}

impl ScaleChurnConfig {
    /// Churn-probe defaults at population `nodes`: the fig3 scale
    /// parameters, 4 rounds of 1 % membership flips, 25 000 queries per
    /// round, and 8 monitored peers per node (193 B of counter state).
    pub fn paper_defaults(nodes: usize, seed: u64) -> Self {
        ScaleChurnConfig {
            scale: ScaleConfig::paper_defaults(nodes, seed),
            rounds: 4,
            flips_per_round: (nodes / 100).max(1),
            queries_per_round: 25_000,
            counter_stride: 8,
        }
    }
}

/// One round of the scale-churn probe.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScaleChurnRound {
    /// Membership flips applied this round.
    pub flips: usize,
    /// Alive population after the flips.
    pub alive: usize,
    /// Nodes whose aux set was re-solved (dirty ∩ alive).
    pub refreshed: usize,
    /// Routing metrics of the round's query stream (aware sets).
    pub metrics: QueryMetrics,
}

/// The outcome of [`run_scale_churn`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ScaleChurnReport {
    /// Per-round flip/refresh/routing rows.
    pub rounds: Vec<ScaleChurnRound>,
    /// Fixed per-node churn state (counters + aux slab + flags), the
    /// component the bytes-per-node CI gauge holds to its ceiling.
    pub state_bytes_per_node: f64,
}

/// The first alive rank at or after `rank`, walking the sorted ring.
/// Total: the flip loop never kills the last alive member.
fn walk_alive(alive: &[bool], rank: usize) -> usize {
    let n = alive.len();
    (0..n)
        .map(|d| (rank + d) % n)
        .find(|&r| alive[r])
        .expect("the flip loop keeps at least one member alive")
}

/// The scale tier of the churn driver (ROADMAP item 1's remainder,
/// closed by the incremental refresh engine): each round flips a slice
/// of the membership, routes a query stream over the live aware sets,
/// streams the `(origin, owner)` observations into a fixed-stride
/// [`CounterSlab`], and re-solves **only** the dirty alive nodes — the
/// same observe-then-refresh-dirty cycle as [`ChurnRefresh`], with the
/// retained optimizers traded for bounded counters so per-node state
/// stays a fixed few hundred bytes at `n = 10⁵`.
///
/// **Documented divergences from the materialised churn driver** (see
/// DESIGN.md "Incremental refresh under churn"): the arena's membership
/// is immutable, so dead nodes stay routable waypoints — death clears a
/// node's aux set, counters, and query eligibility, and an owner that
/// dies hands its observations to the next alive successor on the ring.
/// Everything is a pure function of the config: routing is read-only
/// fan-out, observations apply serially in stream order, and each dirty
/// node's re-solve depends only on its own counters — so the report is
/// bit-identical at any shard and thread count, which the invariance
/// test below and the CI scale job pin down.
///
/// [`ChurnRefresh`]: crate::refresh::ChurnRefresh
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes/items/rounds) —
/// experiment definitions, not runtime inputs.
pub fn run_scale_churn(config: &ScaleChurnConfig) -> ScaleChurnReport {
    let sc = &config.scale;
    assert!(sc.nodes > 1 && sc.items > 0 && config.rounds > 0);
    let space = IdSpace::new(sc.bits).expect("valid id width");
    let mut rng_topology = StdRng::seed_from_u64(sc.seed);

    let node_ids = random_ids(space, sc.nodes, &mut rng_topology);
    let catalog = ItemCatalog::random(space, sc.items, &mut rng_topology);
    let arena = PastryArena::new(
        PastryConfig::new(space, sc.digit_bits).with_mode(sc.mode),
        node_ids,
    );
    let n = arena.len();

    let zipf = Zipf::new(sc.items, sc.alpha).expect("valid Zipf");
    let workload = NodeWorkload::new(zipf, Ranking::identity(sc.items));
    let owner_ranks: Vec<usize> = (0..sc.items)
        .map(|i| {
            let owner = arena.true_owner(catalog.key(i)).expect("non-empty arena");
            arena.rank_of(owner).expect("owners are members")
        })
        .collect();

    // Fixed per-node churn state: flags, bounded counters, and one
    // aware slab per shard — no oblivious pass and no retained
    // optimizers at this tier.
    let layout = ShardLayout::new(n, sc.shards);
    let stride = sc.k.max(1);
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut dirty = vec![false; n];
    let mut counters = CounterSlab::new(config.counter_stride, n);
    struct ChurnShard {
        start: usize,
        aware: AuxSlab,
    }
    let mut shards: Vec<ChurnShard> = (0..layout.shards())
        .map(|s| {
            let (start, end) = layout.bounds(s);
            ChurnShard {
                start,
                aware: AuxSlab::new(stride, end - start),
            }
        })
        .collect();
    let state_bytes = counters.footprint_bytes()
        + n * stride * std::mem::size_of::<Id>()
        + n * std::mem::size_of::<usize>()
        + 2 * n;

    let mut rng_churn = StdRng::seed_from_u64(sc.seed.wrapping_add(5));
    let mut rng_queries = StdRng::seed_from_u64(sc.seed.wrapping_add(2));
    let mut rounds_out = Vec::with_capacity(config.rounds);

    for _ in 0..config.rounds {
        // 1. Membership flips. Death clears the node's aux set (its
        //    pointers must stop resolving for routes passing through
        //    it) and drops its dirty mark; rejoin re-dirties so the
        //    refresh pass re-solves from the surviving counter weights
        //    — the slab equivalent of the engine's rejoin path.
        let mut flips = 0;
        for _ in 0..config.flips_per_round {
            let rank = rng_churn.gen_range(0..n);
            if alive[rank] {
                if alive_count <= 1 {
                    continue;
                }
                alive[rank] = false;
                alive_count -= 1;
                dirty[rank] = false;
                let shard = &mut shards[layout.shard_of(rank)];
                let start = shard.start;
                shard.aware.set(rank - start, &[]);
            } else {
                alive[rank] = true;
                alive_count += 1;
                dirty[rank] = true;
            }
            flips += 1;
        }

        // 2. One round's query stream: alive origins (a dead draw walks
        //    to its alive successor — one RNG draw either way, so the
        //    stream is independent of the flip history's shape), routed
        //    chunk-parallel over read-only slabs. Each chunk returns
        //    its accumulator plus the `(origin, observed owner)` pairs;
        //    chunks come back in stream order.
        let queries: Vec<(usize, usize)> = (0..config.queries_per_round)
            .map(|_| {
                let origin = walk_alive(&alive, rng_queries.gen_range(0..n));
                (origin, workload.sample_item(&mut rng_queries))
            })
            .collect();
        let resolve = |id: Id| -> &[Id] {
            const NO_AUX: &[Id] = &[];
            let Some(rank) = arena.rank_of(id) else {
                return NO_AUX;
            };
            let shard = &shards[layout.shard_of(rank)];
            shard.aware.get(rank - shard.start)
        };
        let chunk_results = peercache_par::par_map_chunked(&queries, QUERY_CHUNK, |_, chunk| {
            let mut acc = HopAccumulator::new();
            let mut observations = Vec::with_capacity(chunk.len());
            let mut scratch = ArenaScratch::new();
            for &(origin, item) in chunk {
                let from = arena.ids()[origin];
                let key = catalog.key(item);
                match arena.route_with_aux(from, key, resolve, &mut scratch) {
                    Some(route) => acc.record(route.is_success(), route.hops, 0),
                    None => acc.record(false, 0, 0),
                }
                let owner_rank = walk_alive(&alive, owner_ranks[item]);
                observations.push((origin, arena.ids()[owner_rank]));
            }
            vec![(acc, observations)]
        });

        // 3. Serial application in stream order: merge the hop
        //    accumulators and absorb the observations into the counter
        //    slab, dirty-marking each observer (self-ownership teaches
        //    a node nothing — it already owns the key).
        let mut total = HopAccumulator::new();
        for (acc, observations) in &chunk_results {
            total.merge(acc);
            for &(origin, owner) in observations {
                if owner != arena.ids()[origin] {
                    counters.observe(origin, owner);
                    dirty[origin] = true;
                }
            }
        }

        // 4. Shard-parallel refresh of dirty ∩ alive nodes only — the
        //    scale form of the engine's clean-skip. Candidates are the
        //    node's own bounded counter entries, minus itself and its
        //    core set, minus dead members.
        let refreshed: usize = peercache_par::par_map_mut(&mut shards, |s, shard| {
            let (start, end) = layout.bounds(s);
            let mut workspace = PastryWorkspace::new();
            let mut core = Vec::new();
            let mut snap = FrequencySnapshot::default();
            let mut count = 0usize;
            for rank in start..end {
                if !dirty[rank] || !alive[rank] || counters.is_empty(rank) {
                    continue;
                }
                let node = arena.ids()[rank];
                arena.core_neighbors_into(rank, &mut core);
                counters.snapshot_into(rank, &mut snap);
                let candidates: Vec<Candidate> = snap
                    .iter()
                    .filter(|&(id, _)| {
                        id != node
                            && core.binary_search(&id).is_err()
                            && arena.rank_of(id).is_some_and(|r| alive[r])
                    })
                    .map(|(id, w)| Candidate::new(id, w))
                    .collect();
                let problem =
                    PastryProblem::new(space, sc.digit_bits, node, core.clone(), candidates, sc.k)
                        .expect("scale-churn problems are well-formed");
                let aux = &workspace
                    .solve_into(&problem)
                    .expect("scale-churn problems are well-formed")
                    .aux;
                shard.aware.set(rank - start, aux);
                count += 1;
            }
            count
        })
        .into_iter()
        .sum();
        for rank in 0..n {
            if alive[rank] {
                dirty[rank] = false;
            }
        }

        rounds_out.push(ScaleChurnRound {
            flips,
            alive: alive_count,
            refreshed,
            metrics: total.into_metrics(),
        });
    }

    let state_bytes_per_node = state_bytes as f64 / n as f64;
    ScaleChurnReport {
        rounds: rounds_out,
        state_bytes_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(nodes: usize, shards: usize) -> ScaleConfig {
        let mut config = ScaleConfig::paper_defaults(nodes, 11);
        config.queries = 2_000;
        config.shards = shards;
        config
    }

    #[test]
    fn scale_run_reproduces_fig3_shape() {
        let report = run_scale_stable(&quick_config(512, 4));
        assert_eq!(report.aware.issued, 2_000);
        assert!(
            report.aware.success_rate() > 0.99,
            "aware success {}",
            report.aware.success_rate()
        );
        assert!(
            report.oblivious.success_rate() > 0.99,
            "oblivious success {}",
            report.oblivious.success_rate()
        );
        assert!(
            report.reduction_pct > 0.0,
            "aware must beat oblivious: {}",
            report.reduction_pct
        );
        assert!(
            report.core_only.avg_hops() > report.aware.avg_hops(),
            "aux pointers must shorten routes"
        );
    }

    #[test]
    fn scale_run_is_invariant_to_shard_and_thread_count() {
        let base = run_scale_stable(&quick_config(384, 1));
        let sharded = run_scale_stable(&quick_config(384, 7));
        assert_eq!(base, sharded, "shard count must not affect results");
        let threaded = peercache_par::with_threads(4, || run_scale_stable(&quick_config(384, 7)));
        assert_eq!(base, threaded, "thread count must not affect results");
        let serial = peercache_par::with_threads(1, || run_scale_stable(&quick_config(384, 7)));
        assert_eq!(base, serial);
    }

    fn quick_churn_config(nodes: usize, shards: usize) -> ScaleChurnConfig {
        let mut config = ScaleChurnConfig::paper_defaults(nodes, 13);
        config.scale.shards = shards;
        config.rounds = 3;
        config.flips_per_round = nodes / 8;
        config.queries_per_round = 1_500;
        config
    }

    #[test]
    fn scale_churn_flips_observe_and_refresh() {
        let report = run_scale_churn(&quick_churn_config(512, 4));
        assert_eq!(report.rounds.len(), 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.metrics.issued, 1_500, "round {i}");
            assert!(round.flips > 0, "round {i} flipped nobody");
            assert!(round.alive >= 1 && round.alive <= 512);
            assert!(round.refreshed > 0, "round {i} refreshed nobody");
            assert!(round.refreshed <= round.alive);
            assert!(
                round.metrics.success_rate() > 0.95,
                "round {i} success {}",
                round.metrics.success_rate()
            );
        }
        // k=9 slab (144 B) + stride-8 counters (193 B) + flags: well
        // under the CI ceiling even before the arena ids are counted.
        assert!(
            report.state_bytes_per_node < 1024.0,
            "churn state {} B/node",
            report.state_bytes_per_node
        );
    }

    #[test]
    fn scale_churn_is_invariant_to_shard_and_thread_count() {
        let base = run_scale_churn(&quick_churn_config(384, 1));
        let sharded = run_scale_churn(&quick_churn_config(384, 7));
        assert_eq!(base, sharded, "shard count must not affect results");
        let threaded =
            peercache_par::with_threads(4, || run_scale_churn(&quick_churn_config(384, 7)));
        assert_eq!(base, threaded, "thread count must not affect results");
        let serial =
            peercache_par::with_threads(1, || run_scale_churn(&quick_churn_config(384, 7)));
        assert_eq!(base, serial);
    }

    #[test]
    fn oblivious_sets_are_distinct_sorted_non_core_members() {
        let space = IdSpace::new(16).expect("valid width");
        let config = PastryConfig::new(space, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let ids = random_ids(space, 200, &mut rng);
        let arena = PastryArena::new(config, ids);
        let mut core = Vec::new();
        let mut slices_buf = Vec::new();
        let mut out = Vec::new();
        for rank in 0..arena.len() {
            arena.core_neighbors_into(rank, &mut core);
            oblivious_at_scale(&arena, rank, &core, 8, 3, &mut slices_buf, &mut out);
            assert_eq!(out.len(), 8, "full budget at rank {rank}");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            for &id in &out {
                assert!(arena.rank_of(id).is_some());
                assert_ne!(id, arena.ids()[rank]);
                assert!(core.binary_search(&id).is_err(), "never a core member");
            }
        }
    }

    #[test]
    fn prefix_ranges_cover_the_ring_exactly_once() {
        let space = IdSpace::new(12).expect("valid width");
        let config = PastryConfig::new(space, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let ids = random_ids(space, 150, &mut rng);
        let arena = PastryArena::new(config, ids);
        let source = arena.ids()[42];
        let b = u32::from(space.bits());
        let mut covered = 0usize;
        for l in 0..b {
            let outer = prefix_range(arena.ids(), source, l, b);
            let inner = prefix_range(arena.ids(), source, l + 1, b);
            let slice = Slice { outer, inner };
            for i in 0..slice.len() {
                let id = arena.ids()[slice.index(i)];
                assert_eq!(
                    u32::from(
                        space
                            .common_prefix_digits(id, source, 1)
                            .expect("valid digit width")
                    ),
                    l,
                    "slice {l} member {id} shares exactly l bits"
                );
            }
            covered += slice.len();
        }
        assert_eq!(covered, arena.len() - 1, "everything but the source");
    }
}
