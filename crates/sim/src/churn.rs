//! The churn-mode experiment driver (§VI-C).
//!
//! Churn follows the paper's setup (itself modelled on \[13\]): the `n`
//! nodes crash and re-join alternately, staying alive (or dead) for an
//! exponentially distributed duration with mean 900 s; queries arrive at
//! 4/s system-wide; every node stabilizes each 25 s and recomputes its
//! auxiliary neighbors each 62.5 s from the access frequencies it has
//! observed so far. The same event schedule (flips, stabilizations,
//! query arrivals — all RNG streams except the baseline's selection
//! randomness) is replayed for the frequency-aware and the
//! frequency-oblivious strategies, so the comparison is paired.

use peercache_faults::{FaultConfig, FaultPlan, Liveness, LookupFailure};
use peercache_freq::{ExactCounter, FrequencyEstimator};
use peercache_id::{Id, IdSpace};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::engine::{exp_sample, EventQueue};
use crate::metrics::{reduction_pct, FaultMetrics, QueryMetrics};
use crate::overlay::{OverlayKind, SelectScratch, SimOverlay};
use crate::refresh::ChurnRefresh;
use crate::stable::RankingMode;

/// How the driver recomputes frequency-aware auxiliary sets at
/// recompute ticks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecomputeMode {
    /// The incremental engine (§IV-C): each live node retains its
    /// optimizer across ticks, observations mark nodes dirty, and a
    /// recompute tick costs `O(dirty · k · b)`. The default — installed
    /// selections (and thus every hop metric) are bit-identical to
    /// [`Full`](Self::Full), which the differential suite enforces.
    Incremental,
    /// The pre-refactor path: snapshot the node's counter and run a
    /// full solve at every tick. Kept as the differential baseline and
    /// for the `churn_recompute_full` kernel.
    Full,
}

/// Configuration of one churn-mode comparison run.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Which overlay to simulate (the paper's churn plots use Chord).
    pub kind: OverlayKind,
    /// Identifier width.
    pub bits: u8,
    /// Number of (alternating) nodes `n`.
    pub nodes: usize,
    /// Number of items.
    pub items: usize,
    /// Zipf exponent.
    pub alpha: f64,
    /// Ranking distribution.
    pub ranking: RankingMode,
    /// Auxiliary pointers per node.
    pub k: usize,
    /// Mean alive (and dead) duration, seconds (paper: 900).
    pub mean_lifetime: f64,
    /// System-wide query arrival rate per second (paper: 4).
    pub query_rate: f64,
    /// Stabilization interval, seconds (paper: 25).
    pub stabilize_interval: f64,
    /// Auxiliary recomputation interval, seconds (paper: 62.5).
    pub recompute_interval: f64,
    /// Total simulated time, seconds.
    pub duration: f64,
    /// Queries before this time are routed but not measured.
    pub warmup: f64,
    /// Master seed.
    pub seed: u64,
    /// Injected fault rates; [`FaultConfig::none`] reproduces the
    /// fault-free driver bit for bit.
    pub faults: FaultConfig,
    /// How aware selections are recomputed (bit-identical either way;
    /// [`RecomputeMode::Incremental`] is the fast default).
    pub recompute: RecomputeMode,
}

impl ChurnConfig {
    /// The paper's churn parameters over `nodes` Chord nodes.
    pub fn paper_defaults(nodes: usize, seed: u64) -> Self {
        let k = crate::experiments::log2(nodes);
        ChurnConfig {
            kind: OverlayKind::Chord,
            bits: 32,
            nodes,
            items: 64,
            alpha: 1.2,
            ranking: RankingMode::Pool(5),
            k,
            mean_lifetime: 900.0,
            query_rate: 4.0,
            stabilize_interval: 25.0,
            recompute_interval: 62.5,
            duration: 7200.0,
            warmup: 1800.0,
            seed,
            faults: FaultConfig::none(),
            recompute: RecomputeMode::Incremental,
        }
    }
}

/// Which selection strategy a churn run installs at recompute ticks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's optimal frequency-aware selection.
    Aware,
    /// The frequency-oblivious random-per-slice baseline.
    Oblivious,
}

#[derive(Clone, Debug)]
enum Event {
    Query,
    Flip(usize),
    Stabilize(usize),
    Recompute(usize),
}

/// The outcome of one churn-mode comparison.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChurnReport {
    /// Metrics under the frequency-aware strategy.
    pub aware: QueryMetrics,
    /// Metrics under the frequency-oblivious baseline.
    pub oblivious: QueryMetrics,
    /// % reduction in average hops, aware vs oblivious.
    pub reduction_pct: f64,
}

/// Run one strategy through the full event schedule.
///
/// A thin wrapper over [`run_churn_once_faulted`]: the fault layer *is*
/// the churn driver's probe path now, so the fault-free metrics are the
/// `base` slice of the faulted ones (with [`ChurnConfig::faults`]
/// transparent, every probe resolves to the plain liveness check).
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes, non-positive rates).
pub fn run_churn_once(config: &ChurnConfig, strategy: Strategy) -> QueryMetrics {
    run_churn_once_faulted(config, strategy).base
}

/// Run one strategy through the full event schedule with fault
/// injection, reporting degradation counters alongside the base metrics.
///
/// Every probe — including the plain "is this neighbor alive" check the
/// pre-fault driver did ad hoc — goes through the walk's
/// [`FaultPlan`] channel; dead neighbors discovered en route are evicted
/// from the prober's tables afterwards, exactly like the mutating walks'
/// in-route `forget`.
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes, non-positive rates).
pub fn run_churn_once_faulted(config: &ChurnConfig, strategy: Strategy) -> FaultMetrics {
    assert!(config.nodes > 0 && config.items > 0);
    assert!(config.query_rate > 0.0 && config.mean_lifetime > 0.0);
    assert!(
        config.alpha.is_finite() && config.alpha >= 0.0,
        "Zipf exponent must be finite and non-negative"
    );
    let space = IdSpace::new(config.bits).expect("valid id width");
    let mut rng_topology = StdRng::seed_from_u64(config.seed);
    let mut rng_workload = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut rng_churn = StdRng::seed_from_u64(config.seed.wrapping_add(2));
    let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(3));
    let mut rng_select = StdRng::seed_from_u64(config.seed.wrapping_add(4));

    let node_ids = random_ids(space, config.nodes, &mut rng_topology);
    let catalog = ItemCatalog::random(space, config.items, &mut rng_topology);
    // Preconditions asserted above make this infallible (L1 burn-down).
    let Ok(zipf) = Zipf::new(config.items, config.alpha) else {
        unreachable!("item count and exponent are asserted valid above");
    };
    let assignment = match config.ranking {
        RankingMode::Identical => RankingAssignment::identical(config.items, config.nodes),
        RankingMode::Pool(p) => {
            RankingAssignment::random_pool(config.items, config.nodes, p, &mut rng_workload)
        }
    };
    let workloads: Vec<NodeWorkload> = (0..config.nodes)
        .map(|idx| NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone()))
        .collect();

    // Initial membership: each node alive with probability ½ — the steady
    // state of the alternating-renewal churn process.
    let alive_init: Vec<bool> = (0..config.nodes).map(|_| rng_churn.gen_bool(0.5)).collect();
    let initial: Vec<Id> = node_ids
        .iter()
        .zip(&alive_init)
        .filter(|&(_, &a)| a)
        .map(|(&id, _)| id)
        .collect();
    let mut overlay = SimOverlay::build(config.kind, space, &initial, &mut rng_topology);
    let mut liveness = Liveness::new(&alive_init);
    let plan = FaultPlan::new(config.seed, &config.faults);

    let index_of: std::collections::BTreeMap<Id, usize> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut counters: Vec<ExactCounter> = vec![ExactCounter::new(); config.nodes];
    // Three periodic events per node plus the query stream are pending at
    // any time; sizing the heap up front keeps the warm-up growth-free.
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(3 * config.nodes + 1);
    queue.schedule(
        exp_sample(1.0 / config.query_rate, &mut rng_queries),
        Event::Query,
    );
    for idx in 0..config.nodes {
        queue.schedule(
            exp_sample(config.mean_lifetime, &mut rng_churn),
            Event::Flip(idx),
        );
        queue.schedule(
            rng_churn.gen_range(0.0..config.stabilize_interval),
            Event::Stabilize(idx),
        );
        queue.schedule(
            rng_churn.gen_range(0.0..config.recompute_interval),
            Event::Recompute(idx),
        );
    }

    let mut metrics = FaultMetrics::default();
    // Reused across events: the solver workspaces for the aware
    // recomputes (live-origin sampling is now O(log n) through the
    // incrementally maintained `Liveness` set).
    let mut select_scratch = SelectScratch::new();
    // The incremental engine (default mode): retained per-node
    // optimizers fed by dirty marks and churn events, replacing the
    // per-tick snapshot + full solve. `Full` keeps the pre-refactor arm
    // as the differential baseline. Only the aware strategy consults
    // the engine; the oblivious arm (and every RNG stream) is untouched
    // by the mode, so the two modes replay identical schedules.
    let mut engine = match config.recompute {
        RecomputeMode::Incremental => Some(ChurnRefresh::new(&overlay, config.k, config.nodes)),
        RecomputeMode::Full => None,
    };
    while let Some((now, event)) = queue.pop() {
        if now > config.duration {
            break;
        }
        match event {
            Event::Query => {
                queue.schedule_in(
                    exp_sample(1.0 / config.query_rate, &mut rng_queries),
                    Event::Query,
                );
                // Uniform live origin; skip the beat if the ring is empty.
                if liveness.live_count() == 0 {
                    continue;
                }
                let origin_idx = liveness.live_at(rng_queries.gen_range(0..liveness.live_count()));
                let item = workloads[origin_idx].sample_item(&mut rng_queries);
                let key = catalog.key(item);
                let route = overlay.query_faulted(node_ids[origin_idx], key, &plan);
                // Neighbors that timed out are evicted from their
                // prober's tables, as the mutating walks do in-route.
                for &(prober, dead) in &route.trace.dead_probed {
                    overlay.forget_entry(prober, dead);
                }
                if route.is_success() {
                    // Every node that saw the query — origin and
                    // forwarders alike — learns which node held the item
                    // (§III: "the set of nodes for which s has seen
                    // queries").
                    if let Some(&owner) = route.trace.path.last() {
                        for hop in &route.trace.path {
                            if let Some(&i) = index_of.get(hop) {
                                counters[i].observe(owner);
                                if let Some(engine) = engine.as_mut() {
                                    engine.mark_observed(i);
                                }
                            }
                        }
                    }
                }
                if now >= config.warmup {
                    if matches!(route.outcome, Err(LookupFailure::OriginDown(_))) {
                        metrics.record_origin_down();
                    } else {
                        metrics.record(&route);
                    }
                }
            }
            Event::Flip(idx) => {
                queue.schedule_in(
                    exp_sample(config.mean_lifetime, &mut rng_churn),
                    Event::Flip(idx),
                );
                if liveness.is_alive(idx) {
                    // Never kill the last node.
                    if overlay.live_ids().len() > 1 {
                        overlay.fail(node_ids[idx]);
                        liveness.set(idx, false);
                        if let Some(engine) = engine.as_mut() {
                            engine.on_flip(idx);
                        }
                    }
                } else {
                    overlay.join(node_ids[idx], &mut rng_churn);
                    liveness.set(idx, true);
                    if let Some(engine) = engine.as_mut() {
                        engine.on_flip(idx);
                    }
                }
            }
            Event::Stabilize(idx) => {
                queue.schedule_in(config.stabilize_interval, Event::Stabilize(idx));
                if liveness.is_alive(idx) {
                    overlay.stabilize(node_ids[idx]);
                }
            }
            Event::Recompute(idx) => {
                queue.schedule_in(config.recompute_interval, Event::Recompute(idx));
                if !liveness.is_alive(idx) {
                    continue;
                }
                let node = node_ids[idx];
                match strategy {
                    // The aware recompute: through the incremental
                    // engine by default — counter deltas flow into the
                    // retained optimizer, clean nodes re-install their
                    // cached selection — or the pre-refactor
                    // snapshot + full-solve path under `Full`. Both
                    // install identical sets through the same
                    // live-entry filter.
                    Strategy::Aware => match engine.as_mut() {
                        Some(engine) => {
                            if let Some(aux) =
                                engine.recompute_aware(&overlay, idx, node, &counters[idx])
                            {
                                overlay.set_aux_from_slice(node, aux);
                            }
                        }
                        None => {
                            let freqs = counters[idx].snapshot();
                            if freqs.is_empty() {
                                continue;
                            }
                            if let Ok(sel) = overlay.select_aware_into(
                                node,
                                &freqs,
                                config.k,
                                &mut select_scratch,
                            ) {
                                overlay.set_aux(node, sel.aux);
                            }
                        }
                    },
                    // The baseline ignores observations entirely: random
                    // per-slice picks from the live ring (§VI-A).
                    Strategy::Oblivious => {
                        if let Ok(sel) =
                            overlay.select_oblivious_uniform(node, config.k, &mut rng_select)
                        {
                            overlay.set_aux(node, sel.aux);
                        }
                    }
                }
            }
        }
    }
    metrics
}

/// Run the paired comparison: identical schedules, two strategies.
///
/// The two runs share nothing but the (cloned) configuration — every RNG
/// stream is re-derived from `config.seed` inside [`run_churn_once`] —
/// so they execute in parallel on the pool while staying **paired**: the
/// aware and oblivious strategies replay the identical event schedule
/// whether the runs happen concurrently or back to back.
pub fn run_churn(config: &ChurnConfig) -> ChurnReport {
    let strategies = [Strategy::Aware, Strategy::Oblivious];
    let results = peercache_par::par_map(&strategies, |_, &s| run_churn_once(config, s));
    let mut results = results.into_iter();
    let (Some(aware), Some(oblivious)) = (results.next(), results.next()) else {
        unreachable!("par_map yields one result per strategy");
    };
    let reduction = reduction_pct(aware.avg_hops(), oblivious.avg_hops());
    ChurnReport {
        aware,
        oblivious,
        reduction_pct: reduction,
    }
}

/// The outcome of one fault-injected churn-mode comparison.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChurnFaultReport {
    /// Fault metrics under the frequency-aware strategy.
    pub aware: FaultMetrics,
    /// Fault metrics under the frequency-oblivious baseline.
    pub oblivious: FaultMetrics,
    /// % reduction in average hops, aware vs oblivious.
    pub reduction_pct: f64,
}

/// [`run_churn`] with fault injection: identical paired schedules, two
/// strategies, full degradation counters per side.
pub fn run_churn_faulted(config: &ChurnConfig) -> ChurnFaultReport {
    let strategies = [Strategy::Aware, Strategy::Oblivious];
    let results = peercache_par::par_map(&strategies, |_, &s| run_churn_once_faulted(config, s));
    let mut results = results.into_iter();
    let (Some(aware), Some(oblivious)) = (results.next(), results.next()) else {
        unreachable!("par_map yields one result per strategy");
    };
    let reduction = reduction_pct(aware.base.avg_hops(), oblivious.base.avg_hops());
    ChurnFaultReport {
        aware,
        oblivious,
        reduction_pct: reduction,
    }
}
