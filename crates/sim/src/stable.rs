//! The stable-mode experiment driver (§VI: "a stable mode with no peer
//! insertions and deletions").
//!
//! In stable mode the per-node access frequencies are the *exact* node
//! popularities implied by the workload (item Zipf weights aggregated per
//! owner), so the comparison between the frequency-aware optimum and the
//! frequency-oblivious baseline is free of estimation noise. Lookups are
//! then sampled and routed through the real overlay to measure hops.

use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::metrics::{reduction_pct, QueryMetrics};
use crate::overlay::{OverlayKind, SimOverlay};

/// How item popularity rankings are distributed over nodes (§VI-A).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RankingMode {
    /// Identical ranking at all nodes (the Pastry plots).
    Identical,
    /// A pool of `n` distinct rankings assigned randomly (the Chord plots
    /// use 5).
    Pool(usize),
}

/// Configuration of one stable-mode comparison run.
#[derive(Clone, Debug)]
pub struct StableConfig {
    /// Which overlay to simulate.
    pub kind: OverlayKind,
    /// Identifier width (the paper uses 32).
    pub bits: u8,
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of items. The paper leaves the catalog size open; the
    /// defaults use a fixed hot catalog of 64 items, which calibrates the
    /// headline reductions into the paper's band (see EXPERIMENTS.md for
    /// the sensitivity sweep).
    pub items: usize,
    /// Zipf exponent `α`.
    pub alpha: f64,
    /// Ranking distribution.
    pub ranking: RankingMode,
    /// Auxiliary pointers per node `k`.
    pub k: usize,
    /// Measurement queries to route.
    pub queries: usize,
    /// Master seed (everything is derived deterministically).
    pub seed: u64,
}

impl StableConfig {
    /// Paper-style defaults: 32-bit ids, a 64-item hot catalog,
    /// `k = log₂ n`, α = 1.2, 50 000 queries.
    pub fn paper_defaults(kind: OverlayKind, nodes: usize, seed: u64) -> Self {
        let k = crate::experiments::log2(nodes);
        StableConfig {
            kind,
            bits: 32,
            nodes,
            items: 64,
            alpha: 1.2,
            ranking: match kind {
                OverlayKind::Chord | OverlayKind::SkipGraph => RankingMode::Pool(5),
                OverlayKind::Pastry { .. } | OverlayKind::Tapestry { .. } => RankingMode::Identical,
            },
            k,
            queries: 50_000,
            seed,
        }
    }
}

/// The outcome of one stable-mode comparison.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StableReport {
    /// Metrics with the frequency-aware optimal auxiliary sets.
    pub aware: QueryMetrics,
    /// Metrics with the frequency-oblivious baseline sets.
    pub oblivious: QueryMetrics,
    /// Metrics with no auxiliary neighbors at all (core only).
    pub core_only: QueryMetrics,
    /// The paper's metric: % reduction of aware vs oblivious.
    pub reduction_pct: f64,
}

/// Run one stable-mode comparison.
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes/items, α invalid) —
/// these are experiment definitions, not runtime inputs.
pub fn run_stable(config: &StableConfig) -> StableReport {
    assert!(config.nodes > 0 && config.items > 0);
    let space = IdSpace::new(config.bits).expect("valid id width");
    let mut rng_topology = StdRng::seed_from_u64(config.seed);
    let mut rng_workload = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut rng_select = StdRng::seed_from_u64(config.seed.wrapping_add(3));

    let node_ids = random_ids(space, config.nodes, &mut rng_topology);
    let catalog = ItemCatalog::random(space, config.items, &mut rng_topology);
    let zipf = Zipf::new(config.items, config.alpha).expect("valid Zipf");
    let assignment = match config.ranking {
        RankingMode::Identical => RankingAssignment::identical(config.items, config.nodes),
        RankingMode::Pool(p) => {
            RankingAssignment::random_pool(config.items, config.nodes, p, &mut rng_workload)
        }
    };

    let overlay = SimOverlay::build(config.kind, space, &node_ids, &mut rng_topology);

    // Item → owner, and per-ranking owner-weight aggregates (exact node
    // popularities, identical for every node sharing a ranking).
    let owners: Vec<Id> = (0..config.items)
        .map(|i| overlay.true_owner(catalog.key(i)).expect("non-empty"))
        .collect();
    let pool_weights: Vec<FrequencySnapshot> = (0..assignment.rankings().len())
        .map(|p| {
            let wl = NodeWorkload::new(zipf.clone(), assignment.rankings()[p].clone());
            FrequencySnapshot::from_pairs(wl.node_weights(config.items, |i| owners[i]))
        })
        .collect();

    // Per-node selections under both strategies. The oblivious baseline
    // stays serial: it draws from a single `rng_select` stream whose
    // ordering across nodes is part of the reproducibility contract (the
    // aware pass below consumes no randomness, so draining the stream
    // here yields the exact draw sequence of the historical interleaved
    // loop). The baseline ignores frequencies entirely: random picks per
    // distance slice over the whole ring (§VI-A), not just over the
    // nodes that happen to own items.
    let mut oblivious_sets = Vec::with_capacity(config.nodes);
    for &node in node_ids.iter() {
        let oblivious = overlay
            .select_oblivious_uniform(node, config.k, &mut rng_select)
            .expect("stable problems are well-formed");
        oblivious_sets.push(oblivious.aux);
    }
    // The aware DP solves are pure functions of (node, frequencies) — the
    // hot inner loop of a stable run — and fan out over the pool. Order
    // preservation in `par_map` keeps `aware_sets[idx]` aligned with
    // `node_ids[idx]`.
    let aware_sets: Vec<Vec<Id>> = peercache_par::par_map(&node_ids, |idx, &node| {
        let freqs = &pool_weights[assignment.pool_index(idx)];
        overlay
            .select_aware(node, freqs, config.k)
            .expect("stable problems are well-formed")
            .aux
    });

    // Route the same query sequence under each strategy. Each pass gets
    // its own overlay copy, so the three passes are independent and run
    // in parallel; in stable mode routing never mutates the substrate
    // (nothing dies, so no neighbor is ever forgotten), which makes the
    // copies behaviourally identical to the historical sequential reuse.
    let per_node_workloads: Vec<NodeWorkload> = (0..config.nodes)
        .map(|idx| NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone()))
        .collect();
    let measure = |mut overlay: SimOverlay, sets: Option<&[Vec<Id>]>| -> QueryMetrics {
        for (idx, &node) in node_ids.iter().enumerate() {
            let aux = sets.map(|s| s[idx].clone()).unwrap_or_default();
            overlay.set_aux(node, aux);
        }
        let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let mut metrics = QueryMetrics::default();
        for _ in 0..config.queries {
            let origin_idx = rng_queries.gen_range(0..config.nodes);
            let item = per_node_workloads[origin_idx].sample_item(&mut rng_queries);
            let outcome = overlay.query(node_ids[origin_idx], catalog.key(item));
            metrics.record(outcome.success, outcome.hops, outcome.failed_probes);
        }
        metrics
    };

    let passes: [Option<&[Vec<Id>]>; 3] = [None, Some(&aware_sets), Some(&oblivious_sets)];
    let results = peercache_par::par_map(&passes, |_, sets| measure(overlay.clone(), *sets));
    let mut results = results.into_iter();
    let (Some(core_only), Some(aware), Some(oblivious)) =
        (results.next(), results.next(), results.next())
    else {
        unreachable!("par_map yields one result per measurement pass");
    };
    let reduction = reduction_pct(aware.avg_hops(), oblivious.avg_hops());

    StableReport {
        aware,
        oblivious,
        core_only,
        reduction_pct: reduction,
    }
}
