//! The stable-mode experiment driver (§VI: "a stable mode with no peer
//! insertions and deletions").
//!
//! In stable mode the per-node access frequencies are the *exact* node
//! popularities implied by the workload (item Zipf weights aggregated per
//! owner), so the comparison between the frequency-aware optimum and the
//! frequency-oblivious baseline is free of estimation noise. Lookups are
//! then sampled and routed through the real overlay to measure hops.

use peercache_faults::{FaultConfig, FaultPlan, LookupFailure};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::metrics::{reduction_pct, FaultMetrics, QueryMetrics};
use crate::overlay::{OverlayKind, SelectScratch, SimOverlay};

/// Nodes per parallel selection task. Chunking is by fixed size — never by
/// thread count — and each chunk starts from a fresh [`SelectScratch`], so
/// the selected sets are bit-identical at any thread count (and at any
/// chunk size: each node's selection is a pure function of its inputs, so
/// this knob moves only dispatch overhead, never results).
///
/// Tuned via `perf_baseline`'s `select_fanout_c*` sweep: 64 beat the old
/// 32 by ~2 % (fewer dispatches and scratch warm-ups) while still leaving
/// ≥ 4 chunks at fig3's smallest paper point (n = 256), so a 4-thread
/// pool keeps full load-balance. 128 measured another ~4 % faster on a
/// single-core host but halves the available parallelism at n = 256.
pub(crate) const SELECT_CHUNK: usize = 64;

/// Resolve the auxiliary set of `id` from a measurement pass's side table
/// (`None` = the core-only pass).
pub(crate) fn aux_lookup<'a>(
    index: &'a [(Id, usize)],
    sets: Option<&'a [Vec<Id>]>,
    id: Id,
) -> &'a [Id] {
    const NO_AUX: &[Id] = &[];
    let Some(sets) = sets else { return NO_AUX };
    index
        .binary_search_by_key(&id, |&(n, _)| n)
        .map_or(NO_AUX, |pos| sets[index[pos].1].as_slice())
}

/// How item popularity rankings are distributed over nodes (§VI-A).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RankingMode {
    /// Identical ranking at all nodes (the Pastry plots).
    Identical,
    /// A pool of `n` distinct rankings assigned randomly (the Chord plots
    /// use 5).
    Pool(usize),
}

/// Configuration of one stable-mode comparison run.
#[derive(Clone, Debug)]
pub struct StableConfig {
    /// Which overlay to simulate.
    pub kind: OverlayKind,
    /// Identifier width (the paper uses 32).
    pub bits: u8,
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of items. The paper leaves the catalog size open; the
    /// defaults use a fixed hot catalog of 64 items, which calibrates the
    /// headline reductions into the paper's band (see EXPERIMENTS.md for
    /// the sensitivity sweep).
    pub items: usize,
    /// Zipf exponent `α`.
    pub alpha: f64,
    /// Ranking distribution.
    pub ranking: RankingMode,
    /// Auxiliary pointers per node `k`.
    pub k: usize,
    /// Measurement queries to route.
    pub queries: usize,
    /// Master seed (everything is derived deterministically).
    pub seed: u64,
}

impl StableConfig {
    /// Paper-style defaults: 32-bit ids, a 64-item hot catalog,
    /// `k = log₂ n`, α = 1.2, 50 000 queries.
    pub fn paper_defaults(kind: OverlayKind, nodes: usize, seed: u64) -> Self {
        let k = crate::experiments::log2(nodes);
        StableConfig {
            kind,
            bits: 32,
            nodes,
            items: 64,
            alpha: 1.2,
            ranking: match kind {
                OverlayKind::Chord | OverlayKind::SkipGraph => RankingMode::Pool(5),
                OverlayKind::Pastry { .. } | OverlayKind::Tapestry { .. } => RankingMode::Identical,
            },
            k,
            queries: 50_000,
            seed,
        }
    }
}

/// The outcome of one stable-mode comparison.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StableReport {
    /// Metrics with the frequency-aware optimal auxiliary sets.
    pub aware: QueryMetrics,
    /// Metrics with the frequency-oblivious baseline sets.
    pub oblivious: QueryMetrics,
    /// Metrics with no auxiliary neighbors at all (core only).
    pub core_only: QueryMetrics,
    /// The paper's metric: % reduction of aware vs oblivious.
    pub reduction_pct: f64,
}

/// Everything a measurement pass needs, built once per run: the frozen
/// overlay snapshot plus both strategies' selected auxiliary sets.
///
/// Extracted so the fault-free and fault-injected drivers share one
/// construction path — RNG stream consumption order is part of the
/// reproducibility contract and must not fork between them.
pub(crate) struct StableSetup {
    pub(crate) node_ids: Vec<Id>,
    pub(crate) catalog: ItemCatalog,
    pub(crate) overlay: SimOverlay,
    pub(crate) aware_sets: Vec<Vec<Id>>,
    pub(crate) oblivious_sets: Vec<Vec<Id>>,
    pub(crate) per_node_workloads: Vec<NodeWorkload>,
    pub(crate) aux_index: Vec<(Id, usize)>,
}

/// Run one stable-mode comparison.
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes/items, α invalid) —
/// these are experiment definitions, not runtime inputs.
pub fn run_stable(config: &StableConfig) -> StableReport {
    let setup = build_stable(config);
    let StableSetup {
        node_ids,
        catalog,
        overlay,
        aware_sets,
        oblivious_sets,
        per_node_workloads,
        aux_index,
    } = &setup;

    // Route the same query sequence under each strategy. All three passes
    // share ONE immutable overlay snapshot: auxiliary sets are resolved
    // per pass from the side tables through `query_with_aux` instead of
    // being installed into per-pass clones of the whole substrate. In
    // stable mode routing never mutates the overlay (nothing dies, so no
    // neighbor is ever forgotten), which makes the shared snapshot
    // behaviourally identical to the historical clone-per-pass — minus
    // three copies of every routing table.
    let measure = |sets: Option<&[Vec<Id>]>| -> QueryMetrics {
        let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let mut metrics = QueryMetrics::default();
        for _ in 0..config.queries {
            let origin_idx = rng_queries.gen_range(0..config.nodes);
            let item = per_node_workloads[origin_idx].sample_item(&mut rng_queries);
            let outcome = overlay.query_with_aux(node_ids[origin_idx], catalog.key(item), |id| {
                aux_lookup(aux_index, sets, id)
            });
            metrics.record(outcome.success, outcome.hops, outcome.failed_probes);
        }
        metrics
    };

    let passes: [Option<&[Vec<Id>]>; 3] = [None, Some(aware_sets), Some(oblivious_sets)];
    let results = peercache_par::par_map(&passes, |_, sets| measure(*sets));
    let mut results = results.into_iter();
    let (Some(core_only), Some(aware), Some(oblivious)) =
        (results.next(), results.next(), results.next())
    else {
        unreachable!("par_map yields one result per measurement pass");
    };
    let reduction = reduction_pct(aware.avg_hops(), oblivious.avg_hops());

    StableReport {
        aware,
        oblivious,
        core_only,
        reduction_pct: reduction,
    }
}

/// The stable-mode state shared by the real drivers and the selection
/// bench: topology, workloads and the per-ranking owner-weight
/// aggregates — everything the aware fan-out consumes, nothing the
/// measurement passes add on top.
pub(crate) struct SelectionInputs {
    pub(crate) node_ids: Vec<Id>,
    pub(crate) catalog: ItemCatalog,
    pub(crate) zipf: Zipf,
    pub(crate) assignment: RankingAssignment,
    pub(crate) overlay: SimOverlay,
    pub(crate) pool_weights: Vec<FrequencySnapshot>,
}

/// Build the selection inputs. Split out of [`build_stable`] so
/// [`SelectionBench`] shares the exact construction path (each RNG
/// stream is independently seeded, so stopping before the oblivious
/// draws consumes nothing the full build would not).
pub(crate) fn build_selection_inputs(config: &StableConfig) -> SelectionInputs {
    assert!(config.nodes > 0 && config.items > 0);
    let space = IdSpace::new(config.bits).expect("valid id width");
    let mut rng_topology = StdRng::seed_from_u64(config.seed);
    let mut rng_workload = StdRng::seed_from_u64(config.seed.wrapping_add(1));

    let node_ids = random_ids(space, config.nodes, &mut rng_topology);
    let catalog = ItemCatalog::random(space, config.items, &mut rng_topology);
    let zipf = Zipf::new(config.items, config.alpha).expect("valid Zipf");
    let assignment = match config.ranking {
        RankingMode::Identical => RankingAssignment::identical(config.items, config.nodes),
        RankingMode::Pool(p) => {
            RankingAssignment::random_pool(config.items, config.nodes, p, &mut rng_workload)
        }
    };

    let overlay = SimOverlay::build(config.kind, space, &node_ids, &mut rng_topology);

    // Item → owner, and per-ranking owner-weight aggregates (exact node
    // popularities, identical for every node sharing a ranking).
    let owners: Vec<Id> = (0..config.items)
        .map(|i| overlay.true_owner(catalog.key(i)).expect("non-empty"))
        .collect();
    let pool_weights: Vec<FrequencySnapshot> = (0..assignment.rankings().len())
        .map(|p| {
            let wl = NodeWorkload::new(zipf.clone(), assignment.rankings()[p].clone());
            FrequencySnapshot::from_pairs(wl.node_weights(config.items, |i| owners[i]))
        })
        .collect();
    SelectionInputs {
        node_ids,
        catalog,
        zipf,
        assignment,
        overlay,
        pool_weights,
    }
}

/// The frequency-aware selection fan-out at an explicit chunk size: one
/// pool task per chunk of nodes, one [`SelectScratch`] per task, so
/// every solve after a chunk's first reuses the warmed solver
/// workspaces. Each node's selection is a pure function of
/// `(node, freqs, k)` — the workspace contract — so the returned sets
/// are identical for every chunk size and thread count; only the
/// dispatch economics move.
pub(crate) fn select_aware_sets(inputs: &SelectionInputs, k: usize, chunk: usize) -> Vec<Vec<Id>> {
    peercache_par::par_map_chunked(&inputs.node_ids, chunk, |start, nodes| {
        let mut scratch = SelectScratch::new();
        nodes
            .iter()
            .enumerate()
            .map(|(offset, &node)| {
                let freqs = &inputs.pool_weights[inputs.assignment.pool_index(start + offset)];
                inputs
                    .overlay
                    .select_aware_into(node, freqs, k, &mut scratch)
                    .expect("stable problems are well-formed")
                    .aux
            })
            .collect()
    })
}

/// Pre-built inputs for timing the aware-selection fan-out at explicit
/// chunk sizes — the bench hook behind `perf_baseline`'s chunk sweep
/// that tunes [`SELECT_CHUNK`].
pub struct SelectionBench {
    inputs: SelectionInputs,
    k: usize,
}

impl SelectionBench {
    /// Build the fan-out inputs once, via the same construction path as
    /// the real stable drivers.
    pub fn new(config: &StableConfig) -> Self {
        SelectionBench {
            inputs: build_selection_inputs(config),
            k: config.k,
        }
    }

    /// Run the fan-out at `chunk` nodes per pool task; returns the total
    /// number of selected auxiliary pointers (a black-boxable checksum —
    /// identical for every chunk size).
    pub fn run(&self, chunk: usize) -> usize {
        select_aware_sets(&self.inputs, self.k, chunk)
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// The chunk size the real drivers use, so the sweep can mark it.
    pub fn committed_chunk() -> usize {
        SELECT_CHUNK
    }
}

/// The per-ranking owner-weight aggregates retained past the build —
/// what the sharded driver's Space-Saving delta engine re-combines with
/// live counters to refresh selections incrementally.
pub(crate) struct SelectionAggregates {
    /// One exact owner-weight snapshot per ranking in the pool.
    pub(crate) pool_weights: Vec<FrequencySnapshot>,
    /// node index → ranking (and thereby → `pool_weights` entry).
    pub(crate) assignment: RankingAssignment,
}

/// Build the shared stable-mode state: topology, workloads, and both
/// strategies' auxiliary selections.
pub(crate) fn build_stable(config: &StableConfig) -> StableSetup {
    build_stable_retaining(config).0
}

/// [`build_stable`] that also hands back the selection aggregates the
/// monolithic driver would drop. Single construction path: the RNG
/// stream consumption order is identical to [`build_stable`] by
/// construction, so a sharded run built through here sees the exact
/// topology, selections, and workloads of the monolithic run.
pub(crate) fn build_stable_retaining(config: &StableConfig) -> (StableSetup, SelectionAggregates) {
    let inputs = build_selection_inputs(config);
    let mut rng_select = StdRng::seed_from_u64(config.seed.wrapping_add(3));

    // Per-node selections under both strategies. The oblivious baseline
    // stays serial: it draws from a single `rng_select` stream whose
    // ordering across nodes is part of the reproducibility contract (the
    // aware pass below consumes no randomness, so draining the stream
    // here yields the exact draw sequence of the historical interleaved
    // loop). The baseline ignores frequencies entirely: random picks per
    // distance slice over the whole ring (§VI-A), not just over the
    // nodes that happen to own items.
    let mut oblivious_sets = Vec::with_capacity(config.nodes);
    for &node in inputs.node_ids.iter() {
        let oblivious = inputs
            .overlay
            .select_oblivious_uniform(node, config.k, &mut rng_select)
            .expect("stable problems are well-formed");
        oblivious_sets.push(oblivious.aux);
    }
    // The aware DP solves — the hot inner loop of a stable run — fan out
    // over the pool in fixed chunks (never by thread count). Order
    // preservation keeps `aware_sets[idx]` aligned with `node_ids[idx]`.
    let aware_sets = select_aware_sets(&inputs, config.k, SELECT_CHUNK);

    let SelectionInputs {
        node_ids,
        catalog,
        zipf,
        assignment,
        overlay,
        pool_weights,
    } = inputs;
    // The measurement passes resolve auxiliary sets by *id* from a side
    // table; `node_ids` are in generation order.
    let per_node_workloads: Vec<NodeWorkload> = (0..config.nodes)
        .map(|idx| NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone()))
        .collect();
    let mut aux_index: Vec<(Id, usize)> = node_ids
        .iter()
        .enumerate()
        .map(|(idx, &n)| (n, idx))
        .collect();
    aux_index.sort_unstable();
    (
        StableSetup {
            node_ids,
            catalog,
            overlay,
            aware_sets,
            oblivious_sets,
            per_node_workloads,
            aux_index,
        },
        SelectionAggregates {
            pool_weights,
            assignment,
        },
    )
}

/// The outcome of one fault-injected stable-mode comparison.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StableFaultReport {
    /// Fault metrics with the frequency-aware optimal auxiliary sets.
    pub aware: FaultMetrics,
    /// Fault metrics with the frequency-oblivious baseline sets.
    pub oblivious: FaultMetrics,
    /// Fault metrics with no auxiliary neighbors at all (core only).
    pub core_only: FaultMetrics,
    /// The paper's metric: % reduction of aware vs oblivious.
    pub reduction_pct: f64,
}

/// [`run_stable`] with fault injection: the identical topology,
/// selections, and query stream, routed through the fault-wrapped walks.
///
/// The fault walks consume no randomness (every decision is a hash of
/// `(run_seed, ids, hop, attempt)`), so the three passes draw the exact
/// query sequence of the fault-free driver and stay bit-identical at any
/// thread count. Origins crashed by the plan are reported as
/// `origin_down` and excluded from the issued count.
///
/// # Panics
/// Panics on nonsensical configurations (zero nodes/items, α invalid).
pub fn run_stable_faulted(config: &StableConfig, faults: &FaultConfig) -> StableFaultReport {
    let setup = build_stable(config);
    let StableSetup {
        node_ids,
        catalog,
        overlay,
        aware_sets,
        oblivious_sets,
        per_node_workloads,
        aux_index,
    } = &setup;
    let plan = FaultPlan::new(config.seed, faults);

    let measure = |sets: Option<&[Vec<Id>]>| -> FaultMetrics {
        let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let mut metrics = FaultMetrics::default();
        for _ in 0..config.queries {
            let origin_idx = rng_queries.gen_range(0..config.nodes);
            let item = per_node_workloads[origin_idx].sample_item(&mut rng_queries);
            let route = overlay.query_with_aux_faults(
                node_ids[origin_idx],
                catalog.key(item),
                |id| aux_lookup(aux_index, sets, id),
                &plan,
            );
            if matches!(route.outcome, Err(LookupFailure::OriginDown(_))) {
                metrics.record_origin_down();
            } else {
                metrics.record(&route);
            }
        }
        metrics
    };

    let passes: [Option<&[Vec<Id>]>; 3] = [None, Some(aware_sets), Some(oblivious_sets)];
    let results = peercache_par::par_map(&passes, |_, sets| measure(*sets));
    let mut results = results.into_iter();
    let (Some(core_only), Some(aware), Some(oblivious)) =
        (results.next(), results.next(), results.next())
    else {
        unreachable!("par_map yields one result per measurement pass");
    };
    let reduction = reduction_pct(aware.base.avg_hops(), oblivious.base.avg_hops());

    StableFaultReport {
        aware,
        oblivious,
        core_only,
        reduction_pct: reduction,
    }
}
