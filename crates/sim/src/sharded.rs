//! The sharded stable-mode engine: per-shard arenas over one node
//! population (§VI at scale).
//!
//! [`ShardedOverlay`] partitions the population into `S` contiguous
//! shards (the count is a pure function of the config via
//! [`shard_count_for`], never of the thread count). Each shard owns an
//! arena of **flat, fixed-stride auxiliary slabs** plus its nodes'
//! Space-Saving access counters, while cross-shard pointers resolve
//! through the flat global id → slot index every measurement pass
//! already shares. Two properties make the engine bit-identical to the
//! monolithic [`run_stable`](crate::stable::run_stable) driver at any
//! shard *and* thread count:
//!
//! 1. **Construction parity** — the build goes through
//!    `build_stable_retaining`, the exact RNG-stream path of the
//!    monolithic driver; sharding only re-homes the results.
//! 2. **Pure per-node selection** — a node's aware set is a pure
//!    function of `(node, weights, k)`, and the incremental optimizer
//!    updates ([`PastryOptimizer`]) are bit-identical to fresh solves,
//!    so refreshes driven by Space-Saving counter *deltas* cost
//!    `O(dirty · k · b)` per round instead of a full `O(n)` recompute
//!    while producing the same sets.
//!
//! Measurement passes stream per-node outcomes into fixed-size
//! [`HopAccumulator`]s, one per fixed-size query chunk, merged in chunk
//! order — no per-pass vector of outcomes is ever materialised.

use peercache_freq::{FrequencyEstimator, FrequencySnapshot, SpaceSaving};
use peercache_id::{Id, IdSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{reduction_pct, HopAccumulator, QueryMetrics};
use crate::overlay::{OverlayKind, SelectScratch};
use crate::refresh::{PastryParams, RetainedPastry};
use crate::stable::{
    build_stable_retaining, SelectionAggregates, StableConfig, StableReport, StableSetup,
};

/// Queries per measurement task. Like the selection fan-out's
/// `SELECT_CHUNK`, chunking is by fixed size — never by thread count —
/// and every chunk's accumulator merges by order-independent integer
/// sums, so the merged metrics are bit-identical at any thread count.
pub(crate) const QUERY_CHUNK: usize = 4096;

/// The deterministic shard count for a population of `nodes`: one shard
/// per 8192 nodes, clamped to `[1, 64]`. A pure function of the config —
/// the thread count never feeds in — so two runs of the same config
/// shard identically regardless of the host.
pub fn shard_count_for(nodes: usize) -> usize {
    nodes.div_ceil(8192).clamp(1, 64)
}

/// The contiguous shard partition of the global slot space `0..n`
/// (delegating to [`peercache_par::shard_bounds`] so every consumer —
/// selection fan-outs, arenas, bench gauges — slices identically).
#[derive(Clone, Debug)]
pub struct ShardLayout {
    bounds: Vec<(usize, usize)>,
}

impl ShardLayout {
    /// Partition `len` slots into `shards` balanced contiguous ranges.
    pub fn new(len: usize, shards: usize) -> Self {
        ShardLayout {
            bounds: peercache_par::shard_bounds(len, shards),
        }
    }

    /// Number of shards (≥ 1; trailing shards may be empty).
    pub fn shards(&self) -> usize {
        self.bounds.len()
    }

    /// The `[start, end)` slot range of shard `s`.
    pub fn bounds(&self, s: usize) -> (usize, usize) {
        self.bounds[s]
    }

    /// The shard owning global slot `slot` (slots past the end map to
    /// the last shard; callers only pass in-range slots).
    pub fn shard_of(&self, slot: usize) -> usize {
        self.bounds
            .partition_point(|&(_, end)| end <= slot)
            .min(self.bounds.len() - 1)
    }
}

/// A flat fixed-stride auxiliary slab: shard-local slot `i`'s set lives
/// at `ids[i·stride .. i·stride + lens[i]]`. One allocation per shard
/// per strategy, reused across refreshes — refreshing a node's set
/// writes in place instead of reallocating a `Vec<Id>`.
pub(crate) struct AuxSlab {
    stride: usize,
    lens: Vec<usize>,
    ids: Vec<Id>,
}

impl AuxSlab {
    pub(crate) fn new(stride: usize, count: usize) -> Self {
        AuxSlab {
            stride,
            lens: vec![0; count],
            ids: vec![Id::new(0); stride * count],
        }
    }

    pub(crate) fn set(&mut self, local: usize, set: &[Id]) {
        debug_assert!(set.len() <= self.stride, "aux sets are bounded by k");
        let base = local * self.stride;
        self.ids[base..base + set.len()].copy_from_slice(set);
        self.lens[local] = set.len();
    }

    pub(crate) fn get(&self, local: usize) -> &[Id] {
        let base = local * self.stride;
        &self.ids[base..base + self.lens[local]]
    }
}

/// One shard's arena: slabs, counters, and retained incremental
/// optimizers. Each refresh task owns exactly one `ShardState` mutably
/// (via `par_map_mut`), so shards never contend.
struct ShardState {
    /// Global slot of this shard's local slot 0.
    start: usize,
    aware: AuxSlab,
    oblivious: AuxSlab,
    /// Per-node Space-Saving counters of observed accesses (by owner).
    counters: Vec<SpaceSaving>,
    /// Retained incremental solvers (Pastry/Tapestry kinds): optimizer,
    /// mirror pool, and selection scratch per node, built lazily on a
    /// node's first refresh, then updated in `O(k·b)` per delta.
    retained: Vec<RetainedPastry>,
    dirty: Vec<bool>,
    scratch: SelectScratch,
    core_buf: Vec<Id>,
    /// `core_buf` sorted — the binary-searchable exclusion set the pool
    /// refill filters against.
    core_sorted: Vec<Id>,
    /// Counter snapshot buffer (`snapshot_into` target).
    snap: FrequencySnapshot,
    /// Base pool weights + counter weights, rebuilt in place per node.
    combined: FrequencySnapshot,
    /// `combined` minus the node and its core set — the candidate pool
    /// handed to (and then swapped into) the retained solver.
    pool: FrequencySnapshot,
}

/// Which strategy's slab a measurement pass resolves pointers from.
#[derive(Copy, Clone)]
enum Pass {
    CoreOnly,
    Aware,
    Oblivious,
}

/// The sharded counterpart of the monolithic stable driver: same
/// topology, same selections, same query stream — re-homed into
/// per-shard arenas so refreshes and measurement fan out per shard and
/// per chunk. See the module docs for the bit-identity argument.
pub struct ShardedOverlay {
    config: StableConfig,
    space: IdSpace,
    setup: StableSetup,
    aggregates: SelectionAggregates,
    layout: ShardLayout,
    shards: Vec<ShardState>,
}

impl ShardedOverlay {
    /// Build the sharded engine over `shards` arenas. Construction runs
    /// the monolithic build path verbatim, then scatters both
    /// strategies' selections into the per-shard slabs.
    pub fn build(config: &StableConfig, shards: usize) -> Self {
        let (setup, aggregates) = build_stable_retaining(config);
        // Total: the overlay carries the IdSpace the build validated —
        // no re-validation, no expect (L1 burn-down, was budget 10).
        let space = setup.overlay.space();
        let layout = ShardLayout::new(config.nodes, shards);
        let stride = config.k.max(1);
        let shards = (0..layout.shards())
            .map(|s| {
                let (start, end) = layout.bounds(s);
                let count = end - start;
                let mut aware = AuxSlab::new(stride, count);
                let mut oblivious = AuxSlab::new(stride, count);
                for local in 0..count {
                    aware.set(local, &setup.aware_sets[start + local]);
                    oblivious.set(local, &setup.oblivious_sets[start + local]);
                }
                ShardState {
                    start,
                    aware,
                    oblivious,
                    counters: vec![SpaceSaving::new(config.items.max(1)); count],
                    retained: (0..count).map(|_| RetainedPastry::new()).collect(),
                    dirty: vec![false; count],
                    scratch: SelectScratch::new(),
                    core_buf: Vec::new(),
                    core_sorted: Vec::new(),
                    snap: FrequencySnapshot::default(),
                    combined: FrequencySnapshot::default(),
                    pool: FrequencySnapshot::default(),
                }
            })
            .collect();
        ShardedOverlay {
            config: config.clone(),
            space,
            setup,
            aggregates,
            layout,
            shards,
        }
    }

    /// The shard partition in force.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The node population in generation order (global slot order).
    pub fn node_ids(&self) -> &[Id] {
        &self.setup.node_ids
    }

    /// Global slot of `id` through the flat global index (the same
    /// sorted `(id, slot)` table the monolithic measurement passes
    /// binary-search), or `None` for an unknown id.
    fn global_slot(&self, id: Id) -> Option<usize> {
        self.setup
            .aux_index
            .binary_search_by_key(&id, |&(n, _)| n)
            .ok()
            .map(|pos| self.setup.aux_index[pos].1)
    }

    /// The current frequency-aware auxiliary set of `id` (empty for an
    /// unknown id).
    pub fn aware_set(&self, id: Id) -> &[Id] {
        self.aux_of(Pass::Aware, id)
    }

    /// Resolve `id`'s auxiliary set for a pass: flat global index →
    /// owning shard → slab slice. Cross-shard pointers cost one binary
    /// search plus one partition point — no per-node allocation, no
    /// shard-local state leaks across the boundary.
    fn aux_of(&self, pass: Pass, id: Id) -> &[Id] {
        const NO_AUX: &[Id] = &[];
        let Some(slot) = self.global_slot(id) else {
            return NO_AUX;
        };
        let shard = &self.shards[self.layout.shard_of(slot)];
        let local = slot - shard.start;
        match pass {
            Pass::CoreOnly => NO_AUX,
            Pass::Aware => shard.aware.get(local),
            Pass::Oblivious => shard.oblivious.get(local),
        }
    }

    /// Record one observed access: `origin` saw a lookup for a key owned
    /// by `owner`. Feeds the origin's Space-Saving counter and marks it
    /// dirty for the next [`refresh_dirty`](Self::refresh_dirty) round.
    /// Unknown origins are ignored (stable mode has no departures, so
    /// this arm never fires from the drivers).
    pub fn observe(&mut self, origin: Id, owner: Id) {
        let Some(slot) = self.global_slot(origin) else {
            return;
        };
        let shard = &mut self.shards[self.layout.shard_of(slot)];
        let local = slot - shard.start;
        shard.counters[local].observe(owner);
        shard.dirty[local] = true;
    }

    /// Refresh every dirty node's aware selection from its counter
    /// deltas, fanning out one task per shard. Returns the number of
    /// nodes refreshed. Each node's new set is the selection a fresh
    /// full solve over (base pool weights + counter snapshot) would
    /// produce — the incremental optimizer updates are bit-identical to
    /// fresh solves — so the result is independent of shard count,
    /// thread count, and refresh batching.
    pub fn refresh_dirty(&mut self) -> usize {
        let setup = &self.setup;
        let aggregates = &self.aggregates;
        let config = &self.config;
        let space = self.space;
        peercache_par::par_map_mut(&mut self.shards, |_, shard| {
            shard.refresh(setup, aggregates, config, space)
        })
        .into_iter()
        .sum()
    }

    /// Route the monolithic driver's exact query stream through the
    /// sharded arenas and report the three-pass comparison. Queries are
    /// pre-generated serially from the dedicated stream (each monolithic
    /// pass re-seeds it identically, so generating once yields the same
    /// sequence), then measured in fixed-size chunks of streaming
    /// accumulators merged in chunk order.
    pub fn report(&self) -> StableReport {
        let queries = self.pregenerate_queries();
        let core_only = self.measure(Pass::CoreOnly, &queries);
        let aware = self.measure(Pass::Aware, &queries);
        let oblivious = self.measure(Pass::Oblivious, &queries);
        let reduction = reduction_pct(aware.avg_hops(), oblivious.avg_hops());
        StableReport {
            aware,
            oblivious,
            core_only,
            reduction_pct: reduction,
        }
    }

    /// Draw the `(origin, item)` query sequence from the dedicated
    /// query stream — byte-for-byte the draws of a monolithic pass.
    fn pregenerate_queries(&self) -> Vec<(usize, usize)> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2));
        (0..self.config.queries)
            .map(|_| {
                let origin = rng.gen_range(0..self.config.nodes);
                let item = self.setup.per_node_workloads[origin].sample_item(&mut rng);
                (origin, item)
            })
            .collect()
    }

    /// One measurement pass over pre-generated queries: fixed-size
    /// chunks, one streaming accumulator per chunk, merged in chunk
    /// order (all sums — order independent, so bit-identical to the
    /// serial loop).
    fn measure(&self, pass: Pass, queries: &[(usize, usize)]) -> QueryMetrics {
        let accs = peercache_par::par_map_chunked(queries, QUERY_CHUNK, |_, chunk| {
            let mut acc = HopAccumulator::new();
            for &(origin, item) in chunk {
                let outcome = self.setup.overlay.query_with_aux(
                    self.setup.node_ids[origin],
                    self.setup.catalog.key(item),
                    |id| self.aux_of(pass, id),
                );
                acc.record(outcome.success, outcome.hops, outcome.failed_probes);
            }
            vec![acc]
        });
        let mut total = HopAccumulator::new();
        for acc in &accs {
            total.merge(acc);
        }
        total.into_metrics()
    }
}

impl ShardState {
    /// Refresh this shard's dirty nodes. For Pastry/Tapestry kinds the
    /// retained [`PastryOptimizer`] absorbs the counter delta as
    /// `update_weight`/`insert`/`remove` calls — `O(k·b)` each — and
    /// re-selects; other kinds (and every node's first refresh) take
    /// the full-solve path, which yields the identical selection.
    fn refresh(
        &mut self,
        setup: &StableSetup,
        aggregates: &SelectionAggregates,
        config: &StableConfig,
        space: IdSpace,
    ) -> usize {
        let kind = setup.overlay.kind();
        let mut refreshed = 0;
        for local in 0..self.dirty.len() {
            if !self.dirty[local] {
                continue;
            }
            self.dirty[local] = false;
            refreshed += 1;
            let slot = self.start + local;
            let node = setup.node_ids[slot];
            // Exact base popularities plus the live counter snapshot;
            // the refill sums duplicate owners (at most two entries per
            // peer: base + counter, so bit-identical to `from_pairs`),
            // and a counted owner's weight rises above its base instead
            // of replacing it. All buffers are shard-local and recycled,
            // so a steady-state refresh tick allocates nothing.
            let base = &aggregates.pool_weights[aggregates.assignment.pool_index(slot)];
            self.counters[local].snapshot_into(&mut self.snap);
            self.combined
                .refill_from_pairs(base.iter().chain(self.snap.iter()));
            setup.overlay.core_neighbors_into(node, &mut self.core_buf);
            self.core_sorted.clear();
            self.core_sorted.extend_from_slice(&self.core_buf);
            self.core_sorted.sort_unstable();
            match kind {
                OverlayKind::Pastry { digit_bits, .. } | OverlayKind::Tapestry { digit_bits } => {
                    let Self {
                        retained,
                        aware,
                        combined,
                        pool,
                        core_buf,
                        core_sorted,
                        ..
                    } = self;
                    pool.refill_filtered(combined, |p| {
                        p != node && core_sorted.binary_search(&p).is_err()
                    });
                    let params = PastryParams {
                        node,
                        digit_bits,
                        k: config.k,
                        space,
                    };
                    // Stable mode never changes a node's core set, so
                    // the core delta is always empty.
                    let aux = retained[local]
                        .refresh(pool, &params, core_buf, &[], &[])
                        .expect("stable problems are well-formed");
                    aware.set(local, aux);
                }
                OverlayKind::Chord | OverlayKind::SkipGraph => {
                    let aux = setup
                        .overlay
                        .select_aware_into(node, &self.combined, config.k, &mut self.scratch)
                        .expect("stable problems are well-formed")
                        .aux;
                    self.aware.set(local, &aux);
                }
            }
        }
        refreshed
    }
}

/// [`run_stable`](crate::stable::run_stable) through the sharded engine:
/// identical topology, selections, and query stream, measured through
/// per-shard arenas and streaming accumulators. Byte-identical to the
/// monolithic report at any shard and thread count (the sharded
/// equivalence tests enforce it).
///
/// # Panics
/// Panics on nonsensical configurations, like the monolithic driver.
pub fn run_stable_sharded(config: &StableConfig, shards: usize) -> StableReport {
    ShardedOverlay::build(config, shards).report()
}
