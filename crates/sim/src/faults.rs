//! Fault-injection experiment glue: the `fault_matrix` sweep (loss ×
//! staleness × crash, aware vs oblivious vs core-only) over the
//! stable-mode driver, plus re-exports of the [`peercache_faults`]
//! primitives so experiment code needs only `peercache_sim::faults`.
//!
//! Every fault decision is a pure hash of `(run_seed, ids, hop,
//! attempt)` — no RNG stream is consumed by the fault layer — so every
//! cell of the matrix is an independent job and the whole sweep is
//! bit-identical at any thread count.

pub use peercache_faults::{
    FaultConfig, FaultPlan, FaultedRoute, Liveness, LookupFailure, RouteTrace,
};
use serde::Serialize;

use crate::stable::{run_stable_faulted, StableConfig, StableFaultReport};

/// Configuration of one fault-matrix sweep: a stable-mode scenario
/// crossed with grids of loss, staleness, and crash rates.
///
/// The first entry of each rate list is the baseline the per-cell hop
/// inflations are computed against; keep it `0.0` so "inflation" means
/// *relative to the fault-free walk* (the constructors do).
#[derive(Clone, Debug)]
pub struct FaultMatrixConfig {
    /// The underlying stable-mode scenario (overlay, nodes, workload).
    pub stable: StableConfig,
    /// Probe-loss probabilities to sweep (first entry = baseline).
    pub loss_rates: Vec<f64>,
    /// Stale-aux-pointer probabilities to sweep (first entry = baseline).
    pub stale_rates: Vec<f64>,
    /// Node-crash probabilities to sweep (first entry = baseline).
    pub crash_rates: Vec<f64>,
    /// Maximum id-space displacement of a stale pointer.
    pub staleness_age: u64,
    /// Retry budget per probe.
    pub max_retries: u32,
    /// Backoff base ticks (doubles per retry).
    pub backoff_base: u64,
    /// Maximum per-message delivery jitter in ticks.
    pub delay_jitter: u64,
}

impl FaultMatrixConfig {
    /// Default sweep: loss ∈ {0, 5, 20}%, staleness ∈ {0, 25}%, crash ∈
    /// {0, 5}% with a retry budget of 2 — twelve cells per overlay.
    pub fn paper_defaults(stable: StableConfig) -> Self {
        FaultMatrixConfig {
            stable,
            loss_rates: vec![0.0, 0.05, 0.2],
            stale_rates: vec![0.0, 0.25],
            crash_rates: vec![0.0, 0.05],
            staleness_age: 1024,
            max_retries: 2,
            backoff_base: 4,
            delay_jitter: 3,
        }
    }

    /// The [`FaultConfig`] of one grid point.
    fn cell_faults(&self, loss: f64, stale: f64, crash: f64) -> FaultConfig {
        FaultConfig {
            crash_rate: crash,
            unresponsive_rate: 0.0,
            loss_rate: loss,
            stale_rate: stale,
            staleness_age: self.staleness_age,
            delay_jitter: self.delay_jitter,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
        }
    }
}

/// One grid point of a fault-matrix sweep.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FaultMatrixCell {
    /// Probe-loss probability of this cell.
    pub loss_rate: f64,
    /// Stale-aux-pointer probability of this cell.
    pub stale_rate: f64,
    /// Node-crash probability of this cell.
    pub crash_rate: f64,
    /// The full three-strategy fault report at this grid point.
    pub report: StableFaultReport,
    /// Mean-hop inflation of the aware strategy vs the baseline cell.
    pub hop_inflation_aware: f64,
    /// Mean-hop inflation of the oblivious strategy vs the baseline cell.
    pub hop_inflation_oblivious: f64,
    /// Mean-hop inflation of the core-only strategy vs the baseline cell.
    pub hop_inflation_core_only: f64,
}

/// Run the full fault matrix: every `(loss, stale, crash)` grid point,
/// fanned out over the worker pool, each cell routing the identical
/// query stream through the fault-wrapped walks under all three
/// strategies.
///
/// Cell order is the nested loop order `loss → stale → crash`; the
/// first cell is the inflation baseline (fault-free when the rate lists
/// start at `0.0`). Output is bit-identical at any thread count.
pub fn fault_matrix(config: &FaultMatrixConfig) -> Vec<FaultMatrixCell> {
    fault_matrix_multi(std::slice::from_ref(config))
        .pop()
        .unwrap_or_default()
}

/// Run several fault matrices as **one** fan-out: every `(config,
/// loss, stale, crash)` grid point across all sweeps becomes an
/// independent job in a single [`peercache_par::par_map`] call, so a
/// four-substrate sweep saturates the pool with 48 jobs instead of
/// draining four 12-job waves with a barrier between substrates.
///
/// Per-cell fault decisions derive purely from `(run_seed, ids, hop,
/// attempt)` hashes — no cross-cell state — so the flattening changes
/// scheduling only, never results. Output order matches the input
/// `configs` order, cells within each matrix in the nested `loss →
/// stale → crash` order with the first cell as the inflation baseline.
pub fn fault_matrix_multi(configs: &[FaultMatrixConfig]) -> Vec<Vec<FaultMatrixCell>> {
    let mut jobs: Vec<(usize, f64, f64, f64)> = Vec::new();
    for (ci, config) in configs.iter().enumerate() {
        for &loss in &config.loss_rates {
            for &stale in &config.stale_rates {
                for &crash in &config.crash_rates {
                    jobs.push((ci, loss, stale, crash));
                }
            }
        }
    }
    let reports = peercache_par::par_map(&jobs, |_, &(ci, loss, stale, crash)| {
        let config = &configs[ci];
        run_stable_faulted(&config.stable, &config.cell_faults(loss, stale, crash))
    });

    let inflation = |hops: f64, baseline_hops: f64| hops / baseline_hops;
    let mut out: Vec<Vec<FaultMatrixCell>> = configs.iter().map(|_| Vec::new()).collect();
    let mut baselines: Vec<Option<StableFaultReport>> = vec![None; configs.len()];
    for (&(ci, loss, stale, crash), report) in jobs.iter().zip(reports) {
        let base = baselines[ci].get_or_insert_with(|| report.clone());
        out[ci].push(FaultMatrixCell {
            loss_rate: loss,
            stale_rate: stale,
            crash_rate: crash,
            hop_inflation_aware: inflation(
                report.aware.base.avg_hops(),
                base.aware.base.avg_hops(),
            ),
            hop_inflation_oblivious: inflation(
                report.oblivious.base.avg_hops(),
                base.oblivious.base.avg_hops(),
            ),
            hop_inflation_core_only: inflation(
                report.core_only.base.avg_hops(),
                base.core_only.base.avg_hops(),
            ),
            report,
        });
    }
    out
}
