//! Query-level metrics accumulated by the experiment drivers.

use serde::Serialize;

/// Aggregate statistics over a set of routed queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct QueryMetrics {
    /// Queries issued.
    pub issued: u64,
    /// Queries that reached the true owner.
    pub succeeded: u64,
    /// Queries that ended anywhere else (wrong owner, dead end, limit).
    pub failed: u64,
    /// Total hops over *successful* queries.
    pub total_hops: u64,
    /// Dead neighbors probed (timeouts) across all queries.
    pub failed_probes: u64,
    /// Histogram of hop counts for successful queries (index = hops).
    pub hop_histogram: Vec<u64>,
}

impl QueryMetrics {
    /// Record one routed query.
    pub fn record(&mut self, success: bool, hops: u32, failed_probes: u32) {
        self.issued += 1;
        self.failed_probes += u64::from(failed_probes);
        if success {
            self.succeeded += 1;
            self.total_hops += u64::from(hops);
            let idx = hops as usize;
            if self.hop_histogram.len() <= idx {
                self.hop_histogram.resize(idx + 1, 0);
            }
            self.hop_histogram[idx] += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Mean hops over successful queries (NaN when none succeeded).
    pub fn avg_hops(&self) -> f64 {
        self.total_hops as f64 / self.succeeded as f64
    }

    /// Fraction of issued queries that succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.succeeded as f64 / self.issued as f64
    }

    /// The `q`-quantile of the successful-hop distribution (`0 ≤ q ≤ 1`).
    // The target is ceiled and clamped ≥ 1 so the f64 → u64 cast is exact,
    // and histogram indices are bounded by the hop count, far below u32.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn hop_quantile(&self, q: f64) -> Option<u32> {
        if self.succeeded == 0 {
            return None;
        }
        let target = ((self.succeeded as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (hops, &count) in self.hop_histogram.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(hops as u32);
            }
        }
        Some(self.hop_histogram.len().saturating_sub(1) as u32)
    }

    /// Merge another metrics block into this one.
    pub fn merge(&mut self, other: &QueryMetrics) {
        self.issued += other.issued;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.total_hops += other.total_hops;
        self.failed_probes += other.failed_probes;
        if self.hop_histogram.len() < other.hop_histogram.len() {
            self.hop_histogram.resize(other.hop_histogram.len(), 0);
        }
        for (i, &c) in other.hop_histogram.iter().enumerate() {
            self.hop_histogram[i] += c;
        }
    }
}

/// [`QueryMetrics`] plus the degradation counters a fault-injected walk
/// reports through its [`RouteTrace`](peercache_faults::RouteTrace).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultMetrics {
    /// The fault-oblivious aggregate (issued/succeeded/hops/probe
    /// timeouts), so every zero-fault run lines up with [`QueryMetrics`]
    /// field for field.
    pub base: QueryMetrics,
    /// Probe attempts sent, including retries.
    pub probes: u64,
    /// Retransmissions after a lost or unanswered probe.
    pub retries: u64,
    /// Probes abandoned after the retry budget (= dead neighbors hit).
    pub timeouts: u64,
    /// Aux→core fallbacks taken after an aux-only pointer failed.
    pub fallbacks: u64,
    /// Deterministic virtual time spent in backoff and delivery jitter.
    pub delay_ticks: u64,
    /// Queries dropped because the origin itself was down.
    pub origin_down: u64,
}

impl FaultMetrics {
    /// Record one fault-injected route.
    pub fn record(&mut self, route: &peercache_faults::FaultedRoute) {
        let trace = &route.trace;
        self.base
            .record(route.is_success(), trace.hops, trace.timeouts);
        self.probes += u64::from(trace.probes);
        self.retries += u64::from(trace.retries);
        self.timeouts += u64::from(trace.timeouts);
        self.fallbacks += u64::from(trace.fallbacks);
        self.delay_ticks += trace.delay_ticks;
    }

    /// Record a query that never launched: the origin was crashed or
    /// already gone from the overlay. Not counted as issued.
    pub fn record_origin_down(&mut self) {
        self.origin_down += 1;
    }

    /// Mean retries per issued query.
    pub fn avg_retries(&self) -> f64 {
        if self.base.issued == 0 {
            return 0.0;
        }
        self.retries as f64 / self.base.issued as f64
    }
}

/// The paper's headline metric: percentage reduction in average hops of
/// the frequency-aware scheme relative to the frequency-oblivious one.
pub fn reduction_pct(aware_avg_hops: f64, oblivious_avg_hops: f64) -> f64 {
    if oblivious_avg_hops <= 0.0 {
        return 0.0;
    }
    (oblivious_avg_hops - aware_avg_hops) / oblivious_avg_hops * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = QueryMetrics::default();
        m.record(true, 3, 0);
        m.record(true, 5, 1);
        m.record(false, 2, 2);
        assert_eq!(m.issued, 3);
        assert_eq!(m.succeeded, 2);
        assert_eq!(m.failed, 1);
        assert_eq!(m.total_hops, 8);
        assert_eq!(m.failed_probes, 3);
        assert_eq!(m.avg_hops(), 4.0);
        assert!((m.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_and_quantiles() {
        let mut m = QueryMetrics::default();
        for hops in [1, 1, 2, 3, 10] {
            m.record(true, hops, 0);
        }
        assert_eq!(m.hop_histogram[1], 2);
        assert_eq!(m.hop_quantile(0.5), Some(2));
        assert_eq!(m.hop_quantile(1.0), Some(10));
        assert_eq!(m.hop_quantile(0.0), Some(1));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let m = QueryMetrics::default();
        assert_eq!(m.hop_quantile(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = QueryMetrics::default();
        a.record(true, 2, 0);
        let mut b = QueryMetrics::default();
        b.record(true, 4, 1);
        b.record(false, 0, 0);
        a.merge(&b);
        assert_eq!(a.issued, 3);
        assert_eq!(a.avg_hops(), 3.0);
        assert_eq!(a.hop_histogram[4], 1);
    }

    #[test]
    fn reduction_pct_matches_paper_definition() {
        assert!((reduction_pct(2.0, 4.0) - 50.0).abs() < 1e-12);
        assert!((reduction_pct(4.0, 4.0)).abs() < 1e-12);
        assert_eq!(reduction_pct(1.0, 0.0), 0.0, "guarded division");
    }
}
