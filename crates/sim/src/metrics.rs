//! Query-level metrics accumulated by the experiment drivers.

use serde::Serialize;

/// Aggregate statistics over a set of routed queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct QueryMetrics {
    /// Queries issued.
    pub issued: u64,
    /// Queries that reached the true owner.
    pub succeeded: u64,
    /// Queries that ended anywhere else (wrong owner, dead end, limit).
    pub failed: u64,
    /// Total hops over *successful* queries.
    pub total_hops: u64,
    /// Dead neighbors probed (timeouts) across all queries.
    pub failed_probes: u64,
    /// Histogram of hop counts for successful queries (index = hops).
    pub hop_histogram: Vec<u64>,
}

impl QueryMetrics {
    /// Record one routed query.
    pub fn record(&mut self, success: bool, hops: u32, failed_probes: u32) {
        self.issued += 1;
        self.failed_probes += u64::from(failed_probes);
        if success {
            self.succeeded += 1;
            self.total_hops += u64::from(hops);
            let idx = hops as usize;
            if self.hop_histogram.len() <= idx {
                self.hop_histogram.resize(idx + 1, 0);
            }
            self.hop_histogram[idx] += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Mean hops over successful queries (NaN when none succeeded).
    pub fn avg_hops(&self) -> f64 {
        self.total_hops as f64 / self.succeeded as f64
    }

    /// Fraction of issued queries that succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.succeeded as f64 / self.issued as f64
    }

    /// The `q`-quantile of the successful-hop distribution (`0 ≤ q ≤ 1`).
    // The target is ceiled and clamped ≥ 1 so the f64 → u64 cast is exact,
    // and histogram indices are bounded by the hop count, far below u32.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn hop_quantile(&self, q: f64) -> Option<u32> {
        if self.succeeded == 0 {
            return None;
        }
        let target = ((self.succeeded as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (hops, &count) in self.hop_histogram.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(hops as u32);
            }
        }
        Some(self.hop_histogram.len().saturating_sub(1) as u32)
    }

    /// Merge another metrics block into this one.
    pub fn merge(&mut self, other: &QueryMetrics) {
        self.issued += other.issued;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.total_hops += other.total_hops;
        self.failed_probes += other.failed_probes;
        if self.hop_histogram.len() < other.hop_histogram.len() {
            self.hop_histogram.resize(other.hop_histogram.len(), 0);
        }
        for (i, &c) in other.hop_histogram.iter().enumerate() {
            self.hop_histogram[i] += c;
        }
    }
}

/// Hop bins in a [`HopAccumulator`]. Every substrate's hop budget is at
/// most `4 · digit_count ≤ 4 · 32 = 128`, so 256 bins can never saturate
/// in practice; the top bin absorbs anything larger defensively.
pub const HOP_BINS: usize = 256;

/// A **fixed-size** streaming metrics accumulator: the same counters as
/// [`QueryMetrics`] but with a fixed hop-histogram array, so a
/// measurement pass over millions of queries writes into a constant
/// footprint instead of growing a per-pass vector. Chunked sweeps keep
/// one accumulator per task and [`merge`](Self::merge) them in chunk
/// order; every field is an order-independent integer sum, so the merged
/// result is byte-identical to a serial pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopAccumulator {
    issued: u64,
    succeeded: u64,
    failed: u64,
    total_hops: u64,
    failed_probes: u64,
    bins: Box<[u64; HOP_BINS]>,
}

impl Default for HopAccumulator {
    fn default() -> Self {
        HopAccumulator {
            issued: 0,
            succeeded: 0,
            failed: 0,
            total_hops: 0,
            failed_probes: 0,
            bins: Box::new([0; HOP_BINS]),
        }
    }
}

impl HopAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        HopAccumulator::default()
    }

    /// Record one routed query (same contract as [`QueryMetrics::record`]).
    pub fn record(&mut self, success: bool, hops: u32, failed_probes: u32) {
        self.issued += 1;
        self.failed_probes += u64::from(failed_probes);
        if success {
            self.succeeded += 1;
            self.total_hops += u64::from(hops);
            self.bins[(hops as usize).min(HOP_BINS - 1)] += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Merge another accumulator into this one (integer sums — order
    /// independent).
    pub fn merge(&mut self, other: &HopAccumulator) {
        self.issued += other.issued;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.total_hops += other.total_hops;
        self.failed_probes += other.failed_probes;
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
    }

    /// Queries recorded so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Convert into the driver-facing [`QueryMetrics`], trimming the
    /// fixed histogram to the highest occupied bin — exactly the vector a
    /// serial [`QueryMetrics::record`] loop would have grown.
    pub fn into_metrics(self) -> QueryMetrics {
        let last = self.bins.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        QueryMetrics {
            issued: self.issued,
            succeeded: self.succeeded,
            failed: self.failed,
            total_hops: self.total_hops,
            failed_probes: self.failed_probes,
            hop_histogram: self.bins[..last].to_vec(),
        }
    }
}

/// [`QueryMetrics`] plus the degradation counters a fault-injected walk
/// reports through its [`RouteTrace`](peercache_faults::RouteTrace).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultMetrics {
    /// The fault-oblivious aggregate (issued/succeeded/hops/probe
    /// timeouts), so every zero-fault run lines up with [`QueryMetrics`]
    /// field for field.
    pub base: QueryMetrics,
    /// Probe attempts sent, including retries.
    pub probes: u64,
    /// Retransmissions after a lost or unanswered probe.
    pub retries: u64,
    /// Probes abandoned after the retry budget (= dead neighbors hit).
    pub timeouts: u64,
    /// Aux→core fallbacks taken after an aux-only pointer failed.
    pub fallbacks: u64,
    /// Deterministic virtual time spent in backoff and delivery jitter.
    pub delay_ticks: u64,
    /// Queries dropped because the origin itself was down.
    pub origin_down: u64,
}

impl FaultMetrics {
    /// Record one fault-injected route.
    pub fn record(&mut self, route: &peercache_faults::FaultedRoute) {
        let trace = &route.trace;
        self.base
            .record(route.is_success(), trace.hops, trace.timeouts);
        self.probes += u64::from(trace.probes);
        self.retries += u64::from(trace.retries);
        self.timeouts += u64::from(trace.timeouts);
        self.fallbacks += u64::from(trace.fallbacks);
        self.delay_ticks += trace.delay_ticks;
    }

    /// Record a query that never launched: the origin was crashed or
    /// already gone from the overlay. Not counted as issued.
    pub fn record_origin_down(&mut self) {
        self.origin_down += 1;
    }

    /// Mean retries per issued query.
    pub fn avg_retries(&self) -> f64 {
        if self.base.issued == 0 {
            return 0.0;
        }
        self.retries as f64 / self.base.issued as f64
    }
}

/// The paper's headline metric: percentage reduction in average hops of
/// the frequency-aware scheme relative to the frequency-oblivious one.
pub fn reduction_pct(aware_avg_hops: f64, oblivious_avg_hops: f64) -> f64 {
    if oblivious_avg_hops <= 0.0 {
        return 0.0;
    }
    (oblivious_avg_hops - aware_avg_hops) / oblivious_avg_hops * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_accumulator_matches_serial_query_metrics() {
        let outcomes = [
            (true, 3u32, 0u32),
            (true, 5, 1),
            (false, 2, 2),
            (true, 0, 0),
            (true, 200, 0),
        ];
        let mut serial = QueryMetrics::default();
        let mut left = HopAccumulator::new();
        let mut right = HopAccumulator::new();
        for (i, &(s, h, p)) in outcomes.iter().enumerate() {
            serial.record(s, h, p);
            if i < 2 {
                left.record(s, h, p);
            } else {
                right.record(s, h, p);
            }
        }
        left.merge(&right);
        assert_eq!(left.issued(), serial.issued);
        assert_eq!(left.into_metrics(), serial);
    }

    #[test]
    fn empty_hop_accumulator_converts_to_default_metrics() {
        assert_eq!(
            HopAccumulator::new().into_metrics(),
            QueryMetrics::default()
        );
    }

    #[test]
    fn record_accumulates() {
        let mut m = QueryMetrics::default();
        m.record(true, 3, 0);
        m.record(true, 5, 1);
        m.record(false, 2, 2);
        assert_eq!(m.issued, 3);
        assert_eq!(m.succeeded, 2);
        assert_eq!(m.failed, 1);
        assert_eq!(m.total_hops, 8);
        assert_eq!(m.failed_probes, 3);
        assert_eq!(m.avg_hops(), 4.0);
        assert!((m.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_and_quantiles() {
        let mut m = QueryMetrics::default();
        for hops in [1, 1, 2, 3, 10] {
            m.record(true, hops, 0);
        }
        assert_eq!(m.hop_histogram[1], 2);
        assert_eq!(m.hop_quantile(0.5), Some(2));
        assert_eq!(m.hop_quantile(1.0), Some(10));
        assert_eq!(m.hop_quantile(0.0), Some(1));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let m = QueryMetrics::default();
        assert_eq!(m.hop_quantile(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = QueryMetrics::default();
        a.record(true, 2, 0);
        let mut b = QueryMetrics::default();
        b.record(true, 4, 1);
        b.record(false, 0, 0);
        a.merge(&b);
        assert_eq!(a.issued, 3);
        assert_eq!(a.avg_hops(), 3.0);
        assert_eq!(a.hop_histogram[4], 1);
    }

    #[test]
    fn reduction_pct_matches_paper_definition() {
        assert!((reduction_pct(2.0, 4.0) - 50.0).abs() < 1e-12);
        assert!((reduction_pct(4.0, 4.0)).abs() < 1e-12);
        assert_eq!(reduction_pct(1.0, 0.0), 0.0, "guarded division");
    }
}
