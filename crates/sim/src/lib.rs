//! Deterministic discrete-event simulation and experiment harness for the
//! peercache reproduction.
//!
//! * [`engine`] — the `(time, seq)`-ordered future event list (fully
//!   reproducible given seeds).
//! * [`metrics`] — query-level statistics and the paper's
//!   %-hop-reduction metric.
//! * [`overlay`] — a bridge unifying the Chord and Pastry substrates and
//!   dispatching the frequency-aware / frequency-oblivious selections.
//! * [`bridge`] — the stable driver's frozen world (overlay, selections,
//!   seeded query stream) handed to the `peercache-node` event loop for
//!   the runtime-vs-sim differential.
//! * [`stable`] — the stable-mode driver (§VI: exact node popularities,
//!   no churn).
//! * [`sharded`] — the same driver re-homed into per-shard arenas with
//!   flat auxiliary slabs, streaming accumulators, and Space-Saving
//!   delta-driven incremental refreshes (bit-identical at any shard and
//!   thread count).
//! * [`scale`] — the virtual-arena engine for populations (10⁵–10⁶)
//!   the materialised substrates cannot hold.
//! * [`churn`] — the churn-mode driver (§VI-C: exponential alive/dead
//!   periods, periodic stabilization and auxiliary recomputation, paired
//!   schedules across strategies).
//! * [`refresh`] — the substrate-generic incremental refresh engine
//!   (§IV-C): retained per-node optimizers absorbing counter deltas, the
//!   churn driver's dirty-tracking recompute path, and the flat counter
//!   slab the scale-tier churn probe runs on.
//! * [`faults`] — the fault-matrix sweep over the deterministic
//!   fault-injection layer (loss × staleness × crash).
//! * [`experiments`] — one runner per figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod churn;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod metrics;
pub mod overlay;
pub mod refresh;
pub mod scale;
pub mod sharded;
pub mod stable;

pub use bridge::{QueryStream, RuntimeFixture};
pub use churn::{
    run_churn, run_churn_faulted, run_churn_once, run_churn_once_faulted, ChurnConfig,
    ChurnFaultReport, ChurnReport, RecomputeMode, Strategy,
};
pub use experiments::{fig3, fig4, fig5, fig6, render_table, FigureRow, Scale};
pub use faults::{fault_matrix, fault_matrix_multi, FaultMatrixCell, FaultMatrixConfig};
pub use metrics::{reduction_pct, FaultMetrics, HopAccumulator, QueryMetrics};
pub use overlay::{OverlayKind, QueryOutcome, SimOverlay};
pub use refresh::ChurnRecomputeBench;
pub use scale::{
    run_scale_churn, run_scale_stable, ScaleChurnConfig, ScaleChurnReport, ScaleChurnRound,
    ScaleConfig, ScaleReport,
};
pub use sharded::{run_stable_sharded, shard_count_for, ShardedOverlay};
pub use stable::{
    run_stable, run_stable_faulted, RankingMode, SelectionBench, StableConfig, StableFaultReport,
    StableReport,
};
