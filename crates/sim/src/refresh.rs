//! The substrate-generic incremental refresh engine (§IV-C: "when node
//! popularities change, the optimal auxiliary set can be maintained
//! incrementally").
//!
//! Both drivers that re-select auxiliary sets as observations accrue —
//! the sharded stable engine and the churn driver — share the same core
//! move: keep the [`PastryOptimizer`] a node's current selection was
//! solved with, diff the node's **new** candidate pool against the
//! **mirror** pool the trie currently encodes, apply only the delta
//! (`update_weight` / `insert` / `remove`, each `O(k·b)`), and re-select.
//! Every mutator fully recomputes the affected trie spine, so the trie
//! state stays a pure function of its leaf multiset and the re-selection
//! is bit-identical to a fresh full solve over the new pool — the
//! property the sharded and churn equivalence suites pin down.
//!
//! This module extracts that path out of `sharded.rs` into two layers:
//!
//! * [`RetainedPastry`] — one node's retained optimizer, mirror pool,
//!   and selection scratch. Substrate-generic over the trie family
//!   (Pastry and Tapestry); under churn the **core** set drifts too, so
//!   the delta extends to `remove_core`/`add_core` pairs.
//! * [`ChurnRefresh`] — the churn driver's per-node engine: `observe`
//!   marks a node dirty instead of materialising a snapshot, flips
//!   invalidate the flipped node's retained state (and bump a ring
//!   epoch for the rank-space substrate), and a recompute tick costs
//!   `O(dirty · k · b)`. Chord/SkipGraph selections fall back to the
//!   full solver but keep the clean-skip: an untouched node re-installs
//!   its cached selection without re-solving.
//!
//! [`CounterSlab`] is the scale-tier counterpart of the per-node
//! estimators: a flat fixed-stride Space-Saving slab whose footprint is
//! independent of query volume, for churn probes at `n = 10⁵` under the
//! CI bytes-per-node ceiling. [`ChurnRecomputeBench`] packages the
//! fig-4 operating point as a timed kernel pair
//! (`churn_recompute_full` vs `churn_recompute_incremental`) for
//! `perf_baseline`.

use peercache_core::pastry::PastryOptimizer;
use peercache_core::{Candidate, PastryProblem, SelectError, Selection};
use peercache_freq::{ExactCounter, FrequencyEstimator, FrequencySnapshot};
use peercache_id::{Id, IdSpace};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::ChurnConfig;
use crate::overlay::{OverlayKind, SelectScratch, SimOverlay};
use crate::stable::RankingMode;

/// The fixed per-node solve parameters of a trie-family refresh.
#[derive(Copy, Clone, Debug)]
pub(crate) struct PastryParams {
    /// The selecting node.
    pub node: Id,
    /// Digit width of the substrate.
    pub digit_bits: u8,
    /// Pointer budget `k`.
    pub k: usize,
    /// The validated identifier space.
    pub space: IdSpace,
}

/// One node's retained incremental solver: the trie-backed optimizer its
/// current selection was solved with, the mirror of the candidate pool
/// that trie encodes, and the selection scratch buffers. All state is
/// recycled across refreshes — at warmed capacity a delta refresh
/// allocates nothing.
pub(crate) struct RetainedPastry {
    opt: Option<PastryOptimizer>,
    /// Whether `opt`'s trie matches `mirror`. Cleared by
    /// [`invalidate`](Self::invalidate) and while a refresh is mid-delta,
    /// so an error (or an interrupted refresh) forces a full rebuild
    /// instead of diffing against a stale mirror.
    valid: bool,
    /// The candidate pool the trie currently encodes — the "old" side of
    /// the next delta diff.
    mirror: FrequencySnapshot,
    stack: Vec<(u32, u32)>,
    counts: Vec<u32>,
    selection: Selection,
}

impl RetainedPastry {
    /// An empty retained solver; the first refresh takes the full-solve
    /// path.
    pub(crate) fn new() -> Self {
        RetainedPastry {
            opt: None,
            valid: false,
            mirror: FrequencySnapshot::default(),
            stack: Vec::new(),
            counts: Vec::new(),
            selection: Selection {
                aux: Vec::new(),
                cost: 0.0,
            },
        }
    }

    /// Drop the retained trie state (keeping the allocations): the next
    /// refresh rebuilds from scratch. Called when the owning node flips
    /// — a departed node's observations restart against a fresh routing
    /// state when it rejoins.
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
        self.mirror.refill_from_pairs(std::iter::empty());
    }

    /// Refresh the selection against the node's new candidate `pool`
    /// (already excluding the node itself and its core neighbors).
    ///
    /// With a valid retained optimizer the refresh is the delta path:
    /// `remove_core` for departed core neighbors, a sorted two-pointer
    /// diff of `mirror` vs `pool` applied as
    /// `update_weight`/`remove`/`insert`, then `add_core` for new core
    /// neighbors — `O(Δ·k·b)` total. Otherwise (first refresh, or after
    /// [`invalidate`](Self::invalidate)) a fresh problem over `pool` and
    /// `core_now` is solved, which the delta path is bit-identical to.
    ///
    /// On success `pool` is copied into the mirror and the selected
    /// auxiliary set is returned.
    ///
    /// # Errors
    /// Propagates [`SelectError`] from the solver. The retained state is
    /// marked invalid first, so a subsequent refresh rebuilds instead of
    /// diffing against a half-applied delta.
    pub(crate) fn refresh(
        &mut self,
        pool: &mut FrequencySnapshot,
        params: &PastryParams,
        core_now: &[Id],
        core_removed: &[Id],
        core_added: &[Id],
    ) -> Result<&[Id], SelectError> {
        let opt = if self.valid && self.opt.is_some() {
            self.valid = false; // poisoned until the delta fully applies
            let Some(opt) = self.opt.as_mut() else {
                unreachable!("checked is_some above");
            };
            for &id in core_removed {
                opt.remove_core(id)?;
            }
            // Sorted-merge diff: snapshots are ordered by id. Core moves
            // are ordered around the pool diff so a peer moving between
            // the pool and the core set never collides with itself:
            // departed core leaves are gone before the pool diff can
            // re-insert them as candidates, and candidates the pool diff
            // removed are gone before `add_core` re-adds them as core.
            let mut old = self.mirror.iter().peekable();
            let mut new = pool.iter().peekable();
            loop {
                match (old.peek().copied(), new.peek().copied()) {
                    (Some((oid, ow)), Some((nid, nw))) if oid == nid => {
                        old.next();
                        new.next();
                        if ow.to_bits() != nw.to_bits() {
                            opt.update_weight(nid, nw)?;
                        }
                    }
                    (Some((oid, _)), Some((nid, _))) if oid < nid => {
                        old.next();
                        opt.remove(oid)?;
                    }
                    (Some(_), Some((nid, nw))) => {
                        new.next();
                        opt.insert(Candidate::new(nid, nw))?;
                    }
                    (Some((oid, _)), None) => {
                        old.next();
                        opt.remove(oid)?;
                    }
                    (None, Some((nid, nw))) => {
                        new.next();
                        opt.insert(Candidate::new(nid, nw))?;
                    }
                    (None, None) => break,
                }
            }
            for &id in core_added {
                opt.add_core(id)?;
            }
            opt
        } else {
            let candidates = pool.iter().map(|(id, w)| Candidate::new(id, w)).collect();
            let problem = PastryProblem::new(
                params.space,
                params.digit_bits,
                params.node,
                core_now.to_vec(),
                candidates,
                params.k,
            )?;
            match self.opt.as_mut() {
                Some(opt) => {
                    opt.rebuild(&problem)?;
                }
                None => {
                    self.opt = Some(PastryOptimizer::new(&problem)?);
                }
            }
            let Some(opt) = self.opt.as_mut() else {
                unreachable!("installed above");
            };
            opt
        };
        opt.selection_into(
            params.k,
            &mut self.stack,
            &mut self.counts,
            &mut self.selection,
        )?;
        // Copy (never swap) the pool into the mirror: a swap would
        // rotate buffers between nodes of different pool sizes through
        // the caller's scratch, so capacities chase the largest node for
        // many ticks instead of converging after one — and the
        // steady-state tick is held to zero allocator calls.
        self.mirror.refill_filtered(pool, |_| true);
        self.valid = true;
        Ok(&self.selection.aux)
    }
}

/// Sorted two-pointer set difference: fills `removed` with ids in `old`
/// but not `new`, and `added` with ids in `new` but not `old`. Both
/// inputs must be sorted; outputs are cleared first.
fn diff_sorted(old: &[Id], new: &[Id], removed: &mut Vec<Id>, added: &mut Vec<Id>) {
    removed.clear();
    added.clear();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                removed.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j]);
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
}

/// One node's engine-side state: the retained solver, the inputs its
/// cached selection was computed from, and the dirty flag.
struct NodeState {
    retained: RetainedPastry,
    /// Sorted core set the cached selection was solved against.
    core_mirror: Vec<Id>,
    /// The cached **unfiltered** solver output. Installation re-applies
    /// the substrate's live-entry filter every tick, exactly like the
    /// full path's `set_aux`, so liveness drift between ticks installs
    /// identically whether the selection was re-solved or cached.
    aux: Vec<Id>,
    has_selection: bool,
    dirty: bool,
    /// The global ring epoch the cached selection was computed at —
    /// consulted only for the rank-space substrate, whose selection
    /// reads the whole live ring.
    ring_epoch: u64,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            retained: RetainedPastry::new(),
            core_mirror: Vec::new(),
            aux: Vec::new(),
            has_selection: false,
            dirty: false,
            ring_epoch: 0,
        }
    }
}

/// The churn driver's incremental aux-set engine (§IV-C under §VI-C's
/// churn schedule): each live node retains its optimizer across
/// recompute ticks; observations mark nodes dirty; churn events
/// invalidate exactly the state they touch. A recompute tick then costs
/// `O(dirty · k · b)` instead of a fresh snapshot + full solve per node,
/// while producing bit-identical selections (the differential suite
/// replays full vs incremental runs).
pub(crate) struct ChurnRefresh {
    kind: OverlayKind,
    space: IdSpace,
    k: usize,
    nodes: Vec<NodeState>,
    /// Bumped on every actual membership flip. Selections on the
    /// rank-space substrate (SkipGraph) depend on the whole live ring,
    /// so a cached selection there is reusable only within one epoch.
    ring_epoch: u64,
    // Shared scratch, recycled across nodes and ticks.
    snap: FrequencySnapshot,
    pool: FrequencySnapshot,
    core_buf: Vec<Id>,
    core_sorted: Vec<Id>,
    core_removed: Vec<Id>,
    core_added: Vec<Id>,
    scratch: SelectScratch,
}

impl ChurnRefresh {
    /// An engine for `nodes` slots over `overlay`'s substrate with
    /// pointer budget `k`.
    pub(crate) fn new(overlay: &SimOverlay, k: usize, nodes: usize) -> Self {
        ChurnRefresh {
            kind: overlay.kind(),
            space: overlay.space(),
            k,
            nodes: (0..nodes).map(|_| NodeState::new()).collect(),
            ring_epoch: 0,
            snap: FrequencySnapshot::default(),
            pool: FrequencySnapshot::default(),
            core_buf: Vec::new(),
            core_sorted: Vec::new(),
            core_removed: Vec::new(),
            core_added: Vec::new(),
            scratch: SelectScratch::new(),
        }
    }

    /// Mark `idx` dirty: its counter saw a new observation, so its
    /// cached selection may be stale. The counter delta itself is read
    /// at the next recompute tick — nothing is snapshotted here.
    pub(crate) fn mark_observed(&mut self, idx: usize) {
        self.nodes[idx].dirty = true;
    }

    /// A membership flip happened (either direction): drop the flipped
    /// node's retained state — it re-solves from its surviving counter
    /// weights at its next recompute tick — and bump the ring epoch for
    /// the rank-space substrate.
    pub(crate) fn on_flip(&mut self, idx: usize) {
        self.ring_epoch += 1;
        let st = &mut self.nodes[idx];
        st.retained.invalidate();
        st.has_selection = false;
    }

    /// Recompute the frequency-aware selection of `node` (slot `idx`)
    /// from its counter, reusing the retained state where the inputs
    /// are unchanged. Returns the **unfiltered** selection to install
    /// (through the substrate's live-entry filter), or `None` when the
    /// counter is empty or the solver rejects the inputs — the exact
    /// skip conditions of the full-recompute path.
    pub(crate) fn recompute_aware(
        &mut self,
        overlay: &SimOverlay,
        idx: usize,
        node: Id,
        counter: &ExactCounter,
    ) -> Option<&[Id]> {
        if counter.distinct_peers() == 0 {
            // The full path skips on an empty snapshot; counters only
            // ever hold positive counts, so the two tests agree.
            return None;
        }
        overlay.core_neighbors_into(node, &mut self.core_buf);
        self.core_sorted.clear();
        self.core_sorted.extend_from_slice(&self.core_buf);
        self.core_sorted.sort_unstable();
        let k = self.k;
        let kind = self.kind;
        let space = self.space;
        let epoch = self.ring_epoch;
        // Clean skip: the selection is a pure function of (snapshot,
        // core, k) — plus the live ring for the rank-space substrate —
        // so unchanged inputs mean the cached solver output *is* what a
        // re-solve would produce. (Single borrow-returning exit at the
        // bottom: an early `return Some(&st.aux)` would pin the borrow
        // across the recompute under NLL.)
        let clean = {
            let st = &self.nodes[idx];
            let ring_ok = !matches!(kind, OverlayKind::SkipGraph) || st.ring_epoch == epoch;
            st.has_selection && !st.dirty && ring_ok && self.core_sorted == st.core_mirror
        };
        if !clean && !self.recompute_dirty(overlay, idx, node, counter, k, kind, space, epoch) {
            return None;
        }
        Some(&self.nodes[idx].aux)
    }

    /// The dirty half of [`recompute_aware`](Self::recompute_aware):
    /// re-solve (incrementally where the substrate supports it) and
    /// refresh the cached state. Returns `false` when the solver
    /// rejected the inputs — the caller installs nothing, like the full
    /// path's `if let Ok`.
    #[allow(clippy::too_many_arguments)]
    fn recompute_dirty(
        &mut self,
        overlay: &SimOverlay,
        idx: usize,
        node: Id,
        counter: &ExactCounter,
        k: usize,
        kind: OverlayKind,
        space: IdSpace,
        epoch: u64,
    ) -> bool {
        counter.snapshot_into(&mut self.snap);
        match kind {
            OverlayKind::Pastry { digit_bits, .. } | OverlayKind::Tapestry { digit_bits } => {
                let Self {
                    nodes,
                    snap,
                    pool,
                    core_buf,
                    core_sorted,
                    core_removed,
                    core_added,
                    ..
                } = self;
                let st = &mut nodes[idx];
                // The candidate pool: the raw snapshot minus the node
                // itself and its core set — entry-for-entry what the
                // full path's `without` produces.
                pool.refill_filtered(snap, |p| {
                    p != node && core_sorted.binary_search(&p).is_err()
                });
                diff_sorted(&st.core_mirror, core_sorted, core_removed, core_added);
                let params = PastryParams {
                    node,
                    digit_bits,
                    k,
                    space,
                };
                match st
                    .retained
                    .refresh(pool, &params, core_buf, core_removed, core_added)
                {
                    Ok(aux) => {
                        st.aux.clear();
                        st.aux.extend_from_slice(aux);
                    }
                    Err(_) => {
                        // The full path installs nothing on a solver
                        // error (`if let Ok`); mirror that, and force a
                        // rebuild next tick — the retained state may
                        // hold a half-applied delta.
                        st.retained.invalidate();
                        st.has_selection = false;
                        return false;
                    }
                }
            }
            OverlayKind::Chord | OverlayKind::SkipGraph => {
                // No incremental solver for the ring DP (the fallback
                // the sharded engine takes too): re-solve from the raw
                // snapshot. The clean skip above still spares untouched
                // nodes the solve.
                match overlay.select_aware_into(node, &self.snap, k, &mut self.scratch) {
                    Ok(sel) => {
                        let st = &mut self.nodes[idx];
                        st.aux.clear();
                        st.aux.extend_from_slice(&sel.aux);
                    }
                    Err(_) => {
                        self.nodes[idx].has_selection = false;
                        return false;
                    }
                }
            }
        }
        let st = &mut self.nodes[idx];
        st.dirty = false;
        st.has_selection = true;
        st.ring_epoch = epoch;
        // Copy, never swap: swapping would rotate the scratch buffer
        // through mirrors of different core-set sizes, so the largest
        // nodes keep receiving under-sized buffers and the steady-state
        // tick never reaches zero allocator calls.
        st.core_mirror.clear();
        st.core_mirror.extend_from_slice(&self.core_sorted);
        true
    }
}

/// A flat, fixed-stride Space-Saving counter slab: slot `i`'s monitored
/// entries live at `entries[i·stride .. i·stride + lens[i]]`. The
/// scale-tier counterpart of the per-node estimators — footprint
/// `stride · 24 + 1` bytes per slot, fixed at construction and
/// independent of query volume, so a churn probe at `n = 10⁵` stays
/// under the CI bytes-per-node ceiling. Updates are `O(stride)` linear
/// scans with the same deterministic eviction rule as
/// [`SpaceSaving`](peercache_freq::SpaceSaving): the minimum-count
/// entry, smallest id first, inherits its count.
pub(crate) struct CounterSlab {
    stride: usize,
    lens: Vec<u8>,
    entries: Vec<(Id, u32)>,
}

impl CounterSlab {
    /// A slab of `count` slots monitoring at most `stride` peers each.
    /// `stride` is clamped to `[1, 255]` (lengths are stored as bytes).
    pub(crate) fn new(stride: usize, count: usize) -> Self {
        let stride = stride.clamp(1, 255);
        CounterSlab {
            stride,
            lens: vec![0; count],
            entries: vec![(Id::new(0), 0); stride * count],
        }
    }

    /// Record one access to `peer` in `slot`'s segment.
    pub(crate) fn observe(&mut self, slot: usize, peer: Id) {
        let base = slot * self.stride;
        let len = usize::from(self.lens[slot]);
        let seg = &mut self.entries[base..base + self.stride];
        if let Some(entry) = seg[..len].iter_mut().find(|e| e.0 == peer) {
            entry.1 += 1;
            return;
        }
        if len < self.stride {
            seg[len] = (peer, 1);
            self.lens[slot] += 1;
            return;
        }
        // Space-Saving eviction: the minimum count, smallest id first,
        // inherits its count — deterministic, like the BTree estimator.
        let mut victim = 0;
        for (i, e) in seg.iter().enumerate().skip(1) {
            let (vid, vcount) = seg[victim];
            if (e.1, e.0) < (vcount, vid) {
                victim = i;
            }
        }
        seg[victim] = (peer, seg[victim].1 + 1);
    }

    /// Freeze `slot`'s segment into `out` — zero-alloc at warmed
    /// capacity, like the estimators' `snapshot_into`.
    pub(crate) fn snapshot_into(&self, slot: usize, out: &mut FrequencySnapshot) {
        let base = slot * self.stride;
        let len = usize::from(self.lens[slot]);
        out.refill_from_counts(
            self.entries[base..base + len]
                .iter()
                .map(|&(p, c)| (p, u64::from(c))),
        );
    }

    /// Whether `slot` has observed anything.
    pub(crate) fn is_empty(&self, slot: usize) -> bool {
        self.lens[slot] == 0
    }

    /// The slab's fixed byte footprint (entries + lengths).
    pub(crate) fn footprint_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(Id, u32)>()
            + self.lens.len() * std::mem::size_of::<u8>()
    }
}

/// The `perf_baseline` kernel pair for the churn driver's recompute
/// tick at the fig-4 operating point: one simulated tick's worth of
/// observations (the paper's 4 qps × 62.5 s interval ≈ 250 queries)
/// applied to every node's counter, then an aware recompute pass over
/// the whole (fully live) population.
///
/// [`tick_full`](Self::tick_full) replays the pre-refactor arm —
/// snapshot, full solve, install, per node — and
/// [`tick_incremental`](Self::tick_incremental) drives the same pass
/// through [`ChurnRefresh`]: dirty nodes absorb their counter delta into
/// the retained optimizer, clean nodes re-install their cached
/// selection. Both return a fold of the installed selections, so the
/// differential unit test (and a paranoid bench harness) can assert the
/// two paths install identical sets tick for tick.
pub struct ChurnRecomputeBench {
    overlay: SimOverlay,
    node_ids: Vec<Id>,
    counters: Vec<ExactCounter>,
    engine: ChurnRefresh,
    scratch: SelectScratch,
    k: usize,
    /// Pre-generated `(observer slot, owner)` pairs for one tick.
    batch: Vec<(usize, Id)>,
}

impl ChurnRecomputeBench {
    /// Build the bench state from a churn configuration: the driver's
    /// exact topology/workload streams, every node alive, and one
    /// tick's observation batch of `queries_per_tick` routed queries
    /// (every node on a query's path observes the owner, §III).
    pub fn new(config: &ChurnConfig, queries_per_tick: usize) -> Self {
        let Ok(space) = IdSpace::new(config.bits) else {
            unreachable!("bench configs carry a valid id width");
        };
        let mut rng_topology = StdRng::seed_from_u64(config.seed);
        let mut rng_workload = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let mut rng_queries = StdRng::seed_from_u64(config.seed.wrapping_add(3));
        let node_ids = random_ids(space, config.nodes, &mut rng_topology);
        let catalog = ItemCatalog::random(space, config.items, &mut rng_topology);
        let Ok(zipf) = Zipf::new(config.items, config.alpha) else {
            unreachable!("bench configs carry a valid Zipf exponent");
        };
        let assignment = match config.ranking {
            RankingMode::Identical => RankingAssignment::identical(config.items, config.nodes),
            RankingMode::Pool(p) => {
                RankingAssignment::random_pool(config.items, config.nodes, p, &mut rng_workload)
            }
        };
        let workloads: Vec<NodeWorkload> = (0..config.nodes)
            .map(|idx| NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone()))
            .collect();
        let mut overlay = SimOverlay::build(config.kind, space, &node_ids, &mut rng_topology);
        let index_of: std::collections::BTreeMap<Id, usize> = node_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        // One tick's observations, derived by actually routing the
        // queries (all nodes live, so routing mutates nothing).
        let mut batch = Vec::with_capacity(queries_per_tick * 4);
        for _ in 0..queries_per_tick {
            let origin = rng_queries.gen_range(0..config.nodes);
            let item = workloads[origin].sample_item(&mut rng_queries);
            let key = catalog.key(item);
            let (outcome, path) = overlay.query_with_path(node_ids[origin], key);
            if outcome.success {
                if let Some(&owner) = path.last() {
                    for hop in &path {
                        if let Some(&i) = index_of.get(hop) {
                            batch.push((i, owner));
                        }
                    }
                }
            }
        }
        let engine = ChurnRefresh::new(&overlay, config.k, config.nodes);
        ChurnRecomputeBench {
            overlay,
            node_ids,
            counters: vec![ExactCounter::new(); config.nodes],
            engine,
            scratch: SelectScratch::new(),
            k: config.k,
            batch,
        }
    }

    fn fold(checksum: &mut u64, aux: &[Id]) {
        for id in aux {
            // Fold both halves of the 128-bit id — a checksum, so
            // mixing (not preserving) the value is the point.
            let v = id.value();
            let mixed = (v ^ (v >> 64)) & u128::from(u64::MAX);
            *checksum = checksum
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::try_from(mixed).unwrap_or(u64::MAX));
        }
    }

    /// One tick through the pre-refactor path: apply the observation
    /// batch, then snapshot + full solve + install for every node.
    /// Returns a fold of the installed selections.
    pub fn tick_full(&mut self) -> u64 {
        for &(i, owner) in &self.batch {
            self.counters[i].observe(owner);
        }
        let mut checksum = 0u64;
        for idx in 0..self.node_ids.len() {
            let node = self.node_ids[idx];
            let freqs = self.counters[idx].snapshot();
            if freqs.is_empty() {
                continue;
            }
            if let Ok(sel) = self
                .overlay
                .select_aware_into(node, &freqs, self.k, &mut self.scratch)
            {
                Self::fold(&mut checksum, &sel.aux);
                self.overlay.set_aux(node, sel.aux);
            }
        }
        checksum
    }

    /// The same tick through the incremental engine: observations mark
    /// dirty, dirty nodes delta-refresh their retained optimizer, clean
    /// nodes re-install their cached selection. Returns the same fold as
    /// [`tick_full`](Self::tick_full); in steady state the tick
    /// allocates nothing (the count-allocs gate enforces it).
    pub fn tick_incremental(&mut self) -> u64 {
        for &(i, owner) in &self.batch {
            self.counters[i].observe(owner);
            self.engine.mark_observed(i);
        }
        let mut checksum = 0u64;
        for idx in 0..self.node_ids.len() {
            let node = self.node_ids[idx];
            if let Some(aux) =
                self.engine
                    .recompute_aware(&self.overlay, idx, node, &self.counters[idx])
            {
                Self::fold(&mut checksum, aux);
                self.overlay.set_aux_from_slice(node, aux);
            }
        }
        checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_pastry::RoutingMode;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn diff_sorted_splits_membership_changes() {
        let old = [id(1), id(3), id(5), id(9)];
        let new = [id(2), id(3), id(9), id(12)];
        let (mut removed, mut added) = (vec![id(99)], vec![id(99)]);
        diff_sorted(&old, &new, &mut removed, &mut added);
        assert_eq!(removed, vec![id(1), id(5)]);
        assert_eq!(added, vec![id(2), id(12)]);
    }

    #[test]
    fn counter_slab_matches_space_saving_eviction() {
        use peercache_freq::SpaceSaving;
        let mut slab = CounterSlab::new(3, 2);
        let mut reference = SpaceSaving::new(3);
        // A stream that overflows the stride and forces evictions.
        for v in [7u128, 7, 7, 1, 2, 5, 5, 9, 9, 9, 1] {
            slab.observe(1, id(v));
            reference.observe(id(v));
        }
        let mut got = FrequencySnapshot::default();
        slab.snapshot_into(1, &mut got);
        assert_eq!(got, reference.snapshot());
        assert!(slab.is_empty(0), "slots are independent");
    }

    #[test]
    fn counter_slab_footprint_is_fixed() {
        let slab = CounterSlab::new(8, 100);
        let before = slab.footprint_bytes();
        let mut slab = slab;
        for v in 0..10_000u128 {
            slab.observe((v % 100) as usize, id(v));
        }
        assert_eq!(slab.footprint_bytes(), before);
    }

    fn parity_config(kind: OverlayKind, nodes: usize, seed: u64) -> ChurnConfig {
        let mut config = ChurnConfig::paper_defaults(nodes, seed);
        config.kind = kind;
        config
    }

    fn assert_tick_parity(kind: OverlayKind) {
        let config = parity_config(kind, 48, 11);
        let mut full = ChurnRecomputeBench::new(&config, 40);
        let mut incremental = ChurnRecomputeBench::new(&config, 40);
        for tick in 0..4 {
            let a = full.tick_full();
            let b = incremental.tick_incremental();
            assert_eq!(a, b, "tick {tick} of {kind:?} diverged");
        }
    }

    #[test]
    fn bench_paths_install_identical_selections_pastry() {
        assert_tick_parity(OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        });
    }

    #[test]
    fn bench_paths_install_identical_selections_tapestry() {
        assert_tick_parity(OverlayKind::Tapestry { digit_bits: 2 });
    }

    #[test]
    fn bench_paths_install_identical_selections_chord() {
        assert_tick_parity(OverlayKind::Chord);
    }

    #[test]
    fn bench_paths_install_identical_selections_skipgraph() {
        assert_tick_parity(OverlayKind::SkipGraph);
    }
}
