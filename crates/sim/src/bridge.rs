//! The sim → node-runtime bridge: the stable driver's exact world,
//! handed to an external event loop.
//!
//! `run_stable` builds a frozen overlay snapshot, both strategies'
//! auxiliary selections, and a seeded query stream, then routes every
//! query through the monolithic fault walks. The `peercache-node`
//! runtime routes the *same* queries hop by hop as `Lookup` messages
//! instead. For the differential between the two to be byte-exact, both
//! must consume identical inputs — so this module exposes the driver's
//! construction path (topology, selections, workloads) and replays its
//! query stream draw by draw ([`QueryStream`] consumes the
//! `seed + 2` RNG in exactly the order the measurement passes do).
//!
//! Nothing here re-derives state: [`RuntimeFixture`] wraps the very
//! `StableSetup` the driver uses, so a divergence between sim and
//! runtime can only come from the walk execution, never the inputs.

use peercache_id::Id;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::overlay::SimOverlay;
use crate::stable::{aux_lookup, build_stable, StableConfig, StableSetup};

/// The stable driver's world, frozen for an external runtime: overlay
/// snapshot, node ids, both strategies' auxiliary selections, and the
/// seeded query stream.
pub struct RuntimeFixture {
    config: StableConfig,
    setup: StableSetup,
}

impl RuntimeFixture {
    /// Build the fixture through the stable driver's own construction
    /// path (same RNG stream consumption, same selections).
    ///
    /// # Panics
    /// Panics on nonsensical configurations (zero nodes/items, α
    /// invalid) — these are experiment definitions, not runtime inputs.
    pub fn build(config: &StableConfig) -> Self {
        RuntimeFixture {
            config: config.clone(),
            setup: build_stable(config),
        }
    }

    /// The configuration the fixture was built from.
    pub fn config(&self) -> &StableConfig {
        &self.config
    }

    /// The frozen overlay snapshot.
    pub fn overlay(&self) -> &SimOverlay {
        &self.setup.overlay
    }

    /// Node ids in generation order (the query stream's origin index
    /// space).
    pub fn node_ids(&self) -> &[Id] {
        &self.setup.node_ids
    }

    /// The frequency-aware auxiliary set of `id` (empty for unknown ids),
    /// resolved exactly as the driver's aware measurement pass resolves
    /// it.
    pub fn aware_aux(&self, id: Id) -> &[Id] {
        aux_lookup(&self.setup.aux_index, Some(&self.setup.aware_sets), id)
    }

    /// The frequency-oblivious auxiliary set of `id` (empty for unknown
    /// ids).
    pub fn oblivious_aux(&self, id: Id) -> &[Id] {
        aux_lookup(&self.setup.aux_index, Some(&self.setup.oblivious_sets), id)
    }

    /// The aware selection as an owned `(node, aux)` table in generation
    /// order — the shape an external runtime installs into its own
    /// routing state.
    pub fn aware_table(&self) -> Vec<(Id, Vec<Id>)> {
        self.setup
            .node_ids
            .iter()
            .zip(&self.setup.aware_sets)
            .map(|(&n, aux)| (n, aux.clone()))
            .collect()
    }

    /// The oblivious selection as an owned `(node, aux)` table in
    /// generation order.
    pub fn oblivious_table(&self) -> Vec<(Id, Vec<Id>)> {
        self.setup
            .node_ids
            .iter()
            .zip(&self.setup.oblivious_sets)
            .map(|(&n, aux)| (n, aux.clone()))
            .collect()
    }

    /// The driver's query stream, replayed draw by draw: `queries`
    /// `(origin, key)` pairs from the `seed + 2` RNG, consuming it in
    /// exactly the measurement passes' order (origin index, then the
    /// origin's workload item).
    pub fn queries(&self) -> QueryStream<'_> {
        QueryStream {
            fixture: self,
            rng: StdRng::seed_from_u64(self.config.seed.wrapping_add(2)),
            remaining: self.config.queries,
        }
    }
}

/// Iterator over the stable driver's `(origin, key)` query sequence.
/// See [`RuntimeFixture::queries`].
pub struct QueryStream<'a> {
    fixture: &'a RuntimeFixture,
    rng: StdRng,
    remaining: usize,
}

impl Iterator for QueryStream<'_> {
    type Item = (Id, Id);

    fn next(&mut self) -> Option<(Id, Id)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let setup = &self.fixture.setup;
        let origin_idx = self.rng.gen_range(0..self.fixture.config.nodes);
        let workload = setup.per_node_workloads.get(origin_idx)?;
        let item = workload.sample_item(&mut self.rng);
        let origin = setup.node_ids.get(origin_idx).copied()?;
        Some((origin, setup.catalog.key(item)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayKind;

    fn tiny() -> StableConfig {
        let mut config = StableConfig::paper_defaults(OverlayKind::Chord, 32, 7);
        config.items = 16;
        config.queries = 50;
        config
    }

    #[test]
    fn query_stream_is_replayable_and_sized() {
        let fixture = RuntimeFixture::build(&tiny());
        let a: Vec<(Id, Id)> = fixture.queries().collect();
        let b: Vec<(Id, Id)> = fixture.queries().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(fixture.queries().size_hint(), (50, Some(50)));
        for &(origin, key) in &a {
            assert!(fixture.overlay().is_live(origin));
            assert!(fixture.overlay().true_owner(key).is_some());
        }
    }

    #[test]
    fn aux_accessors_match_the_side_tables() {
        let fixture = RuntimeFixture::build(&tiny());
        let table = fixture.aware_table();
        assert_eq!(table.len(), fixture.node_ids().len());
        for (node, aux) in &table {
            assert_eq!(fixture.aware_aux(*node), aux.as_slice());
        }
        // Unknown ids resolve to the empty set, never panic.
        let absent = Id::new(u128::MAX);
        assert!(fixture.aware_aux(absent).is_empty());
        assert!(fixture.oblivious_aux(absent).is_empty());
        assert_eq!(fixture.config().queries, 50);
    }
}
