//! A thin bridge unifying the Chord and Pastry substrates for the
//! experiment drivers, including the per-overlay dispatch of the
//! frequency-aware and frequency-oblivious selection algorithms.

use peercache_chord::{ChordConfig, ChordNetwork};
use peercache_core::{baseline, chord, pastry, Candidate, ChordProblem, PastryProblem};
use peercache_core::{SelectError, Selection};
use peercache_faults::{FaultPlan, FaultedRoute, RouteTrace, StepScratch, WalkStep};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_pastry::{PastryConfig, PastryNetwork, RoutingMode};
use peercache_skipgraph::{SkipGraphConfig, SkipGraphNetwork};
use peercache_tapestry::{TapestryConfig, TapestryNetwork};
use rand::Rng;

/// Which overlay an experiment runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OverlayKind {
    /// The Chord ring (paper §V / Figures 5–6).
    Chord,
    /// The Pastry overlay (paper §IV / Figures 3–4).
    Pastry {
        /// Digit width in bits.
        digit_bits: u8,
        /// Next-hop tie-breaking (locality-aware reproduces FreePastry).
        mode: RoutingMode,
    },
    /// The Tapestry overlay (§I: the Pastry technique transfers).
    Tapestry {
        /// Digit width in bits.
        digit_bits: u8,
    },
    /// The skip-graph overlay (§I: the Chord technique transfers, via
    /// rank space).
    SkipGraph,
}

/// The outcome of one routed query, overlay-agnostic.
#[derive(Copy, Clone, Debug)]
pub struct QueryOutcome {
    /// Reached the true owner?
    pub success: bool,
    /// Successful forwards taken.
    pub hops: u32,
    /// Dead-neighbor probes (timeouts).
    pub failed_probes: u32,
}

/// Reusable per-thread selection scratch: one solver workspace per family
/// (the fast Chord DP and the greedy Pastry trie), so a sweep over many
/// nodes reuses the DP tables and trie storage instead of reallocating
/// them per solve. One scratch per worker thread — the workspaces are not
/// shared.
pub struct SelectScratch {
    chord: chord::ChordWorkspace,
    pastry: pastry::PastryWorkspace,
}

impl SelectScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        SelectScratch {
            chord: chord::ChordWorkspace::new(),
            pastry: pastry::PastryWorkspace::new(),
        }
    }
}

impl Default for SelectScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A live overlay instance of any supported kind.
///
/// Cloning duplicates the entire substrate (routing tables included). The
/// stable driver no longer needs that: its three measurement passes route
/// read-only over **one** shared snapshot via
/// [`query_with_aux`](Self::query_with_aux), resolving auxiliary sets from
/// side tables instead of installing them per copy.
#[derive(Clone)]
pub enum SimOverlay {
    /// A Chord ring.
    Chord(ChordNetwork),
    /// A Pastry overlay.
    Pastry(PastryNetwork),
    /// A Tapestry overlay.
    Tapestry(TapestryNetwork),
    /// A skip graph.
    SkipGraph(SkipGraphNetwork),
}

impl SimOverlay {
    /// Build a stable overlay over `ids`.
    pub fn build<R: Rng + ?Sized>(
        kind: OverlayKind,
        space: IdSpace,
        ids: &[Id],
        rng: &mut R,
    ) -> Self {
        match kind {
            OverlayKind::Chord => {
                SimOverlay::Chord(ChordNetwork::build(ChordConfig::new(space), ids))
            }
            OverlayKind::Pastry { digit_bits, mode } => SimOverlay::Pastry(PastryNetwork::build(
                PastryConfig::new(space, digit_bits).with_mode(mode),
                ids,
                rng,
            )),
            OverlayKind::Tapestry { digit_bits } => SimOverlay::Tapestry(TapestryNetwork::build(
                TapestryConfig::new(space, digit_bits),
                ids,
            )),
            OverlayKind::SkipGraph => {
                SimOverlay::SkipGraph(SkipGraphNetwork::build(SkipGraphConfig::new(space), ids))
            }
        }
    }

    /// The overlay kind.
    pub fn kind(&self) -> OverlayKind {
        match self {
            SimOverlay::Chord(_) => OverlayKind::Chord,
            SimOverlay::Pastry(net) => OverlayKind::Pastry {
                digit_bits: net.config().digit_bits,
                mode: net.config().mode,
            },
            SimOverlay::Tapestry(net) => OverlayKind::Tapestry {
                digit_bits: net.config().digit_bits,
            },
            SimOverlay::SkipGraph(_) => OverlayKind::SkipGraph,
        }
    }

    /// Live node ids in ring order.
    pub fn live_ids(&self) -> Vec<Id> {
        match self {
            SimOverlay::Chord(net) => net.live_ids(),
            SimOverlay::Pastry(net) => net.live_ids(),
            SimOverlay::Tapestry(net) => net.live_ids(),
            SimOverlay::SkipGraph(net) => net.live_ids(),
        }
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: Id) -> bool {
        match self {
            SimOverlay::Chord(net) => net.is_live(id),
            SimOverlay::Pastry(net) => net.is_live(id),
            SimOverlay::Tapestry(net) => net.is_live(id),
            SimOverlay::SkipGraph(net) => net.is_live(id),
        }
    }

    /// The node owning `key` under the overlay's assignment rule.
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        match self {
            SimOverlay::Chord(net) => net.true_owner(key),
            SimOverlay::Pastry(net) => net.true_owner(key),
            SimOverlay::Tapestry(net) => net.true_owner(key),
            SimOverlay::SkipGraph(net) => net.true_owner(key),
        }
    }

    /// The core neighbor set `N_s` of `node`.
    pub fn core_neighbors(&self, node: Id) -> Vec<Id> {
        let mut out = Vec::new();
        self.core_neighbors_into(node, &mut out);
        out
    }

    /// [`core_neighbors`](Self::core_neighbors) into a caller-owned
    /// buffer — the arena-facing walk API. Sharded sweeps call this once
    /// per node with one scratch buffer per shard, so building selection
    /// inputs for a whole arena allocates nothing per node. An unknown
    /// `node` leaves `out` cleared.
    pub fn core_neighbors_into(&self, node: Id, out: &mut Vec<Id>) {
        out.clear();
        match self {
            SimOverlay::Chord(net) => {
                if let Some(n) = net.node(node) {
                    n.core_neighbors_into(out);
                }
            }
            SimOverlay::Pastry(net) => {
                if let Some(n) = net.node(node) {
                    n.core_neighbors_into(out);
                }
            }
            SimOverlay::Tapestry(net) => {
                if let Some(n) = net.node(node) {
                    n.core_neighbors_into(out);
                }
            }
            SimOverlay::SkipGraph(net) => {
                if let Some(n) = net.node(node) {
                    n.core_neighbors_into(out);
                }
            }
        }
    }

    /// Install the auxiliary set for `node` (no-op error if it died).
    pub fn set_aux(&mut self, node: Id, aux: Vec<Id>) -> bool {
        match self {
            SimOverlay::Chord(net) => net.set_aux(node, aux).is_ok(),
            SimOverlay::Pastry(net) => net.set_aux(node, aux).is_ok(),
            SimOverlay::Tapestry(net) => net.set_aux(node, aux).is_ok(),
            SimOverlay::SkipGraph(net) => net.set_aux(node, aux).is_ok(),
        }
    }

    /// [`set_aux`](Self::set_aux) from a borrowed slice, recycling the
    /// node's installed buffer — the refresh engine re-installs a
    /// retained selection every recompute tick, and at warmed capacity
    /// this installs without allocating. Same live-entry filter, same
    /// result.
    pub fn set_aux_from_slice(&mut self, node: Id, aux: &[Id]) -> bool {
        match self {
            SimOverlay::Chord(net) => net.set_aux_from_slice(node, aux).is_ok(),
            SimOverlay::Pastry(net) => net.set_aux_from_slice(node, aux).is_ok(),
            SimOverlay::Tapestry(net) => net.set_aux_from_slice(node, aux).is_ok(),
            SimOverlay::SkipGraph(net) => net.set_aux_from_slice(node, aux).is_ok(),
        }
    }

    /// Route one query from `from` for `key`.
    pub fn query(&mut self, from: Id, key: Id) -> QueryOutcome {
        self.query_with_path(from, key).0
    }

    /// Route one query, also returning the nodes it visited (used by the
    /// churn driver: every node that *sees* a query — origin or forwarder
    /// — learns the access, §III).
    ///
    /// Total: a dead origin yields a failed outcome with an empty path.
    /// Drivers only issue queries from live origins, so that arm is never
    /// taken in practice.
    pub fn query_with_path(&mut self, from: Id, key: Id) -> (QueryOutcome, Vec<Id>) {
        self.try_query_with_path(from, key).unwrap_or((
            QueryOutcome {
                success: false,
                hops: 0,
                failed_probes: 0,
            },
            Vec::new(),
        ))
    }

    /// Route one query **read-only**, resolving each node's auxiliary set
    /// through `aux_of` instead of the installed per-node state. This is
    /// the stable driver's hot path: all measurement passes share one
    /// immutable snapshot (no clone, no `set_aux`), so they can run on
    /// parallel threads over `&self`. Dead entries probed along the way
    /// are counted but not repaired; with every node live the walk is
    /// identical to `set_aux` + [`query`](Self::query).
    ///
    /// Total like [`query_with_path`](Self::query_with_path): a dead
    /// origin yields a failed outcome.
    pub fn query_with_aux<'a, F>(&'a self, from: Id, key: Id, aux_of: F) -> QueryOutcome
    where
        F: Fn(Id) -> &'a [Id],
    {
        let routed = match self {
            SimOverlay::Chord(net) => net
                .lookup_with_aux(from, key, aux_of)
                .ok()
                .map(|r| (r.is_success(), r.hops, r.failed_probes)),
            SimOverlay::Pastry(net) => net
                .route_with_aux(from, key, aux_of)
                .ok()
                .map(|r| (r.is_success(), r.hops, r.failed_probes)),
            SimOverlay::Tapestry(net) => net
                .route_with_aux(from, key, aux_of)
                .ok()
                .map(|r| (r.is_success(), r.hops, r.failed_probes)),
            SimOverlay::SkipGraph(net) => net
                .search_with_aux(from, key, aux_of)
                .ok()
                .map(|r| (r.is_success(), r.hops, r.failed_probes)),
        };
        match routed {
            Some((success, hops, failed_probes)) => QueryOutcome {
                success,
                hops,
                failed_probes,
            },
            None => QueryOutcome {
                success: false,
                hops: 0,
                failed_probes: 0,
            },
        }
    }

    /// Route one query **read-only** through the fault layer: every
    /// contact goes through `plan`'s probe channel and each node's
    /// auxiliary pointers are resolved via `aux_of` and `plan`'s
    /// staleness channel. With a transparent plan this is bit-identical
    /// to [`query_with_aux`](Self::query_with_aux) (the differential
    /// tests enforce it); with faults the walk degrades per the
    /// substrate's retry/fallback semantics and reports a full
    /// [`RouteTrace`](peercache_faults::RouteTrace).
    ///
    /// Total: a substrate-dead or plan-crashed origin yields
    /// [`LookupFailure::OriginDown`](peercache_faults::LookupFailure::OriginDown).
    pub fn query_with_aux_faults<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        plan: &FaultPlan,
    ) -> FaultedRoute
    where
        F: Fn(Id) -> &'a [Id],
    {
        let routed = match self {
            SimOverlay::Chord(net) => net.lookup_with_aux_faults(from, key, aux_of, plan).ok(),
            SimOverlay::Pastry(net) => net.route_with_aux_faults(from, key, aux_of, plan).ok(),
            SimOverlay::Tapestry(net) => net.route_with_aux_faults(from, key, aux_of, plan).ok(),
            SimOverlay::SkipGraph(net) => net.search_with_aux_faults(from, key, aux_of, plan).ok(),
        };
        routed.unwrap_or_else(|| FaultedRoute::origin_down(from))
    }

    /// One arrival of [`query_with_aux_faults`](Self::query_with_aux_faults):
    /// the decision the substrate makes at `current` for `key`, through
    /// the same per-hop step functions the monolithic walks drive. The
    /// `peercache-node` event loop delivers one arrival per `Lookup`
    /// message; because every fault decision in `plan` is a pure hash,
    /// the resulting probe sequence — and trace — is bit-identical to
    /// the monolithic walk's.
    ///
    /// The caller owns the origin checks (substrate-dead or plan-crashed
    /// origin → `OriginDown`) and the hop accounting on
    /// [`WalkStep::Forward`] (`trace.hops += 1`, `trace.path.push`).
    /// `true_owner` is [`true_owner`](Self::true_owner) computed once per
    /// walk.
    #[allow(clippy::too_many_arguments)]
    pub fn query_step_faults<'a, F>(
        &'a self,
        current: Id,
        key: Id,
        true_owner: Id,
        aux_of: F,
        plan: &FaultPlan,
        trace: &mut RouteTrace,
        scratch: &mut StepScratch,
    ) -> WalkStep
    where
        F: Fn(Id) -> &'a [Id],
    {
        match self {
            SimOverlay::Chord(net) => {
                net.lookup_step_faults(current, key, true_owner, aux_of, plan, trace, scratch)
            }
            SimOverlay::Pastry(net) => {
                net.route_step_faults(current, key, true_owner, aux_of, plan, trace, scratch)
            }
            SimOverlay::Tapestry(net) => {
                net.route_step_faults(current, key, true_owner, aux_of, plan, trace, scratch)
            }
            SimOverlay::SkipGraph(net) => {
                net.search_step_faults(current, key, true_owner, aux_of, plan, trace, scratch)
            }
        }
    }

    /// [`query_with_aux_faults`](Self::query_with_aux_faults) over the
    /// **installed** per-node auxiliary sets — the churn driver's route
    /// path, where `set_aux` state is live and there is no side table.
    pub fn query_faulted(&self, from: Id, key: Id, plan: &FaultPlan) -> FaultedRoute {
        match self {
            SimOverlay::Chord(net) => self.query_with_aux_faults(
                from,
                key,
                |id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice()),
                plan,
            ),
            SimOverlay::Pastry(net) => self.query_with_aux_faults(
                from,
                key,
                |id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice()),
                plan,
            ),
            SimOverlay::Tapestry(net) => self.query_with_aux_faults(
                from,
                key,
                |id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice()),
                plan,
            ),
            SimOverlay::SkipGraph(net) => self.query_with_aux_faults(
                from,
                key,
                |id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice()),
                plan,
            ),
        }
    }

    /// Evict `dead` from `node`'s routing structures — how a driver
    /// applies a fault walk's `dead_probed` pairs (the read-only stand-in
    /// for the mutating walks' in-route `forget`).
    pub fn forget_entry(&mut self, node: Id, dead: Id) {
        match self {
            SimOverlay::Chord(net) => net.forget_neighbor(node, dead),
            SimOverlay::Pastry(net) => net.forget_neighbor(node, dead),
            SimOverlay::Tapestry(net) => net.forget_neighbor(node, dead),
            SimOverlay::SkipGraph(net) => net.forget_neighbor(node, dead),
        }
    }

    /// Fallible query routing: `None` when `from` is not live. All the
    /// overlay-specific result shapes collapse into one outcome here.
    fn try_query_with_path(&mut self, from: Id, key: Id) -> Option<(QueryOutcome, Vec<Id>)> {
        let (success, hops, failed_probes, path) = match self {
            SimOverlay::Chord(net) => {
                let res = net.lookup(from, key).ok()?;
                (res.is_success(), res.hops, res.failed_probes, res.path)
            }
            SimOverlay::Pastry(net) => {
                let res = net.route(from, key).ok()?;
                (res.is_success(), res.hops, res.failed_probes, res.path)
            }
            SimOverlay::Tapestry(net) => {
                let res = net.route(from, key).ok()?;
                (res.is_success(), res.hops, res.failed_probes, res.path)
            }
            SimOverlay::SkipGraph(net) => {
                let res = net.search(from, key).ok()?;
                (res.is_success(), res.hops, res.failed_probes, res.path)
            }
        };
        Some((
            QueryOutcome {
                success,
                hops,
                failed_probes,
            },
            path,
        ))
    }

    /// The validated identifier space the overlay was built over —
    /// total: every constructed network carries one, so callers holding
    /// an overlay never need to re-validate a bit width.
    pub(crate) fn space(&self) -> IdSpace {
        match self {
            SimOverlay::Chord(net) => net.config().space,
            SimOverlay::Pastry(net) => net.config().space,
            SimOverlay::Tapestry(net) => net.config().space,
            SimOverlay::SkipGraph(net) => net.config().space,
        }
    }

    /// Map a node to its rank offset from `source` on the key ring (the
    /// geometry skip-graph level links live in), as an id of a compact
    /// rank space.
    fn rank_id(ring: &[Id], source: Id, w: Id) -> Id {
        let n = ring.len();
        // Callers pass only live ids, which are exactly the members of
        // the sorted ring; a miss is unreachable, and rank 0 keeps the
        // arithmetic total.
        let rank_of = |x: Id| ring.binary_search(&x).unwrap_or(0);
        Id::new(((rank_of(w) + n - rank_of(source)) % n) as u128)
    }

    fn candidates_for(&self, node: Id, frequencies: &FrequencySnapshot) -> Vec<Candidate> {
        let core = self.core_neighbors(node);
        frequencies
            .without(core.into_iter().chain(std::iter::once(node)))
            .iter()
            .map(|(id, weight)| Candidate::new(id, weight))
            .collect()
    }

    /// Run the paper's optimal selection for `node` over the observed
    /// `frequencies` (entries for the node itself or its core neighbors
    /// are filtered out automatically).
    ///
    /// One-shot wrapper over [`select_aware_into`](Self::select_aware_into)
    /// with a throwaway scratch.
    ///
    /// # Errors
    /// Propagates [`SelectError`] from the solver (malformed inputs; QoS
    /// is not used by the experiment drivers).
    pub fn select_aware(
        &self,
        node: Id,
        frequencies: &FrequencySnapshot,
        k: usize,
    ) -> Result<Selection, SelectError> {
        let mut scratch = SelectScratch::new();
        self.select_aware_into(node, frequencies, k, &mut scratch)
    }

    /// [`select_aware`](Self::select_aware) through a reusable
    /// [`SelectScratch`]: the solver DP tables, trie storage, and scratch
    /// buffers live in `scratch` and are reused across calls, so a sweep
    /// over many nodes allocates per-solve only for the returned
    /// `Selection` and the candidate pool.
    ///
    /// # Errors
    /// Propagates [`SelectError`] from the solver.
    pub fn select_aware_into(
        &self,
        node: Id,
        frequencies: &FrequencySnapshot,
        k: usize,
        scratch: &mut SelectScratch,
    ) -> Result<Selection, SelectError> {
        let candidates = self.candidates_for(node, frequencies);
        let core = self.core_neighbors(node);
        match self.kind() {
            OverlayKind::Chord => {
                let problem = ChordProblem::new(self.space(), node, core, candidates, k)?;
                Ok(scratch.chord.solve_into(&problem)?.clone())
            }
            OverlayKind::Pastry { digit_bits, .. } | OverlayKind::Tapestry { digit_bits } => {
                let problem =
                    PastryProblem::new(self.space(), digit_bits, node, core, candidates, k)?;
                Ok(scratch.pastry.solve_into(&problem)?.clone())
            }
            OverlayKind::SkipGraph => {
                // §I transfer: run the Chord optimiser in rank space.
                let ring = self.live_ids(); // sorted
                let n = ring.len();
                // At most usize::BITS + 1 = 65, well within u8.
                #[allow(clippy::cast_possible_truncation)]
                let rank_bits = (usize::BITS - n.leading_zeros() + 1) as u8;
                let rank_space = IdSpace::new(rank_bits).map_err(|e| {
                    SelectError::InvalidProblem(format!("rank space of {rank_bits} bits: {e}"))
                })?;
                let cands: Vec<Candidate> = candidates
                    .into_iter()
                    .filter(|c| self.is_live(c.id))
                    .map(|c| Candidate {
                        id: Self::rank_id(&ring, node, c.id),
                        weight: c.weight,
                        max_hops: c.max_hops,
                    })
                    .collect();
                let core_ranks: Vec<Id> = core
                    .iter()
                    .filter(|&&c| self.is_live(c))
                    .map(|&c| Self::rank_id(&ring, node, c))
                    .collect();
                let problem = ChordProblem::new(rank_space, Id::new(0), core_ranks, cands, k)?;
                let sel = scratch.chord.solve_into(&problem)?;
                let my_rank = ring.binary_search(&node).map_err(|_| {
                    SelectError::InvalidProblem(format!("selecting node {node} is not live"))
                })?;
                let aux: Vec<Id> = sel
                    .aux
                    .iter()
                    .map(|r| ring[(my_rank + r.value() as usize) % n])
                    .collect();
                Ok(Selection {
                    aux,
                    cost: sel.cost,
                })
            }
        }
    }

    /// Run the frequency-oblivious baseline selection for `node` over the
    /// same candidate pool.
    ///
    /// # Errors
    /// Propagates [`SelectError::InvalidProblem`] (construction only).
    pub(crate) fn select_oblivious<R: Rng + ?Sized>(
        &self,
        node: Id,
        frequencies: &FrequencySnapshot,
        k: usize,
        rng: &mut R,
    ) -> Result<Selection, SelectError> {
        let candidates = self.candidates_for(node, frequencies);
        let core = self.core_neighbors(node);
        match self.kind() {
            OverlayKind::Chord | OverlayKind::SkipGraph => {
                let candidates = candidates
                    .into_iter()
                    .filter(|c| self.is_live(c.id))
                    .collect();
                let problem = ChordProblem::new(self.space(), node, core, candidates, k)?;
                Ok(baseline::chord_oblivious(&problem, rng))
            }
            OverlayKind::Pastry { digit_bits, .. } | OverlayKind::Tapestry { digit_bits } => {
                let problem =
                    PastryProblem::new(self.space(), digit_bits, node, core, candidates, k)?;
                Ok(baseline::pastry_oblivious(&problem, rng))
            }
        }
    }

    /// Frequency-oblivious selection over the *whole live ring* (minus
    /// self and core): the paper's baseline picks random nodes per
    /// distance slice from the overlay, with no reference to who was
    /// queried (§VI-A). This is the churn-mode baseline; in stable mode
    /// the observed pool already equals the whole ring.
    ///
    /// # Errors
    /// Propagates [`SelectError::InvalidProblem`] (construction only).
    pub fn select_oblivious_uniform<R: Rng + ?Sized>(
        &self,
        node: Id,
        k: usize,
        rng: &mut R,
    ) -> Result<Selection, SelectError> {
        let uniform =
            FrequencySnapshot::from_pairs(self.live_ids().into_iter().map(|id| (id, 1.0)));
        self.select_oblivious(node, &uniform, k, rng)
    }

    // ---- churn operations (Chord experiments) ---------------------------

    /// Node crash. Returns false if it was not live.
    pub fn fail(&mut self, id: Id) -> bool {
        match self {
            SimOverlay::Chord(net) => net.fail(id).is_ok(),
            SimOverlay::Pastry(net) => net.fail(id).is_ok(),
            SimOverlay::Tapestry(net) => net.fail(id).is_ok(),
            SimOverlay::SkipGraph(net) => net.fail(id).is_ok(),
        }
    }

    /// Node (re-)join. Returns false on duplicates.
    ///
    /// L12 proof: only the Pastry arm draws (two join coordinates), but
    /// the matched variant is fixed for the overlay's lifetime — one
    /// `SimOverlay` is one substrate — so every call takes the same arm
    /// and the RNG stream cannot diverge between replays of the same
    /// configuration. Budgeted in lint.allow.
    pub fn join<R: Rng + ?Sized>(&mut self, id: Id, rng: &mut R) -> bool {
        match self {
            SimOverlay::Chord(net) => net.join(id).is_ok(),
            SimOverlay::Pastry(net) => net.join(id, (rng.gen(), rng.gen())).is_ok(),
            SimOverlay::Tapestry(net) => net.join(id).is_ok(),
            SimOverlay::SkipGraph(net) => net.join(id).is_ok(),
        }
    }

    /// One stabilization round for `id`. Returns false if not live.
    pub fn stabilize(&mut self, id: Id) -> bool {
        match self {
            SimOverlay::Chord(net) => net.stabilize(id).is_ok(),
            SimOverlay::Pastry(net) => {
                if net.is_live(id) {
                    net.refresh_from_truth(id);
                    true
                } else {
                    false
                }
            }
            SimOverlay::Tapestry(net) => {
                if net.is_live(id) {
                    net.refresh_from_truth(id);
                    true
                } else {
                    false
                }
            }
            SimOverlay::SkipGraph(net) => net.refresh_node(id).is_ok(),
        }
    }
}
