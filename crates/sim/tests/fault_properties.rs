//! Property battery for the fault-injection layer (ISSUE 5 satellite 1):
//! over arbitrary [`FaultConfig`]s, every fault-wrapped lookup on every
//! substrate terminates within the hop bound or returns a typed
//! [`LookupFailure`], never revisits a node, keeps its probe/retry
//! accounting consistent, and replays bit-identically. Cost comparisons
//! between the aware and oblivious strategies go through
//! `f64::total_cmp` (rule L8).

use std::collections::BTreeSet;

use peercache_faults::{FaultConfig, FaultPlan};
use peercache_id::{Id, IdSpace};
use peercache_pastry::RoutingMode;
use peercache_sim::stable::{run_stable_faulted, StableConfig};
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::random_ids;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 40;
const QUERIES: usize = 5;

const KINDS: [OverlayKind; 4] = [
    OverlayKind::Chord,
    OverlayKind::Pastry {
        digit_bits: 1,
        mode: RoutingMode::LocalityAware,
    },
    OverlayKind::Tapestry { digit_bits: 1 },
    OverlayKind::SkipGraph,
];

fn fault_configs() -> impl Strategy<Value = FaultConfig> {
    (
        (0.0..0.5f64, 0.0..0.3f64, 0.0..0.5f64, 0.0..0.5f64),
        (0u64..2048, 0u64..8),
        (0u32..4, 1u64..8),
    )
        .prop_map(
            |((crash, unresponsive, loss, stale), (age, jitter), (retries, backoff))| FaultConfig {
                crash_rate: crash,
                unresponsive_rate: unresponsive,
                loss_rate: loss,
                stale_rate: stale,
                staleness_age: age,
                delay_jitter: jitter,
                max_retries: retries,
                backoff_base: backoff,
            },
        )
}

/// A stable overlay of `NODES` live nodes with random auxiliary sets
/// installed, plus its membership.
fn build_overlay(kind: OverlayKind, seed: u64) -> (SimOverlay, Vec<Id>) {
    let space = IdSpace::new(32).expect("valid width");
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, NODES, &mut rng);
    let mut overlay = SimOverlay::build(kind, space, &ids, &mut rng);
    for &node in &ids {
        let aux: Vec<Id> = (0..4).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
        overlay.set_aux(node, aux);
    }
    (overlay, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_walk_terminates_typed_and_never_revisits(
        config in fault_configs(),
        seed in 0u64..(1 << 32),
    ) {
        for kind in KINDS {
            let (overlay, ids) = build_overlay(kind, seed);
            let plan = FaultPlan::new(seed ^ 0x5eed, &config);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(99));
            for _ in 0..QUERIES {
                let from = ids[rng.gen_range(0..ids.len())];
                let key = Id::new(u128::from(rng.gen::<u32>()));
                let route = overlay.query_faulted(from, key, &plan);
                let trace = &route.trace;
                // Terminates within the hop bound: the path starts at the
                // origin, advances once per hop, and never revisits.
                prop_assert_eq!(trace.path.len(), trace.hops as usize + 1);
                let distinct: BTreeSet<Id> = trace.path.iter().copied().collect();
                prop_assert_eq!(
                    distinct.len(), trace.path.len(),
                    "walk revisited a node on {:?}: {:?}", kind, trace.path
                );
                prop_assert!(trace.path.len() <= NODES);
                // Probe accounting: one attempt per probed target plus
                // the recorded retries, retries within the budget.
                prop_assert_eq!(
                    trace.probes as usize,
                    trace.probed.len() + trace.retries as usize
                );
                prop_assert!(
                    trace.retries as usize
                        <= trace.probed.len() * config.max_retries as usize
                );
                prop_assert_eq!(trace.dead_probed.len(), trace.timeouts as usize);
                // A claimed success really is the true owner; anything
                // else is one of the typed failures.
                if let Ok(end) = route.outcome {
                    prop_assert_eq!(Some(end), overlay.true_owner(key));
                    prop_assert_eq!(Some(&end), trace.path.last());
                }
            }
        }
    }

    #[test]
    fn replaying_the_same_plan_is_bit_identical(
        config in fault_configs(),
        seed in 0u64..(1 << 32),
    ) {
        for kind in KINDS {
            let (overlay, ids) = build_overlay(kind, seed);
            let plan = FaultPlan::new(seed ^ 0x5eed, &config);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
            for _ in 0..QUERIES {
                let from = ids[rng.gen_range(0..ids.len())];
                let key = Id::new(u128::from(rng.gen::<u32>()));
                let first = overlay.query_faulted(from, key, &plan);
                let second = overlay.query_faulted(from, key, &plan);
                prop_assert_eq!(first, second);
            }
        }
    }

    #[test]
    fn transparent_plans_on_live_overlays_always_succeed(
        seed in 0u64..(1 << 32),
    ) {
        for kind in KINDS {
            let (overlay, ids) = build_overlay(kind, seed);
            let plan = FaultPlan::transparent(seed);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(13));
            for _ in 0..QUERIES {
                let from = ids[rng.gen_range(0..ids.len())];
                let key = Id::new(u128::from(rng.gen::<u32>()));
                let route = overlay.query_faulted(from, key, &plan);
                prop_assert!(route.is_success(), "{:?}: {:?}", kind, route.outcome);
                prop_assert_eq!(route.trace.timeouts, 0);
                prop_assert_eq!(route.trace.retries, 0);
                prop_assert_eq!(route.trace.fallbacks, 0);
                prop_assert_eq!(route.trace.delay_ticks, 0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn reported_reduction_agrees_with_total_cmp_ordering(
        config in fault_configs(),
        seed in 0u64..(1 << 16),
    ) {
        let mut stable = StableConfig::paper_defaults(OverlayKind::Chord, 24, seed);
        stable.queries = 200;
        let report = run_stable_faulted(&stable, &config);
        let aware = report.aware.base.avg_hops();
        let oblivious = report.oblivious.base.avg_hops();
        prop_assume!(aware.is_finite() && oblivious.is_finite() && oblivious > 0.0);
        // The headline percentage must order the strategies exactly as
        // total_cmp orders their mean hops (rule L8: no ad-hoc f64
        // comparisons deciding winners).
        match aware.total_cmp(&oblivious) {
            std::cmp::Ordering::Less => prop_assert!(report.reduction_pct > 0.0),
            std::cmp::Ordering::Equal => prop_assert_eq!(report.reduction_pct, 0.0),
            std::cmp::Ordering::Greater => prop_assert!(report.reduction_pct < 0.0),
        }
    }
}
