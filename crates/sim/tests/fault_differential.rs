//! Differential battery (ISSUE 5 satellite 2): with an all-zeros
//! [`FaultPlan`] the fault-wrapped walks must be **bit-identical** to
//! the existing fault-free walks — same hops, same path, same probe
//! order, same outcome — across 64 seeds on all four substrates, both
//! on all-live overlays and on overlays with failed (substrate-dead)
//! nodes still referenced from routing tables.

use std::collections::BTreeMap;

use peercache_chord::{ChordConfig, ChordNetwork, LookupOutcome};
use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure};
use peercache_id::{Id, IdSpace};
use peercache_pastry::{PastryConfig, PastryNetwork, RoutingMode};
use peercache_skipgraph::{SearchOutcome, SkipGraphConfig, SkipGraphNetwork};
use peercache_tapestry::{TapestryConfig, TapestryNetwork};
use peercache_workload::random_ids;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 48;
const FAILURES: usize = 6;
const QUERIES: usize = 8;
const SEEDS: u64 = 64;

fn space() -> IdSpace {
    IdSpace::new(32).expect("valid width")
}

/// Random per-node auxiliary sets drawn over the full membership (so
/// after failures some pointers dangle, exercising the timeout path).
fn aux_tables(ids: &[Id], rng: &mut StdRng) -> BTreeMap<Id, Vec<Id>> {
    ids.iter()
        .map(|&node| {
            let aux: Vec<Id> = (0..4).map(|_| ids[rng.gen_range(0..ids.len())]).collect();
            (node, aux)
        })
        .collect()
}

/// The invariants every (legacy, faulted) pair must satisfy under a
/// transparent plan, given the legacy walk's components.
fn assert_trace_matches(
    label: &str,
    route: &FaultedRoute,
    hops: u32,
    failed_probes: u32,
    path: &[Id],
) {
    let trace = &route.trace;
    assert_eq!(trace.hops, hops, "{label}: hop count diverged");
    assert_eq!(trace.path, path, "{label}: visited path diverged");
    assert_eq!(
        trace.timeouts, failed_probes,
        "{label}: timeouts must equal legacy failed probes"
    );
    assert_eq!(
        trace.probes as usize,
        trace.probed.len(),
        "{label}: transparent plans send exactly one attempt per probe"
    );
    assert_eq!(trace.retries, 0, "{label}: no retries without loss");
    assert_eq!(trace.fallbacks, 0, "{label}: no fallbacks when transparent");
    assert_eq!(trace.delay_ticks, 0, "{label}: no jitter at zero rates");
    assert_eq!(
        trace.dead_probed.len(),
        failed_probes as usize,
        "{label}: every timeout yields one eviction pair"
    );
    if failed_probes == 0 {
        assert_eq!(
            trace.probed,
            &path[1..],
            "{label}: with no failures the probe order is the forward path"
        );
    }
}

fn check_chord(seed: u64, fail_some: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space(), NODES, &mut rng);
    let mut net = ChordNetwork::build(ChordConfig::new(space()), &ids);
    let aux = aux_tables(&ids, &mut rng);
    if fail_some {
        for i in 0..FAILURES {
            net.fail(ids[i * 7 % NODES]).ok();
        }
    }
    let live = net.live_ids();
    let plan = FaultPlan::transparent(seed);
    for _ in 0..QUERIES {
        let from = live[rng.gen_range(0..live.len())];
        let key = Id::new(u128::from(rng.gen::<u32>()));
        let aux_of = |id: Id| aux.get(&id).map_or(&[] as &[Id], Vec::as_slice);
        let legacy = net.lookup_with_aux(from, key, aux_of).expect("live origin");
        let route = net
            .lookup_with_aux_faults(from, key, aux_of, &plan)
            .expect("live origin");
        assert_trace_matches(
            "chord",
            &route,
            legacy.hops,
            legacy.failed_probes,
            &legacy.path,
        );
        match (&legacy.outcome, &route.outcome) {
            (LookupOutcome::Success, Ok(end)) => assert_eq!(Some(end), legacy.path.last()),
            (LookupOutcome::WrongOwner(a), Err(LookupFailure::WrongOwner(b))) => assert_eq!(a, b),
            (LookupOutcome::DeadEnd(a), Err(LookupFailure::DeadEnd(b))) => assert_eq!(a, b),
            (LookupOutcome::HopLimit, Err(LookupFailure::HopLimit)) => {}
            (l, f) => panic!("chord outcome diverged: legacy {l:?} vs faulted {f:?}"),
        }
    }
}

/// Pastry's (and Tapestry's) read-only `route_with_aux` treats a dead
/// next hop as a hard dead end — a snapshot cannot repair around it —
/// while the fault walk reproduces the **mutating** walk's
/// forget-and-retry. So the all-live case diffs against the read-only
/// walk (bit-identity on the stable-mode contract) and the dead-node
/// case diffs against `route()` on a per-query clone with the same
/// auxiliary sets installed (bit-identity with the churn contract).
fn check_pastry(seed: u64, fail_some: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space(), NODES, &mut rng);
    let config = PastryConfig::new(space(), 1).with_mode(RoutingMode::LocalityAware);
    let mut net = PastryNetwork::build(config, &ids, &mut rng);
    let aux = aux_tables(&ids, &mut rng);
    for (&node, aux_set) in &aux {
        net.set_aux(node, aux_set.clone()).expect("node is live");
    }
    if fail_some {
        for i in 0..FAILURES {
            net.fail(ids[i * 7 % NODES]).ok();
        }
    }
    let live = net.live_ids();
    let plan = FaultPlan::transparent(seed);
    for _ in 0..QUERIES {
        let from = live[rng.gen_range(0..live.len())];
        let key = Id::new(u128::from(rng.gen::<u32>()));
        let aux_of = |id: Id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice());
        let legacy = if fail_some {
            let mut mutating = net.clone();
            mutating.route(from, key).expect("live origin")
        } else {
            net.route_with_aux(from, key, aux_of).expect("live origin")
        };
        let route = net
            .route_with_aux_faults(from, key, aux_of, &plan)
            .expect("live origin");
        assert_trace_matches(
            "pastry",
            &route,
            legacy.hops,
            legacy.failed_probes,
            &legacy.path,
        );
        match (&legacy.outcome, &route.outcome) {
            (peercache_pastry::RouteOutcome::Success, Ok(end)) => {
                assert_eq!(Some(end), legacy.path.last());
            }
            (peercache_pastry::RouteOutcome::WrongOwner(a), Err(LookupFailure::WrongOwner(b))) => {
                assert_eq!(a, b);
            }
            (peercache_pastry::RouteOutcome::DeadEnd(a), Err(LookupFailure::DeadEnd(b))) => {
                assert_eq!(a, b);
            }
            (peercache_pastry::RouteOutcome::HopLimit, Err(LookupFailure::HopLimit)) => {}
            (l, f) => panic!("pastry outcome diverged: legacy {l:?} vs faulted {f:?}"),
        }
    }
}

/// See [`check_pastry`] for the two comparison regimes.
fn check_tapestry(seed: u64, fail_some: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space(), NODES, &mut rng);
    let mut net = TapestryNetwork::build(TapestryConfig::new(space(), 1), &ids);
    let aux = aux_tables(&ids, &mut rng);
    for (&node, aux_set) in &aux {
        net.set_aux(node, aux_set.clone()).expect("node is live");
    }
    if fail_some {
        for i in 0..FAILURES {
            net.fail(ids[i * 7 % NODES]).ok();
        }
    }
    let live = net.live_ids();
    let plan = FaultPlan::transparent(seed);
    for _ in 0..QUERIES {
        let from = live[rng.gen_range(0..live.len())];
        let key = Id::new(u128::from(rng.gen::<u32>()));
        let aux_of = |id: Id| net.node(id).map_or(&[] as &[Id], |n| n.aux.as_slice());
        let legacy = if fail_some {
            let mut mutating = net.clone();
            mutating.route(from, key).expect("live origin")
        } else {
            net.route_with_aux(from, key, aux_of).expect("live origin")
        };
        let route = net
            .route_with_aux_faults(from, key, aux_of, &plan)
            .expect("live origin");
        assert_trace_matches(
            "tapestry",
            &route,
            legacy.hops,
            legacy.failed_probes,
            &legacy.path,
        );
        match (&legacy.outcome, &route.outcome) {
            (peercache_tapestry::RouteOutcome::Success, Ok(end)) => {
                assert_eq!(Some(end), legacy.path.last());
            }
            (
                peercache_tapestry::RouteOutcome::WrongOwner(a),
                Err(LookupFailure::WrongOwner(b)),
            ) => assert_eq!(a, b),
            (peercache_tapestry::RouteOutcome::DeadEnd(a), Err(LookupFailure::DeadEnd(b))) => {
                assert_eq!(a, b);
            }
            (peercache_tapestry::RouteOutcome::HopLimit, Err(LookupFailure::HopLimit)) => {}
            (l, f) => panic!("tapestry outcome diverged: legacy {l:?} vs faulted {f:?}"),
        }
    }
}

fn check_skipgraph(seed: u64, fail_some: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space(), NODES, &mut rng);
    let mut net = SkipGraphNetwork::build(SkipGraphConfig::new(space()), &ids);
    let aux = aux_tables(&ids, &mut rng);
    if fail_some {
        for i in 0..FAILURES {
            net.fail(ids[i * 7 % NODES]).ok();
        }
    }
    let live = net.live_ids();
    let plan = FaultPlan::transparent(seed);
    for _ in 0..QUERIES {
        let from = live[rng.gen_range(0..live.len())];
        let key = Id::new(u128::from(rng.gen::<u32>()));
        let aux_of = |id: Id| aux.get(&id).map_or(&[] as &[Id], Vec::as_slice);
        let legacy = net.search_with_aux(from, key, aux_of).expect("live origin");
        let route = net
            .search_with_aux_faults(from, key, aux_of, &plan)
            .expect("live origin");
        assert_trace_matches(
            "skipgraph",
            &route,
            legacy.hops,
            legacy.failed_probes,
            &legacy.path,
        );
        match (&legacy.outcome, &route.outcome) {
            (SearchOutcome::Success, Ok(end)) => assert_eq!(Some(end), legacy.path.last()),
            (SearchOutcome::WrongOwner(a), Err(LookupFailure::WrongOwner(b))) => assert_eq!(a, b),
            (SearchOutcome::HopLimit, Err(LookupFailure::HopLimit)) => {}
            (l, f) => panic!("skipgraph outcome diverged: legacy {l:?} vs faulted {f:?}"),
        }
    }
}

#[test]
fn chord_transparent_walks_match_legacy_over_64_seeds() {
    for seed in 0..SEEDS {
        check_chord(seed, false);
        check_chord(seed, true);
    }
}

#[test]
fn pastry_transparent_walks_match_legacy_over_64_seeds() {
    for seed in 0..SEEDS {
        check_pastry(seed, false);
        check_pastry(seed, true);
    }
}

#[test]
fn tapestry_transparent_walks_match_legacy_over_64_seeds() {
    for seed in 0..SEEDS {
        check_tapestry(seed, false);
        check_tapestry(seed, true);
    }
}

#[test]
fn skipgraph_transparent_walks_match_legacy_over_64_seeds() {
    for seed in 0..SEEDS {
        check_skipgraph(seed, false);
        check_skipgraph(seed, true);
    }
}
