//! The sharded engine's bit-identity contract: a [`ShardedOverlay`]
//! driven by Space-Saving counter deltas must yield byte-identical
//! selections and reports to the monolithic driver across seeds, shard
//! counts {1, 4, 16}, and thread counts {1, 4} — and its incremental
//! optimizer refreshes must equal fresh full recomputes.

use peercache_par::with_threads;
use peercache_pastry::RoutingMode;
use peercache_sim::{
    run_stable, run_stable_sharded, OverlayKind, RankingMode, ShardedOverlay, StableConfig,
};
use proptest::prelude::*;

fn pastry_config(nodes: usize, seed: u64) -> StableConfig {
    let mut config = StableConfig::paper_defaults(
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
        nodes,
        seed,
    );
    config.items = 16;
    config.queries = 600;
    config.ranking = RankingMode::Identical;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline equivalence: same report and same per-node aware
    /// sets as the monolithic driver, at every shard × thread count.
    #[test]
    fn sharded_report_matches_monolithic(seed in 0u64..1000) {
        let config = pastry_config(64, seed);
        let monolithic = run_stable(&config);
        for shards in [1usize, 4, 16] {
            for threads in [1usize, 4] {
                let report = with_threads(threads, || run_stable_sharded(&config, shards));
                prop_assert_eq!(
                    &report, &monolithic,
                    "shards={} threads={}", shards, threads
                );
            }
        }
    }

    /// Delta-driven refreshes are pure functions of the observation
    /// multiset: a shard-16 engine refreshed incrementally (two rounds,
    /// the second diffing against retained optimizers) must match a
    /// shard-1 engine refreshed once at the end (fresh solves), at both
    /// thread counts — and the untouched oblivious slabs must keep the
    /// monolithic report reproducible afterwards.
    #[test]
    fn delta_refresh_equals_fresh_recompute(seed in 0u64..1000, obs_seed in 0u64..1000) {
        let config = pastry_config(48, seed);
        let mut fresh = ShardedOverlay::build(&config, 1);
        let mut incremental = ShardedOverlay::build(&config, 16);

        // A deterministic observation stream: (origin, owner) pairs
        // drawn from the population by index arithmetic.
        let ids: Vec<_> = fresh.node_ids().to_vec();
        let n = ids.len() as u64;
        let idx = |x: u64| usize::try_from(x % n).expect("population index fits");
        let pair = |i: u64| {
            let origin = ids[idx(obs_seed.wrapping_mul(31).wrapping_add(i * 7))];
            let owner = ids[idx(obs_seed.wrapping_mul(17).wrapping_add(i * 13))];
            (origin, owner)
        };

        // Round 1: first refresh builds the incremental optimizers.
        for i in 0..40 {
            let (origin, owner) = pair(i);
            fresh.observe(origin, owner);
            incremental.observe(origin, owner);
        }
        let refreshed = with_threads(4, || incremental.refresh_dirty());
        prop_assert!(refreshed > 0, "round 1 must touch nodes");

        // Round 2: the second refresh exercises the delta path
        // (update_weight/insert/remove against the retained solvers).
        for i in 40..80 {
            let (origin, owner) = pair(i);
            fresh.observe(origin, owner);
            incremental.observe(origin, owner);
        }
        with_threads(1, || incremental.refresh_dirty());
        // The fresh engine refreshes once, solving every touched node
        // from scratch over the full combined weights.
        fresh.refresh_dirty();

        for &id in &ids {
            prop_assert_eq!(
                incremental.aware_set(id),
                fresh.aware_set(id),
                "incremental refresh diverged at {}", id
            );
        }
    }
}

/// Chord takes the full-solve fallback inside the shard refresh; the
/// equivalence must hold there too.
#[test]
fn sharded_matches_monolithic_on_chord() {
    let mut config = StableConfig::paper_defaults(OverlayKind::Chord, 64, 9);
    config.items = 16;
    config.queries = 600;
    let monolithic = run_stable(&config);
    for shards in [1usize, 4] {
        let report = with_threads(4, || run_stable_sharded(&config, shards));
        assert_eq!(report, monolithic, "chord shards={shards}");
    }
}

/// With no observations there is nothing dirty: refresh is a no-op and
/// the slabs keep reproducing the monolithic report.
#[test]
fn refresh_without_observations_is_a_noop() {
    let config = pastry_config(64, 3);
    let mut engine = ShardedOverlay::build(&config, 4);
    assert_eq!(engine.refresh_dirty(), 0);
    assert_eq!(engine.report(), run_stable(&config));
}

/// Observing and refreshing must only move the *aware* slab of touched
/// nodes; the oblivious and core-only passes stay bound to the
/// monolithic results.
#[test]
fn refresh_leaves_oblivious_and_core_passes_intact() {
    let config = pastry_config(48, 21);
    let monolithic = run_stable(&config);
    let mut engine = ShardedOverlay::build(&config, 4);
    let ids: Vec<_> = engine.node_ids().to_vec();
    for i in 0..ids.len() {
        engine.observe(ids[i], ids[(i * 5 + 1) % ids.len()]);
    }
    assert_eq!(engine.refresh_dirty(), ids.len(), "every node refreshed");
    let report = engine.report();
    assert_eq!(report.oblivious, monolithic.oblivious);
    assert_eq!(report.core_only, monolithic.core_only);
}
