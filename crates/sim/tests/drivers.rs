//! End-to-end tests of the experiment drivers at toy scale: the paper's
//! qualitative claims must already show up.

use peercache_pastry::RoutingMode;
use peercache_sim::{
    run_churn_once, run_stable, ChurnConfig, OverlayKind, RankingMode, StableConfig, Strategy,
};

fn pastry_kind() -> OverlayKind {
    OverlayKind::Pastry {
        digit_bits: 1,
        mode: RoutingMode::LocalityAware,
    }
}

fn small_stable(kind: OverlayKind, seed: u64) -> StableConfig {
    let mut c = StableConfig::paper_defaults(kind, 96, seed);
    c.items = 64;
    c.queries = 6_000;
    c
}

#[test]
fn stable_chord_aware_beats_oblivious() {
    let report = run_stable(&small_stable(OverlayKind::Chord, 42));
    assert_eq!(report.aware.success_rate(), 1.0, "stable mode never fails");
    assert_eq!(report.oblivious.success_rate(), 1.0);
    assert!(
        report.reduction_pct > 10.0,
        "expected a solid reduction, got {:.1}% (aware {:.3} vs oblivious {:.3})",
        report.reduction_pct,
        report.aware.avg_hops(),
        report.oblivious.avg_hops()
    );
}

#[test]
fn stable_pastry_aware_beats_oblivious() {
    // Locality-aware routing blunts the per-pointer benefit (§VI-D), so
    // at toy scale the gap is smaller than Chord's; 5% is already far
    // outside seed noise here.
    let report = run_stable(&small_stable(pastry_kind(), 43));
    assert_eq!(report.aware.success_rate(), 1.0);
    assert!(
        report.reduction_pct > 5.0,
        "expected a solid reduction, got {:.1}%",
        report.reduction_pct
    );
    // Under greedy-prefix routing the same setup shows a larger gap.
    let greedy = run_stable(&small_stable(
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::GreedyPrefix,
        },
        43,
    ));
    assert!(
        greedy.reduction_pct > 10.0,
        "greedy-prefix reduction {:.1}%",
        greedy.reduction_pct
    );
}

#[test]
fn auxiliaries_beat_core_only() {
    let report = run_stable(&small_stable(OverlayKind::Chord, 44));
    assert!(report.aware.avg_hops() < report.core_only.avg_hops());
    assert!(report.oblivious.avg_hops() < report.core_only.avg_hops());
}

#[test]
fn stable_runs_are_deterministic() {
    let a = run_stable(&small_stable(OverlayKind::Chord, 45));
    let b = run_stable(&small_stable(OverlayKind::Chord, 45));
    assert_eq!(a.aware.total_hops, b.aware.total_hops);
    assert_eq!(a.oblivious.total_hops, b.oblivious.total_hops);
}

#[test]
fn higher_alpha_gives_larger_reduction() {
    let mut skewed = small_stable(OverlayKind::Chord, 46);
    skewed.alpha = 1.2;
    let mut flat = small_stable(OverlayKind::Chord, 46);
    flat.alpha = 0.3;
    let r_skewed = run_stable(&skewed);
    let r_flat = run_stable(&flat);
    assert!(
        r_skewed.reduction_pct > r_flat.reduction_pct,
        "skew {:.1}% vs flat {:.1}%",
        r_skewed.reduction_pct,
        r_flat.reduction_pct
    );
}

#[test]
fn zero_k_means_no_reduction() {
    let mut c = small_stable(OverlayKind::Chord, 47);
    c.k = 0;
    let report = run_stable(&c);
    assert_eq!(report.aware.total_hops, report.oblivious.total_hops);
    assert!((report.reduction_pct).abs() < 1e-9);
}

fn small_churn(seed: u64) -> ChurnConfig {
    let mut c = ChurnConfig::paper_defaults(64, seed);
    c.items = 64;
    c.duration = 900.0;
    c.warmup = 200.0;
    c.mean_lifetime = 300.0;
    c.query_rate = 8.0;
    c
}

#[test]
fn churn_run_completes_with_reasonable_success() {
    let metrics = run_churn_once(&small_churn(48), Strategy::Aware);
    assert!(metrics.issued > 1000, "issued {}", metrics.issued);
    assert!(
        metrics.success_rate() > 0.80,
        "success rate {:.3} too low under churn",
        metrics.success_rate()
    );
    assert!(metrics.avg_hops() > 0.0);
}

#[test]
fn churn_schedules_are_paired_across_strategies() {
    // The aware and oblivious runs must issue the same number of queries
    // (identical churn/query schedules; only selection differs).
    let aware = run_churn_once(&small_churn(49), Strategy::Aware);
    let oblivious = run_churn_once(&small_churn(49), Strategy::Oblivious);
    assert_eq!(aware.issued, oblivious.issued);
}

#[test]
fn churn_aware_does_not_lose_to_oblivious() {
    // At toy scale the gap is noisy; require aware ≤ oblivious + slack.
    let aware = run_churn_once(&small_churn(50), Strategy::Aware);
    let oblivious = run_churn_once(&small_churn(50), Strategy::Oblivious);
    assert!(
        aware.avg_hops() <= oblivious.avg_hops() * 1.05,
        "aware {:.3} vs oblivious {:.3}",
        aware.avg_hops(),
        oblivious.avg_hops()
    );
}

#[test]
fn churn_runs_are_deterministic() {
    let a = run_churn_once(&small_churn(51), Strategy::Aware);
    let b = run_churn_once(&small_churn(51), Strategy::Aware);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.total_hops, b.total_hops);
    assert_eq!(a.failed, b.failed);
}

#[test]
fn stable_driver_covers_tapestry_and_skipgraph() {
    for kind in [
        OverlayKind::Tapestry { digit_bits: 1 },
        OverlayKind::SkipGraph,
    ] {
        let report = run_stable(&small_stable(kind, 53));
        assert_eq!(report.aware.success_rate(), 1.0, "{kind:?}");
        assert!(
            report.reduction_pct > 5.0,
            "{kind:?}: reduction {:.1}%",
            report.reduction_pct
        );
    }
}

#[test]
fn churn_driver_covers_tapestry_and_skipgraph() {
    for kind in [
        OverlayKind::Tapestry { digit_bits: 1 },
        OverlayKind::SkipGraph,
    ] {
        let mut c = small_churn(54);
        c.kind = kind;
        let metrics = run_churn_once(&c, Strategy::Aware);
        assert!(metrics.issued > 1000, "{kind:?}");
        assert!(
            metrics.success_rate() > 0.7,
            "{kind:?}: success {:.3}",
            metrics.success_rate()
        );
    }
}

#[test]
fn pool_rankings_work_in_stable_mode() {
    let mut c = small_stable(OverlayKind::Chord, 52);
    c.ranking = RankingMode::Pool(5);
    let report = run_stable(&c);
    assert!(report.reduction_pct > 0.0);
}
