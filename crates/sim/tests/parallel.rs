//! The determinism contract of the parallel experiment engine, asserted
//! at the sim level: running the drivers over the pool must reproduce the
//! serial results bit-for-bit.

use peercache_par::with_threads;
use peercache_pastry::RoutingMode;
use peercache_sim::{
    fig3, fig5, run_churn, run_stable, ChurnConfig, OverlayKind, Scale, StableConfig,
};

fn stable_config(kind: OverlayKind, seed: u64) -> StableConfig {
    let mut c = StableConfig::paper_defaults(kind, 96, seed);
    c.queries = 4_000;
    c
}

#[test]
fn run_stable_parallel_equals_serial() {
    for kind in [
        OverlayKind::Chord,
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
    ] {
        let serial = with_threads(1, || run_stable(&stable_config(kind, 77)));
        for threads in [2, 4, 8] {
            let parallel = with_threads(threads, || run_stable(&stable_config(kind, 77)));
            assert_eq!(serial, parallel, "{kind:?} with {threads} threads");
        }
    }
}

#[test]
fn run_churn_parallel_equals_serial() {
    let mut config = ChurnConfig::paper_defaults(64, 78);
    config.duration = 600.0;
    config.warmup = 150.0;
    let serial = with_threads(1, || run_churn(&config));
    let parallel = with_threads(4, || run_churn(&config));
    assert_eq!(serial, parallel);
}

#[test]
fn figure_sweeps_parallel_equal_serial() {
    let scale = Scale {
        node_divisor: 16,
        items: 64,
        queries: 1_500,
        churn_duration: 300.0,
        churn_warmup: 60.0,
    };
    let serial3 = with_threads(1, || fig3(&scale, 5));
    let parallel3 = with_threads(4, || fig3(&scale, 5));
    assert_eq!(serial3, parallel3, "fig3 rows must not depend on threads");

    let serial5 = with_threads(1, || fig5(&scale, 5));
    let parallel5 = with_threads(4, || fig5(&scale, 5));
    assert_eq!(serial5, parallel5, "fig5 rows must not depend on threads");
}
