//! Regression: routing the churn driver through the fault layer with a
//! transparent plan must leave every metric bit-identical to the
//! pre-fault driver. The goldens below were captured from the ad-hoc
//! live-check driver immediately before the fault layer replaced it.

use peercache_pastry::RoutingMode;
use peercache_sim::churn::{run_churn_once, run_churn_once_faulted, ChurnConfig, Strategy};
use peercache_sim::OverlayKind;

fn config(kind: OverlayKind) -> ChurnConfig {
    let mut config = ChurnConfig::paper_defaults(64, 48);
    config.kind = kind;
    config.items = 64;
    config.duration = 900.0;
    config.warmup = 200.0;
    config.mean_lifetime = 300.0;
    config.query_rate = 8.0;
    config
}

/// One golden: (issued, succeeded, failed, total_hops, failed_probes).
type Golden = (u64, u64, u64, u64, u64);

fn assert_matches_golden(kind: OverlayKind, strategy: Strategy, golden: Golden) {
    let metrics = run_churn_once(&config(kind), strategy);
    let observed = (
        metrics.issued,
        metrics.succeeded,
        metrics.failed,
        metrics.total_hops,
        metrics.failed_probes,
    );
    assert_eq!(
        observed, golden,
        "churn metrics drifted from the pre-fault-layer goldens \
         ({kind:?}, {strategy:?})"
    );
}

#[test]
fn chord_zero_fault_metrics_match_prefault_goldens() {
    assert_matches_golden(
        OverlayKind::Chord,
        Strategy::Aware,
        (5639, 5457, 182, 8067, 282),
    );
    assert_matches_golden(
        OverlayKind::Chord,
        Strategy::Oblivious,
        (5639, 5494, 145, 8500, 251),
    );
}

#[test]
fn pastry_zero_fault_metrics_match_prefault_goldens() {
    let kind = OverlayKind::Pastry {
        digit_bits: 1,
        mode: RoutingMode::LocalityAware,
    };
    assert_matches_golden(kind, Strategy::Aware, (5639, 5639, 0, 8504, 278));
    assert_matches_golden(kind, Strategy::Oblivious, (5639, 5639, 0, 8821, 269));
}

#[test]
fn tapestry_zero_fault_metrics_match_prefault_goldens() {
    let kind = OverlayKind::Tapestry { digit_bits: 1 };
    assert_matches_golden(kind, Strategy::Aware, (5639, 5391, 248, 8742, 299));
    assert_matches_golden(kind, Strategy::Oblivious, (5639, 5442, 197, 9635, 304));
}

#[test]
fn skipgraph_zero_fault_metrics_match_prefault_goldens() {
    assert_matches_golden(
        OverlayKind::SkipGraph,
        Strategy::Aware,
        (5639, 5626, 13, 9812, 317),
    );
    assert_matches_golden(
        OverlayKind::SkipGraph,
        Strategy::Oblivious,
        (5639, 5629, 10, 11362, 300),
    );
}

#[test]
fn faulted_wrapper_base_equals_prefault_api() {
    let config = config(OverlayKind::Chord);
    let faulted = run_churn_once_faulted(&config, Strategy::Aware);
    let plain = run_churn_once(&config, Strategy::Aware);
    assert_eq!(faulted.base, plain);
    assert_eq!(faulted.origin_down, 0, "no plan crashes at zero rates");
    assert_eq!(faulted.retries, 0, "no retries without loss");
    assert_eq!(faulted.fallbacks, 0, "no fallbacks with a transparent plan");
    assert_eq!(faulted.delay_ticks, 0, "no jitter at zero rates");
    assert_eq!(
        faulted.timeouts, plain.failed_probes,
        "transparent probes time out exactly on substrate-dead neighbors"
    );
}
