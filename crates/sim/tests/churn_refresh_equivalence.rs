//! The churn refresh engine's bit-identity contract: a churn run whose
//! `Recompute` ticks go through the retained incremental engine
//! ([`RecomputeMode::Incremental`], the default) must yield **identical**
//! metrics to the pre-refactor full path ([`RecomputeMode::Full`]) —
//! across substrates, seeds, fault configurations (whose mid-route
//! `forget` evictions drift the core sets between ticks), churn rates
//! (join/leave/rejoin interleavings), and thread counts. Both modes
//! consume exactly the same RNG streams, so equality is byte-for-byte,
//! not statistical.

use peercache_par::with_threads;
use peercache_pastry::RoutingMode;
use peercache_sim::faults::FaultConfig;
use peercache_sim::{run_churn_once_faulted, ChurnConfig, OverlayKind, RecomputeMode, Strategy};
use proptest::prelude::*;

const KINDS: [OverlayKind; 4] = [
    OverlayKind::Chord,
    OverlayKind::Pastry {
        digit_bits: 1,
        mode: RoutingMode::LocalityAware,
    },
    OverlayKind::Tapestry { digit_bits: 2 },
    OverlayKind::SkipGraph,
];

fn config(kind: OverlayKind, seed: u64, mean_lifetime: f64) -> ChurnConfig {
    let mut config = ChurnConfig::paper_defaults(48, seed);
    config.kind = kind;
    config.items = 32;
    config.duration = 600.0;
    config.warmup = 150.0;
    config.mean_lifetime = mean_lifetime;
    config.query_rate = 6.0;
    config
}

/// Run one scenario under both recompute modes and assert equality.
fn assert_modes_agree(mut config: ChurnConfig, label: &str) -> Result<(), TestCaseError> {
    config.recompute = RecomputeMode::Full;
    let full = run_churn_once_faulted(&config, Strategy::Aware);
    config.recompute = RecomputeMode::Incremental;
    for threads in [1usize, 4] {
        let incremental =
            with_threads(threads, || run_churn_once_faulted(&config, Strategy::Aware));
        prop_assert_eq!(
            &incremental,
            &full,
            "{} diverged at threads={}",
            label,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fault-free churn: flips exercise the engine's invalidate (own
    /// flip), dead-aux handling (install filter), and rejoin-with-
    /// surviving-counter-weight paths on every substrate.
    #[test]
    fn incremental_matches_full_under_churn(seed in 0u64..1000) {
        for kind in KINDS {
            assert_modes_agree(config(kind, seed, 300.0), "fault-free")?;
        }
    }

    /// Fast churn (short lifetimes) piles join/leave/rejoin
    /// interleavings onto the retained state; slow churn leaves long
    /// clean-skip stretches. Both must stay bit-identical.
    #[test]
    fn incremental_matches_full_across_churn_rates(
        seed in 0u64..1000,
        fast in proptest::bool::ANY,
    ) {
        let lifetime = if fast { 120.0 } else { 900.0 };
        for kind in [KINDS[1], KINDS[3]] {
            assert_modes_agree(config(kind, seed, lifetime), "churn-rate")?;
        }
    }

    /// Faulted churn: mid-route `forget` evictions shrink core sets
    /// between recompute ticks, driving the engine's core-delta
    /// (`remove_core`) and re-solve paths.
    #[test]
    fn incremental_matches_full_under_faults(seed in 0u64..1000) {
        let faults = FaultConfig {
            crash_rate: 0.02,
            unresponsive_rate: 0.0,
            loss_rate: 0.1,
            stale_rate: 0.2,
            staleness_age: 512,
            delay_jitter: 2,
            max_retries: 2,
            backoff_base: 4,
        };
        for kind in KINDS {
            let mut c = config(kind, seed, 250.0);
            c.faults = faults.clone();
            assert_modes_agree(c, "faulted")?;
        }
    }
}
