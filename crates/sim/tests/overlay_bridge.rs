//! Unit-level tests of the overlay bridge: ownership, selection dispatch,
//! and churn operations behave identically through the enum as through
//! the concrete networks.

use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_pastry::RoutingMode;
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::random_ids;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kinds() -> Vec<OverlayKind> {
    vec![
        OverlayKind::Chord,
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::GreedyPrefix,
        },
        OverlayKind::Pastry {
            digit_bits: 4,
            mode: RoutingMode::LocalityAware,
        },
        OverlayKind::Tapestry { digit_bits: 1 },
        OverlayKind::SkipGraph,
    ]
}

fn build(kind: OverlayKind, n: usize, seed: u64) -> (SimOverlay, Vec<Id>) {
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, n, &mut rng);
    (SimOverlay::build(kind, space, &ids, &mut rng), ids)
}

#[test]
fn kind_roundtrips() {
    for kind in kinds() {
        let (overlay, _) = build(kind, 16, 1);
        assert_eq!(overlay.kind(), kind);
    }
}

#[test]
fn live_ids_and_ownership_are_consistent() {
    for kind in kinds() {
        let (overlay, ids) = build(kind, 48, 2);
        assert_eq!(overlay.live_ids().len(), 48);
        for &id in &ids {
            assert!(overlay.is_live(id));
            // A node always owns its own id.
            assert_eq!(overlay.true_owner(id), Some(id), "{kind:?}");
        }
    }
}

#[test]
fn queries_succeed_on_stable_overlays() {
    for kind in kinds() {
        let (mut overlay, ids) = build(kind, 48, 3);
        for probe in 0..40u128 {
            let key = Id::new(probe * 104_729 % (1 << 32));
            let out = overlay.query(ids[probe as usize % ids.len()], key);
            assert!(out.success, "{kind:?} key {key}");
            assert_eq!(out.failed_probes, 0);
        }
    }
}

#[test]
fn query_with_path_starts_at_origin_and_ends_at_owner() {
    for kind in kinds() {
        let (mut overlay, ids) = build(kind, 48, 4);
        let key = Id::new(123_456_789);
        let (out, path) = overlay.query_with_path(ids[0], key);
        assert!(out.success);
        assert_eq!(path.first(), Some(&ids[0]));
        assert_eq!(path.last(), Some(&overlay.true_owner(key).unwrap()));
        assert_eq!(
            u32::try_from(path.len()).expect("path fits u32"),
            out.hops + 1
        );
    }
}

#[test]
fn select_aware_filters_core_and_self() {
    for kind in kinds() {
        let (overlay, ids) = build(kind, 48, 5);
        let me = ids[0];
        let core = overlay.core_neighbors(me);
        // Frequencies deliberately include the node itself and its cores.
        let freqs = FrequencySnapshot::from_pairs(ids.iter().map(|&id| (id, 5.0)));
        let sel = overlay.select_aware(me, &freqs, 6).unwrap();
        assert_eq!(sel.aux.len(), 6, "{kind:?}");
        assert!(!sel.aux.contains(&me));
        for aux in &sel.aux {
            assert!(!core.contains(aux), "{kind:?}: core {aux} selected");
        }
    }
}

#[test]
fn select_oblivious_uniform_ignores_weights() {
    let (overlay, ids) = build(OverlayKind::Chord, 48, 6);
    let me = ids[0];
    let mut rng = StdRng::seed_from_u64(7);
    let sel = overlay.select_oblivious_uniform(me, 8, &mut rng).unwrap();
    assert_eq!(sel.aux.len(), 8);
    assert!(!sel.aux.contains(&me));
}

#[test]
fn set_aux_rejects_dead_nodes_and_installs_live_ones() {
    let (mut overlay, ids) = build(OverlayKind::Chord, 16, 8);
    let ghost = Id::new(0xdead_beef);
    assert!(!ids.contains(&ghost));
    assert!(overlay.set_aux(ids[0], vec![ids[1], ghost]));
    // Routing to ids[1] is now direct.
    let out = overlay.query(ids[0], ids[1]);
    assert!(out.success);
    assert_eq!(out.hops, 1);
    // Installing on a dead node reports failure.
    assert!(overlay.fail(ids[2]));
    assert!(!overlay.set_aux(ids[2], vec![]));
}

#[test]
fn churn_ops_work_on_both_overlays() {
    for kind in kinds() {
        let (mut overlay, ids) = build(kind, 24, 9);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(overlay.fail(ids[3]), "{kind:?}");
        assert!(!overlay.fail(ids[3]), "double fail");
        assert!(!overlay.is_live(ids[3]));
        assert!(overlay.join(ids[3], &mut rng));
        assert!(!overlay.join(ids[3], &mut rng), "double join");
        assert!(overlay.is_live(ids[3]));
        assert!(overlay.stabilize(ids[3]));
        assert!(!overlay.stabilize(Id::new(0x7777_7777)), "unknown node");
    }
}
