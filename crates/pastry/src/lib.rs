//! A Pastry overlay simulator — the substrate for the paper's Pastry
//! experiments (the paper used FreePastry, which we reproduce in Rust; see
//! DESIGN.md substitution 1).
//!
//! * **Key assignment**: a key belongs to the node *numerically closest*
//!   to it on the ring (§II-A).
//! * **Core neighbors**: a digit-indexed routing table (row `l` holds
//!   nodes sharing exactly `l` digits with the owner) plus a leaf set of
//!   ring neighbors.
//! * **Routing**: prefix routing — forward to a node sharing a strictly
//!   longer prefix with the key, falling back to numerical progress at the
//!   same prefix length. **Auxiliary neighbors** participate exactly like
//!   core entries (§III-1).
//! * **Locality** ([`RoutingMode::LocalityAware`]): FreePastry picks,
//!   among the candidates that make prefix progress, the one closest in
//!   *network proximity* — the behaviour behind the paper's Figure-4
//!   artifact (gains that *grow* with `k`). Proximity is synthesised from
//!   uniform random coordinates on the unit square, FreePastry's own
//!   simulation-mode topology. [`RoutingMode::GreedyPrefix`] instead takes
//!   the candidate closest to the key (the paper's Chord-style tiebreak).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod network;
mod node;

pub use arena::{ArenaRoute, ArenaScratch, PastryArena};
pub use network::{NetworkError, PastryConfig, PastryNetwork};
pub use node::PastryNode;

use peercache_id::Id;

/// Next-hop tie-breaking policy (§VI-D).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Among prefix-progress candidates, pick the one closest to the
    /// current node in proximity space (FreePastry's behaviour).
    LocalityAware,
    /// Among all valid candidates, pick the one that gets numerically
    /// closest to the key (maximal progress).
    GreedyPrefix,
}

/// How a route ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Terminated at the true owner of the key.
    Success,
    /// Terminated at a node that wrongly believes it is numerically
    /// closest (stale leaf set under churn).
    WrongOwner(Id),
    /// No live candidate made progress.
    DeadEnd(Id),
    /// Hop budget exhausted (defensive).
    HopLimit,
}

/// The result of routing one query.
#[derive(Clone, Debug)]
pub struct RouteResult {
    /// How the route ended.
    pub outcome: RouteOutcome,
    /// Number of successful forwards.
    pub hops: u32,
    /// Dead neighbors probed (timeouts), not counted as hops.
    pub failed_probes: u32,
    /// Nodes visited, starting at the source.
    pub path: Vec<Id>,
}

impl RouteResult {
    /// Whether the route reached the true owner.
    pub fn is_success(&self) -> bool {
        self.outcome == RouteOutcome::Success
    }
}
