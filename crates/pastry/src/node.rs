use peercache_id::Id;

/// The routing state one Pastry node maintains.
///
/// Entries are beliefs and may go stale under churn, exactly as in the
/// Chord substrate.
#[derive(Clone, Debug)]
pub struct PastryNode {
    /// This node's identifier.
    pub id: Id,
    /// `rows[l][c]`: a node sharing exactly `l` leading digits with `id`
    /// whose digit `l` is `c`. The column of `id`'s own digit stays empty.
    pub rows: Vec<Vec<Option<Id>>>,
    /// Leaf set: the nearest ring neighbors on each side, in ring order
    /// (counter-clockwise half first). Self excluded.
    pub leaves: Vec<Id>,
    /// Auxiliary neighbors installed by the selection algorithm.
    pub aux: Vec<Id>,
}

impl PastryNode {
    /// A blank node with `digit_count` rows of `arity` columns.
    pub fn new(id: Id, digit_count: u8, arity: usize) -> Self {
        PastryNode {
            id,
            rows: vec![vec![None; arity]; digit_count as usize],
            leaves: Vec::new(),
            aux: Vec::new(),
        }
    }

    /// All distinct known nodes: routing table, leaf set, auxiliaries.
    pub fn known_neighbors(&self) -> Vec<Id> {
        self.known_neighbors_with(&self.aux)
    }

    /// [`known_neighbors`](Self::known_neighbors) with `extra` standing in
    /// for the installed auxiliary set, so read-only routing can resolve
    /// auxiliary pointers from a shared side table over one immutable
    /// snapshot; passing the set `set_aux` would have installed yields the
    /// same list.
    pub fn known_neighbors_with(&self, extra: &[Id]) -> Vec<Id> {
        let mut out: Vec<Id> = self
            .rows
            .iter()
            .flatten()
            .flatten()
            .copied()
            .chain(self.leaves.iter().copied())
            .chain(extra.iter().copied())
            .filter(|&n| n != self.id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The core (non-auxiliary) neighbors: routing table plus leaf set —
    /// the `N_s` handed to the selection algorithms.
    pub fn core_neighbors(&self) -> Vec<Id> {
        let mut out = Vec::new();
        self.core_neighbors_into(&mut out);
        out
    }

    /// [`core_neighbors`](Self::core_neighbors) into a caller-owned
    /// buffer — the arena-facing walk API: a sweep over many nodes reuses
    /// one buffer instead of allocating a fresh vector per node.
    pub fn core_neighbors_into(&self, out: &mut Vec<Id>) {
        out.clear();
        out.extend(
            self.rows
                .iter()
                .flatten()
                .flatten()
                .copied()
                .chain(self.leaves.iter().copied())
                .filter(|&n| n != self.id),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Drop a discovered-dead neighbor from every structure.
    pub fn forget(&mut self, dead: Id) {
        for row in &mut self.rows {
            for cell in row.iter_mut() {
                if *cell == Some(dead) {
                    *cell = None;
                }
            }
        }
        self.leaves.retain(|&l| l != dead);
        self.aux.retain(|&a| a != dead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn known_neighbors_dedups() {
        let mut n = PastryNode::new(id(0), 4, 2);
        n.rows[0][1] = Some(id(9));
        n.rows[2][1] = Some(id(9));
        n.leaves = vec![id(1), id(9)];
        n.aux = vec![id(3)];
        assert_eq!(n.known_neighbors(), vec![id(1), id(3), id(9)]);
        assert_eq!(n.core_neighbors(), vec![id(1), id(9)]);
    }

    #[test]
    fn forget_clears_everywhere() {
        let mut n = PastryNode::new(id(0), 4, 2);
        n.rows[1][1] = Some(id(5));
        n.leaves = vec![id(5), id(7)];
        n.aux = vec![id(5)];
        n.forget(id(5));
        assert!(n.rows.iter().flatten().all(std::option::Option::is_none));
        assert_eq!(n.leaves, vec![id(7)]);
        assert!(n.aux.is_empty());
    }
}
