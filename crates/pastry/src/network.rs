use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure, RouteTrace, StepScratch, WalkStep};
use peercache_id::{Id, IdSpace};
use rand::Rng;

use crate::node::PastryNode;
use crate::{RouteOutcome, RouteResult, RoutingMode};

/// A point in the synthetic proximity space (FreePastry's simulation-mode
/// topology: the unit square with Euclidean latency).
pub type Coord = (f64, f64);

/// Configuration of a Pastry deployment.
#[derive(Copy, Clone, Debug)]
pub struct PastryConfig {
    /// The identifier space.
    pub space: IdSpace,
    /// Digit width in bits (`d`; the paper exposits `d = 1`).
    pub digit_bits: u8,
    /// Digits per id (`⌈b/d⌉`; derived once in [`PastryConfig::new`] so
    /// every later consumer reads a validated value).
    pub digit_count: u8,
    /// Leaf-set entries per side.
    pub leaf_half: usize,
    /// Next-hop tie-breaking policy.
    pub mode: RoutingMode,
    /// Defensive per-route hop budget.
    pub hop_limit: u32,
}

impl PastryConfig {
    /// Locality-aware configuration over `space` with digit width `d`,
    /// four leaves per side, and a `4·⌈b/d⌉` hop budget.
    ///
    /// # Panics
    /// Panics when `digit_bits` does not divide the id-space width — a
    /// configuration is programmer input.
    pub fn new(space: IdSpace, digit_bits: u8) -> Self {
        let digit_count = space.digit_count(digit_bits).unwrap_or(0);
        assert!(digit_count > 0, "digit width must divide the id space");
        PastryConfig {
            space,
            digit_bits,
            digit_count,
            leaf_half: 4,
            mode: RoutingMode::LocalityAware,
            hop_limit: 4 * u32::from(digit_count),
        }
    }

    /// The same configuration with a different routing mode.
    pub fn with_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Errors from membership operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The node id is already live.
    AlreadyPresent(Id),
    /// The node id is not live.
    NotPresent(Id),
    /// The id does not fit the configured id space.
    OutOfSpace(Id),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::AlreadyPresent(id) => write!(f, "node {id} already in the overlay"),
            NetworkError::NotPresent(id) => write!(f, "node {id} not in the overlay"),
            NetworkError::OutOfSpace(id) => write!(f, "node {id} outside the id space"),
        }
    }
}

impl Error for NetworkError {}

/// Deterministic pseudo-random priority deciding which qualifying node a
/// routing-table cell ends up holding (stands in for the accident of
/// which node was encountered first during joins/row exchanges).
// Truncating casts fold the 128-bit ids into a 64-bit hash input.
#[allow(clippy::cast_possible_truncation)]
fn encounter_score(owner: Id, entry: Id) -> u64 {
    let mixed = (owner.value() ^ entry.value().rotate_left(64)) as u64
        ^ (entry.value() >> 64) as u64
        ^ entry.value() as u64;
    // SplitMix64 finalizer.
    let mut z = mixed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The whole simulated Pastry overlay.
///
/// ```
/// use peercache_id::{Id, IdSpace};
/// use peercache_pastry::{PastryConfig, PastryNetwork};
/// use rand::SeedableRng;
///
/// let space = IdSpace::new(8).unwrap();
/// let ids: Vec<Id> = [0b0001_0000u128, 0b0101_0000, 0b1001_0000, 0b1101_0000]
///     .map(Id::new)
///     .to_vec();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut overlay = PastryNetwork::build(PastryConfig::new(space, 1), &ids, &mut rng);
/// // Keys belong to the numerically closest node.
/// assert_eq!(overlay.true_owner(Id::new(0b0100_0000)), Some(Id::new(0b0101_0000)));
/// let route = overlay.route(ids[0], Id::new(0b1100_1111)).unwrap();
/// assert!(route.is_success());
/// assert_eq!(route.path.last(), Some(&Id::new(0b1101_0000)));
/// ```
#[derive(Clone)]
pub struct PastryNetwork {
    config: PastryConfig,
    digit_count: u8,
    arity: usize,
    nodes: BTreeMap<u128, PastryNode>,
    coords: BTreeMap<u128, Coord>,
}

impl PastryNetwork {
    /// An empty overlay.
    pub fn new(config: PastryConfig) -> Self {
        PastryNetwork {
            config,
            digit_count: config.digit_count,
            arity: 1usize << config.digit_bits,
            nodes: BTreeMap::new(),
            coords: BTreeMap::new(),
        }
    }

    /// Bootstrap a stable overlay with perfect routing state and random
    /// proximity coordinates.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-space ids.
    pub fn build<R: Rng + ?Sized>(config: PastryConfig, ids: &[Id], rng: &mut R) -> Self {
        let mut net = PastryNetwork::new(config);
        for &id in ids {
            assert!(config.space.contains(id), "node id {id} outside id space");
            let node = PastryNode::new(id, net.digit_count, net.arity);
            assert!(
                net.nodes.insert(id.value(), node).is_none(),
                "duplicate node id {id}"
            );
            net.coords.insert(id.value(), (rng.gen(), rng.gen()));
        }
        for &id in ids {
            net.refresh_from_truth(id);
        }
        net
    }

    /// The configuration.
    pub fn config(&self) -> &PastryConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: Id) -> bool {
        self.nodes.contains_key(&id.value())
    }

    /// All live node ids in ring order.
    pub fn live_ids(&self) -> Vec<Id> {
        self.nodes.keys().map(|&k| Id::new(k)).collect()
    }

    /// Immutable view of a node.
    pub fn node(&self, id: Id) -> Option<&PastryNode> {
        self.nodes.get(&id.value())
    }

    /// Synthetic latency between two hosts. An id with no coordinates —
    /// possible only for a corrupted (stale-displaced) auxiliary pointer,
    /// since failed nodes keep theirs — is infinitely far: it loses every
    /// locality tie-break but stays eligible on prefix progress, and the
    /// probe to it then times out.
    pub fn proximity(&self, a: Id, b: Id) -> f64 {
        let (Some(&(ax, ay)), Some(&(bx, by))) =
            (self.coords.get(&a.value()), self.coords.get(&b.value()))
        else {
            return f64::INFINITY;
        };
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Absolute ring distance (numerical closeness metric, §II-A).
    fn ring_abs(&self, a: Id, b: Id) -> u128 {
        let space = self.config.space;
        space
            .clockwise_distance(a, b)
            .min(space.clockwise_distance(b, a))
    }

    /// The **true owner** of `key`: the numerically closest live node
    /// (ties broken toward the smaller id).
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        // Only the ring predecessor and successor of the key can be
        // closest.
        let pred = self
            .nodes
            .range(..=key.value())
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(&k, _)| Id::new(k))?;
        let succ = key
            .value()
            .checked_add(1)
            .and_then(|s| self.nodes.range(s..).next())
            .or_else(|| self.nodes.iter().next())
            .map(|(&k, _)| Id::new(k))?;
        let (dp, ds) = (self.ring_abs(pred, key), self.ring_abs(succ, key));
        Some(match dp.cmp(&ds) {
            std::cmp::Ordering::Less => pred,
            std::cmp::Ordering::Greater => succ,
            std::cmp::Ordering::Equal => {
                if pred.value() <= succ.value() {
                    pred
                } else {
                    succ
                }
            }
        })
    }

    fn lcp(&self, a: Id, b: Id) -> u8 {
        // The digit width is validated by `PastryConfig::new`, so the
        // error arm is unreachable; 0 is a safe (no-shared-prefix)
        // fallback that keeps routing well-defined regardless.
        self.config
            .space
            .common_prefix_digits(a, b, self.config.digit_bits)
            .unwrap_or(0)
    }

    /// True leaf set of `id`: `leaf_half` ring neighbors per side
    /// (counter-clockwise first, ring order).
    fn true_leaves(&self, id: Id) -> Vec<Id> {
        let n = self.nodes.len();
        if n <= 1 {
            return Vec::new();
        }
        let take = self.config.leaf_half.min((n - 1) / 2).max(1);
        let mut ccw = Vec::with_capacity(take);
        let mut cw = Vec::with_capacity(take);
        let mut cur = id.value();
        for _ in 0..take.min(n - 1) {
            let Some(prev) = self
                .nodes
                .range(..cur)
                .next_back()
                .or_else(|| self.nodes.iter().next_back())
                .map(|(&k, _)| k)
            else {
                break;
            };
            if prev == id.value() || ccw.contains(&prev) {
                break;
            }
            ccw.push(prev);
            cur = prev;
        }
        cur = id.value();
        for _ in 0..take.min(n - 1) {
            let Some(next) = cur
                .checked_add(1)
                .and_then(|s| self.nodes.range(s..).next())
                .or_else(|| self.nodes.iter().next())
                .map(|(&k, _)| k)
            else {
                break;
            };
            if next == id.value() || cw.contains(&next) || ccw.contains(&next) {
                break;
            }
            cw.push(next);
            cur = next;
        }
        ccw.reverse();
        ccw.into_iter().chain(cw).map(Id::new).collect()
    }

    /// Rebuild a node's core state from global truth (bootstrap / the
    /// periodic repair that models Pastry's maintenance).
    pub fn refresh_from_truth(&mut self, id: Id) {
        let leaves = self.true_leaves(id);
        let mut rows = vec![vec![None; self.arity]; self.digit_count as usize];
        for &other_raw in self.nodes.keys() {
            let other = Id::new(other_raw);
            if other == id {
                continue;
            }
            let l = self.lcp(id, other);
            if l >= self.digit_count {
                continue;
            }
            let Ok(col) = self.config.space.digit(other, l, self.config.digit_bits) else {
                continue; // unreachable: l < digit_count and width is validated
            };
            let cell: &mut Option<Id> = &mut rows[l as usize][col as usize];
            // Table cells hold whichever qualifying node the owner
            // happened to learn about (join paths, exchanged rows) — NOT
            // the globally proximity-optimal one. We model "first
            // encountered" with a deterministic per-(owner, entry) hash;
            // a globally optimal fill would make the locality tie-break
            // degenerate (no auxiliary entry could ever win it).
            let replace = match *cell {
                None => true,
                Some(existing) => encounter_score(id, other) < encounter_score(id, existing),
            };
            if replace {
                *cell = Some(other);
            }
        }
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.leaves = leaves;
            node.rows = rows;
        }
    }

    /// Repair every node (a full maintenance round).
    pub fn repair_all(&mut self) {
        for id in self.live_ids() {
            self.refresh_from_truth(id);
        }
    }

    // ---- membership ------------------------------------------------------

    /// A node joins at `coord`: it builds its own state and is announced
    /// to its leaf-set members (Pastry's join notifies them); everyone
    /// else's routing tables stay stale until repair.
    ///
    /// # Errors
    /// [`NetworkError::AlreadyPresent`] / [`NetworkError::OutOfSpace`].
    pub fn join(&mut self, id: Id, coord: Coord) -> Result<(), NetworkError> {
        if !self.config.space.contains(id) {
            return Err(NetworkError::OutOfSpace(id));
        }
        if self.nodes.contains_key(&id.value()) {
            return Err(NetworkError::AlreadyPresent(id));
        }
        self.nodes.insert(
            id.value(),
            PastryNode::new(id, self.digit_count, self.arity),
        );
        self.coords.insert(id.value(), coord); // refreshed on re-join
        self.refresh_from_truth(id);
        // Announce to leaf-set members: they refresh their own leaf sets
        // (and learn the newcomer for their tables opportunistically).
        for member in self.nodes[&id.value()].leaves.clone() {
            let leaves = self.true_leaves(member);
            let l = self.lcp(member, id);
            if let Some(m) = self.nodes.get_mut(&member.value()) {
                m.leaves = leaves;
                if l < self.digit_count {
                    // fill the table cell if empty (no proximity probe on
                    // announcement)
                    if let Ok(col) = self.config.space.digit(id, l, self.config.digit_bits) {
                        let cell = &mut m.rows[l as usize][col as usize];
                        if cell.is_none() {
                            *cell = Some(id);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A node crashes without notice.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn fail(&mut self, id: Id) -> Result<(), NetworkError> {
        self.nodes
            .remove(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        // Coordinates describe the physical host and are kept: survivors
        // still hold (stale) entries for the corpse and evaluate their
        // proximity before probing them.
        Ok(())
    }

    /// A node leaves gracefully: its leaf-set members patch their leaf
    /// sets immediately; routing-table entries elsewhere stay stale.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn leave(&mut self, id: Id) -> Result<(), NetworkError> {
        let node = self
            .nodes
            .remove(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        for member in node.leaves {
            if !self.is_live(member) {
                continue;
            }
            let leaves = self.true_leaves(member);
            if let Some(m) = self.nodes.get_mut(&member.value()) {
                m.forget(id);
                m.leaves = leaves;
            }
        }
        Ok(())
    }

    /// Install the auxiliary neighbor set for `id` (dead entries dropped).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux(&mut self, id: Id, aux: Vec<Id>) -> Result<(), NetworkError> {
        let live: Vec<Id> = aux.into_iter().filter(|&a| self.is_live(a)).collect();
        let node = self
            .nodes
            .get_mut(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        node.aux = live;
        Ok(())
    }

    /// [`set_aux`](Self::set_aux) from a borrowed slice, recycling the
    /// node's installed buffer instead of taking ownership of a fresh
    /// `Vec`: the churn driver's refresh engine re-installs a retained
    /// selection every recompute tick, and at warmed capacity this
    /// installs without allocating. The live-entry filter is identical.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux_from_slice(&mut self, id: Id, aux: &[Id]) -> Result<(), NetworkError> {
        let mut live = match self.nodes.get_mut(&id.value()) {
            Some(node) => std::mem::take(&mut node.aux),
            None => return Err(NetworkError::NotPresent(id)),
        };
        live.clear();
        live.extend(aux.iter().copied().filter(|&a| self.is_live(a)));
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.aux = live;
        }
        Ok(())
    }

    // ---- routing -----------------------------------------------------------

    /// Route a query for `key` from `from` under the configured
    /// [`RoutingMode`].
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route(&mut self, from: Id, key: Id) -> Result<RouteResult, NetworkError> {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        // `from` is live, so the overlay is non-empty and the key has an
        // owner; the else-branch is unreachable but typed.
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(RouteResult {
                    outcome: RouteOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            match self.next_hop(current, key) {
                None => {
                    let outcome = if current == true_owner {
                        RouteOutcome::Success
                    } else if self.nodes[&current.value()]
                        .known_neighbors()
                        .iter()
                        .any(|&w| {
                            (self.ring_abs(w, key), w.value())
                                < (self.ring_abs(current, key), current.value())
                        })
                    {
                        // A strictly closer node is known but unusable
                        // under the forwarding rule — counts as a dead end
                        // rather than a wrong claim of ownership.
                        RouteOutcome::DeadEnd(current)
                    } else {
                        RouteOutcome::WrongOwner(current)
                    };
                    return Ok(RouteResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
                Some(next) => {
                    if self.is_live(next) {
                        hops += 1;
                        path.push(next);
                        current = next;
                    } else {
                        failed_probes += 1;
                        if let Some(node) = self.nodes.get_mut(&current.value()) {
                            node.forget(next);
                        }
                    }
                }
            }
        }
    }

    /// Read-only [`route`](Self::route): auxiliary neighbors come from
    /// `aux_of` instead of the installed per-node sets, and dead entries
    /// probed along the way are counted as `failed_probes` but **not**
    /// forgotten. With every node live — the stable-mode contract — the
    /// walk is hop-for-hop identical to installing each `aux_of` set via
    /// [`set_aux`](Self::set_aux) and calling `route`, which lets a
    /// parallel sweep share one snapshot across threads. A dead next hop
    /// is a hard dead end here (the snapshot cannot repair around it).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route_with_aux<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
    ) -> Result<RouteResult, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(RouteResult {
                    outcome: RouteOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            match self.next_hop_with(current, key, aux_of(current)) {
                None => {
                    let outcome = if current == true_owner {
                        RouteOutcome::Success
                    } else if self.nodes[&current.value()]
                        .known_neighbors_with(aux_of(current))
                        .iter()
                        .any(|&w| {
                            (self.ring_abs(w, key), w.value())
                                < (self.ring_abs(current, key), current.value())
                        })
                    {
                        RouteOutcome::DeadEnd(current)
                    } else {
                        RouteOutcome::WrongOwner(current)
                    };
                    return Ok(RouteResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
                Some(next) => {
                    if self.is_live(next) {
                        hops += 1;
                        path.push(next);
                        current = next;
                    } else {
                        // The forwarding rule would re-select this dead
                        // entry forever on an immutable snapshot; count
                        // the probe and stop here.
                        failed_probes += 1;
                        return Ok(RouteResult {
                            outcome: RouteOutcome::DeadEnd(current),
                            hops,
                            failed_probes,
                            path,
                        });
                    }
                }
            }
        }
    }

    /// Fault-injected read-only [`route`](Self::route): every contact
    /// goes through `plan`'s probe channel (crash/loss/unresponsive with
    /// bounded retry), auxiliary pointers are resolved through its
    /// staleness channel, and the walk records everything in a
    /// [`RouteTrace`](peercache_faults::RouteTrace).
    ///
    /// Unlike [`route_with_aux`](Self::route_with_aux) — which stops hard
    /// at the first dead next hop — this mirrors the *mutating* walk's
    /// degradation semantics: a timed-out hop is excluded (the read-only
    /// stand-in for `forget`; a repairing caller evicts
    /// `trace.dead_probed` afterwards) and the decision re-runs. Under a
    /// non-transparent plan, the first timed-out **auxiliary-only**
    /// candidate at a node bans the remaining auxiliary pointers there,
    /// falling back to core routing state (`trace.fallbacks`); under a
    /// transparent plan the walk is bit-identical to `route_with_aux`.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route_with_aux_faults<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        plan: &FaultPlan,
    ) -> Result<FaultedRoute, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        if plan.node_crashed(from) {
            return Ok(FaultedRoute::origin_down(from));
        }
        let mut current = from;
        let mut trace = RouteTrace::start(from);
        let mut scratch = StepScratch::new();
        loop {
            match self.route_step_faults(
                current,
                key,
                true_owner,
                &aux_of,
                plan,
                &mut trace,
                &mut scratch,
            ) {
                WalkStep::Forward(next) => {
                    trace.hops += 1;
                    trace.path.push(next);
                    current = next;
                }
                WalkStep::Done(outcome) => return Ok(FaultedRoute { outcome, trace }),
            }
        }
    }

    /// One arrival of [`route_with_aux_faults`](Self::route_with_aux_faults):
    /// the full decision made at `current` — hop-budget check, staleness
    /// resolution of its cached pointers, and the decide/probe loop with
    /// its aux→core fallback — ending in a forward or a terminal outcome.
    /// The monolithic walk and the `peercache-node` event loop both drive
    /// this same function, so their probe sequences are bit-identical.
    ///
    /// The caller owns the hop accounting: on [`WalkStep::Forward`] it
    /// must charge `trace.hops += 1` and extend `trace.path` before the
    /// next step. `true_owner` is the owner of `key` computed once per
    /// walk (see [`true_owner`](Self::true_owner)).
    #[allow(clippy::too_many_arguments)]
    pub fn route_step_faults<'a, F>(
        &'a self,
        current: Id,
        key: Id,
        true_owner: Id,
        aux_of: F,
        plan: &FaultPlan,
        trace: &mut RouteTrace,
        scratch: &mut StepScratch,
    ) -> WalkStep
    where
        F: Fn(Id) -> &'a [Id],
    {
        if trace.hops >= self.config.hop_limit {
            return WalkStep::Done(Err(LookupFailure::HopLimit));
        }
        plan.resolve_aux(
            self.config.space,
            current,
            aux_of(current),
            &mut scratch.aux,
        );
        let mut aux_banned = false;
        loop {
            let extra: &[Id] = if aux_banned { &[] } else { &scratch.aux };
            match self.next_hop_excluding(current, key, extra, &trace.dead_probed) {
                None => {
                    let excluded = |w: Id| {
                        trace
                            .dead_probed
                            .iter()
                            .any(|&(p, t)| p == current && t == w)
                    };
                    let outcome = if current == true_owner {
                        Ok(current)
                    } else if self.nodes.get(&current.value()).is_some_and(|node| {
                        node.known_neighbors_with(extra).iter().any(|&w| {
                            !excluded(w)
                                && (self.ring_abs(w, key), w.value())
                                    < (self.ring_abs(current, key), current.value())
                        })
                    }) {
                        Err(LookupFailure::DeadEnd(current))
                    } else {
                        Err(LookupFailure::WrongOwner(current))
                    };
                    return WalkStep::Done(outcome);
                }
                Some(next) => {
                    if plan.probe(current, next, trace.hops, self.is_live(next), trace) {
                        return WalkStep::Forward(next);
                    } else if !plan.is_transparent() && !aux_banned {
                        // Probe failure already excluded `next` via
                        // `trace.dead_probed`; if it was a cached pointer
                        // (absent from the core tables), ban the rest of
                        // the aux set here and fall back to core state.
                        let core = self
                            .nodes
                            .get(&current.value())
                            .map(|node| node.known_neighbors_with(&[]))
                            .unwrap_or_default();
                        if core.binary_search(&next).is_err() {
                            aux_banned = true;
                            trace.fallbacks += 1;
                        }
                    }
                }
            }
        }
    }

    /// Evict `dead` from `id`'s routing structures. The fault-injected
    /// walks are read-only, so a repairing caller (the churn driver)
    /// applies their `dead_probed` pairs here afterwards. No-op when
    /// `id` is not live.
    pub fn forget_neighbor(&mut self, id: Id, dead: Id) {
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.forget(dead);
        }
    }

    /// The forwarding decision at `current` for `key` (None = `current`
    /// believes it is the destination).
    fn next_hop(&self, current: Id, key: Id) -> Option<Id> {
        self.next_hop_with(current, key, &self.nodes[&current.value()].aux)
    }

    /// [`next_hop`](Self::next_hop) with `extra` standing in for the
    /// auxiliary set of `current`.
    fn next_hop_with(&self, current: Id, key: Id, extra: &[Id]) -> Option<Id> {
        self.next_hop_excluding(current, key, extra, &[])
    }

    /// The forwarding decision with `dead` exclusions applied: every
    /// `(prober, target)` pair with `prober == current` is treated as
    /// already forgotten. This is how the read-only fault-injected walk
    /// reproduces the mutating walk's forget-and-retry semantics — the
    /// mutating walk erases a timed-out entry from `current`'s tables
    /// and re-decides; this filters it instead. With no exclusions the
    /// decision is exactly [`next_hop_with`](Self::next_hop_with).
    fn next_hop_excluding(
        &self,
        current: Id,
        key: Id,
        extra: &[Id],
        dead: &[(Id, Id)],
    ) -> Option<Id> {
        if current == key {
            return None;
        }
        let excluded = |w: Id| dead.iter().any(|&(p, t)| p == current && t == w);
        // `current` is always a live node here; degrade to "no next hop"
        // rather than panic if the map ever disagrees (rule L10).
        let node = self.nodes.get(&current.value())?;
        let mut known = node.known_neighbors_with(extra);
        known.retain(|&w| !excluded(w));
        if known.is_empty() {
            return None;
        }
        let cur_key = (self.ring_abs(current, key), current.value());

        // 1. Leaf-set short-circuit: if the key falls within the arc the
        //    (surviving) leaf set covers, jump straight to the
        //    numerically closest.
        let ccw_most = node.leaves.iter().copied().find(|&w| !excluded(w));
        let cw_most = node.leaves.iter().copied().rev().find(|&w| !excluded(w));
        if let (Some(ccw_most), Some(cw_most)) = (ccw_most, cw_most) {
            let space = self.config.space;
            let arc = space.clockwise_distance(ccw_most, cw_most);
            if space.clockwise_distance(ccw_most, key) <= arc {
                let best = node
                    .leaves
                    .iter()
                    .copied()
                    .filter(|&w| !excluded(w))
                    .map(|w| (self.ring_abs(w, key), w.value()))
                    .min();
                return match best {
                    Some(best) if best < cur_key => Some(Id::new(best.1)),
                    _ => None,
                };
            }
        }

        // 2. Prefix progress: candidates sharing a strictly longer prefix
        //    with the key than we do.
        let l = self.lcp(current, key);
        let progress: Vec<Id> = known
            .iter()
            .copied()
            .filter(|&w| self.lcp(w, key) > l)
            .collect();
        // Both modes first narrow to the candidates advancing the prefix
        // the furthest (they are the "candidate nodes for the next hop");
        // the modes differ in the tie-break among them: FreePastry takes
        // the one nearest in proximity space (§VI-D), the greedy mode the
        // one numerically closest to the key.
        if let Some(best_lcp) = progress.iter().map(|&w| self.lcp(w, key)).max() {
            let bucket = progress
                .into_iter()
                .filter(|&w| self.lcp(w, key) == best_lcp);
            let chosen = match self.config.mode {
                RoutingMode::LocalityAware => bucket.min_by(|&a, &b| {
                    self.proximity(current, a)
                        .total_cmp(&self.proximity(current, b))
                        .then(a.cmp(&b))
                }),
                RoutingMode::GreedyPrefix => {
                    bucket.min_by_key(|&w| (self.ring_abs(w, key), w.value()))
                }
            };
            // The bucket mirrors a non-empty `progress`, so a hop always
            // exists; fall through only on the unreachable None.
            if let Some(chosen) = chosen {
                return Some(chosen);
            }
        }

        // 3. Rare case: same prefix length but numerically closer.
        known
            .into_iter()
            .filter(|&w| self.lcp(w, key) >= l)
            .map(|w| (self.ring_abs(w, key), w.value()))
            .filter(|&c| c < cur_key)
            .min()
            .map(|(_, w)| Id::new(w))
    }
}
