//! A **virtual** Pastry overlay over a sorted id slice — the scale
//! substrate behind the `fig3_scale` runs.
//!
//! [`PastryNetwork`](crate::PastryNetwork) materialises every node's
//! routing table, which costs O(n²) to build (each node scans the whole
//! population) and O(n · b · 2^d) resident entries — fine at the paper's
//! n ≤ 2048, prohibitive at 10⁵–10⁶ nodes. The arena stores **only the
//! sorted id array** and answers the same structural questions on demand:
//!
//! * the **leaf set** of a node is index arithmetic on the sorted ring;
//! * a **routing-table cell** (row `l`, column `c`) is a contiguous
//!   prefix range of the sorted array (binary search) with one member
//!   picked by a deterministic per-`(owner, l, c)` hash — the stand-in
//!   for `PastryNetwork`'s "first encountered" fill. The pick is
//!   *distributionally* equivalent (a deterministic qualifying member),
//!   not bit-identical to the materialised network; the scale driver
//!   documents this divergence and the parity gate runs on the
//!   materialised path instead;
//! * **proximity coordinates** are hashed from the id (the materialised
//!   network draws them from the topology RNG).
//!
//! Everything is a pure function of `(sorted ids, config)`, so routing is
//! `Sync`-shareable across threads and bit-identical at any thread count.

use peercache_id::Id;

use crate::{PastryConfig, RouteOutcome, RoutingMode};

/// SplitMix64 finalizer — the same mixer the materialised network uses
/// for its encounter scores.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a 128-bit id into a 64-bit hash input.
// Truncating casts are the point of the fold.
#[allow(clippy::cast_possible_truncation)]
fn fold(id: Id) -> u64 {
    (id.value() as u64) ^ ((id.value() >> 64) as u64).rotate_left(17)
}

/// A hash word as a uniform f64 in `[0, 1)`.
// The 53-bit mantissa cast is exact.
#[allow(clippy::cast_precision_loss)]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Reusable buffers for [`PastryArena::route_with_aux`], so a query sweep
/// allocates nothing per hop after warm-up.
#[derive(Default)]
pub struct ArenaScratch {
    leaves: Vec<Id>,
    known: Vec<Id>,
}

impl ArenaScratch {
    /// Empty scratch buffers.
    pub fn new() -> Self {
        ArenaScratch::default()
    }
}

/// The result of routing one query through the arena (no path vector —
/// the scale driver streams millions of these into fixed accumulators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaRoute {
    /// How the route ended.
    pub outcome: RouteOutcome,
    /// Number of forwards taken.
    pub hops: u32,
}

impl ArenaRoute {
    /// Whether the route reached the true owner.
    pub fn is_success(&self) -> bool {
        self.outcome == RouteOutcome::Success
    }
}

/// The virtual overlay: a sorted id array plus the configuration.
pub struct PastryArena {
    config: PastryConfig,
    ids: Vec<Id>,
}

impl PastryArena {
    /// Build the arena over `ids` (sorted and deduplicated internally).
    ///
    /// # Panics
    /// Panics when an id falls outside the configured space — membership
    /// is experiment input, not runtime data.
    pub fn new(config: PastryConfig, mut ids: Vec<Id>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        for &id in &ids {
            assert!(config.space.contains(id), "node id {id} outside id space");
        }
        PastryArena { config, ids }
    }

    /// The configuration.
    pub fn config(&self) -> &PastryConfig {
        &self.config
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The member ids, sorted ascending (ring order).
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// The rank (sorted position) of `id`, if it is a member.
    pub fn rank_of(&self, id: Id) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Absolute ring distance (numerical closeness metric).
    fn ring_abs(&self, a: Id, b: Id) -> u128 {
        let space = self.config.space;
        space
            .clockwise_distance(a, b)
            .min(space.clockwise_distance(b, a))
    }

    /// Shared digit-aligned prefix length of `a` and `b`.
    fn lcp(&self, a: Id, b: Id) -> u8 {
        self.config
            .space
            .common_prefix_digits(a, b, self.config.digit_bits)
            .unwrap_or(0)
    }

    /// The **true owner** of `key`: the numerically closest member, ties
    /// toward the smaller id — the same rule as the materialised network.
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        let n = self.ids.len();
        if n == 0 {
            return None;
        }
        let p = self.ids.partition_point(|&x| x.value() <= key.value());
        let pred = self.ids[(p + n - 1) % n];
        let succ = self.ids[p % n];
        let (dp, ds) = (self.ring_abs(pred, key), self.ring_abs(succ, key));
        Some(match dp.cmp(&ds) {
            std::cmp::Ordering::Less => pred,
            std::cmp::Ordering::Greater => succ,
            std::cmp::Ordering::Equal => {
                if pred.value() <= succ.value() {
                    pred
                } else {
                    succ
                }
            }
        })
    }

    /// The leaf set of the member at `rank` into a caller-owned buffer:
    /// `leaf_half` ring neighbors per side in ring order (counter-
    /// clockwise half first), exactly the materialised network's layout.
    pub fn leaves_into(&self, rank: usize, out: &mut Vec<Id>) {
        out.clear();
        let n = self.ids.len();
        if n <= 1 || rank >= n {
            return;
        }
        let take = self.config.leaf_half.min((n - 1) / 2).max(1);
        let mut cur = rank;
        for _ in 0..take {
            let prev = (cur + n - 1) % n;
            if prev == rank || out.contains(&self.ids[prev]) {
                break;
            }
            out.push(self.ids[prev]);
            cur = prev;
        }
        out.reverse();
        let mut cur = rank;
        for _ in 0..take {
            let next = (cur + 1) % n;
            if next == rank || out.contains(&self.ids[next]) {
                break;
            }
            out.push(self.ids[next]);
            cur = next;
        }
    }

    /// Routing-table cell (row `l`, column `c`) of the member at `rank`:
    /// a member sharing exactly `l` leading digits whose digit `l` is
    /// `c`, or `None` when no member qualifies (or `c` is the owner's own
    /// digit — that column stays empty, as on [`PastryNode`]).
    ///
    /// The qualifying members form one contiguous range of the sorted
    /// array; the returned one is a deterministic hash pick over that
    /// range, standing in for the network's "first encountered" fill.
    ///
    /// [`PastryNode`]: crate::PastryNode
    // Fitting the hash pick into an index truncates by design.
    #[allow(clippy::cast_possible_truncation)]
    pub fn cell(&self, rank: usize, l: u8, c: u16) -> Option<Id> {
        let owner = *self.ids.get(rank)?;
        let space = self.config.space;
        let b = u32::from(space.bits());
        let d = u32::from(self.config.digit_bits);
        let ld = u32::from(l) * d;
        if ld >= b {
            return None;
        }
        let w = d.min(b - ld);
        if u32::from(c) >= (1u32 << w) {
            return None;
        }
        let own = space.digit(owner, l, self.config.digit_bits).ok()?;
        if c == own {
            return None;
        }
        let rem = b - ld - w;
        let prefix = if ld == 0 {
            0
        } else {
            owner.value() >> (b - ld)
        };
        let low = ((prefix << w) | u128::from(c)) << rem;
        let ones = if rem == 0 { 0 } else { (1u128 << rem) - 1 };
        let high_incl = low | ones;
        let lo_i = self.ids.partition_point(|&x| x.value() < low);
        let hi_i = self.ids.partition_point(|&x| x.value() <= high_incl);
        if lo_i == hi_i {
            return None;
        }
        let span = hi_i - lo_i;
        let h = mix64(fold(owner) ^ ((u64::from(l) << 16) | u64::from(c)));
        Some(self.ids[lo_i + (h as usize) % span])
    }

    /// Synthetic proximity coordinates of `id` on the unit square, hashed
    /// from the id (the materialised network draws them from the topology
    /// RNG; the arena cannot afford n stored pairs to be faithful to the
    /// draw order, so it substitutes an id-determined point).
    pub fn coord(&self, id: Id) -> (f64, f64) {
        let hx = mix64(fold(id) ^ 0x517C_C1B7_2722_0A95);
        let hy = mix64(hx ^ 0x2545_F491_4F6C_DD1D);
        (unit_f64(hx), unit_f64(hy))
    }

    /// Synthetic latency between two hosts (Euclidean over [`coord`]).
    ///
    /// [`coord`]: Self::coord
    pub fn proximity(&self, a: Id, b: Id) -> f64 {
        let ((ax, ay), (bx, by)) = (self.coord(a), self.coord(b));
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// The core neighbor set `N_s` of the member at `rank` into a
    /// caller-owned buffer: leaf set plus every routing-table cell,
    /// sorted and deduplicated — the arena-facing walk API matching
    /// [`PastryNode::core_neighbors_into`].
    ///
    /// [`PastryNode::core_neighbors_into`]: crate::PastryNode::core_neighbors_into
    pub fn core_neighbors_into(&self, rank: usize, out: &mut Vec<Id>) {
        out.clear();
        let Some(&owner) = self.ids.get(rank) else {
            return;
        };
        self.push_leaves(rank, out);
        let arity = 1u16 << self.config.digit_bits;
        for l in 0..self.config.digit_count {
            for c in 0..arity {
                if let Some(w) = self.cell(rank, l, c) {
                    out.push(w);
                }
            }
        }
        out.retain(|&w| w != owner);
        out.sort_unstable();
        out.dedup();
    }

    /// Append the leaf set of `rank` to `out` without clearing it.
    fn push_leaves(&self, rank: usize, out: &mut Vec<Id>) {
        let start = out.len();
        let n = self.ids.len();
        if n <= 1 {
            return;
        }
        let take = self.config.leaf_half.min((n - 1) / 2).max(1);
        let mut cur = rank;
        for _ in 0..take {
            let prev = (cur + n - 1) % n;
            if prev == rank || out[start..].contains(&self.ids[prev]) {
                break;
            }
            out.push(self.ids[prev]);
            cur = prev;
        }
        out[start..].reverse();
        let mut cur = rank;
        for _ in 0..take {
            let next = (cur + 1) % n;
            if next == rank || out[start..].contains(&self.ids[next]) {
                break;
            }
            out.push(self.ids[next]);
            cur = next;
        }
    }

    /// Whether the member at `rank` knows any node strictly closer to
    /// `key` than itself — the materialised network's dead-end test over
    /// the full known set (core structures plus `extra`).
    fn knows_closer(&self, rank: usize, key: Id, extra: &[Id], scratch: &mut ArenaScratch) -> bool {
        let current = self.ids[rank];
        let cur_key = (self.ring_abs(current, key), current.value());
        let known = &mut scratch.known;
        known.clear();
        self.push_leaves(rank, known);
        let arity = 1u16 << self.config.digit_bits;
        for l in 0..self.config.digit_count {
            for c in 0..arity {
                if let Some(w) = self.cell(rank, l, c) {
                    known.push(w);
                }
            }
        }
        known.extend_from_slice(extra);
        known
            .iter()
            .any(|&w| w != current && (self.ring_abs(w, key), w.value()) < cur_key)
    }

    /// The forwarding decision at `rank` for `key` (`None` = the member
    /// believes it is the destination), mirroring the materialised
    /// network's three rules over the virtual state:
    ///
    /// 1. leaf-set short-circuit when the key falls inside the leaf arc;
    /// 2. prefix progress with the configured tie-break — of the table
    ///    cells only (row `lcp`, column = key's next digit) can advance
    ///    the prefix, so the candidate set is that cell plus qualifying
    ///    leaf/auxiliary entries;
    /// 3. numerically closer at the same prefix length.
    fn next_hop(
        &self,
        rank: usize,
        key: Id,
        extra: &[Id],
        scratch: &mut ArenaScratch,
    ) -> Option<Id> {
        let current = self.ids[rank];
        if current == key {
            return None;
        }
        let space = self.config.space;
        let cur_key = (self.ring_abs(current, key), current.value());
        let ArenaScratch { leaves, known } = scratch;
        self.leaves_into(rank, leaves);

        // 1. Leaf-set short-circuit.
        if let (Some(&ccw_most), Some(&cw_most)) = (leaves.first(), leaves.last()) {
            let arc = space.clockwise_distance(ccw_most, cw_most);
            if space.clockwise_distance(ccw_most, key) <= arc {
                let best = leaves
                    .iter()
                    .map(|&w| (self.ring_abs(w, key), w.value()))
                    .min();
                return match best {
                    Some(best) if best < cur_key => Some(Id::new(best.1)),
                    _ => None,
                };
            }
        }

        // 2. Prefix progress.
        let l = self.lcp(current, key);
        let cell_cand = space
            .digit(key, l, self.config.digit_bits)
            .ok()
            .and_then(|kd| self.cell(rank, l, kd));
        known.clear();
        known.extend(
            leaves
                .iter()
                .chain(extra.iter())
                .copied()
                .filter(|&w| w != current && self.lcp(w, key) > l)
                .chain(cell_cand),
        );
        known.sort_unstable();
        known.dedup();
        if let Some(best_lcp) = known.iter().map(|&w| self.lcp(w, key)).max() {
            let bucket = known
                .iter()
                .copied()
                .filter(|&w| self.lcp(w, key) == best_lcp);
            let chosen = match self.config.mode {
                RoutingMode::LocalityAware => bucket.min_by(|&a, &b| {
                    self.proximity(current, a)
                        .total_cmp(&self.proximity(current, b))
                        .then(a.cmp(&b))
                }),
                RoutingMode::GreedyPrefix => {
                    bucket.min_by_key(|&w| (self.ring_abs(w, key), w.value()))
                }
            };
            if let Some(chosen) = chosen {
                return Some(chosen);
            }
        }

        // 3. Same prefix length but numerically closer. Table rows below
        //    `l` share fewer digits with the key and cannot qualify.
        known.clear();
        known.extend_from_slice(leaves);
        known.extend_from_slice(extra);
        let arity = 1u16 << self.config.digit_bits;
        for r in l..self.config.digit_count {
            for c in 0..arity {
                if let Some(w) = self.cell(rank, r, c) {
                    known.push(w);
                }
            }
        }
        known
            .iter()
            .copied()
            .filter(|&w| w != current && self.lcp(w, key) >= l)
            .map(|w| (self.ring_abs(w, key), w.value()))
            .filter(|&cand| cand < cur_key)
            .min()
            .map(|(_, w)| Id::new(w))
    }

    /// Route a query for `key` from `from`, resolving auxiliary sets
    /// through `aux_of` (all members are live in an arena, so there are
    /// no failed probes). Returns `None` when `from` is not a member or
    /// a hop leaves the arena — unreachable for engine-produced inputs,
    /// kept total rather than panicking.
    pub fn route_with_aux<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        scratch: &mut ArenaScratch,
    ) -> Option<ArenaRoute>
    where
        F: Fn(Id) -> &'a [Id],
    {
        let mut rank = self.rank_of(from)?;
        let owner = self.true_owner(key)?;
        let mut hops = 0u32;
        loop {
            if hops >= self.config.hop_limit {
                return Some(ArenaRoute {
                    outcome: RouteOutcome::HopLimit,
                    hops,
                });
            }
            let current = self.ids[rank];
            match self.next_hop(rank, key, aux_of(current), scratch) {
                None => {
                    let outcome = if current == owner {
                        RouteOutcome::Success
                    } else if self.knows_closer(rank, key, aux_of(current), scratch) {
                        RouteOutcome::DeadEnd(current)
                    } else {
                        RouteOutcome::WrongOwner(current)
                    };
                    return Some(ArenaRoute { outcome, hops });
                }
                Some(next) => {
                    hops += 1;
                    rank = self.rank_of(next)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PastryNetwork;
    use peercache_id::IdSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_ids(space: IdSpace, n: usize, seed: u64) -> Vec<Id> {
        // Deterministic spread-out ids, distinct by construction.
        let size = space.size().unwrap();
        (0..n)
            .map(|i| Id::new((i as u128 * size / n as u128 + u128::from(seed % 7)) & (size - 1)))
            .collect()
    }

    fn arena(n: usize) -> (PastryArena, PastryNetwork) {
        let space = IdSpace::new(10).unwrap();
        let config = PastryConfig::new(space, 1);
        let ids = sample_ids(space, n, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let net = PastryNetwork::build(config, &ids, &mut rng);
        (PastryArena::new(config, ids), net)
    }

    #[test]
    fn true_owner_matches_materialised_network() {
        let (arena, net) = arena(48);
        for key in 0..1024u128 {
            assert_eq!(
                arena.true_owner(Id::new(key)),
                net.true_owner(Id::new(key)),
                "owner of {key}"
            );
        }
    }

    #[test]
    fn leaf_sets_match_materialised_network() {
        let (arena, net) = arena(48);
        let mut buf = Vec::new();
        for (rank, &id) in arena.ids().iter().enumerate() {
            arena.leaves_into(rank, &mut buf);
            assert_eq!(buf, net.node(id).unwrap().leaves, "leaves of {id}");
        }
    }

    #[test]
    fn leaf_sets_handle_tiny_rings() {
        let space = IdSpace::new(10).unwrap();
        let config = PastryConfig::new(space, 1);
        for n in 1..=5 {
            let ids = sample_ids(space, n, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let net = PastryNetwork::build(config, &ids, &mut rng);
            let a = PastryArena::new(config, ids);
            let mut buf = Vec::new();
            for (rank, &id) in a.ids().iter().enumerate() {
                a.leaves_into(rank, &mut buf);
                assert_eq!(buf, net.node(id).unwrap().leaves, "n={n} leaves of {id}");
            }
        }
    }

    #[test]
    fn cells_hold_structurally_valid_entries() {
        let (arena, _) = arena(64);
        let space = arena.config().space;
        for rank in 0..arena.len() {
            let owner = arena.ids()[rank];
            for l in 0..arena.config().digit_count {
                for c in 0..2u16 {
                    if let Some(entry) = arena.cell(rank, l, c) {
                        assert_ne!(entry, owner);
                        assert_eq!(
                            space.common_prefix_digits(owner, entry, 1).unwrap(),
                            l,
                            "cell ({l},{c}) of {owner} shares exactly l digits"
                        );
                        assert_eq!(space.digit(entry, l, 1).unwrap(), c);
                    }
                }
            }
        }
    }

    #[test]
    fn own_digit_column_stays_empty() {
        let (arena, _) = arena(64);
        let space = arena.config().space;
        for rank in 0..arena.len() {
            let owner = arena.ids()[rank];
            for l in 0..arena.config().digit_count {
                let own = space.digit(owner, l, 1).unwrap();
                assert_eq!(arena.cell(rank, l, own), None);
            }
        }
    }

    #[test]
    fn routing_reaches_the_true_owner_from_everywhere() {
        let (arena, _) = arena(48);
        let mut scratch = ArenaScratch::new();
        for &from in arena.ids() {
            for key in (0..1024u128).step_by(37) {
                let key = Id::new(key);
                let route = arena
                    .route_with_aux(from, key, |_| &[], &mut scratch)
                    .expect("member origin");
                assert!(
                    route.is_success(),
                    "route {from} → {key} ended {:?}",
                    route.outcome
                );
                assert!(route.hops <= arena.config().hop_limit);
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (arena, _) = arena(48);
        let mut s1 = ArenaScratch::new();
        let mut s2 = ArenaScratch::new();
        let aux = [arena.ids()[7], arena.ids()[31]];
        for key in (0..1024u128).step_by(101) {
            let a = arena.route_with_aux(arena.ids()[0], Id::new(key), |_| &aux[..], &mut s1);
            let b = arena.route_with_aux(arena.ids()[0], Id::new(key), |_| &aux[..], &mut s2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn core_neighbors_are_sorted_distinct_members() {
        let (arena, _) = arena(48);
        let mut buf = Vec::new();
        for rank in 0..arena.len() {
            arena.core_neighbors_into(rank, &mut buf);
            assert!(buf.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
            assert!(!buf.contains(&arena.ids()[rank]));
            for &w in &buf {
                assert!(arena.rank_of(w).is_some(), "all entries are members");
            }
        }
    }
}
