//! Property-based failure injection for the Pastry overlay: arbitrary
//! join/fail/leave/repair/route interleavings must never panic, and a
//! repaired overlay must route perfectly.

use peercache_id::{Id, IdSpace};
use peercache_pastry::{PastryConfig, PastryNetwork, RouteOutcome, RoutingMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Op {
    Join(u16),
    Fail(u16),
    Leave(u16),
    Repair(u16),
    Route(u16, u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..512).prop_map(Op::Join),
            (0u16..512).prop_map(Op::Fail),
            (0u16..512).prop_map(Op::Leave),
            (0u16..512).prop_map(Op::Repair),
            (0u16..512, 0u16..512).prop_map(|(a, b)| Op::Route(a, b)),
        ],
        1..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_op_sequences_never_panic(seq in ops(), locality in proptest::bool::ANY) {
        let space = IdSpace::new(9).unwrap();
        let mode = if locality {
            RoutingMode::LocalityAware
        } else {
            RoutingMode::GreedyPrefix
        };
        let config = PastryConfig::new(space, 1).with_mode(mode);
        let seed: Vec<Id> = (0..8).map(|i| Id::new(i * 61 + 3)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = PastryNetwork::build(config, &seed, &mut rng);
        for op in seq {
            match op {
                Op::Join(v) => {
                    let _ = net.join(space.normalize(u128::from(v)), (0.1, 0.9));
                }
                Op::Fail(v) if net.len() > 1 => {
                    let _ = net.fail(space.normalize(u128::from(v)));
                }
                Op::Leave(v) if net.len() > 1 => {
                    let _ = net.leave(space.normalize(u128::from(v)));
                }
                Op::Repair(v) => {
                    let id = space.normalize(u128::from(v));
                    if net.is_live(id) {
                        net.refresh_from_truth(id);
                    }
                }
                Op::Route(from, key) => {
                    let from = space.normalize(u128::from(from));
                    if net.is_live(from) {
                        let res = net.route(from, space.normalize(u128::from(key))).unwrap();
                        prop_assert!(res.hops <= net.config().hop_limit);
                    }
                }
                _ => {}
            }
        }
        // Heal and verify.
        net.repair_all();
        let live = net.live_ids();
        for &from in live.iter().take(6) {
            for key in [0u128, 77, 200, 311, 444, 511] {
                let res = net.route(from, Id::new(key)).unwrap();
                prop_assert_eq!(
                    res.outcome.clone(),
                    RouteOutcome::Success,
                    "repaired overlay must route: from {} key {} got {:?}",
                    from, key, res.outcome
                );
            }
        }
    }

    #[test]
    fn leaf_sets_stay_symmetric_after_repair(seq in ops()) {
        let space = IdSpace::new(9).unwrap();
        let config = PastryConfig::new(space, 1);
        let seed: Vec<Id> = (0..8).map(|i| Id::new(i * 61 + 3)).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = PastryNetwork::build(config, &seed, &mut rng);
        for op in seq {
            match op {
                Op::Join(v) => { let _ = net.join(space.normalize(u128::from(v)), (0.5, 0.5)); }
                Op::Fail(v) if net.len() > 1 => { let _ = net.fail(space.normalize(u128::from(v))); }
                _ => {}
            }
        }
        net.repair_all();
        // After repair every leaf entry is live, excludes self, and has
        // no duplicates.
        for id in net.live_ids() {
            let node = net.node(id).unwrap();
            let mut leaves = node.leaves.clone();
            prop_assert!(!leaves.contains(&id));
            prop_assert!(leaves.iter().all(|&l| net.is_live(l)));
            leaves.sort();
            let before = leaves.len();
            leaves.dedup();
            prop_assert_eq!(before, leaves.len(), "duplicate leaves at {}", id);
        }
    }
}
