//! Protocol-level tests of the Pastry overlay: ownership, prefix routing,
//! locality mode, churn, and auxiliary-neighbor routing.

use peercache_id::{Id, IdSpace};
use peercache_pastry::{PastryConfig, PastryNetwork, RouteOutcome, RoutingMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn id(v: u128) -> Id {
    Id::new(v)
}

fn random_net(bits: u8, d: u8, n: usize, mode: RoutingMode, seed: u64) -> (PastryNetwork, Vec<Id>) {
    let space = IdSpace::new(bits).expect("valid bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut ids = Vec::new();
    while ids.len() < n {
        let v = space.normalize(u128::from(rng.gen::<u64>()));
        if seen.insert(v) {
            ids.push(v);
        }
    }
    let config = PastryConfig::new(space, d).with_mode(mode);
    let net = PastryNetwork::build(config, &ids, &mut rng);
    (net, ids)
}

#[test]
fn true_owner_is_numerically_closest() {
    let space = IdSpace::new(4).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let config = PastryConfig::new(space, 1);
    let net = PastryNetwork::build(config, &[id(2), id(7), id(13)], &mut rng);
    assert_eq!(net.true_owner(id(7)), Some(id(7)));
    assert_eq!(
        net.true_owner(id(5)),
        Some(id(7)),
        "7 is 2 away, 2 is 3 away"
    );
    assert_eq!(
        net.true_owner(id(4)),
        Some(id(2)),
        "tie 2 vs 7 → smaller id"
    );
    assert_eq!(
        net.true_owner(id(15)),
        Some(id(13)),
        "wraps: 13 is 2 away, 2 is 3"
    );
    assert_eq!(net.true_owner(id(0)), Some(id(2)));
}

#[test]
fn routing_reaches_owner_from_everywhere() {
    for mode in [RoutingMode::GreedyPrefix, RoutingMode::LocalityAware] {
        let (mut net, ids) = random_net(16, 1, 48, mode, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for &from in &ids {
            for _ in 0..10 {
                let key = id(u128::from(rng.gen::<u16>()));
                let res = net.route(from, key).unwrap();
                assert_eq!(
                    res.outcome,
                    RouteOutcome::Success,
                    "mode {mode:?} from {from} key {key}"
                );
                assert_eq!(res.path.last(), Some(&net.true_owner(key).unwrap()));
                assert_eq!(res.failed_probes, 0);
            }
        }
    }
}

#[test]
fn stable_hops_within_logarithmic_bound() {
    let (mut net, ids) = random_net(32, 1, 128, RoutingMode::GreedyPrefix, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut max_hops = 0;
    for _ in 0..2000 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        let res = net.route(from, key).unwrap();
        assert!(res.is_success());
        max_hops = max_hops.max(res.hops);
    }
    // Prefix routing: ≈ log₂ n + leaf-set step; 128 nodes → ≲ 12.
    assert!(max_hops <= 12, "max hops {max_hops}");
}

#[test]
fn base16_digits_route_in_fewer_hops() {
    let (mut net1, ids) = random_net(32, 1, 128, RoutingMode::GreedyPrefix, 5);
    let (mut net4, ids4) = random_net(32, 4, 128, RoutingMode::GreedyPrefix, 5);
    assert_eq!(ids, ids4, "same seed → same membership");
    let mut rng = StdRng::seed_from_u64(6);
    let (mut h1, mut h4) = (0u64, 0u64);
    for _ in 0..500 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        h1 += u64::from(net1.route(from, key).unwrap().hops);
        h4 += u64::from(net4.route(from, key).unwrap().hops);
    }
    assert!(h4 < h1, "base-16 ({h4}) must beat base-2 ({h1})");
}

#[test]
fn aux_neighbors_shorten_routes() {
    let (mut net, ids) = random_net(32, 1, 256, RoutingMode::GreedyPrefix, 7);
    let from = ids[0];
    let far = *ids
        .iter()
        .max_by_key(|&&t| net.route(from, t).unwrap().hops)
        .unwrap();
    let before = net.route(from, far).unwrap().hops;
    assert!(before >= 2);
    net.set_aux(from, vec![far]).unwrap();
    let after = net.route(from, far).unwrap();
    assert!(after.is_success());
    assert_eq!(after.hops, 1);
}

#[test]
fn locality_mode_prefers_near_candidates() {
    // The modes differ in the tie-break among equal-progress candidates.
    // With auxiliary neighbors installed everywhere the progress buckets
    // are frequently non-singleton, and the locality mode must come out
    // ahead on per-hop latency (never on hop count — both make maximal
    // prefix progress).
    let (mut greedy, ids) = random_net(32, 1, 128, RoutingMode::GreedyPrefix, 8);
    let (mut local, _) = random_net(32, 1, 128, RoutingMode::LocalityAware, 8);
    let mut rng = StdRng::seed_from_u64(9);
    for &node in &ids {
        let aux: Vec<Id> = (0..12)
            .map(|_| ids[rng.gen_range(0..ids.len())])
            .filter(|&a| a != node)
            .collect();
        greedy.set_aux(node, aux.clone()).unwrap();
        local.set_aux(node, aux).unwrap();
    }
    let (mut lat_greedy, mut lat_local) = (0.0, 0.0);
    let (mut hops_greedy, mut hops_local) = (0u64, 0u64);
    for _ in 0..400 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        let rg = greedy.route(from, key).unwrap();
        let rl = local.route(from, key).unwrap();
        assert!(rg.is_success() && rl.is_success());
        hops_greedy += u64::from(rg.hops);
        hops_local += u64::from(rl.hops);
        for w in rg.path.windows(2) {
            lat_greedy += greedy.proximity(w[0], w[1]);
        }
        for w in rl.path.windows(2) {
            lat_local += local.proximity(w[0], w[1]);
        }
    }
    // Normalise by hops: locality buys cheaper hops, not fewer.
    let per_hop_greedy = lat_greedy / hops_greedy as f64;
    let per_hop_local = lat_local / hops_local as f64;
    assert!(
        per_hop_local < per_hop_greedy,
        "locality per-hop latency {per_hop_local:.4} must beat greedy {per_hop_greedy:.4}"
    );
}

#[test]
fn join_is_routable_after_announcement_and_repair() {
    let (mut net, ids) = random_net(16, 1, 32, RoutingMode::GreedyPrefix, 10);
    let newcomer = id(40_000);
    assert!(!ids.contains(&newcomer));
    net.join(newcomer, (0.5, 0.5)).unwrap();
    net.repair_all();
    for &from in &ids {
        let res = net.route(from, newcomer).unwrap();
        assert_eq!(res.outcome, RouteOutcome::Success, "from {from}");
        assert_eq!(res.path.last(), Some(&newcomer));
    }
}

#[test]
fn failure_heals_after_repair() {
    let (mut net, ids) = random_net(16, 1, 64, RoutingMode::GreedyPrefix, 11);
    let victim = ids[7];
    net.fail(victim).unwrap();
    net.repair_all();
    for &from in ids.iter().filter(|&&f| f != victim).take(20) {
        let res = net.route(from, victim).unwrap();
        assert!(res.is_success(), "key of dead node now owned elsewhere");
        assert!(!net.node(from).unwrap().known_neighbors().contains(&victim));
    }
}

#[test]
fn graceful_leave_patches_leaf_sets() {
    let (mut net, ids) = random_net(16, 1, 32, RoutingMode::GreedyPrefix, 12);
    let leaver = ids[5];
    let members = net.node(leaver).unwrap().leaves.clone();
    net.leave(leaver).unwrap();
    for m in members {
        if net.is_live(m) {
            assert!(!net.node(m).unwrap().leaves.contains(&leaver));
        }
    }
}

#[test]
fn set_aux_drops_dead_entries() {
    let (mut net, ids) = random_net(16, 1, 16, RoutingMode::GreedyPrefix, 13);
    let ghost = id(65_535);
    assert!(!ids.contains(&ghost));
    net.set_aux(ids[0], vec![ids[1], ghost]).unwrap();
    assert_eq!(net.node(ids[0]).unwrap().aux, vec![ids[1]]);
}

#[test]
fn membership_errors_are_reported() {
    let (mut net, ids) = random_net(16, 1, 8, RoutingMode::GreedyPrefix, 14);
    assert!(net.join(ids[0], (0.0, 0.0)).is_err(), "duplicate");
    assert!(net.join(id(1 << 20), (0.0, 0.0)).is_err(), "out of space");
    let ghost = id(65_534);
    assert!(!ids.contains(&ghost));
    assert!(net.fail(ghost).is_err());
    assert!(net.leave(ghost).is_err());
    assert!(net.set_aux(ghost, vec![]).is_err());
    assert!(net.route(ghost, id(0)).is_err());
}

#[test]
fn single_node_owns_everything() {
    let space = IdSpace::new(8).unwrap();
    let mut rng = StdRng::seed_from_u64(15);
    let mut net = PastryNetwork::build(PastryConfig::new(space, 1), &[id(77)], &mut rng);
    for key in (0..256u128).step_by(17) {
        let res = net.route(id(77), id(key)).unwrap();
        assert!(res.is_success());
        assert_eq!(res.hops, 0);
    }
}

#[test]
fn routing_table_rows_hold_correct_prefix_lengths() {
    let (net, ids) = random_net(16, 1, 64, RoutingMode::GreedyPrefix, 16);
    let space = IdSpace::new(16).unwrap();
    for &nid in ids.iter().take(8) {
        let node = net.node(nid).unwrap();
        for (l, row) in node.rows.iter().enumerate() {
            for entry in row.iter().flatten() {
                let lcp = space.common_prefix_digits(nid, *entry, 1).unwrap();
                assert_eq!(lcp as usize, l, "row {l} entry {entry}");
            }
        }
    }
}
