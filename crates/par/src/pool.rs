//! The scoped worker pool behind [`par_map`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Process-wide default thread count; 0 means "auto-detect".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 means "none".
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True on pool worker threads: nested maps run serially inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide default thread count (`0` restores auto-detect).
///
/// This is what the bench binaries' `--threads N` flag calls; prefer the
/// scoped [`with_threads`] in tests, which cannot leak across threads.
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Run `f` with the thread count fixed to `n` on the current thread (and
/// every `par_map` it issues), restoring the previous override afterwards
/// — even on panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = THREAD_OVERRIDE.with(|o| {
        let prev = o.get();
        o.set(n);
        Restore(prev)
    });
    f()
}

/// The thread count [`par_map`] will use, resolved as documented on the
/// crate root: scoped override → process default → `PEERCACHE_THREADS` →
/// available parallelism (at least 1).
pub fn threads() -> usize {
    let scoped = THREAD_OVERRIDE.with(Cell::get);
    if scoped != 0 {
        return scoped;
    }
    let default = DEFAULT_THREADS.load(Ordering::Relaxed);
    if default != 0 {
        return default;
    }
    if let Ok(raw) = std::env::var("PEERCACHE_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n != 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` on [`threads`] worker threads, preserving input
/// order in the returned vector.
///
/// See the crate root for the determinism contract, nesting behaviour and
/// panic propagation.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(threads(), items, f)
}

/// Map `f` over `items` in chunks of `chunk_size`, preserving input order
/// in the flattened result.
///
/// Where [`par_map`] dispatches one task per item, this dispatches one
/// task per *chunk*: `f` receives the chunk's starting index and the chunk
/// slice, and returns one output per input (the chunk results are
/// concatenated in input order). Use it when per-item work is too small to
/// amortize a dispatch, or when a task wants to reuse scratch state across
/// the items of its chunk. The determinism contract is unchanged — the
/// serial path applies `f` to the exact same chunks in order, so results
/// are bit-identical at any thread count as long as `f` is a pure function
/// of `(start, chunk)`.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let chunk_size = chunk_size.max(1);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, chunk)| (c * chunk_size, chunk))
        .collect();
    let per_chunk = par_map_with(threads(), &chunks, |_, &(start, chunk)| f(start, chunk));
    let mut out = Vec::with_capacity(items.len());
    for part in per_chunk {
        out.extend(part);
    }
    out
}

/// The deterministic shard partition used by the sharded simulation
/// engine: `shards` contiguous, maximally balanced `[start, end)` ranges
/// over `0..len`, in shard order. Shard `s` owns
/// `[⌊s·len/S⌋, ⌊(s+1)·len/S⌋)`, so the partition is a pure function of
/// `(len, shards)` — never of the thread count — and every consumer
/// (selection fan-outs, arena layouts, bench gauges) slices identically.
///
/// `shards` is clamped to at least 1; shards beyond `len` come out empty.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    (0..shards)
        .map(|s| (s * len / shards, (s + 1) * len / shards))
        .collect()
}

/// Map `f` over mutable items on the pool, preserving input order in the
/// returned vector — the fan-out behind per-shard arenas, where each task
/// owns one shard's mutable state (counters, optimizers, slabs) for its
/// whole run.
///
/// The determinism contract is the same as [`par_map`]'s: each item is
/// visited exactly once, by exactly one worker, and the result vector is
/// in input order. Tasks must not communicate; each `&mut T` is handed to
/// a single task for exclusive use.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = threads();
    let len = items.len();
    if threads <= 1 || len <= 1 || IN_POOL.with(Cell::get) {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Same scheme as `par_map_with`, with a hand-off cell per item: a
    // worker claims index `i` by atomic increment and *takes* the `&mut T`
    // out of its cell, so exclusive access is enforced by construction.
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<&mut T>>> = items.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let mut panic_payload = None;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(len))
            .map(|_| {
                scope.spawn(|| {
                    IN_POOL.with(|p| p.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let item = match cells[i].lock() {
                            Ok(mut cell) => cell.take(),
                            Err(poisoned) => poisoned.into_inner().take(),
                        };
                        // The atomic hands each index to one worker, so
                        // the cell is always still full here.
                        let Some(item) = item else { break };
                        let result = f(i, item);
                        match slots[i].lock() {
                            Ok(mut slot) => *slot = Some(result),
                            Err(poisoned) => *poisoned.into_inner() = Some(result),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            match inner {
                Some(r) => r,
                None => unreachable!("par_map_mut slot left unfilled after scope join"),
            }
        })
        .collect()
}

/// [`par_map`] with an explicit thread count (`threads <= 1` runs the
/// serial inline path; so does any call issued from inside a pool worker).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Work-stealing by atomic index; each task writes its own slot, so
    // output order is input order no matter how the OS schedules workers.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let mut panic_payload = None;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(len))
            .map(|_| {
                scope.spawn(|| {
                    IN_POOL.with(|p| p.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let result = f(i, &items[i]);
                        match slots[i].lock() {
                            Ok(mut slot) => *slot = Some(result),
                            // A sibling worker's panic can only poison its
                            // own slot, never this one; recover the guard.
                            Err(poisoned) => *poisoned.into_inner() = Some(result),
                        }
                    }
                })
            })
            .collect();
        // Join explicitly to capture the first worker's original panic
        // payload (`thread::scope` alone would replace it with its own
        // "a scoped thread panicked" message).
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            match inner {
                Some(r) => r,
                // Scope exit proves every index < len was claimed and
                // completed (a panic would have propagated above).
                None => unreachable!("par_map slot left unfilled after scope join"),
            }
        })
        .collect()
}
