//! # peercache-par
//!
//! A std-only scoped thread pool for the experiment sweeps: the paper's
//! evaluation (§VI) runs dozens of independent `(n, k, α, strategy)`
//! configurations per figure, and every one of them is an embarrassingly
//! parallel task. The workspace vendors std-only dependency stand-ins, so
//! this crate provides the minimal parallel-map machinery on plain
//! [`std::thread::scope`] instead of pulling in rayon.
//!
//! ## Determinism contract
//!
//! [`par_map`] guarantees that its result is **bit-identical regardless of
//! the thread count** (including the serial `threads = 1` path), provided
//! the task closure is a pure function of its `(index, item)` arguments:
//!
//! * results are returned in input order, whatever order tasks finish in;
//! * tasks never share mutable state through the pool;
//! * any randomness a task needs must be derived from its index via
//!   [`derive_seed`], never drawn from an RNG stream shared across tasks
//!   (a shared stream would make results depend on scheduling order).
//!
//! ## Nesting
//!
//! A `par_map` issued from inside a pool worker runs **serially inline**.
//! Outer-level sweeps therefore own the hardware, and library code can use
//! `par_map` freely without oversubscribing when a caller has already
//! parallelised a coarser loop. This changes scheduling only — by the
//! determinism contract the results are identical either way.
//!
//! ## Thread-count resolution
//!
//! [`threads`] resolves, in order: a scoped [`with_threads`] override on
//! the current thread, the process-wide [`set_threads`] default (the
//! `--threads N` flag of the bench binaries), the `PEERCACHE_THREADS`
//! environment variable, and finally [`std::thread::available_parallelism`].
//!
//! ## Panic propagation
//!
//! A panicking task aborts the whole map: the panic payload is re-raised
//! on the calling thread once every worker has drained (no result is ever
//! silently dropped).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod seed;

pub use pool::{
    par_map, par_map_chunked, par_map_mut, par_map_with, set_threads, shard_bounds, threads,
    with_threads,
};
pub use seed::derive_seed;
