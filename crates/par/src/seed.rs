//! Deterministic per-task seed derivation.

/// Derive an independent RNG seed for task `stream` of a sweep seeded
/// with `master`.
///
/// This is the SplitMix64 finalizer over `master + (stream + 1)·φ₆₄`
/// (the golden-ratio increment — applied before finalizing, as SplitMix64
/// itself does, so the all-zero input does not fix to zero). Two
/// properties matter here:
///
/// * **determinism** — the derived seed depends only on `(master,
///   stream)`, never on which worker thread runs the task or in what
///   order, so parallel sweeps reproduce serial ones bit-for-bit;
/// * **decorrelation** — nearby `(master, stream)` pairs map to
///   well-mixed outputs, so per-task `StdRng` streams do not overlap in
///   practice the way raw `master + stream` seeding would.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn streams_differ() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "derived seeds collide");
    }

    #[test]
    fn masters_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn zero_inputs_are_mixed() {
        // The finalizer must not map the all-zero input to zero.
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 1), derive_seed(0, 0));
    }
}
