//! Unit tests for the scoped pool: ordering, panic propagation, nested
//! scopes, and the 1-thread fallback.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use peercache_par::{derive_seed, par_map, par_map_with, with_threads};

#[test]
fn preserves_input_order() {
    let items: Vec<usize> = (0..257).collect();
    let out = par_map_with(8, &items, |i, &x| {
        assert_eq!(i, x, "index matches item position");
        x * 2
    });
    let expected: Vec<usize> = items.iter().map(|&x| x * 2).collect();
    assert_eq!(out, expected);
}

#[test]
fn order_is_independent_of_thread_count() {
    let items: Vec<u64> = (0..100).collect();
    let f = |i: usize, &x: &u64| derive_seed(x, i as u64);
    let serial = par_map_with(1, &items, f);
    for threads in [2, 3, 8, 64] {
        assert_eq!(
            par_map_with(threads, &items, f),
            serial,
            "{threads} threads"
        );
    }
}

#[test]
fn one_thread_fallback_runs_on_caller() {
    let caller = std::thread::current().id();
    let out = par_map_with(1, &[1, 2, 3], |_, &x| {
        assert_eq!(std::thread::current().id(), caller, "serial path is inline");
        x + 1
    });
    assert_eq!(out, vec![2, 3, 4]);
}

#[test]
fn empty_and_singleton_inputs() {
    let empty: Vec<u32> = Vec::new();
    assert!(par_map_with(4, &empty, |_, &x| x).is_empty());
    assert_eq!(par_map_with(4, &[9], |_, &x| x * x), vec![81]);
}

#[test]
fn propagates_panics() {
    let items: Vec<usize> = (0..32).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        par_map_with(4, &items, |_, &x| {
            assert!(x != 17, "poison pill");
            x
        })
    }));
    let err = result.expect_err("panic must cross the pool boundary");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".to_owned());
    assert!(msg.contains("poison pill"), "got: {msg}");
}

#[test]
fn nested_scopes_run_inline_and_correctly() {
    let outer: Vec<u64> = (0..8).collect();
    let nested_parallelism = AtomicUsize::new(0);
    let out = par_map_with(4, &outer, |_, &x| {
        let caller = std::thread::current().id();
        let inner: Vec<u64> = (0..5).map(|j| x * 10 + j).collect();
        let inner_out = par_map_with(4, &inner, |_, &y| {
            if std::thread::current().id() != caller {
                nested_parallelism.fetch_add(1, Ordering::Relaxed);
            }
            y + 1
        });
        inner_out.iter().sum::<u64>()
    });
    let expected: Vec<u64> = outer
        .iter()
        .map(|&x| (0..5).map(|j| x * 10 + j + 1).sum())
        .collect();
    assert_eq!(out, expected);
    assert_eq!(
        nested_parallelism.load(Ordering::Relaxed),
        0,
        "nested maps must run inline on the worker"
    );
}

#[test]
fn uses_multiple_threads_when_asked() {
    // Smoke-test that the parallel path actually fans out: with 4 workers
    // over 64 blocking-free tasks we should see more than one distinct
    // thread id (guaranteed unless the host serialises everything, in
    // which case the assertion on ids collapsing to 1 still holds the
    // ordering guarantees above).
    let items: Vec<usize> = (0..64).collect();
    let ids = Mutex::new(std::collections::HashSet::new());
    par_map_with(4, &items, |_, _| {
        ids.lock()
            .expect("test mutex")
            .insert(std::thread::current().id());
    });
    let caller_inline = ids
        .lock()
        .expect("test mutex")
        .contains(&std::thread::current().id());
    assert!(!caller_inline, "parallel path runs on spawned workers only");
}

#[test]
fn with_threads_overrides_and_restores() {
    with_threads(1, || {
        assert_eq!(peercache_par::threads(), 1);
        let caller = std::thread::current().id();
        par_map(&[1, 2], |_, _| {
            assert_eq!(std::thread::current().id(), caller);
        });
        // Nested override wins, then restores.
        with_threads(3, || assert_eq!(peercache_par::threads(), 3));
        assert_eq!(peercache_par::threads(), 1);
    });
}

#[test]
fn with_threads_restores_on_panic() {
    let before = peercache_par::threads();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        with_threads(2, || panic!("boom"));
    }));
    assert_eq!(peercache_par::threads(), before);
}

#[test]
fn shard_bounds_partition_exactly() {
    for len in [0usize, 1, 7, 64, 1000, 100_003] {
        for shards in [1usize, 2, 4, 16, 63] {
            let bounds = peercache_par::shard_bounds(len, shards);
            assert_eq!(bounds.len(), shards);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds[shards - 1].1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            // Maximally balanced: sizes differ by at most one.
            let sizes: Vec<usize> = bounds.iter().map(|&(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min(), sizes.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1);
        }
    }
    // Clamped: zero shards behaves as one.
    assert_eq!(peercache_par::shard_bounds(5, 0), vec![(0, 5)]);
}

#[test]
fn par_map_mut_visits_each_item_once_in_order() {
    for threads in [1usize, 4] {
        with_threads(threads, || {
            let mut items: Vec<u64> = (0..257).collect();
            let out = peercache_par::par_map_mut(&mut items, |i, item| {
                *item += 1;
                (i, *item)
            });
            for (i, &(idx, val)) in out.iter().enumerate() {
                assert_eq!(idx, i, "input order preserved");
                assert_eq!(val, i as u64 + 1, "each item mutated exactly once");
            }
            assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        });
    }
}

#[test]
fn par_map_mut_propagates_panics() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            let mut items: Vec<u64> = (0..32).collect();
            peercache_par::par_map_mut(&mut items, |i, _| {
                assert!(i != 7, "boom at 7");
            });
        });
    }));
    assert!(result.is_err(), "worker panic reaches the caller");
}
