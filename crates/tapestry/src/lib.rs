//! A Tapestry overlay simulator.
//!
//! The paper notes (§I) that "the techniques presented for Pastry can be
//! directly applied to Tapestry" — this crate demonstrates it. Tapestry
//! routes by prefix digits like Pastry, but has **no leaf set**: where a
//! routing-table cell is empty, *surrogate routing* deterministically
//! bumps to the next filled digit value in the same row (wrapping), and a
//! key's owner is its **surrogate root** — the unique node where that
//! procedure terminates from anywhere in the overlay.
//!
//! Because Tapestry's hop structure is the same digits-to-fix geometry as
//! Pastry's, the paper's [`PastryProblem`]-based selection applies
//! unchanged: auxiliary neighbors act as extra routing-table entries and
//! are preferred whenever they advance the prefix further (§III-1).
//!
//! [`PastryProblem`]: https://docs.rs/peercache-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;

pub use network::{NetworkError, TapestryConfig, TapestryNetwork, TapestryNode};

use peercache_id::Id;

/// How a route ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Terminated at the key's surrogate root.
    Success,
    /// Terminated at a node that wrongly believes it is the root (stale
    /// tables under churn).
    WrongOwner(Id),
    /// No live candidate made progress.
    DeadEnd(Id),
    /// Hop budget exhausted (defensive).
    HopLimit,
}

/// The result of routing one query.
#[derive(Clone, Debug)]
pub struct RouteResult {
    /// How the route ended.
    pub outcome: RouteOutcome,
    /// Successful forwards taken.
    pub hops: u32,
    /// Dead neighbors probed (timeouts), not counted as hops.
    pub failed_probes: u32,
    /// Nodes visited, starting at the source.
    pub path: Vec<Id>,
}

impl RouteResult {
    /// Whether the route reached the true surrogate root.
    pub fn is_success(&self) -> bool {
        self.outcome == RouteOutcome::Success
    }
}
