use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure, RouteTrace, StepScratch, WalkStep};
use peercache_id::{Id, IdSpace};

use crate::{RouteOutcome, RouteResult};

/// Configuration of a Tapestry deployment.
#[derive(Copy, Clone, Debug)]
pub struct TapestryConfig {
    /// The identifier space.
    pub space: IdSpace,
    /// Digit width in bits.
    pub digit_bits: u8,
    /// Defensive per-route hop budget.
    pub hop_limit: u32,
}

impl TapestryConfig {
    /// A configuration over `space` with digit width `d` and a
    /// `4·⌈b/d⌉` hop budget.
    pub fn new(space: IdSpace, digit_bits: u8) -> Self {
        let digits = u32::from(
            space
                .digit_count(digit_bits)
                .expect("digit width must fit the id space"),
        );
        TapestryConfig {
            space,
            digit_bits,
            hop_limit: 4 * digits,
        }
    }
}

/// Errors from membership operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The node id is already live.
    AlreadyPresent(Id),
    /// The node id is not live.
    NotPresent(Id),
    /// The id does not fit the configured id space.
    OutOfSpace(Id),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::AlreadyPresent(id) => write!(f, "node {id} already in the overlay"),
            NetworkError::NotPresent(id) => write!(f, "node {id} not in the overlay"),
            NetworkError::OutOfSpace(id) => write!(f, "node {id} outside the id space"),
        }
    }
}

impl Error for NetworkError {}

/// One Tapestry node: a digit-indexed routing table (no leaf set) plus
/// auxiliary neighbors.
#[derive(Clone, Debug)]
pub struct TapestryNode {
    /// This node's identifier.
    pub id: Id,
    /// `rows[l][c]`: a node sharing exactly `l` leading digits whose
    /// digit `l` is `c`. The own-digit column is structurally empty.
    pub rows: Vec<Vec<Option<Id>>>,
    /// Auxiliary neighbors installed by the selection algorithm.
    pub aux: Vec<Id>,
}

impl TapestryNode {
    fn new(id: Id, digit_count: u8, arity: usize) -> Self {
        TapestryNode {
            id,
            rows: vec![vec![None; arity]; digit_count as usize],
            aux: Vec::new(),
        }
    }

    /// All distinct known nodes (table + auxiliaries, self excluded).
    pub fn known_neighbors(&self) -> Vec<Id> {
        self.known_neighbors_with(&self.aux)
    }

    /// [`known_neighbors`](Self::known_neighbors) with `extra` standing in
    /// for the installed auxiliary set, so read-only routing can resolve
    /// auxiliary pointers from a shared side table over one immutable
    /// snapshot.
    pub fn known_neighbors_with(&self, extra: &[Id]) -> Vec<Id> {
        let mut out: Vec<Id> = self
            .rows
            .iter()
            .flatten()
            .flatten()
            .copied()
            .chain(extra.iter().copied())
            .filter(|&n| n != self.id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The core neighbors (routing table only) — the `N_s` for selection.
    pub fn core_neighbors(&self) -> Vec<Id> {
        let mut out = Vec::new();
        self.core_neighbors_into(&mut out);
        out
    }

    /// [`core_neighbors`](Self::core_neighbors) into a caller-owned
    /// buffer — the arena-facing walk API: a sweep over many nodes reuses
    /// one buffer instead of allocating a fresh vector per node.
    pub fn core_neighbors_into(&self, out: &mut Vec<Id>) {
        out.clear();
        out.extend(
            self.rows
                .iter()
                .flatten()
                .flatten()
                .copied()
                .filter(|&n| n != self.id),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Drop a discovered-dead neighbor.
    pub fn forget(&mut self, dead: Id) {
        for row in &mut self.rows {
            for cell in row.iter_mut() {
                if *cell == Some(dead) {
                    *cell = None;
                }
            }
        }
        self.aux.retain(|&a| a != dead);
    }
}

/// The whole simulated Tapestry overlay.
///
/// ```
/// use peercache_id::{Id, IdSpace};
/// use peercache_tapestry::{TapestryConfig, TapestryNetwork};
///
/// let space = IdSpace::new(4).unwrap();
/// let ids: Vec<Id> = [0b0000u128, 0b0110, 0b1011].map(Id::new).to_vec();
/// let mut net = TapestryNetwork::build(TapestryConfig::new(space, 1), &ids);
/// // A key's owner is its surrogate root — the deepest prefix match.
/// assert_eq!(net.true_owner(Id::new(0b1010)), Some(Id::new(0b1011)));
/// let res = net.route(Id::new(0b0000), Id::new(0b1010)).unwrap();
/// assert!(res.is_success());
/// ```
#[derive(Clone)]
pub struct TapestryNetwork {
    config: TapestryConfig,
    digit_count: u8,
    arity: usize,
    nodes: BTreeMap<u128, TapestryNode>,
}

impl TapestryNetwork {
    /// An empty overlay.
    pub fn new(config: TapestryConfig) -> Self {
        let digit_count = config
            .space
            .digit_count(config.digit_bits)
            .expect("validated by TapestryConfig");
        TapestryNetwork {
            config,
            digit_count,
            arity: 1usize << config.digit_bits,
            nodes: BTreeMap::new(),
        }
    }

    /// Bootstrap a stable overlay with perfect routing state.
    ///
    /// # Panics
    /// Panics on duplicate or out-of-space ids.
    pub fn build(config: TapestryConfig, ids: &[Id]) -> Self {
        let mut net = TapestryNetwork::new(config);
        for &id in ids {
            assert!(config.space.contains(id), "node id {id} outside id space");
            let node = TapestryNode::new(id, net.digit_count, net.arity);
            assert!(
                net.nodes.insert(id.value(), node).is_none(),
                "duplicate node id {id}"
            );
        }
        for &id in ids {
            net.refresh_from_truth(id);
        }
        net
    }

    /// The configuration.
    pub fn config(&self) -> &TapestryConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: Id) -> bool {
        self.nodes.contains_key(&id.value())
    }

    /// All live node ids in order.
    pub fn live_ids(&self) -> Vec<Id> {
        self.nodes.keys().map(|&k| Id::new(k)).collect()
    }

    /// Immutable view of a node.
    pub fn node(&self, id: Id) -> Option<&TapestryNode> {
        self.nodes.get(&id.value())
    }

    fn digit(&self, id: Id, row: u8) -> usize {
        self.config
            .space
            .digit(id, row, self.config.digit_bits)
            .expect("row < digit_count") as usize
    }

    fn lcp(&self, a: Id, b: Id) -> u8 {
        self.config
            .space
            .common_prefix_digits(a, b, self.config.digit_bits)
            .expect("validated digit width")
    }

    /// The key's **surrogate root**: resolve digits left to right over the
    /// live membership; where no survivor matches the key's digit, bump
    /// the digit cyclically to the next value some survivor has
    /// (Tapestry's deterministic surrogate rule).
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut survivors: Vec<Id> = self.live_ids();
        for row in 0..self.digit_count {
            if survivors.len() == 1 {
                break;
            }
            let want = self.digit(key, row);
            for offset in 0..self.arity {
                let v = (want + offset) % self.arity;
                let next: Vec<Id> = survivors
                    .iter()
                    .copied()
                    .filter(|&s| self.digit(s, row) == v)
                    .collect();
                if !next.is_empty() {
                    survivors = next;
                    break;
                }
            }
        }
        survivors.into_iter().min()
    }

    /// Rebuild a node's routing table from global truth (bootstrap /
    /// periodic repair). Cell `(l, c)` holds the smallest-id qualifying
    /// node — the deterministic rule that keeps surrogate roots unique.
    pub fn refresh_from_truth(&mut self, id: Id) {
        let mut rows = vec![vec![None; self.arity]; self.digit_count as usize];
        for &other_raw in self.nodes.keys() {
            let other = Id::new(other_raw);
            if other == id {
                continue;
            }
            let l = self.lcp(id, other);
            if l >= self.digit_count {
                continue;
            }
            let col = self.digit(other, l);
            let cell: &mut Option<Id> = &mut rows[l as usize][col];
            // BTreeMap iteration is id-ascending, so first fill wins =
            // smallest id.
            if cell.is_none() {
                *cell = Some(other);
            }
        }
        let node = self.nodes.get_mut(&id.value()).expect("live node");
        node.rows = rows;
    }

    /// Repair every node.
    pub fn repair_all(&mut self) {
        for id in self.live_ids() {
            self.refresh_from_truth(id);
        }
    }

    /// A node joins (own state perfect; others stale until repair).
    ///
    /// # Errors
    /// [`NetworkError::AlreadyPresent`] / [`NetworkError::OutOfSpace`].
    pub fn join(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.config.space.contains(id) {
            return Err(NetworkError::OutOfSpace(id));
        }
        if self.nodes.contains_key(&id.value()) {
            return Err(NetworkError::AlreadyPresent(id));
        }
        self.nodes.insert(
            id.value(),
            TapestryNode::new(id, self.digit_count, self.arity),
        );
        self.refresh_from_truth(id);
        Ok(())
    }

    /// A node crashes without notice.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn fail(&mut self, id: Id) -> Result<(), NetworkError> {
        self.nodes
            .remove(&id.value())
            .map(|_| ())
            .ok_or(NetworkError::NotPresent(id))
    }

    /// Install the auxiliary neighbor set (dead entries dropped).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux(&mut self, id: Id, aux: Vec<Id>) -> Result<(), NetworkError> {
        let live: Vec<Id> = aux.into_iter().filter(|&a| self.is_live(a)).collect();
        let node = self
            .nodes
            .get_mut(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        node.aux = live;
        Ok(())
    }

    /// [`set_aux`](Self::set_aux) from a borrowed slice, recycling the
    /// node's installed buffer instead of taking ownership of a fresh
    /// `Vec`: the churn driver's refresh engine re-installs a retained
    /// selection every recompute tick, and at warmed capacity this
    /// installs without allocating. The live-entry filter is identical.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux_from_slice(&mut self, id: Id, aux: &[Id]) -> Result<(), NetworkError> {
        let mut live = match self.nodes.get_mut(&id.value()) {
            Some(node) => std::mem::take(&mut node.aux),
            None => return Err(NetworkError::NotPresent(id)),
        };
        live.clear();
        live.extend(aux.iter().copied().filter(|&a| self.is_live(a)));
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.aux = live;
        }
        Ok(())
    }

    /// Route a query for `key` from `from`.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route(&mut self, from: Id, key: Id) -> Result<RouteResult, NetworkError> {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let true_owner = self.true_owner(key).expect("non-empty overlay");
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(RouteResult {
                    outcome: RouteOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            match self.next_hop(current, key) {
                Some(next) if self.is_live(next) => {
                    hops += 1;
                    path.push(next);
                    current = next;
                }
                Some(next) => {
                    failed_probes += 1;
                    self.nodes
                        .get_mut(&current.value())
                        .expect("route current node is live")
                        .forget(next);
                }
                None => {
                    let outcome = if current == true_owner {
                        RouteOutcome::Success
                    } else if self.nodes[&current.value()].known_neighbors().is_empty()
                        && self.len() > 1
                    {
                        RouteOutcome::DeadEnd(current)
                    } else {
                        RouteOutcome::WrongOwner(current)
                    };
                    return Ok(RouteResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
            }
        }
    }

    /// Read-only [`route`](Self::route): auxiliary neighbors come from
    /// `aux_of` instead of the installed per-node sets, and dead entries
    /// probed along the way are counted as `failed_probes` but **not**
    /// forgotten. With every node live — the stable-mode contract — the
    /// walk is hop-for-hop identical to installing each `aux_of` set via
    /// [`set_aux`](Self::set_aux) and calling `route`, which lets a
    /// parallel sweep share one snapshot across threads. A dead next hop
    /// is a hard dead end here (the snapshot cannot repair around it).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route_with_aux<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
    ) -> Result<RouteResult, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        // `from` is live, so the overlay is non-empty and the key has an
        // owner; the else-branch is unreachable but typed.
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(RouteResult {
                    outcome: RouteOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            match self.next_hop_with(current, key, aux_of(current)) {
                Some(next) if self.is_live(next) => {
                    hops += 1;
                    path.push(next);
                    current = next;
                }
                Some(_) => {
                    failed_probes += 1;
                    return Ok(RouteResult {
                        outcome: RouteOutcome::DeadEnd(current),
                        hops,
                        failed_probes,
                        path,
                    });
                }
                None => {
                    let outcome = if current == true_owner {
                        RouteOutcome::Success
                    } else if self.nodes[&current.value()]
                        .known_neighbors_with(aux_of(current))
                        .is_empty()
                        && self.len() > 1
                    {
                        RouteOutcome::DeadEnd(current)
                    } else {
                        RouteOutcome::WrongOwner(current)
                    };
                    return Ok(RouteResult {
                        outcome,
                        hops,
                        failed_probes,
                        path,
                    });
                }
            }
        }
    }

    /// The forwarding decision at `current`: auxiliary/table shortcut on
    /// maximal prefix progress first (§III-1), then the surrogate loop.
    /// `None` means `current` believes it is the root.
    fn next_hop(&self, current: Id, key: Id) -> Option<Id> {
        self.next_hop_with(current, key, &self.nodes[&current.value()].aux)
    }

    /// [`next_hop`](Self::next_hop) with `extra` standing in for the
    /// auxiliary set of `current`.
    fn next_hop_with(&self, current: Id, key: Id, extra: &[Id]) -> Option<Id> {
        self.next_hop_excluding(current, key, extra, &[])
    }

    /// The forwarding decision with `dead` exclusions applied: every
    /// `(prober, target)` pair with `prober == current` is treated as
    /// already forgotten. This is how the read-only fault-injected walk
    /// reproduces the mutating walk's forget-and-retry semantics — the
    /// mutating walk erases a timed-out entry from `current`'s tables
    /// and re-decides; this filters it instead. With no exclusions the
    /// decision is exactly [`next_hop_with`](Self::next_hop_with).
    fn next_hop_excluding(
        &self,
        current: Id,
        key: Id,
        extra: &[Id],
        dead: &[(Id, Id)],
    ) -> Option<Id> {
        if current == key {
            return None;
        }
        let excluded = |w: Id| dead.iter().any(|&(p, t)| p == current && t == w);
        // `current` is always a live node here; degrade to "no next hop"
        // rather than panic if the map ever disagrees (rule L10).
        let node = self.nodes.get(&current.value())?;
        let l = self.lcp(current, key);
        // Prefix-progress candidates (table entries + auxiliaries).
        let best = node
            .known_neighbors_with(extra)
            .into_iter()
            .filter(|&w| !excluded(w) && self.lcp(w, key) > l)
            .max_by_key(|&w| (self.lcp(w, key), std::cmp::Reverse(w)));
        if let Some(w) = best {
            return Some(w);
        }
        // Surrogate loop: resolve rows from l; at each row try the key's
        // digit, then bump cyclically; our own digit means we carry the
        // row ourselves and move on.
        for row in l..self.digit_count {
            let want = self.digit(key, row);
            let own = self.digit(current, row);
            for offset in 0..self.arity {
                let v = (want + offset) % self.arity;
                if v == own {
                    break; // current carries this digit; next row
                }
                let slot = node
                    .rows
                    .get(row as usize)
                    .and_then(|r| r.get(v))
                    .copied()
                    .flatten();
                if let Some(w) = slot {
                    if !excluded(w) {
                        return Some(w);
                    }
                }
            }
        }
        None
    }

    /// Fault-injected read-only [`route`](Self::route): every contact
    /// goes through `plan`'s probe channel (crash/loss/unresponsive with
    /// bounded retry), auxiliary pointers are resolved through its
    /// staleness channel, and the walk records everything in a
    /// [`RouteTrace`](peercache_faults::RouteTrace).
    ///
    /// Unlike [`route_with_aux`](Self::route_with_aux) — which stops hard
    /// at the first dead next hop — this mirrors the *mutating* walk's
    /// degradation semantics: a timed-out hop is excluded (the read-only
    /// stand-in for `forget`; a repairing caller evicts
    /// `trace.dead_probed` afterwards) and the decision re-runs. Under a
    /// non-transparent plan, the first timed-out **auxiliary-only**
    /// candidate at a node bans the remaining auxiliary pointers there,
    /// falling back to core routing state (`trace.fallbacks`); under a
    /// transparent plan the walk is bit-identical to `route_with_aux`.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn route_with_aux_faults<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        plan: &FaultPlan,
    ) -> Result<FaultedRoute, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        if plan.node_crashed(from) {
            return Ok(FaultedRoute::origin_down(from));
        }
        let mut current = from;
        let mut trace = RouteTrace::start(from);
        let mut scratch = StepScratch::new();
        loop {
            match self.route_step_faults(
                current,
                key,
                true_owner,
                &aux_of,
                plan,
                &mut trace,
                &mut scratch,
            ) {
                WalkStep::Forward(next) => {
                    trace.hops += 1;
                    trace.path.push(next);
                    current = next;
                }
                WalkStep::Done(outcome) => return Ok(FaultedRoute { outcome, trace }),
            }
        }
    }

    /// One arrival of [`route_with_aux_faults`](Self::route_with_aux_faults):
    /// the full decision made at `current` — hop-budget check, staleness
    /// resolution of its cached pointers, and the decide/probe loop with
    /// its aux→core fallback — ending in a forward or a terminal outcome.
    /// The monolithic walk and the `peercache-node` event loop both drive
    /// this same function, so their probe sequences are bit-identical.
    ///
    /// The caller owns the hop accounting: on [`WalkStep::Forward`] it
    /// must charge `trace.hops += 1` and extend `trace.path` before the
    /// next step. `true_owner` is the owner of `key` computed once per
    /// walk (see [`true_owner`](Self::true_owner)).
    #[allow(clippy::too_many_arguments)]
    pub fn route_step_faults<'a, F>(
        &'a self,
        current: Id,
        key: Id,
        true_owner: Id,
        aux_of: F,
        plan: &FaultPlan,
        trace: &mut RouteTrace,
        scratch: &mut StepScratch,
    ) -> WalkStep
    where
        F: Fn(Id) -> &'a [Id],
    {
        if trace.hops >= self.config.hop_limit {
            return WalkStep::Done(Err(LookupFailure::HopLimit));
        }
        plan.resolve_aux(
            self.config.space,
            current,
            aux_of(current),
            &mut scratch.aux,
        );
        let mut aux_banned = false;
        loop {
            let extra: &[Id] = if aux_banned { &[] } else { &scratch.aux };
            match self.next_hop_excluding(current, key, extra, &trace.dead_probed) {
                None => {
                    let excluded = |w: Id| {
                        trace
                            .dead_probed
                            .iter()
                            .any(|&(p, t)| p == current && t == w)
                    };
                    let outcome = if current == true_owner {
                        Ok(current)
                    } else if self.nodes.get(&current.value()).is_some_and(|node| {
                        node.known_neighbors_with(extra)
                            .iter()
                            .all(|&w| excluded(w))
                    }) && self.len() > 1
                    {
                        Err(LookupFailure::DeadEnd(current))
                    } else {
                        Err(LookupFailure::WrongOwner(current))
                    };
                    return WalkStep::Done(outcome);
                }
                Some(next) => {
                    if plan.probe(current, next, trace.hops, self.is_live(next), trace) {
                        return WalkStep::Forward(next);
                    } else if !plan.is_transparent() && !aux_banned {
                        // Probe failure already excluded `next` via
                        // `trace.dead_probed`; if it was a cached pointer
                        // (absent from the core tables), ban the rest of
                        // the aux set here and fall back to core state.
                        let core = self
                            .nodes
                            .get(&current.value())
                            .map(|node| node.known_neighbors_with(&[]))
                            .unwrap_or_default();
                        if core.binary_search(&next).is_err() {
                            aux_banned = true;
                            trace.fallbacks += 1;
                        }
                    }
                }
            }
        }
    }

    /// Evict `dead` from `id`'s routing structures. The fault-injected
    /// walks are read-only, so a repairing caller (the churn driver)
    /// applies their `dead_probed` pairs here afterwards. No-op when
    /// `id` is not live.
    pub fn forget_neighbor(&mut self, id: Id, dead: Id) {
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.forget(dead);
        }
    }
}
