//! Property tests: surrogate-root determinism and routing invariants on
//! randomized memberships.

use peercache_id::{Id, IdSpace};
use peercache_tapestry::{RouteOutcome, TapestryConfig, TapestryNetwork};
use proptest::prelude::*;

fn memberships() -> impl Strategy<Value = (u8, Vec<u16>)> {
    (2u8..=4).prop_flat_map(|d| {
        (
            Just(d),
            proptest::collection::btree_set(0u16..1024, 2..40)
                .prop_map(|s| s.into_iter().collect::<Vec<u16>>()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_route_reaches_the_surrogate_root((d, raw) in memberships(), key in 0u16..1024) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let mut net = TapestryNetwork::build(TapestryConfig::new(space, d), &ids);
        let key = Id::new(u128::from(key));
        let root = net.true_owner(key).unwrap();
        for &from in &ids {
            let res = net.route(from, key).unwrap();
            prop_assert_eq!(
                res.outcome.clone(),
                RouteOutcome::Success,
                "from {} key {} ended at {:?} instead of root {}",
                from, key, res.path.last(), root
            );
            prop_assert_eq!(res.path.last(), Some(&root));
            prop_assert!(res.hops <= net.config().hop_limit);
        }
    }

    #[test]
    fn the_root_shares_the_deepest_prefix((d, raw) in memberships(), key in 0u16..1024) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let net = TapestryNetwork::build(TapestryConfig::new(space, d), &ids);
        let key = Id::new(u128::from(key));
        let root = net.true_owner(key).unwrap();
        let depth = |w: Id| space.common_prefix_digits(w, key, d).unwrap();
        let max_depth = ids.iter().map(|&w| depth(w)).max().unwrap();
        prop_assert_eq!(
            depth(root), max_depth,
            "root {} must be among the deepest prefix matches", root
        );
    }

    #[test]
    fn aux_pointers_never_change_the_destination((d, raw) in memberships(), key in 0u16..1024) {
        let space = IdSpace::new(10).unwrap();
        let ids: Vec<Id> = raw.iter().map(|&v| Id::new(u128::from(v))).collect();
        let mut net = TapestryNetwork::build(TapestryConfig::new(space, d), &ids);
        let key = Id::new(u128::from(key));
        let root = net.true_owner(key).unwrap();
        // Install arbitrary aux sets everywhere (every 3rd node).
        let aux: Vec<Id> = ids.iter().copied().step_by(3).collect();
        for &node in &ids {
            net.set_aux(node, aux.clone()).unwrap();
        }
        for &from in ids.iter().take(8) {
            let res = net.route(from, key).unwrap();
            prop_assert!(res.is_success());
            prop_assert_eq!(res.path.last(), Some(&root),
                "aux shortcuts must preserve the surrogate root");
        }
    }
}
