//! Tapestry protocol tests: surrogate-root uniqueness, routing
//! correctness, and the transfer of the Pastry selection algorithms.

use peercache_core::pastry::select_greedy;
use peercache_core::{Candidate, PastryProblem};
use peercache_id::{Id, IdSpace};
use peercache_tapestry::{RouteOutcome, TapestryConfig, TapestryNetwork};
use peercache_workload::random_ids;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn id(v: u128) -> Id {
    Id::new(v)
}

fn random_net(bits: u8, d: u8, n: usize, seed: u64) -> (TapestryNetwork, Vec<Id>) {
    let space = IdSpace::new(bits).expect("valid bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = random_ids(space, n, &mut rng);
    let net = TapestryNetwork::build(TapestryConfig::new(space, d), &ids);
    (net, ids)
}

#[test]
fn surrogate_root_matches_deepest_prefix() {
    let space = IdSpace::new(4).unwrap();
    let net = TapestryNetwork::build(
        TapestryConfig::new(space, 1),
        &[id(0b0000), id(0b0110), id(0b1011)],
    );
    // Key 0b1010: node 1011 shares 3 digits — it must be the root.
    assert_eq!(net.true_owner(id(0b1010)), Some(id(0b1011)));
    // Key 0b0100: 0000 shares 1, 0110 shares 2 → 0110.
    assert_eq!(net.true_owner(id(0b0100)), Some(id(0b0110)));
    // Exact id is its own root.
    assert_eq!(net.true_owner(id(0b0110)), Some(id(0b0110)));
}

#[test]
fn root_is_start_independent() {
    for d in [1u8, 2, 4] {
        let (mut net, ids) = random_net(16, d, 48, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let key = id(u128::from(rng.gen::<u16>()));
            let root = net.true_owner(key).unwrap();
            for &from in ids.iter().take(16) {
                let res = net.route(from, key).unwrap();
                assert_eq!(
                    res.outcome,
                    RouteOutcome::Success,
                    "d={d} from {from} key {key}: reached {:?}, root {root}",
                    res.path.last()
                );
                assert_eq!(res.path.last(), Some(&root));
            }
        }
    }
}

#[test]
fn stable_hops_within_digit_bound() {
    let (mut net, ids) = random_net(32, 1, 128, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut max_hops = 0;
    for _ in 0..1500 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        let res = net.route(from, key).unwrap();
        assert!(res.is_success());
        assert_eq!(res.failed_probes, 0);
        max_hops = max_hops.max(res.hops);
    }
    assert!(max_hops <= 14, "max hops {max_hops} for 128 nodes");
}

#[test]
fn aux_neighbors_shorten_routes() {
    let (mut net, ids) = random_net(32, 1, 256, 5);
    let from = ids[0];
    let far = *ids
        .iter()
        .max_by_key(|&&t| net.route(from, t).unwrap().hops)
        .unwrap();
    let before = net.route(from, far).unwrap().hops;
    assert!(before >= 2);
    net.set_aux(from, vec![far]).unwrap();
    let after = net.route(from, far).unwrap();
    assert!(after.is_success());
    assert_eq!(after.hops, 1);
}

#[test]
fn pastry_selection_transfers_to_tapestry() {
    // The §I claim, measured: run the Pastry optimiser on a Tapestry
    // node's core neighbors and verify realised hops improve more than a
    // random pick of equal size.
    let (mut net, ids) = random_net(32, 1, 192, 6);
    let space = IdSpace::new(32).unwrap();
    let me = ids[0];
    let mut rng = StdRng::seed_from_u64(7);
    // Zipf-ish weights over all other nodes.
    let core = net.node(me).unwrap().core_neighbors();
    let candidates: Vec<Candidate> = ids[1..]
        .iter()
        .filter(|n| !core.contains(n))
        .enumerate()
        .map(|(i, &n)| Candidate::new(n, 1000.0 / (i + 1) as f64))
        .collect();
    let weights: Vec<(Id, f64)> = candidates.iter().map(|c| (c.id, c.weight)).collect();
    let problem = PastryProblem::new(space, 1, me, core, candidates, 8).unwrap();
    let selection = select_greedy(&problem).unwrap();

    let measure = |net: &mut TapestryNetwork, rng: &mut StdRng| -> f64 {
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        let mut acc = 0.0;
        for &(target, w) in &weights {
            let res = net.route(me, target).unwrap();
            assert!(res.is_success());
            acc += w * f64::from(res.hops);
        }
        let _ = rng;
        acc / total
    };
    net.set_aux(me, vec![]).unwrap();
    let base = measure(&mut net, &mut rng);
    net.set_aux(me, selection.aux.clone()).unwrap();
    let optimal = measure(&mut net, &mut rng);
    // Random pick of equal size.
    let mut pool: Vec<Id> = weights.iter().map(|&(n, _)| n).collect();
    use rand::seq::SliceRandom;
    pool.shuffle(&mut rng);
    net.set_aux(me, pool[..selection.aux.len()].to_vec())
        .unwrap();
    let random = measure(&mut net, &mut rng);

    assert!(optimal < base, "optimal {optimal} must beat no-aux {base}");
    assert!(
        optimal < random,
        "optimal {optimal} must beat random {random}"
    );
}

#[test]
fn fail_and_repair_heal_the_overlay() {
    let (mut net, ids) = random_net(16, 1, 64, 8);
    for &victim in ids.iter().take(16) {
        net.fail(victim).unwrap();
    }
    net.repair_all();
    let live = net.live_ids();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..200 {
        let from = live[rng.gen_range(0..live.len())];
        let key = id(u128::from(rng.gen::<u16>()));
        let res = net.route(from, key).unwrap();
        assert!(res.is_success(), "healed overlay must route");
    }
}

#[test]
fn membership_errors_are_reported() {
    let (mut net, ids) = random_net(16, 1, 8, 10);
    assert!(net.join(ids[0]).is_err(), "duplicate");
    assert!(net.join(id(1 << 20)).is_err(), "out of space");
    let ghost = id(65_533);
    assert!(!ids.contains(&ghost));
    assert!(net.fail(ghost).is_err());
    assert!(net.set_aux(ghost, vec![]).is_err());
    assert!(net.route(ghost, id(0)).is_err());
}

#[test]
fn single_node_owns_everything() {
    let space = IdSpace::new(8).unwrap();
    let mut net = TapestryNetwork::build(TapestryConfig::new(space, 1), &[id(42)]);
    for key in (0..256u128).step_by(31) {
        let res = net.route(id(42), id(key)).unwrap();
        assert!(res.is_success());
        assert_eq!(res.hops, 0);
    }
}

#[test]
fn table_cells_hold_exact_prefix_lengths() {
    let (net, ids) = random_net(16, 2, 64, 11);
    let space = IdSpace::new(16).unwrap();
    for &nid in ids.iter().take(8) {
        let node = net.node(nid).unwrap();
        for (l, row) in node.rows.iter().enumerate() {
            for (c, entry) in row.iter().enumerate() {
                if let Some(w) = entry {
                    assert_eq!(space.common_prefix_digits(nid, *w, 2).unwrap() as usize, l);
                    assert_eq!(
                        space
                            .digit(*w, u8::try_from(l).expect("row index fits u8"), 2)
                            .unwrap() as usize,
                        c
                    );
                }
            }
        }
    }
}
