//! A Chord overlay simulator — the substrate for the paper's Chord
//! experiments (§VI), built to the paper's variant of the protocol (§II-B):
//!
//! * **Key assignment**: a key belongs to its *predecessor* — the last
//!   node whose id is ≤ the key on the clockwise ring.
//! * **Core neighbors**: finger `i` is the first node in
//!   `[x + 2^i, x + 2^{i+1})` (possibly none), plus a successor list for
//!   fault tolerance.
//! * **Routing**: forward to the known neighbor (finger, successor, or
//!   **auxiliary neighbor** — auxiliaries are used exactly like core
//!   entries, §III-1) that is closest to the target while staying between
//!   the current node and the target clockwise.
//!
//! Churn realism follows the evaluation setup of the paper (and its
//! reference \[13\]): failed nodes leave **stale entries** behind; each
//! node repairs its state only at its periodic stabilization, and probing
//! a dead neighbor during a lookup costs a timeout (tracked separately
//! from hops) before the next-best candidate is tried. Lookups that
//! terminate at a node that wrongly believes it owns the key are reported
//! as [`LookupOutcome::WrongOwner`] — the "unanswered queries" churn
//! produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod node;

pub use network::{ChordConfig, ChordNetwork, NetworkError};
pub use node::ChordNode;

use peercache_id::Id;

/// How a lookup ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Terminated at the true owner of the key.
    Success,
    /// Terminated at a node that believes it owns the key but does not
    /// (stale successor pointer under churn).
    WrongOwner(Id),
    /// A node had no live candidate to forward to.
    DeadEnd(Id),
    /// Hop budget exhausted (defensive; cannot happen in a stable ring).
    HopLimit,
}

/// The result of routing one query.
#[derive(Clone, Debug)]
pub struct LookupResult {
    /// How the lookup ended.
    pub outcome: LookupOutcome,
    /// Number of successful forwards taken.
    pub hops: u32,
    /// Dead neighbors probed along the way (timeouts), not counted as hops.
    pub failed_probes: u32,
    /// The nodes visited, starting with the source.
    pub path: Vec<Id>,
}

impl LookupResult {
    /// Whether the lookup reached the true owner.
    pub fn is_success(&self) -> bool {
        self.outcome == LookupOutcome::Success
    }
}
