use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use peercache_faults::{FaultPlan, FaultedRoute, LookupFailure, RouteTrace, StepScratch, WalkStep};
use peercache_id::{Id, IdSpace};

use crate::node::ChordNode;
use crate::{LookupOutcome, LookupResult};

/// Configuration of a Chord deployment.
#[derive(Clone, Copy, Debug)]
pub struct ChordConfig {
    /// The identifier space (the paper uses 32-bit ids).
    pub space: IdSpace,
    /// Successor-list length (fault tolerance under churn).
    pub successor_list_len: usize,
    /// Defensive per-lookup hop budget.
    pub hop_limit: u32,
}

impl ChordConfig {
    /// A configuration over `space` with a successor list of 8 and a hop
    /// budget of `4·b`.
    pub fn new(space: IdSpace) -> Self {
        ChordConfig {
            space,
            successor_list_len: 8,
            hop_limit: 4 * u32::from(space.bits()),
        }
    }
}

/// Errors from membership operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The node id is already live.
    AlreadyPresent(Id),
    /// The node id is not live.
    NotPresent(Id),
    /// The id does not fit the configured id space.
    OutOfSpace(Id),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::AlreadyPresent(id) => write!(f, "node {id} already in the ring"),
            NetworkError::NotPresent(id) => write!(f, "node {id} not in the ring"),
            NetworkError::OutOfSpace(id) => write!(f, "node {id} outside the id space"),
        }
    }
}

impl Error for NetworkError {}

/// The whole simulated Chord ring: live nodes with their (possibly stale)
/// routing state.
///
/// ```
/// use peercache_chord::{ChordConfig, ChordNetwork};
/// use peercache_id::{Id, IdSpace};
///
/// let space = IdSpace::new(8).unwrap();
/// let ids: Vec<Id> = [10u128, 80, 150, 220].map(Id::new).to_vec();
/// let mut ring = ChordNetwork::build(ChordConfig::new(space), &ids);
/// // Keys belong to their predecessor: 100 → node 80.
/// assert_eq!(ring.true_owner(Id::new(100)), Some(Id::new(80)));
/// let result = ring.lookup(Id::new(10), Id::new(100)).unwrap();
/// assert!(result.is_success());
/// // An auxiliary pointer turns the lookup into a single hop.
/// ring.set_aux(Id::new(10), vec![Id::new(80)]).unwrap();
/// assert_eq!(ring.lookup(Id::new(10), Id::new(100)).unwrap().hops, 1);
/// ```
#[derive(Clone)]
pub struct ChordNetwork {
    config: ChordConfig,
    nodes: BTreeMap<u128, ChordNode>,
}

impl ChordNetwork {
    /// An empty ring.
    pub fn new(config: ChordConfig) -> Self {
        ChordNetwork {
            config,
            nodes: BTreeMap::new(),
        }
    }

    /// Bootstrap a stable ring: every node gets *perfect* routing state
    /// (the steady state the paper's stable-mode experiments assume).
    ///
    /// # Panics
    /// Panics on duplicate or out-of-space ids — a bootstrap set is
    /// programmer input.
    pub fn build(config: ChordConfig, ids: &[Id]) -> Self {
        let mut net = ChordNetwork::new(config);
        for &id in ids {
            assert!(config.space.contains(id), "node id {id} outside id space");
            let prev = net
                .nodes
                .insert(id.value(), ChordNode::new(id, config.space.bits()));
            assert!(prev.is_none(), "duplicate node id {id}");
        }
        let all: Vec<Id> = net.live_ids();
        for &id in &all {
            net.refresh_from_truth(id);
        }
        net
    }

    /// The configuration.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is currently live.
    pub fn is_live(&self, id: Id) -> bool {
        self.nodes.contains_key(&id.value())
    }

    /// All live node ids in ring order.
    pub fn live_ids(&self) -> Vec<Id> {
        self.nodes.keys().map(|&k| Id::new(k)).collect()
    }

    /// Immutable view of a node's state.
    pub fn node(&self, id: Id) -> Option<&ChordNode> {
        self.nodes.get(&id.value())
    }

    /// The first live node strictly clockwise of `from`.
    fn next_live(&self, from: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        from.value()
            .checked_add(1)
            .and_then(|start| self.nodes.range(start..).next())
            .or_else(|| self.nodes.iter().next())
            .map(|(&k, _)| Id::new(k))
    }

    /// The first live node at or counter-clockwise of `at` — the **true
    /// owner** of key `at` under the paper's predecessor assignment.
    pub fn true_owner(&self, key: Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(..=key.value())
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(&k, _)| Id::new(k))
    }

    /// The true successor list of `id` (next `len` live nodes clockwise).
    fn true_successors(&self, id: Id) -> Vec<Id> {
        let mut out = Vec::with_capacity(self.config.successor_list_len);
        let mut cur = id;
        for _ in 0..self.config.successor_list_len {
            match self.next_live(cur) {
                Some(s) if s != id => {
                    out.push(s);
                    cur = s;
                }
                _ => break,
            }
        }
        out
    }

    /// The true finger table of `id` (first live node per `[2^i, 2^{i+1})`
    /// range, paper §II-B).
    fn true_fingers(&self, id: Id) -> Vec<Option<Id>> {
        let space = self.config.space;
        let bits = space.bits();
        let mut fingers = Vec::with_capacity(bits as usize);
        for i in 0..bits {
            let lo = space.add(id, 1u128 << i);
            let hi_excl = if i + 1 == bits {
                id // wraps the whole way: range [id + 2^(b-1), id)
            } else {
                space.add(id, 1u128 << (i + 1))
            };
            // First live node at or clockwise of `lo`, kept only if it
            // falls inside [lo, hi_excl).
            let candidate = self
                .next_live(space.sub(lo, 1))
                .filter(|&c| c != id && space.between_closed_open(lo, c, hi_excl));
            fingers.push(candidate);
        }
        fingers
    }

    /// Reset a node's core state from global truth (bootstrap, or the
    /// periodic re-initialization the paper mentions in §III-2).
    fn refresh_from_truth(&mut self, id: Id) {
        let successors = self.true_successors(id);
        let fingers = self.true_fingers(id);
        let predecessor = self.true_predecessor(id);
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.successors = successors;
            node.fingers = fingers;
            node.predecessor = predecessor;
        }
    }

    fn true_predecessor(&self, id: Id) -> Option<Id> {
        if self.nodes.len() <= 1 {
            return None;
        }
        self.nodes
            .range(..id.value())
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(&k, _)| Id::new(k))
            .filter(|&p| p != id)
    }

    // ---- membership ------------------------------------------------------

    /// A node joins: it builds its own state (successor lookup + finger
    /// initialisation, modelled as fresh truth) and notifies its
    /// successor. Everyone else learns only through stabilization.
    ///
    /// # Errors
    /// [`NetworkError::AlreadyPresent`] / [`NetworkError::OutOfSpace`].
    pub fn join(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.config.space.contains(id) {
            return Err(NetworkError::OutOfSpace(id));
        }
        if self.nodes.contains_key(&id.value()) {
            return Err(NetworkError::AlreadyPresent(id));
        }
        self.nodes
            .insert(id.value(), ChordNode::new(id, self.config.space.bits()));
        self.refresh_from_truth(id);
        // Notify the successor so its predecessor pointer (and thus key
        // hand-off) is immediate; the predecessor's successor pointer
        // stays stale until its next stabilization.
        if let Some(succ) = self.nodes[&id.value()].successor() {
            if let Some(s) = self.nodes.get_mut(&succ.value()) {
                s.predecessor = Some(id);
            }
        }
        Ok(())
    }

    /// A node crashes without notice: everyone else's entries go stale.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn fail(&mut self, id: Id) -> Result<(), NetworkError> {
        self.nodes
            .remove(&id.value())
            .map(|_| ())
            .ok_or(NetworkError::NotPresent(id))
    }

    /// A node leaves gracefully: its immediate neighbors patch their
    /// pointers; everyone else's entries go stale.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn leave(&mut self, id: Id) -> Result<(), NetworkError> {
        let node = self
            .nodes
            .remove(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        let succ = node.successors.iter().find(|s| self.is_live(**s)).copied();
        let pred = node.predecessor.filter(|p| self.is_live(*p));
        if let (Some(succ), Some(pred)) = (succ, pred) {
            if let Some(s) = self.nodes.get_mut(&succ.value()) {
                s.predecessor = Some(pred);
            }
            if let Some(p) = self.nodes.get_mut(&pred.value()) {
                p.forget(id);
                if p.successors.first() != Some(&succ) {
                    p.successors.insert(0, succ);
                    p.successors.truncate(self.config.successor_list_len);
                }
            }
        }
        Ok(())
    }

    // ---- maintenance -----------------------------------------------------

    /// One stabilization round for `id` (the paper's periodic refresh,
    /// §III-2): ping-and-prune dead entries, run the successor/predecessor
    /// handshake, refresh the successor list from the successor, and
    /// re-initialise fingers.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn stabilize(&mut self, id: Id) -> Result<(), NetworkError> {
        if !self.nodes.contains_key(&id.value()) {
            return Err(NetworkError::NotPresent(id));
        }
        // 1. Prune dead beliefs (ping).
        let beliefs: Vec<Id> = {
            let node = &self.nodes[&id.value()];
            node.known_neighbors()
                .into_iter()
                .chain(node.predecessor)
                .collect()
        };
        for b in beliefs {
            if self.is_live(b) {
                continue;
            }
            if let Some(node) = self.nodes.get_mut(&id.value()) {
                node.forget(b);
            }
        }
        // 2. Successor handshake: adopt successor's predecessor if closer;
        //    refresh the tail of the successor list from the successor.
        let succ = self.nodes[&id.value()].successor();
        if let Some(succ) = succ {
            let space = self.config.space;
            let (s_pred, s_succs) = {
                let s = &self.nodes[&succ.value()];
                (s.predecessor, s.successors.clone())
            };
            let mut list = Vec::with_capacity(self.config.successor_list_len);
            if let Some(p) = s_pred {
                // Adopt the successor's predecessor only if it is closer
                // *and* actually alive (its pointer may itself be stale).
                if p != id && space.between_open(id, p, succ) && self.is_live(p) {
                    list.push(p);
                }
            }
            list.push(succ);
            for s in s_succs {
                // The successor's own list may be stale; verify entries
                // before adopting them (the ping that accompanies the
                // handshake).
                if s != id && self.is_live(s) && !list.contains(&s) {
                    list.push(s);
                }
            }
            list.truncate(self.config.successor_list_len);
            // The head of the (never-empty) list is the refreshed
            // successor we notify below.
            let new_succ = list.first().copied().unwrap_or(succ);
            if let Some(node) = self.nodes.get_mut(&id.value()) {
                node.successors = list;
            }
            // Notify: the successor adopts us as predecessor if we are
            // closer than its current belief.
            let adopt = match self.nodes[&new_succ.value()].predecessor {
                None => true,
                Some(p) => p == id || space.between_open(p, id, new_succ) || !self.is_live(p),
            };
            if adopt {
                if let Some(s) = self.nodes.get_mut(&new_succ.value()) {
                    s.predecessor = Some(id);
                }
            }
        } else {
            // Lost every successor: re-acquire from any live belief, or —
            // as a last resort — re-bootstrap from the ring (the node
            // would re-join through an out-of-band bootstrap server).
            let fallback = self.next_live(id).filter(|&s| s != id);
            if let Some(s) = fallback {
                if let Some(node) = self.nodes.get_mut(&id.value()) {
                    node.successors = vec![s];
                }
            }
        }
        // 3. Fix fingers (periodic re-initialization).
        let fingers = self.true_fingers(id);
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.fingers = fingers;
        }
        Ok(())
    }

    /// Stabilize every live node once (ring order).
    pub fn stabilize_all(&mut self) {
        for id in self.live_ids() {
            let _ = self.stabilize(id);
        }
    }

    /// Install the auxiliary neighbor set for `id` (dead entries are
    /// dropped on installation, as the selection runs against possibly
    /// stale frequency tables).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux(&mut self, id: Id, aux: Vec<Id>) -> Result<(), NetworkError> {
        let live: Vec<Id> = aux.into_iter().filter(|&a| self.is_live(a)).collect();
        let node = self
            .nodes
            .get_mut(&id.value())
            .ok_or(NetworkError::NotPresent(id))?;
        node.aux = live;
        Ok(())
    }

    /// [`set_aux`](Self::set_aux) from a borrowed slice, recycling the
    /// node's installed buffer instead of taking ownership of a fresh
    /// `Vec`: the churn driver's refresh engine re-installs a retained
    /// selection every recompute tick, and at warmed capacity this
    /// installs without allocating. The live-entry filter is identical.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`].
    pub fn set_aux_from_slice(&mut self, id: Id, aux: &[Id]) -> Result<(), NetworkError> {
        let mut live = match self.nodes.get_mut(&id.value()) {
            Some(node) => std::mem::take(&mut node.aux),
            None => return Err(NetworkError::NotPresent(id)),
        };
        live.clear();
        live.extend(aux.iter().copied().filter(|&a| self.is_live(a)));
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.aux = live;
        }
        Ok(())
    }

    // ---- routing -----------------------------------------------------------

    /// Route a lookup for `key` starting at `from`, following the paper's
    /// policy: forward to the known neighbor closest to the key among
    /// those between the current node and the key (clockwise). Dead
    /// neighbors probed along the way are forgotten (and counted as
    /// `failed_probes`), and the next-best candidate is tried.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn lookup(&mut self, from: Id, key: Id) -> Result<LookupResult, NetworkError> {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let space = self.config.space;
        // `from` is live, so the ring is non-empty and every key has an
        // owner; the else-branch is unreachable but typed.
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(LookupResult {
                    outcome: LookupOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            // Exact hit: the key is this node's own id, which it owns by
            // the predecessor-assignment rule.
            if current == key {
                return Ok(LookupResult {
                    outcome: LookupOutcome::Success,
                    hops,
                    failed_probes,
                    path,
                });
            }
            // Candidates between current and key, closest to the key
            // first. Forward whenever any live one exists — a node may
            // only claim ownership when it knows of NOTHING between
            // itself and the key (its successor pointer might be stale
            // while a freshly fixed finger already knows better).
            let mut candidates: Vec<Id> = self.nodes[&current.value()]
                .known_neighbors()
                .into_iter()
                .filter(|&w| space.between_open_closed(current, w, key))
                .collect();
            candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
            let mut next = None;
            for w in candidates {
                if self.is_live(w) {
                    next = Some(w);
                    break;
                }
                failed_probes += 1;
                if let Some(node) = self.nodes.get_mut(&current.value()) {
                    node.forget(w);
                }
            }
            if let Some(w) = next {
                hops += 1;
                path.push(w);
                current = w;
                continue;
            }
            // No usable candidate. Does `current` believe it owns the
            // key? Predecessor assignment: keys in [current, successor).
            let owns = match self.nodes[&current.value()].successor() {
                None => true, // believes it is alone
                Some(s) => space.between_closed_open(current, key, s),
            };
            let outcome = if current == true_owner {
                LookupOutcome::Success
            } else if owns {
                LookupOutcome::WrongOwner(current)
            } else {
                LookupOutcome::DeadEnd(current)
            };
            return Ok(LookupResult {
                outcome,
                hops,
                failed_probes,
                path,
            });
        }
    }

    /// Read-only [`lookup`](Self::lookup): auxiliary neighbors come from
    /// `aux_of` instead of the installed per-node sets, and dead entries
    /// probed along the way are counted as `failed_probes` but **not**
    /// forgotten (the snapshot is immutable, so a revisited node re-probes
    /// them). With every node live — the stable-mode contract — the walk
    /// is hop-for-hop identical to installing each `aux_of` set via
    /// [`set_aux`](Self::set_aux) and calling `lookup`, which is what lets
    /// a parallel sweep share one snapshot across threads.
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn lookup_with_aux<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
    ) -> Result<LookupResult, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let space = self.config.space;
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        let mut current = from;
        let mut hops = 0u32;
        let mut failed_probes = 0u32;
        let mut path = vec![from];
        loop {
            if hops >= self.config.hop_limit {
                return Ok(LookupResult {
                    outcome: LookupOutcome::HopLimit,
                    hops,
                    failed_probes,
                    path,
                });
            }
            if current == key {
                return Ok(LookupResult {
                    outcome: LookupOutcome::Success,
                    hops,
                    failed_probes,
                    path,
                });
            }
            let mut candidates: Vec<Id> = self.nodes[&current.value()]
                .known_neighbors_with(aux_of(current))
                .into_iter()
                .filter(|&w| space.between_open_closed(current, w, key))
                .collect();
            candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
            let mut next = None;
            for w in candidates {
                if self.is_live(w) {
                    next = Some(w);
                    break;
                }
                failed_probes += 1;
            }
            if let Some(w) = next {
                hops += 1;
                path.push(w);
                current = w;
                continue;
            }
            let owns = match self.nodes[&current.value()].successor() {
                None => true,
                Some(s) => space.between_closed_open(current, key, s),
            };
            let outcome = if current == true_owner {
                LookupOutcome::Success
            } else if owns {
                LookupOutcome::WrongOwner(current)
            } else {
                LookupOutcome::DeadEnd(current)
            };
            return Ok(LookupResult {
                outcome,
                hops,
                failed_probes,
                path,
            });
        }
    }

    /// Fault-injected read-only lookup: every contact goes through
    /// `plan`'s probe channel (crash/loss/unresponsive with bounded
    /// retry), auxiliary pointers are resolved through its staleness
    /// channel, and the walk records everything in a
    /// [`RouteTrace`](peercache_faults::RouteTrace).
    ///
    /// Degradation semantics mirror [`lookup`](Self::lookup): candidates
    /// that time out are excluded *locally* (the walk is read-only — a
    /// repairing caller evicts `trace.dead_probed` afterwards), and the
    /// final ownership check reads the successor view those exclusions
    /// leave behind, exactly as `lookup` reads it after forgetting. Under
    /// a non-transparent plan, the first timed-out **auxiliary-only**
    /// candidate at a hop falls the decision back to core candidates
    /// (`trace.fallbacks`); under a transparent plan the walk is
    /// bit-identical to [`lookup_with_aux`](Self::lookup_with_aux).
    ///
    /// # Errors
    /// [`NetworkError::NotPresent`] when `from` is not live.
    pub fn lookup_with_aux_faults<'a, F>(
        &'a self,
        from: Id,
        key: Id,
        aux_of: F,
        plan: &FaultPlan,
    ) -> Result<FaultedRoute, NetworkError>
    where
        F: Fn(Id) -> &'a [Id],
    {
        if !self.nodes.contains_key(&from.value()) {
            return Err(NetworkError::NotPresent(from));
        }
        let Some(true_owner) = self.true_owner(key) else {
            return Err(NetworkError::NotPresent(from));
        };
        if plan.node_crashed(from) {
            return Ok(FaultedRoute::origin_down(from));
        }
        let mut current = from;
        let mut trace = RouteTrace::start(from);
        let mut scratch = StepScratch::new();
        loop {
            match self.lookup_step_faults(
                current,
                key,
                true_owner,
                &aux_of,
                plan,
                &mut trace,
                &mut scratch,
            ) {
                WalkStep::Forward(next) => {
                    trace.hops += 1;
                    trace.path.push(next);
                    current = next;
                }
                WalkStep::Done(outcome) => return Ok(FaultedRoute { outcome, trace }),
            }
        }
    }

    /// One arrival of [`lookup_with_aux_faults`](Self::lookup_with_aux_faults):
    /// the full decision made at `current` — hop-budget check, staleness
    /// resolution of its cached pointers, candidate ranking, and the
    /// probe loop — ending in a forward or a terminal outcome. The
    /// monolithic walk and the `peercache-node` event loop both drive
    /// this same function, so their probe sequences are bit-identical.
    ///
    /// The caller owns the hop accounting: on [`WalkStep::Forward`] it
    /// must charge `trace.hops += 1` and extend `trace.path` before the
    /// next step. `true_owner` is the owner of `key` computed once per
    /// walk (see [`true_owner`](Self::true_owner)).
    #[allow(clippy::too_many_arguments)]
    pub fn lookup_step_faults<'a, F>(
        &'a self,
        current: Id,
        key: Id,
        true_owner: Id,
        aux_of: F,
        plan: &FaultPlan,
        trace: &mut RouteTrace,
        scratch: &mut StepScratch,
    ) -> WalkStep
    where
        F: Fn(Id) -> &'a [Id],
    {
        let space = self.config.space;
        if trace.hops >= self.config.hop_limit {
            return WalkStep::Done(Err(LookupFailure::HopLimit));
        }
        if current == key {
            return WalkStep::Done(Ok(current));
        }
        // The walk only steps to probed-live candidates, so `current`
        // is always present; if the map ever disagrees, degrade to a
        // dead end rather than panic (rule L10).
        let Some(node) = self.nodes.get(&current.value()) else {
            return WalkStep::Done(Err(LookupFailure::DeadEnd(current)));
        };
        plan.resolve_aux(space, current, aux_of(current), &mut scratch.aux);
        let mut candidates: Vec<Id> = node
            .known_neighbors_with(&scratch.aux)
            .into_iter()
            .filter(|&w| space.between_open_closed(current, w, key))
            .collect();
        candidates.sort_by_key(|&w| space.clockwise_distance(w, key));
        // Sorted core view, for spotting aux-only candidates.
        let core = node.known_neighbors_with(&[]);
        let mut aux_banned = false;
        scratch.dead.clear();
        for w in candidates {
            let aux_only = core.binary_search(&w).is_err();
            if aux_banned && aux_only {
                continue;
            }
            if plan.probe(current, w, trace.hops, self.is_live(w), trace) {
                return WalkStep::Forward(w);
            }
            scratch.dead.push(w);
            if aux_only && !aux_banned && !plan.is_transparent() {
                aux_banned = true;
                trace.fallbacks += 1;
            }
        }
        // `lookup` forgets the dead candidates it probed before
        // reading `successor()`; skipping exactly those entries
        // reproduces that post-repair successor view read-only.
        let believed = node.successors.iter().find(|s| !scratch.dead.contains(s));
        let owns = match believed {
            None => true,
            Some(&s) => space.between_closed_open(current, key, s),
        };
        let outcome = if current == true_owner {
            Ok(current)
        } else if owns {
            Err(LookupFailure::WrongOwner(current))
        } else {
            Err(LookupFailure::DeadEnd(current))
        };
        WalkStep::Done(outcome)
    }

    /// Evict `dead` from `id`'s routing structures. The fault-injected
    /// walks are read-only, so a repairing caller (the churn driver)
    /// applies their `dead_probed` pairs here afterwards. No-op when
    /// `id` is not live.
    pub fn forget_neighbor(&mut self, id: Id, dead: Id) {
        if let Some(node) = self.nodes.get_mut(&id.value()) {
            node.forget(dead);
        }
    }
}
