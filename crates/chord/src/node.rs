use peercache_id::Id;

/// The routing state one Chord node maintains.
///
/// Entries are *beliefs*: under churn they may point at departed nodes
/// until the next stabilization round (or a failed probe during a lookup)
/// repairs them.
#[derive(Clone, Debug)]
pub struct ChordNode {
    /// This node's identifier.
    pub id: Id,
    /// The believed predecessor (maintained by the notify handshake).
    pub predecessor: Option<Id>,
    /// The believed successor list, closest first. `successors[0]` is the
    /// routing successor; the tail provides fault tolerance.
    pub successors: Vec<Id>,
    /// Finger `i`: the first known node in `[id + 2^i, id + 2^{i+1})`,
    /// if any (the paper's §II-B neighbor definition).
    pub fingers: Vec<Option<Id>>,
    /// Auxiliary neighbors installed by the selection algorithm; used by
    /// routing exactly like core entries (§III-1).
    pub aux: Vec<Id>,
}

impl ChordNode {
    /// A blank node with `bits` finger slots.
    pub fn new(id: Id, bits: u8) -> Self {
        ChordNode {
            id,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; bits as usize],
            aux: Vec::new(),
        }
    }

    /// The believed immediate successor.
    pub fn successor(&self) -> Option<Id> {
        self.successors.first().copied()
    }

    /// All distinct routing candidates: fingers, successor list, and
    /// auxiliary neighbors (self excluded).
    pub fn known_neighbors(&self) -> Vec<Id> {
        self.known_neighbors_with(&self.aux)
    }

    /// [`known_neighbors`](Self::known_neighbors) with `extra` standing in
    /// for the installed auxiliary set. The read-only routing paths resolve
    /// auxiliary pointers from a shared side table instead of mutating each
    /// node, so many sweeps can route over one immutable snapshot; passing
    /// the set that `set_aux` would have installed yields the same list.
    pub fn known_neighbors_with(&self, extra: &[Id]) -> Vec<Id> {
        let mut out: Vec<Id> = self
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(self.successors.iter().copied())
            .chain(extra.iter().copied())
            .filter(|&n| n != self.id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The core (non-auxiliary) neighbors: fingers plus successor list.
    /// This is the `N_s` handed to the selection algorithms.
    pub fn core_neighbors(&self) -> Vec<Id> {
        let mut out = Vec::new();
        self.core_neighbors_into(&mut out);
        out
    }

    /// [`core_neighbors`](Self::core_neighbors) into a caller-owned
    /// buffer — the arena-facing walk API: a sweep over many nodes reuses
    /// one buffer instead of allocating a fresh vector per node.
    pub fn core_neighbors_into(&self, out: &mut Vec<Id>) {
        out.clear();
        out.extend(
            self.fingers
                .iter()
                .flatten()
                .copied()
                .chain(self.successors.iter().copied())
                .filter(|&n| n != self.id),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Drop a (discovered-dead) neighbor from every routing structure.
    pub fn forget(&mut self, dead: Id) {
        for f in &mut self.fingers {
            if *f == Some(dead) {
                *f = None;
            }
        }
        self.successors.retain(|&s| s != dead);
        self.aux.retain(|&a| a != dead);
        if self.predecessor == Some(dead) {
            self.predecessor = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u128) -> Id {
        Id::new(v)
    }

    #[test]
    fn known_neighbors_dedups_across_structures() {
        let mut n = ChordNode::new(id(0), 4);
        n.fingers[1] = Some(id(5));
        n.fingers[2] = Some(id(5)); // duplicate entry
        n.successors = vec![id(2), id(5)];
        n.aux = vec![id(9), id(2)];
        assert_eq!(n.known_neighbors(), vec![id(2), id(5), id(9)]);
        assert_eq!(n.core_neighbors(), vec![id(2), id(5)]);
    }

    #[test]
    fn forget_clears_everywhere() {
        let mut n = ChordNode::new(id(0), 4);
        n.fingers[1] = Some(id(5));
        n.successors = vec![id(5), id(7)];
        n.aux = vec![id(5)];
        n.predecessor = Some(id(5));
        n.forget(id(5));
        assert!(n.fingers.iter().all(std::option::Option::is_none));
        assert_eq!(n.successors, vec![id(7)]);
        assert!(n.aux.is_empty());
        assert_eq!(n.predecessor, None);
    }

    #[test]
    fn self_is_never_a_neighbor() {
        let mut n = ChordNode::new(id(3), 4);
        n.successors = vec![id(3)];
        assert!(n.known_neighbors().is_empty());
    }
}
