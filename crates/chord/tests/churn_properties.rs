//! Property-based failure injection for the Chord overlay: arbitrary
//! interleavings of joins, crashes, graceful leaves, stabilizations, and
//! lookups must never panic, and a healed ring must route perfectly.

use peercache_chord::{ChordConfig, ChordNetwork, LookupOutcome};
use peercache_id::{Id, IdSpace};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Join(u16),
    Fail(u16),
    Leave(u16),
    Stabilize(u16),
    Lookup(u16, u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..512).prop_map(Op::Join),
            (0u16..512).prop_map(Op::Fail),
            (0u16..512).prop_map(Op::Leave),
            (0u16..512).prop_map(Op::Stabilize),
            (0u16..512, 0u16..512).prop_map(|(a, b)| Op::Lookup(a, b)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_sequences_never_panic(seq in ops()) {
        let space = IdSpace::new(9).unwrap();
        let seed: Vec<Id> = (0..8).map(|i| Id::new(i * 61 + 3)).collect();
        let mut net = ChordNetwork::build(ChordConfig::new(space), &seed);
        for op in seq {
            match op {
                Op::Join(v) => {
                    let _ = net.join(space.normalize(u128::from(v)));
                }
                Op::Fail(v) => {
                    // Keep at least one node so lookups stay well-defined.
                    if net.len() > 1 {
                        let _ = net.fail(space.normalize(u128::from(v)));
                    }
                }
                Op::Leave(v) => {
                    if net.len() > 1 {
                        let _ = net.leave(space.normalize(u128::from(v)));
                    }
                }
                Op::Stabilize(v) => {
                    let _ = net.stabilize(space.normalize(u128::from(v)));
                }
                Op::Lookup(from, key) => {
                    let from = space.normalize(u128::from(from));
                    if net.is_live(from) {
                        let res = net.lookup(from, space.normalize(u128::from(key))).unwrap();
                        // Hops may not exceed the configured budget.
                        prop_assert!(res.hops <= net.config().hop_limit);
                    }
                }
            }
        }
        // Heal: a few global stabilization rounds restore perfect routing.
        for _ in 0..3 {
            net.stabilize_all();
        }
        let live = net.live_ids();
        for &from in live.iter().take(6) {
            for key in [0u128, 100, 200, 300, 400, 511] {
                let res = net.lookup(from, Id::new(key)).unwrap();
                prop_assert_eq!(
                    res.outcome.clone(),
                    LookupOutcome::Success,
                    "healed ring must route: from {} key {} got {:?}",
                    from,
                    key,
                    res.outcome
                );
            }
        }
    }

    #[test]
    fn stale_entries_never_point_at_self(seq in ops()) {
        let space = IdSpace::new(9).unwrap();
        let seed: Vec<Id> = (0..8).map(|i| Id::new(i * 61 + 3)).collect();
        let mut net = ChordNetwork::build(ChordConfig::new(space), &seed);
        for op in seq {
            match op {
                Op::Join(v) => { let _ = net.join(space.normalize(u128::from(v))); }
                Op::Fail(v) if net.len() > 1 => { let _ = net.fail(space.normalize(u128::from(v))); }
                Op::Stabilize(v) => { let _ = net.stabilize(space.normalize(u128::from(v))); }
                _ => {}
            }
        }
        for id in net.live_ids() {
            let node = net.node(id).unwrap();
            prop_assert!(!node.known_neighbors().contains(&id), "self-pointer at {id}");
            prop_assert_ne!(node.predecessor, Some(id));
        }
    }
}
