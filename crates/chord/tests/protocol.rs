//! Protocol-level tests of the Chord overlay: ownership, routing bounds,
//! churn staleness, stabilization repair, and auxiliary-neighbor routing.

use peercache_chord::{ChordConfig, ChordNetwork, LookupOutcome};
use peercache_id::{Id, IdSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn id(v: u128) -> Id {
    Id::new(v)
}

fn build(bits: u8, ids: &[u128]) -> ChordNetwork {
    let config = ChordConfig::new(IdSpace::new(bits).expect("valid bits"));
    let ids: Vec<Id> = ids.iter().copied().map(Id::new).collect();
    ChordNetwork::build(config, &ids)
}

fn random_ring(bits: u8, n: usize, seed: u64) -> (ChordNetwork, Vec<Id>) {
    let space = IdSpace::new(bits).expect("valid bits");
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = peercache_workload_ids(space, n, &mut rng);
    let net = ChordNetwork::build(ChordConfig::new(space), &ids);
    (net, ids)
}

/// Local copy of distinct-random-ids (avoids a dev-dependency cycle).
fn peercache_workload_ids(space: IdSpace, n: usize, rng: &mut StdRng) -> Vec<Id> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    while out.len() < n {
        let v = space.normalize(u128::from(rng.gen::<u64>()));
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[test]
fn true_owner_is_predecessor_of_key() {
    let net = build(4, &[2, 7, 11]);
    assert_eq!(net.true_owner(id(7)), Some(id(7)), "exact hit");
    assert_eq!(net.true_owner(id(9)), Some(id(7)));
    assert_eq!(net.true_owner(id(1)), Some(id(11)), "wraps backwards");
    assert_eq!(net.true_owner(id(15)), Some(id(11)));
}

#[test]
fn build_gives_perfect_successors_and_predecessors() {
    let net = build(4, &[2, 7, 11]);
    assert_eq!(net.node(id(2)).unwrap().successor(), Some(id(7)));
    assert_eq!(net.node(id(7)).unwrap().successor(), Some(id(11)));
    assert_eq!(net.node(id(11)).unwrap().successor(), Some(id(2)));
    assert_eq!(net.node(id(2)).unwrap().predecessor, Some(id(11)));
}

#[test]
fn fingers_respect_range_semantics() {
    // Node 0 with nodes at 3, 5, 9: finger 0 = [1,2) → none;
    // finger 1 = [2,4) → 3; finger 2 = [4,8) → 5; finger 3 = [8,0) → 9.
    let net = build(4, &[0, 3, 5, 9]);
    let f = &net.node(id(0)).unwrap().fingers;
    assert_eq!(f[0], None);
    assert_eq!(f[1], Some(id(3)));
    assert_eq!(f[2], Some(id(5)));
    assert_eq!(f[3], Some(id(9)));
}

#[test]
fn lookup_reaches_owner_from_everywhere() {
    let (mut net, ids) = random_ring(16, 64, 1);
    let keys: Vec<Id> = (0..200u128).map(|i| id(i * 327 % 65536)).collect();
    for &from in &ids {
        for &key in keys.iter().take(20) {
            let res = net.lookup(from, key).unwrap();
            assert_eq!(res.outcome, LookupOutcome::Success, "from {from} key {key}");
            assert_eq!(res.path.last(), Some(&net.true_owner(key).unwrap()));
        }
    }
}

#[test]
fn stable_lookups_stay_within_log_bound() {
    let (mut net, ids) = random_ring(32, 128, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mut max_hops = 0;
    for _ in 0..2000 {
        let from = ids[rng.gen_range(0..ids.len())];
        let key = id(u128::from(rng.gen::<u32>()));
        let res = net.lookup(from, key).unwrap();
        assert!(res.is_success());
        assert_eq!(res.failed_probes, 0, "no dead probes in a stable ring");
        max_hops = max_hops.max(res.hops);
    }
    // Steady state: ≤ b hops always; with 128 nodes, ≲ 2·log₂(128) ≈ 14
    // with overwhelming probability.
    assert!(max_hops <= 14, "max hops {max_hops} exceeds 2·log n");
}

#[test]
fn lookup_distance_strictly_decreases_no_loops() {
    let (mut net, ids) = random_ring(16, 40, 4);
    let space = IdSpace::new(16).unwrap();
    for &from in &ids {
        let key = id(12345);
        let res = net.lookup(from, key).unwrap();
        for pair in res.path.windows(2) {
            assert!(
                space.clockwise_distance(pair[1], key) < space.clockwise_distance(pair[0], key),
                "progress must be monotone"
            );
        }
    }
}

#[test]
fn aux_neighbors_shorten_routes() {
    let (mut net, ids) = random_ring(32, 256, 5);
    let from = ids[0];
    // Find a target several hops away.
    let far = *ids
        .iter()
        .max_by_key(|&&t| net.lookup(from, t).unwrap().hops)
        .unwrap();
    let before = net.lookup(from, far).unwrap().hops;
    assert!(before >= 2);
    net.set_aux(from, vec![far]).unwrap();
    let after = net.lookup(from, far).unwrap();
    assert!(after.is_success());
    assert_eq!(after.hops, 1, "direct pointer → one hop");
}

#[test]
fn set_aux_drops_dead_entries() {
    let mut net = build(4, &[2, 7, 11]);
    net.set_aux(id(2), vec![id(7), id(9)]).unwrap();
    assert_eq!(net.node(id(2)).unwrap().aux, vec![id(7)], "9 is not live");
}

#[test]
fn join_makes_new_node_reachable_after_stabilization() {
    let (mut net, ids) = random_ring(16, 32, 6);
    let newcomer = id(40_000);
    assert!(!ids.contains(&newcomer));
    net.join(newcomer).unwrap();
    // Before other nodes stabilize, lookups *to the newcomer's keys* may
    // terminate at its predecessor (stale successor pointers) …
    net.stabilize_all();
    // … after one full round everyone routes correctly again.
    for &from in &ids {
        let res = net.lookup(from, newcomer).unwrap();
        assert_eq!(res.outcome, LookupOutcome::Success, "from {from}");
        assert_eq!(res.path.last(), Some(&newcomer));
    }
}

#[test]
fn failed_node_leaves_stale_entries_until_stabilization() {
    let (mut net, ids) = random_ring(16, 64, 7);
    // Pick a node that is somebody's finger, kill it.
    let victim = ids[10];
    net.fail(victim).unwrap();
    // Routing still works around the corpse (with failed probes possible).
    let mut probes = 0;
    for &from in ids.iter().filter(|&&f| f != victim).take(30) {
        let res = net.lookup(from, victim).unwrap();
        assert!(
            matches!(
                res.outcome,
                LookupOutcome::Success | LookupOutcome::WrongOwner(_)
            ),
            "outcome {:?}",
            res.outcome
        );
        probes += res.failed_probes;
    }
    // After stabilization nobody references the victim.
    net.stabilize_all();
    for &nid in ids.iter().filter(|&&f| f != victim) {
        let node = net.node(nid).unwrap();
        assert!(!node.known_neighbors().contains(&victim));
    }
    let _ = probes; // staleness may or may not surface as probes; both fine
}

#[test]
fn graceful_leave_patches_immediate_neighbors() {
    let net_ids = [2u128, 7, 11, 13];
    let mut net = build(4, &net_ids);
    net.leave(id(7)).unwrap();
    assert_eq!(net.node(id(2)).unwrap().successor(), Some(id(11)));
    assert_eq!(net.node(id(11)).unwrap().predecessor, Some(id(2)));
}

#[test]
fn churn_storm_recovers_after_stabilization_rounds() {
    let (mut net, ids) = random_ring(20, 128, 8);
    let mut rng = StdRng::seed_from_u64(9);
    // Kill 25% of nodes, join 20 fresh ones, no stabilization in between.
    for &victim in ids.iter().take(32) {
        net.fail(victim).unwrap();
    }
    let space = IdSpace::new(20).unwrap();
    for _ in 0..20 {
        loop {
            let fresh = space.normalize(u128::from(rng.gen::<u64>()));
            if !net.is_live(fresh) && net.join(fresh).is_ok() {
                break;
            }
        }
    }
    // A few rounds of stabilization heal the ring.
    for _ in 0..3 {
        net.stabilize_all();
    }
    let live = net.live_ids();
    let mut failures = 0;
    for &from in live.iter().take(40) {
        for probe in 0..10u128 {
            let key = id(probe * 99_991 % (1 << 20));
            let res = net.lookup(from, key).unwrap();
            if !res.is_success() {
                failures += 1;
            }
        }
    }
    assert_eq!(failures, 0, "healed ring must route correctly");
}

#[test]
fn membership_errors_are_reported() {
    let mut net = build(4, &[2, 7]);
    assert!(net.join(id(2)).is_err(), "duplicate join");
    assert!(net.join(id(200)).is_err(), "out of space");
    assert!(net.fail(id(9)).is_err(), "unknown fail");
    assert!(net.leave(id(9)).is_err(), "unknown leave");
    assert!(net.stabilize(id(9)).is_err(), "unknown stabilize");
    assert!(net.set_aux(id(9), vec![]).is_err());
    assert!(net.lookup(id(9), id(0)).is_err());
}

#[test]
fn single_node_owns_everything() {
    let mut net = build(4, &[5]);
    for key in 0..16u128 {
        let res = net.lookup(id(5), id(key)).unwrap();
        assert!(res.is_success());
        assert_eq!(res.hops, 0);
    }
}

#[test]
fn two_node_ring_routes_both_ways() {
    let mut net = build(4, &[3, 12]);
    // Keys in [3, 12) → node 3; [12, 3) → node 12.
    assert_eq!(net.lookup(id(3), id(5)).unwrap().hops, 0);
    let res = net.lookup(id(3), id(13)).unwrap();
    assert!(res.is_success());
    assert_eq!(res.path.last(), Some(&id(12)));
    let res = net.lookup(id(12), id(1)).unwrap();
    assert!(res.is_success());
    assert_eq!(res.path.last(), Some(&id(12)), "wrap: 12 owns [12, 3)");
}

#[test]
fn core_neighbors_feed_the_selection_problem() {
    let (net, ids) = random_ring(16, 64, 10);
    let node = net.node(ids[0]).unwrap();
    let core = node.core_neighbors();
    assert!(!core.is_empty());
    assert!(core.len() <= 16 + net.config().successor_list_len);
    assert!(!core.contains(&ids[0]), "self never a neighbor");
    let mut sorted = core.clone();
    sorted.dedup();
    assert_eq!(sorted.len(), core.len(), "deduplicated");
}
