//! Extension demonstrating §I's second transfer claim: "the techniques
//! for Chord are applicable to SkipGraphs".
//!
//! Skip-graph level links live in *rank* space (level `i` spans ~`2^i`
//! positions), so we run the paper's Chord optimiser after mapping every
//! node to its rank offset from the selecting node, then map the chosen
//! ranks back to node ids and install them as auxiliary links.

use std::collections::HashMap;

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_skipgraph::{SkipGraphConfig, SkipGraphNetwork};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_skipgraph");
    let quick = cli.quick;
    let (n, queries) = if quick { (128, 10_000) } else { (1024, 40_000) };
    let items = 64;
    let k = (n as f64).log2().round() as usize;
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(37);

    let mut node_ids = random_ids(space, n, &mut rng);
    node_ids.sort();
    let mut net = SkipGraphNetwork::build(SkipGraphConfig::new(space), &node_ids);
    let catalog = ItemCatalog::random(space, items, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(items, 1.2).unwrap(), Ranking::identity(items));
    let owners: Vec<Id> = (0..items)
        .map(|i| net.true_owner(catalog.key(i)).unwrap())
        .collect();
    let weights = FrequencySnapshot::from_pairs(workload.node_weights(items, |i| owners[i]));

    // Rank-space mapping machinery.
    let rank: HashMap<Id, usize> = node_ids.iter().enumerate().map(|(r, &i)| (i, r)).collect();
    let rank_bits = (n as f64).log2().ceil() as u8 + 1;
    let rank_space = IdSpace::new(rank_bits).unwrap();

    let mut aware = Vec::with_capacity(n);
    let mut oblivious = Vec::with_capacity(n);
    let mut rng_sel = StdRng::seed_from_u64(38);
    for &node in &node_ids {
        let core = net.node(node).unwrap().core_neighbors();
        let to_rank = |w: Id| Id::new(((rank[&w] + n - rank[&node]) % n) as u128);
        let cands: Vec<Candidate> = weights
            .without(core.iter().copied().chain([node]))
            .iter()
            .map(|(id, w)| Candidate::new(to_rank(id), w))
            .collect();
        let core_ranks: Vec<Id> = core.iter().map(|&c| to_rank(c)).collect();
        let problem = ChordProblem::new(rank_space, Id::new(0), core_ranks, cands, k).unwrap();
        let sel = select_fast(&problem).unwrap();
        let aux: Vec<Id> = sel
            .aux
            .iter()
            .map(|r| node_ids[(rank[&node] + r.value() as usize) % n])
            .collect();
        let mut pool: Vec<Id> = node_ids.iter().copied().filter(|&x| x != node).collect();
        pool.shuffle(&mut rng_sel);
        pool.truncate(aux.len());
        aware.push(aux);
        oblivious.push(pool);
    }

    let measure = |net: &mut SkipGraphNetwork, sets: Option<&[Vec<Id>]>| -> f64 {
        for (idx, &node) in node_ids.iter().enumerate() {
            net.set_aux(node, sets.map(|s| s[idx].clone()).unwrap_or_default())
                .unwrap();
        }
        let mut rng = StdRng::seed_from_u64(39);
        let mut hops = 0u64;
        for _ in 0..queries {
            let origin = node_ids[rng.gen_range(0..n)];
            let key = catalog.key(workload.sample_item(&mut rng));
            let res = net.search(origin, key).unwrap();
            assert!(res.is_success());
            hops += u64::from(res.hops);
        }
        hops as f64 / f64::from(queries)
    };

    let core_only = measure(&mut net, None);
    let hops_aware = measure(&mut net, Some(&aware));
    let hops_oblivious = measure(&mut net, Some(&oblivious));
    peercache_bench::teeln!(
        cli.tee,
        "skip-graph transfer (extension; §I claim), n = {n}, k = {k}, alpha = 1.2\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "level links only:               {core_only:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "frequency-aware (Chord alg.):   {hops_aware:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "frequency-oblivious random:     {hops_oblivious:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "\nreduction vs oblivious: {:.1}% — the Chord selection transfers to \
         skip graphs through rank space.",
        (hops_oblivious - hops_aware) / hops_oblivious * 100.0
    );
    assert!(hops_aware < hops_oblivious);
}
