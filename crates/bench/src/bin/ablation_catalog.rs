//! Ablation: sensitivity of the headline reductions to the item-catalog
//! size — the one workload parameter the paper does not state.
//!
//! Fewer items concentrate query mass on fewer owner nodes, which helps
//! the frequency-aware optimum but not the (ring-uniform) oblivious
//! baseline. The repository's default of 64 items calibrates the Chord
//! n = 1024 headline into the paper's ≈ 57 % band.

use peercache_pastry::RoutingMode;
use peercache_sim::{run_stable, OverlayKind, StableConfig};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ablation_catalog");
    let quick = cli.quick;
    let (n, queries) = if quick { (128, 5_000) } else { (1024, 30_000) };
    peercache_bench::teeln!(
        cli.tee,
        "catalog-size sensitivity, n = {n}, k = log2 n, alpha = 1.2\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<18} {:>6} {:>12} {:>12} {:>11}",
        "overlay",
        "items",
        "hops(aware)",
        "hops(obliv)",
        "reduction%"
    );
    for kind in [
        OverlayKind::Chord,
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
    ] {
        let name = match kind {
            OverlayKind::Chord => "chord",
            OverlayKind::Pastry { .. } => "pastry(locality)",
            _ => unreachable!("ablation sweeps the paper's two overlays"),
        };
        for items in [32usize, 64, 128, 512, 10 * n] {
            let mut c = StableConfig::paper_defaults(kind, n, 7);
            c.items = items;
            c.queries = queries;
            let r = run_stable(&c);
            peercache_bench::teeln!(
                cli.tee,
                "{name:<18} {items:>6} {:>12.3} {:>12.3} {:>11.1}",
                r.aware.avg_hops(),
                r.oblivious.avg_hops(),
                r.reduction_pct
            );
        }
    }
    peercache_bench::teeln!(
        cli.tee,
        "\ndefault (64 items) lands the paper's headline band; see EXPERIMENTS.md"
    );
}
