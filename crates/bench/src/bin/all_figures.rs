//! Regenerate every figure of the paper's evaluation in one run and print
//! the headline comparisons (paper claim vs measured).

use peercache_bench::{teeln, FigureCli, Tee};
use peercache_sim::{fig3, fig4, fig5, fig6, render_table, FigureRow};

fn headline(tee: &mut Tee, rows: &[FigureRow]) {
    let pick =
        |f: &dyn Fn(&&FigureRow) -> bool| -> Option<&FigureRow> { rows.iter().find(|r| f(r)) };
    teeln!(tee, "Headline claims (paper → measured):");
    if let Some(r) = pick(&|r| r.figure == "fig5" && r.mode == "stable" && r.n >= 1024) {
        teeln!(
            tee,
            "  Chord stable n=1024, k=log n:  paper ≈ 57 %   measured {:.1} %",
            r.reduction_pct
        );
    }
    if let Some(r) = pick(&|r| r.figure == "fig5" && r.mode == "churn" && r.n >= 1024) {
        teeln!(
            tee,
            "  Chord churn  n=1024, k=log n:  paper ≈ 25 %   measured {:.1} %",
            r.reduction_pct
        );
    }
    if let Some(r) = pick(&|r| r.figure == "fig3" && r.n >= 2048 && (r.alpha - 1.2).abs() < 1e-9) {
        teeln!(
            tee,
            "  Pastry stable n=2048, α=1.2:   paper ≈ 49 %   measured {:.1} %",
            r.reduction_pct
        );
    }
    if let Some(r) = pick(&|r| r.figure == "fig3" && r.n >= 2048 && (r.alpha - 0.91).abs() < 1e-9) {
        teeln!(
            tee,
            "  Pastry stable n=2048, α=0.91:  paper ≈ 29 %   measured {:.1} %",
            r.reduction_pct
        );
    }
}

fn main() {
    let cli = FigureCli::parse();
    let mut tee = Tee::create("all_figures");
    let mut all = Vec::new();
    for (name, rows) in [
        ("Figure 3", fig3(&cli.scale, cli.seed)),
        ("Figure 4", fig4(&cli.scale, cli.seed)),
        ("Figure 5", fig5(&cli.scale, cli.seed)),
        ("Figure 6", fig6(&cli.scale, cli.seed)),
    ] {
        teeln!(tee, "== {name}");
        teeln!(tee, "{}", render_table(&rows));
        all.extend(rows);
    }
    headline(&mut tee, &all);
    if let Some(path) = &cli.json {
        std::fs::write(path, serde_json::to_string_pretty(&all).unwrap())
            .expect("write JSON output");
        println!("(rows written to {path})");
    }
}
