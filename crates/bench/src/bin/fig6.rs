//! Regenerate Figure 6: Chord, % reduction vs `k ∈ {1,2,3}·log₂ n`
//! (n = 1024, stable and churn modes).

use peercache_bench::FigureCli;
use peercache_sim::fig6;

fn main() {
    let cli = FigureCli::parse();
    let rows = fig6(&cli.scale, cli.seed);
    cli.report(
        "Figure 6 — Chord: improvement vs number of auxiliary neighbors",
        &rows,
    );
}
