//! Regenerate Figure 4: Pastry, % reduction vs `k ∈ {1,2,3}·log₂ n`
//! (n = 1024, α ∈ {1.2, 0.91}, locality-aware routing, stable mode).

use peercache_bench::FigureCli;
use peercache_sim::fig4;

fn main() {
    let cli = FigureCli::parse();
    let rows = fig4(&cli.scale, cli.seed);
    cli.report(
        "Figure 4 — Pastry: improvement vs number of auxiliary neighbors",
        &rows,
    );
}
