//! Regenerate Figure 5: Chord, % reduction vs `n`, stable and
//! churn-intensive modes (k = log₂ n, α = 1.2, 5 rankings).

use peercache_bench::FigureCli;
use peercache_sim::fig5;

fn main() {
    let cli = FigureCli::parse();
    let rows = fig5(&cli.scale, cli.seed);
    cli.report(
        "Figure 5 — Chord: improvement over the frequency-oblivious scheme vs n",
        &rows,
    );
}
