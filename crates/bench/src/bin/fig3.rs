//! Regenerate Figure 3: Pastry, % reduction in average hops vs `n`
//! (k = log₂ n, α ∈ {1.2, 0.91}, identical rankings, stable mode).

use peercache_bench::FigureCli;
use peercache_sim::fig3;

fn main() {
    let cli = FigureCli::parse();
    let rows = fig3(&cli.scale, cli.seed);
    cli.report(
        "Figure 3 — Pastry: improvement over the frequency-oblivious scheme vs n",
        &rows,
    );
}
