//! Measured QoS guarantees (paper contribution 2, beyond the paper's own
//! evaluation, which does not plot QoS): fraction of delay-bounded
//! queries answered within their bound, with and without QoS-aware
//! selection, on a real Chord overlay.

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("qos_guarantees");
    let quick = cli.quick;
    let (n, queries_per_node) = if quick { (128, 60) } else { (512, 200) };
    let bound_hops = 3u32;
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(31);
    let ids = random_ids(space, n, &mut rng);
    let mut overlay = SimOverlay::build(OverlayKind::Chord, space, &ids, &mut rng);
    let items = 64;
    let catalog = ItemCatalog::random(space, items, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(items, 1.2).unwrap(), Ranking::identity(items));
    let owners: Vec<Id> = (0..items)
        .map(|i| overlay.true_owner(catalog.key(i)).unwrap())
        .collect();
    let weights = FrequencySnapshot::from_pairs(workload.node_weights(items, |i| owners[i]));

    // The QoS set: the owners of the 8 LEAST popular items must still be
    // reachable within `bound_hops` — rare-but-critical signalling
    // traffic that a purely popularity-driven optimiser would ignore.
    let mut hot: Vec<(Id, f64)> = weights.iter().collect();
    hot.sort_by(|a, b| b.1.total_cmp(&a.1));
    let qos_targets: Vec<Id> = hot.iter().rev().take(8).map(|&(id, _)| id).collect();

    let k = 10;
    let run = |overlay: &mut SimOverlay, with_bounds: bool| -> (f64, f64, u64) {
        // Install per-node selections.
        for &node in &ids {
            let core = overlay.core_neighbors(node);
            let cands: Vec<Candidate> = weights
                .without(core.iter().copied().chain([node]))
                .iter()
                .map(|(id, w)| {
                    if with_bounds && qos_targets.contains(&id) {
                        Candidate::with_max_hops(id, w, bound_hops)
                    } else {
                        Candidate::new(id, w)
                    }
                })
                .collect();
            let problem = ChordProblem::new(space, node, core, cands, k).unwrap();
            let sel = select_fast(&problem).expect("feasible: bounds are loose");
            overlay.set_aux(node, sel.aux);
        }
        // Route: hot-item queries carry the bound, the rest are bulk.
        let mut rng = StdRng::seed_from_u64(32);
        let (mut bounded_total, mut bounded_met) = (0u64, 0u64);
        let (mut hops_total, mut count) = (0u64, 0u64);
        for _ in 0..(queries_per_node * n) {
            let origin = ids[rng.gen_range(0..ids.len())];
            let item = workload.sample_item(&mut rng);
            let out = overlay.query(origin, catalog.key(item));
            assert!(out.success);
            hops_total += u64::from(out.hops);
            count += 1;
            if qos_targets.contains(&owners[item]) && origin != owners[item] {
                bounded_total += 1;
                if out.hops <= bound_hops {
                    bounded_met += 1;
                }
            }
        }
        (
            bounded_met as f64 / bounded_total as f64 * 100.0,
            hops_total as f64 / count as f64,
            bounded_total,
        )
    };

    let (met_plain, avg_plain, nq) = run(&mut overlay, false);
    let (met_qos, avg_qos, _) = run(&mut overlay, true);
    peercache_bench::teeln!(
        cli.tee,
        "QoS guarantees on Chord, n = {n}, k = {k}, bound = {bound_hops} hops, \
         {nq} bounded queries\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "                         bound met    avg hops (all queries)"
    );
    peercache_bench::teeln!(
        cli.tee,
        "unconstrained optimum:   {met_plain:>8.1}%    {avg_plain:.3}"
    );
    peercache_bench::teeln!(
        cli.tee,
        "QoS-aware optimum:       {met_qos:>8.1}%    {avg_qos:.3}"
    );
    peercache_bench::teeln!(
        cli.tee,
        "\nQoS-aware selection trades {:.1}% average hops for meeting the bound \
         on {:.1}% of constrained queries.",
        (avg_qos - avg_plain) / avg_plain * 100.0,
        met_qos
    );
    assert!(met_qos >= met_plain);
    assert!(met_qos > 99.0, "bounds must be essentially always met");
}
