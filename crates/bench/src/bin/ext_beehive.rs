//! Extension quantifying §I/§II-C: peer caching versus Beehive-style
//! **item replication** under item updates.
//!
//! Beehive \[16\] replicates popular items so lookups terminate early; the
//! paper's §II-C critique is the replica-maintenance bill when items
//! change. We grant both schemes the same extra state budget (`n·k`
//! entries): peer caching spends it on `k` auxiliary pointers per node,
//! replication spends it on proactive replicas placed — Beehive-style —
//! on the nodes immediately preceding each item's owner (exactly the
//! nodes a Chord lookup traverses last, so a lookup stops at the first
//! replica on its path). Replica budgets per item follow popularity.
//!
//! We report average hops AND the maintenance traffic each scheme pays
//! when items mutate at a given rate: replicas must be re-pushed on every
//! change; peer pointers are untouched by item churn (§I).

use std::collections::{HashMap, HashSet};

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_sim::OverlayKind;
use peercache_sim::SimOverlay;
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_beehive");
    let quick = cli.quick;
    let (n, queries) = if quick { (128, 10_000) } else { (512, 40_000) };
    let items = 64;
    let k = (n as f64).log2().round() as usize;
    // Item update model: each item changes this many times per query
    // issued system-wide (mobile-IP-style record churn).
    let updates_per_query = 0.05;

    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(11);
    let node_ids = random_ids(space, n, &mut rng);
    let mut overlay = SimOverlay::build(OverlayKind::Chord, space, &node_ids, &mut rng);
    let catalog = ItemCatalog::random(space, items, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(items, 1.2).unwrap(), Ranking::identity(items));
    let owners: Vec<Id> = (0..items)
        .map(|i| overlay.true_owner(catalog.key(i)).unwrap())
        .collect();
    let weights = FrequencySnapshot::from_pairs(workload.node_weights(items, |i| owners[i]));

    // ---- scheme A: peer caching (the paper) ---------------------------
    for &node in &node_ids {
        let core = overlay.core_neighbors(node);
        let cands: Vec<Candidate> = weights
            .without(core.iter().copied().chain([node]))
            .iter()
            .map(|(id, w)| Candidate::new(id, w))
            .collect();
        let sel = select_fast(&ChordProblem::new(space, node, core, cands, k).unwrap()).unwrap();
        overlay.set_aux(node, sel.aux);
    }
    let mut rng_q = StdRng::seed_from_u64(12);
    let mut hops_peer = 0u64;
    for _ in 0..queries {
        let origin = node_ids[rng_q.gen_range(0..n)];
        let key = catalog.key(workload.sample_item(&mut rng_q));
        hops_peer += u64::from(overlay.query(origin, key).hops);
    }
    // Peer-cache maintenance: pinging k aux entries per node per refresh
    // interval — and ZERO traffic per item update.
    let peer_update_msgs = 0.0;

    // ---- scheme B: popularity-proportional replication ---------------
    // Budget n·k replicas, shared by popularity; item i's replicas sit on
    // the r_i nodes preceding its owner on the ring.
    for &node in &node_ids {
        overlay.set_aux(node, vec![]);
    }
    let mut budget = (n * k) as i64;
    let mut by_pop: Vec<usize> = (0..items).collect();
    by_pop.sort_by(|&a, &b| {
        workload
            .item_probability(b)
            .total_cmp(&workload.item_probability(a))
    });
    let mut replicas: HashMap<usize, HashSet<Id>> = HashMap::new();
    // Round-robin doubling: popular items get exponentially more replicas
    // (Beehive's level structure), until the budget runs dry.
    let mut per_item: Vec<i64> = vec![0; items];
    let mut level_quota = 1i64;
    while budget > 0 && level_quota <= n as i64 {
        for &i in &by_pop {
            if budget <= 0 {
                break;
            }
            let grant = level_quota.min(budget);
            per_item[i] += grant;
            budget -= grant;
        }
        level_quota *= 2;
    }
    // Place replicas on the ring predecessors of each owner.
    let ring: Vec<Id> = overlay.live_ids(); // sorted
    let pos_of: HashMap<Id, usize> = ring.iter().enumerate().map(|(p, &id)| (id, p)).collect();
    for i in 0..items {
        let owner_pos = pos_of[&owners[i]];
        let set: HashSet<Id> = (1..=per_item[i] as usize)
            .map(|back| ring[(owner_pos + n - (back % n)) % n])
            .collect();
        replicas.insert(i, set);
    }
    let mut rng_q = StdRng::seed_from_u64(12);
    let mut hops_repl = 0u64;
    for _ in 0..queries {
        let origin_idx = rng_q.gen_range(0..n);
        let item = workload.sample_item(&mut rng_q);
        let key = catalog.key(item);
        let (out, path) = overlay.query_with_path(node_ids[origin_idx], key);
        debug_assert!(out.success);
        // The lookup stops at the first replica (or the owner) on its path.
        let cut = path
            .iter()
            .position(|node| replicas[&item].contains(node) || *node == owners[item])
            .unwrap_or(path.len() - 1);
        hops_repl += cut as u64;
    }
    // Replication maintenance: every item update must be pushed to all of
    // its replicas.
    let total_updates = f64::from(queries) * updates_per_query;
    let repl_update_msgs: f64 = (0..items)
        .map(|i| total_updates / items as f64 * per_item[i] as f64)
        .sum();

    peercache_bench::teeln!(
        cli.tee,
        "peer caching vs popularity-proportional replication \
         (Chord, n = {n}, budget = n·k = {} entries, {queries} queries, \
         {:.0} item updates)\n",
        n * k,
        total_updates
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<28} {:>10} {:>22}",
        "scheme",
        "avg hops",
        "update messages"
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<28} {:>10.3} {:>22.0}",
        "peer caching (paper)",
        hops_peer as f64 / f64::from(queries),
        peer_update_msgs
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<28} {:>10.3} {:>22.0}",
        "replication (Beehive-style)",
        hops_repl as f64 / f64::from(queries),
        repl_update_msgs
    );
    let hp = hops_peer as f64 / f64::from(queries);
    let hr = hops_repl as f64 / f64::from(queries);
    if hp <= hr {
        peercache_bench::teeln!(
            cli.tee,
            "\nat this budget the optimal pointers beat replication on hops AND pay \
             nothing on item\nchurn (vs {repl_update_msgs:.0} update messages) — the paper's §I \
             argument, quantified."
        );
    } else {
        peercache_bench::teeln!(
            cli.tee,
            "\nreplication buys shorter lookups here ({hr:.3} vs {hp:.3} — Beehive's O(1) \
             design goal)\nbut pays {repl_update_msgs:.0} update messages to keep replicas fresh, \
             where peer caching pays 0:\nunder item churn (mobile IP, §I) the pointer cache \
             delivers most of the win for free.\n(item-caching staleness under the same \
             regime: see examples/p2p_dns.rs)"
        );
    }
}
