//! Extension experiment (beyond the paper): the churn-mode comparison on
//! **Pastry**. The paper runs churn only for Chord (§VI-C); our simulator
//! is overlay-agnostic, so the same protocol — exponential alive/dead
//! periods, periodic repair, periodic auxiliary recomputation from
//! observed frequencies — runs unchanged over the Pastry substrate in
//! both routing modes.

use peercache_pastry::RoutingMode;
use peercache_sim::{run_churn_once, ChurnConfig, OverlayKind, Strategy};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_pastry_churn");
    let quick = cli.quick;
    peercache_bench::teeln!(
        cli.tee,
        "Pastry under churn (extension; paper's §VI-C parameters)\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<18} {:>5} {:>12} {:>12} {:>11} {:>9}",
        "mode",
        "n",
        "hops(aware)",
        "hops(obliv)",
        "reduction%",
        "success"
    );
    for mode in [RoutingMode::GreedyPrefix, RoutingMode::LocalityAware] {
        for &n in if quick {
            &[128usize][..]
        } else {
            &[256usize, 1024][..]
        } {
            let mut config = ChurnConfig::paper_defaults(n, 7);
            config.kind = OverlayKind::Pastry {
                digit_bits: 1,
                mode,
            };
            if quick {
                config.duration = 900.0;
                config.warmup = 300.0;
            }
            let aware = run_churn_once(&config, Strategy::Aware);
            let oblivious = run_churn_once(&config, Strategy::Oblivious);
            let name = match mode {
                RoutingMode::GreedyPrefix => "greedy-prefix",
                RoutingMode::LocalityAware => "locality-aware",
            };
            peercache_bench::teeln!(
                cli.tee,
                "{name:<18} {n:>5} {:>12.3} {:>12.3} {:>11.1} {:>8.1}%",
                aware.avg_hops(),
                oblivious.avg_hops(),
                (oblivious.avg_hops() - aware.avg_hops()) / oblivious.avg_hops() * 100.0,
                aware.success_rate() * 100.0
            );
        }
    }
    peercache_bench::teeln!(
        cli.tee,
        "\nthe paper's churn conclusions (positive but roughly halved gains, \
         ~99% success)\ncarry over to the prefix-routing substrate."
    );
}
