//! Extension engaging §VII: an *iterated, measurement-driven* selection
//! heuristic as a stand-in for the paper's open "globally optimal
//! decentralized algorithm".
//!
//! The paper's local optimum prices a pointer with the id-derived
//! steady-state estimate `d(v, N ∪ A)`, blind to the auxiliary pointers
//! other nodes hold. The iterated heuristic instead *measures*: each
//! round, every node probes its observed candidates through the live
//! overlay (with everyone's current pointers installed) and re-selects
//! the k candidates with the largest measured benefit
//! `f_v · (hops(v) − 1)`. Rounds repeat until selections stabilise.
//!
//! Output: realised average hops of (1) the paper's one-shot model-based
//! optimum, (2) the iterated measured heuristic, and (3) the oblivious
//! baseline — quantifying how much headroom the open problem actually
//! holds under this workload.

use std::collections::HashMap;

use peercache_core::chord::select_fast;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_sim::{OverlayKind, SimOverlay};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, RankingAssignment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_iterated");
    let quick = cli.quick;
    let (n, queries, rounds) = if quick {
        (128, 10_000, 3)
    } else {
        (512, 40_000, 4)
    };
    let space = IdSpace::paper();
    let seed = 7u64;
    let mut rng_topology = StdRng::seed_from_u64(seed);
    let mut rng_workload = StdRng::seed_from_u64(seed + 1);

    let node_ids = random_ids(space, n, &mut rng_topology);
    let items = 64;
    let catalog = ItemCatalog::random(space, items, &mut rng_topology);
    let zipf = Zipf::new(items, 1.2).unwrap();
    let assignment = RankingAssignment::random_pool(items, n, 5, &mut rng_workload);
    let mut overlay = SimOverlay::build(OverlayKind::Chord, space, &node_ids, &mut rng_topology);
    let owners: Vec<Id> = (0..items)
        .map(|i| overlay.true_owner(catalog.key(i)).unwrap())
        .collect();
    let k = (n as f64).log2().round() as usize;

    // Per-node candidate weights (exact popularities, as in stable mode).
    let weights: Vec<FrequencySnapshot> = (0..n)
        .map(|idx| {
            let wl = NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone());
            let full = FrequencySnapshot::from_pairs(wl.node_weights(items, |i| owners[i]));
            let core = overlay.core_neighbors(node_ids[idx]);
            full.without(core.into_iter().chain([node_ids[idx]]))
        })
        .collect();

    let measure = |overlay: &mut SimOverlay| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let mut hops = 0u64;
        for _ in 0..queries {
            let idx = rng.gen_range(0..n);
            let wl = NodeWorkload::new(zipf.clone(), assignment.for_node(idx).clone());
            let key = catalog.key(wl.sample_item(&mut rng));
            hops += u64::from(overlay.query(node_ids[idx], key).hops);
        }
        hops as f64 / f64::from(queries)
    };

    // (1) the paper's one-shot model-based optimum.
    for (idx, &node) in node_ids.iter().enumerate() {
        let cands: Vec<Candidate> = weights[idx]
            .iter()
            .map(|(id, w)| Candidate::new(id, w))
            .collect();
        let core = overlay.core_neighbors(node);
        let sel = select_fast(&ChordProblem::new(space, node, core, cands, k).unwrap()).unwrap();
        overlay.set_aux(node, sel.aux);
    }
    let model_hops = measure(&mut overlay);

    // (2) iterated measured best-response, starting from the model optimum.
    let mut history = Vec::new();
    for round in 0..rounds {
        let mut changed = 0usize;
        for (idx, &node) in node_ids.iter().enumerate() {
            // Probe measured hops to every candidate through the overlay
            // as it stands (self excluded from its own route by clearing
            // its aux during probing — a pointer under evaluation must
            // not pre-exist).
            let current: Vec<Id> = match &overlay {
                SimOverlay::Chord(net) => net.node(node).unwrap().aux.clone(),
                SimOverlay::Pastry(net) => net.node(node).unwrap().aux.clone(),
                SimOverlay::Tapestry(net) => net.node(node).unwrap().aux.clone(),
                SimOverlay::SkipGraph(net) => net.node(node).unwrap().aux.clone(),
            };
            overlay.set_aux(node, vec![]);
            let mut benefit: HashMap<Id, f64> = HashMap::new();
            for (cand, w) in weights[idx].iter() {
                let hops = f64::from(overlay.query(node, cand).hops);
                benefit.insert(cand, w * (hops - 1.0).max(0.0));
            }
            let mut ranked: Vec<(Id, f64)> = benefit.into_iter().collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut chosen: Vec<Id> = ranked.into_iter().take(k).map(|(id, _)| id).collect();
            chosen.sort();
            let mut prev = current.clone();
            prev.sort();
            if chosen != prev {
                changed += 1;
            }
            overlay.set_aux(node, chosen);
        }
        let hops = measure(&mut overlay);
        history.push((round + 1, changed, hops));
        if changed == 0 {
            break;
        }
    }
    let iterated_hops = history.last().map(|&(_, _, h)| h).unwrap_or(model_hops);

    // (3) the oblivious baseline for reference.
    let mut rng_select = StdRng::seed_from_u64(seed + 3);
    for &node in &node_ids {
        let sel = overlay
            .select_oblivious_uniform(node, k, &mut rng_select)
            .unwrap();
        overlay.set_aux(node, sel.aux);
    }
    let oblivious_hops = measure(&mut overlay);

    peercache_bench::teeln!(
        cli.tee,
        "iterated measured selection (Chord, n = {n}, k = {k}, alpha = 1.2)\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "oblivious baseline:              {oblivious_hops:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "paper's one-shot model optimum:  {model_hops:.3} hops"
    );
    for (round, changed, hops) in &history {
        peercache_bench::teeln!(
            cli.tee,
            "iterated round {round}: {changed:>4} nodes re-selected → {hops:.3} hops"
        );
    }
    let delta = if model_hops > 1.0 {
        (model_hops - iterated_hops) / (model_hops - 1.0) * 100.0
    } else {
        0.0
    };
    if delta >= 0.5 {
        peercache_bench::teeln!(
            cli.tee,
            "\nmeasured-feedback iteration closes {delta:.1}% of the remaining \
             gap — empirical headroom\nfor the §VII open problem under this \
             workload."
        );
    } else {
        peercache_bench::teeln!(
            cli.tee,
            "\nmeasured-feedback greedy does NOT beat the one-shot model \
             optimum ({delta:.1}% of the gap):\nthe DP's coordinated coverage \
             (one pointer serving a whole id-region) outweighs what\nper-\
             candidate measurements add — evidence that the paper's local \
             model optimum is\nalready near the practical ceiling (cf. \
             ablation_global_gap)."
        );
    }
}
