//! Node-runtime replay (ISSUE 10): host every substrate as live nodes in
//! the deterministic event-loop runtime, replay the stable driver's
//! exact query stream as `Lookup` messages, and exercise the persistent
//! peer store end-to-end — aux-selection admission, trace-fed
//! reliability scores, atomic save, total reload, and prioritized
//! parallel reconnection. The report cross-checks both legs against the
//! monolithic sim drivers in-process and prints the verdicts, so the CI
//! determinism job can diff `--threads 1` vs `--threads 4` output *and*
//! see the runtime ≡ sim equivalence hold at paper scale.

use peercache_bench::{teeln, FigureCli, Tee};
use peercache_faults::{FaultConfig, FaultPlan};
use peercache_node::{NodeRuntime, PeerStore, StoreConfig};
use peercache_pastry::RoutingMode;
use peercache_sim::{run_stable, run_stable_faulted, OverlayKind, RuntimeFixture, StableConfig};
use serde::Serialize;

/// One substrate's replay outcome, as dumped to `--json`.
#[derive(Serialize)]
struct SystemReport {
    system: String,
    nodes: usize,
    queries: usize,
    transparent_avg_hops: f64,
    transparent_success_rate: f64,
    transparent_matches_sim: bool,
    faulted_success_rate: f64,
    faulted_avg_retries: f64,
    faulted_matches_sim: bool,
    messages_delivered: u64,
    final_tick: u64,
    store_peers: usize,
    store_reloaded_identically: bool,
    reconnected: usize,
    reconnect_first: Option<u128>,
}

fn main() {
    let cli = FigureCli::parse();
    let mut tee = Tee::create("node_run");
    let systems: [(&str, OverlayKind); 4] = [
        ("chord", OverlayKind::Chord),
        (
            "pastry",
            OverlayKind::Pastry {
                digit_bits: 1,
                mode: RoutingMode::LocalityAware,
            },
        ),
        ("tapestry", OverlayKind::Tapestry { digit_bits: 1 }),
        ("skipgraph", OverlayKind::SkipGraph),
    ];
    let faults = FaultConfig {
        crash_rate: 0.05,
        unresponsive_rate: 0.05,
        loss_rate: 0.05,
        ..FaultConfig::default()
    };

    let nodes = (256 / cli.scale.node_divisor).max(16);
    let mut reports = Vec::new();
    teeln!(
        tee,
        "== node runtime replay (n={nodes}, q={}, seed={})",
        cli.scale.queries,
        cli.seed
    );
    teeln!(
        tee,
        "{:>10} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>9} {:>8} | {:>6} {:>6}",
        "system",
        "hops",
        "ok_rate",
        "=sim",
        "f_ok",
        "f_retry",
        "=sim",
        "messages",
        "ticks",
        "peers",
        "reconn"
    );

    for (system, kind) in systems {
        let mut config = StableConfig::paper_defaults(kind, nodes, cli.seed);
        config.items = cli.scale.items;
        config.queries = cli.scale.queries;
        let fixture = RuntimeFixture::build(&config);
        let owner = fixture
            .node_ids()
            .first()
            .copied()
            .expect("configs have nodes");

        // Transparent leg: the runtime must reproduce run_stable's
        // aware pass bit-for-bit.
        let reference = run_stable(&config);
        let mut runtime = NodeRuntime::new(fixture.overlay(), FaultPlan::transparent(config.seed));
        runtime.install_aux(fixture.aware_table());
        for (origin, key) in fixture.queries() {
            runtime.submit(origin, key);
        }
        runtime.run();
        let transparent = runtime.query_metrics();
        let transparent_matches = transparent == reference.aware;

        // Faulted leg, with the peer store attached to one node: same
        // equivalence against run_stable_faulted, then persistence and
        // prioritized parallel reconnection through the real file path.
        let reference_faulted = run_stable_faulted(&config, &faults);
        let mut faulted_runtime =
            NodeRuntime::new(fixture.overlay(), FaultPlan::new(config.seed, &faults));
        faulted_runtime.install_aux(fixture.aware_table());
        faulted_runtime.attach_store(owner, PeerStore::new(StoreConfig::default()));
        for (origin, key) in fixture.queries() {
            faulted_runtime.submit(origin, key);
        }
        faulted_runtime.run();
        let faulted = faulted_runtime.fault_metrics();
        let faulted_matches = faulted == reference_faulted.aware;
        let messages = faulted_runtime.delivered();
        let ticks = faulted_runtime.now();

        let store_path = format!("out/node_store_{system}.jsonl");
        let (_, saved) = faulted_runtime
            .detach_store()
            .expect("store was attached above");
        saved
            .save(std::path::Path::new(&store_path))
            .expect("write peer store");
        let reloaded = PeerStore::load(std::path::Path::new(&store_path), StoreConfig::default());
        let reload_identity = reloaded == saved;
        let store_peers = reloaded.len();

        let mut boot = NodeRuntime::new(fixture.overlay(), FaultPlan::new(config.seed, &faults));
        boot.attach_store(owner, reloaded);
        let reconnected = boot.reconnect();
        let reconnect_first = reconnected.first().map(|id| id.value());

        teeln!(
            tee,
            "{:>10} | {:>8.4} {:>8.4} {:>6} | {:>8.4} {:>8.4} {:>6} | {:>9} {:>8} | {:>6} {:>6}",
            system,
            transparent.avg_hops(),
            transparent.success_rate(),
            transparent_matches,
            faulted.base.success_rate(),
            faulted.avg_retries(),
            faulted_matches,
            messages,
            ticks,
            store_peers,
            reconnected.len()
        );

        reports.push(SystemReport {
            system: system.to_string(),
            nodes,
            queries: config.queries,
            transparent_avg_hops: transparent.avg_hops(),
            transparent_success_rate: transparent.success_rate(),
            transparent_matches_sim: transparent_matches,
            faulted_success_rate: faulted.base.success_rate(),
            faulted_avg_retries: faulted.avg_retries(),
            faulted_matches_sim: faulted_matches,
            messages_delivered: messages,
            final_tick: ticks,
            store_peers,
            store_reloaded_identically: reload_identity,
            reconnected: reconnected.len(),
            reconnect_first,
        });
    }

    let all_match = reports.iter().all(|r| {
        r.transparent_matches_sim && r.faulted_matches_sim && r.store_reloaded_identically
    });
    teeln!(
        tee,
        "runtime == sim on all substrates, store round-trips: {all_match}"
    );
    assert!(
        all_match,
        "event-loop runtime diverged from the sim drivers (see table above)"
    );

    if let Some(path) = &cli.json {
        std::fs::write(path, serde_json::to_string_pretty(&reports).unwrap())
            .expect("write JSON output");
        println!("(reports written to {path})");
    }
}
