//! Ablation for §III-2: storage-limited frequency tracking.
//!
//! "If the number of accessed nodes is very large, then a node can simply
//! store the top-n frequent nodes … the resulting solution may be
//! sub-optimal because some nodes are ignored."
//!
//! We measure that sub-optimality: the eq.-1 cost of selections computed
//! from (a) exact full counts, (b) exact counts truncated to the top-n,
//! and (c) a Space-Saving sketch with n monitored slots, as n shrinks.

use peercache_core::chord::select_fast;
use peercache_core::cost::chord_cost;
use peercache_core::{Candidate, ChordProblem};
use peercache_freq::{ExactCounter, FrequencyEstimator, FrequencySnapshot, SpaceSaving};
use peercache_id::{Id, IdSpace};
use peercache_workload::{random_ids, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem_from(
    space: IdSpace,
    me: Id,
    core: &[Id],
    snapshot: &FrequencySnapshot,
    k: usize,
) -> ChordProblem {
    let cands: Vec<Candidate> = snapshot
        .without(core.iter().copied().chain([me]))
        .iter()
        .map(|(id, w)| Candidate::new(id, w))
        .collect();
    ChordProblem::new(space, me, core.to_vec(), cands, k).unwrap()
}

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ablation_topn");
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(23);
    let peers = random_ids(space, 512, &mut rng);
    let me = peers[0];
    let core: Vec<Id> = peers[1..10].to_vec();
    let owners = &peers[10..];

    // A long observation stream over Zipf(1.2) owners.
    let zipf = Zipf::new(owners.len(), 1.2).unwrap();
    let mut exact = ExactCounter::new();
    let mut sketches: Vec<(usize, SpaceSaving)> = [8usize, 16, 32, 64, 128]
        .iter()
        .map(|&n| (n, SpaceSaving::new(n)))
        .collect();
    for _ in 0..200_000 {
        let owner = owners[zipf.sample(&mut rng)];
        exact.observe(owner);
        for (_, s) in &mut sketches {
            s.observe(owner);
        }
    }

    let k = 10;
    // Ground truth: selection from the full exact counts, PRICED against
    // the full exact distribution.
    let full = problem_from(space, me, &core, &exact.snapshot(), k);
    let best = select_fast(&full).unwrap();
    peercache_bench::teeln!(
        cli.tee,
        "full tracking: eq.1 cost {:.0} ({} candidates)\n",
        best.cost,
        full.candidates.len()
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:>6} {:>16} {:>16}",
        "top-n",
        "exact-top-n",
        "space-saving"
    );
    for (n, sketch) in &sketches {
        let truncated = problem_from(space, me, &core, &exact.snapshot().top_n(*n), k);
        let t_sel = select_fast(&truncated).unwrap();
        let t_cost = chord_cost(&full, &t_sel.aux); // price on the TRUE distribution
        let sk = problem_from(space, me, &core, &sketch.snapshot(), k);
        let s_sel = select_fast(&sk).unwrap();
        let s_cost = chord_cost(&full, &s_sel.aux);
        peercache_bench::teeln!(
            cli.tee,
            "{n:>6} {:>15.2}% {:>15.2}%",
            (t_cost - best.cost) / best.cost * 100.0,
            (s_cost - best.cost) / best.cost * 100.0,
        );
    }
    peercache_bench::teeln!(
        cli.tee,
        "\n(values are eq.1 cost increase over full tracking; 0% = no loss)"
    );
}
