//! Extension demonstrating §I's transfer claim: "the techniques presented
//! for Pastry can be directly applied to Tapestry".
//!
//! We run the paper's stable-mode comparison on a Tapestry overlay
//! (prefix routing with surrogate roots, no leaf set), reusing the Pastry
//! selection algorithms verbatim — the trie cost model only needs the
//! digits-to-fix geometry, which Tapestry shares.

use peercache_core::pastry::select_greedy;
use peercache_core::{Candidate, PastryProblem};
use peercache_freq::FrequencySnapshot;
use peercache_id::{Id, IdSpace};
use peercache_tapestry::{TapestryConfig, TapestryNetwork};
use peercache_workload::{random_ids, ItemCatalog, NodeWorkload, Ranking, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_tapestry");
    let quick = cli.quick;
    let (n, queries) = if quick { (128, 10_000) } else { (1024, 40_000) };
    let items = 64;
    let digit_bits = 1u8;
    let k = (n as f64).log2().round() as usize;
    let space = IdSpace::paper();
    let mut rng = StdRng::seed_from_u64(29);

    let node_ids = random_ids(space, n, &mut rng);
    let mut net = TapestryNetwork::build(TapestryConfig::new(space, digit_bits), &node_ids);
    let catalog = ItemCatalog::random(space, items, &mut rng);
    let workload = NodeWorkload::new(Zipf::new(items, 1.2).unwrap(), Ranking::identity(items));
    let owners: Vec<Id> = (0..items)
        .map(|i| net.true_owner(catalog.key(i)).unwrap())
        .collect();
    let weights = FrequencySnapshot::from_pairs(workload.node_weights(items, |i| owners[i]));

    // Selections per node: the PASTRY optimiser, unchanged.
    let mut aware = Vec::with_capacity(n);
    let mut oblivious = Vec::with_capacity(n);
    let mut rng_sel = StdRng::seed_from_u64(30);
    for &node in &node_ids {
        let core = net.node(node).unwrap().core_neighbors();
        let cands: Vec<Candidate> = weights
            .without(core.iter().copied().chain([node]))
            .iter()
            .map(|(id, w)| Candidate::new(id, w))
            .collect();
        let problem = PastryProblem::new(space, digit_bits, node, core, cands, k).unwrap();
        let sel = select_greedy(&problem).unwrap();
        // Oblivious: random nodes from the overlay, same budget.
        let mut pool: Vec<Id> = node_ids.iter().copied().filter(|&x| x != node).collect();
        pool.shuffle(&mut rng_sel);
        pool.truncate(sel.aux.len());
        aware.push(sel.aux);
        oblivious.push(pool);
    }

    let measure = |net: &mut TapestryNetwork, sets: Option<&[Vec<Id>]>| -> f64 {
        for (idx, &node) in node_ids.iter().enumerate() {
            net.set_aux(node, sets.map(|s| s[idx].clone()).unwrap_or_default())
                .unwrap();
        }
        let mut rng = StdRng::seed_from_u64(31);
        let mut hops = 0u64;
        for _ in 0..queries {
            let origin = node_ids[rng.gen_range(0..n)];
            let key = catalog.key(workload.sample_item(&mut rng));
            let res = net.route(origin, key).unwrap();
            assert!(res.is_success());
            hops += u64::from(res.hops);
        }
        hops as f64 / f64::from(queries)
    };

    let core_only = measure(&mut net, None);
    let hops_aware = measure(&mut net, Some(&aware));
    let hops_oblivious = measure(&mut net, Some(&oblivious));
    peercache_bench::teeln!(
        cli.tee,
        "Tapestry transfer (extension; §I claim), n = {n}, k = {k}, alpha = 1.2\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "core routing table only:       {core_only:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "frequency-aware (Pastry alg.): {hops_aware:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "frequency-oblivious random:    {hops_oblivious:.3} hops"
    );
    peercache_bench::teeln!(
        cli.tee,
        "\nreduction vs oblivious: {:.1}% — the Pastry selection transfers to \
         Tapestry unchanged.",
        (hops_oblivious - hops_aware) / hops_oblivious * 100.0
    );
    assert!(hops_aware < hops_oblivious);
}
