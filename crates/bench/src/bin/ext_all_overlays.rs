//! Capstone extension: the paper's stable-mode comparison on all four
//! substrates — Chord and Pastry (the paper's evaluation) plus Tapestry
//! and skip graphs (the §I transfer claims) — through one driver.

use peercache_pastry::RoutingMode;
use peercache_sim::{run_stable, OverlayKind, StableConfig};

fn main() {
    let mut cli = peercache_bench::BinArgs::parse("ext_all_overlays");
    let quick = cli.quick;
    let (n, queries) = if quick { (128, 10_000) } else { (1024, 40_000) };
    let kinds: [(&str, OverlayKind); 4] = [
        ("chord", OverlayKind::Chord),
        (
            "pastry (locality)",
            OverlayKind::Pastry {
                digit_bits: 1,
                mode: RoutingMode::LocalityAware,
            },
        ),
        ("tapestry", OverlayKind::Tapestry { digit_bits: 1 }),
        ("skip graph", OverlayKind::SkipGraph),
    ];
    peercache_bench::teeln!(
        cli.tee,
        "stable-mode comparison on every substrate, n = {n}, k = log2 n, alpha = 1.2\n"
    );
    peercache_bench::teeln!(
        cli.tee,
        "{:<18} {:>11} {:>12} {:>12} {:>11}",
        "overlay",
        "hops(core)",
        "hops(aware)",
        "hops(obliv)",
        "reduction%"
    );
    for (name, kind) in kinds {
        let mut config = StableConfig::paper_defaults(kind, n, 7);
        config.queries = queries;
        let r = run_stable(&config);
        peercache_bench::teeln!(
            cli.tee,
            "{name:<18} {:>11.3} {:>12.3} {:>12.3} {:>11.1}",
            r.core_only.avg_hops(),
            r.aware.avg_hops(),
            r.oblivious.avg_hops(),
            r.reduction_pct
        );
        assert_eq!(r.aware.success_rate(), 1.0);
    }
    peercache_bench::teeln!(
        cli.tee,
        "\nthe frequency-aware optimum wins on every routing geometry the \
         paper claims applicability to."
    );
}
