//! Fault-matrix sweep (ISSUE 5): loss × staleness × crash rates over the
//! stable-mode driver on every substrate, comparing the frequency-aware,
//! frequency-oblivious, and core-only strategies under the deterministic
//! fault-injection layer. Output is bit-identical at any thread count.

use peercache_bench::{teeln, FigureCli, Tee};
use peercache_pastry::RoutingMode;
use peercache_sim::{
    fault_matrix_multi, FaultMatrixCell, FaultMatrixConfig, OverlayKind, StableConfig,
};
use serde::Serialize;

/// One substrate's full matrix, as dumped to `--json`.
#[derive(Serialize)]
struct SystemMatrix {
    system: String,
    cells: Vec<FaultMatrixCell>,
}

fn main() {
    let cli = FigureCli::parse();
    let mut tee = Tee::create("fault_matrix");
    let systems: [(&str, OverlayKind); 4] = [
        ("chord", OverlayKind::Chord),
        (
            "pastry",
            OverlayKind::Pastry {
                digit_bits: 1,
                mode: RoutingMode::LocalityAware,
            },
        ),
        ("tapestry", OverlayKind::Tapestry { digit_bits: 1 }),
        ("skipgraph", OverlayKind::SkipGraph),
    ];

    let nodes = (256 / cli.scale.node_divisor).max(16);
    // One flat fan-out over every (substrate, cell) pair: per-cell fault
    // decisions are pure seed hashes, so the 48 jobs are independent and
    // the pool never idles at a per-substrate barrier.
    let configs: Vec<FaultMatrixConfig> = systems
        .iter()
        .map(|&(_, kind)| {
            let mut stable = StableConfig::paper_defaults(kind, nodes, cli.seed);
            stable.items = cli.scale.items;
            stable.queries = cli.scale.queries;
            FaultMatrixConfig::paper_defaults(stable)
        })
        .collect();
    let matrices = fault_matrix_multi(&configs);

    let mut out = Vec::new();
    for ((system, _), cells) in systems.iter().zip(matrices) {
        teeln!(tee, "== fault matrix: {system} (n={nodes})");
        teeln!(
            tee,
            "{:>5} {:>5} {:>5} | {:>7} {:>7} {:>7} | {:>6} {:>6} | {:>7} {:>8} | {:>6} {:>6}",
            "loss",
            "stale",
            "crash",
            "ok_aw",
            "ok_ob",
            "ok_co",
            "hop_aw",
            "hop_ob",
            "retr_aw",
            "fall_aw",
            "inf_aw",
            "inf_ob"
        );
        for cell in &cells {
            teeln!(
                tee,
                "{:>5.2} {:>5.2} {:>5.2} | {:>7.4} {:>7.4} {:>7.4} | {:>6.3} {:>6.3} | {:>7.4} {:>8} | {:>6.3} {:>6.3}",
                cell.loss_rate,
                cell.stale_rate,
                cell.crash_rate,
                cell.report.aware.base.success_rate(),
                cell.report.oblivious.base.success_rate(),
                cell.report.core_only.base.success_rate(),
                cell.report.aware.base.avg_hops(),
                cell.report.oblivious.base.avg_hops(),
                cell.report.aware.avg_retries(),
                cell.report.aware.fallbacks,
                cell.hop_inflation_aware,
                cell.hop_inflation_oblivious
            );
        }
        out.push(SystemMatrix {
            system: system.to_string(),
            cells,
        });
    }

    if let Some(path) = &cli.json {
        std::fs::write(path, serde_json::to_string_pretty(&out).unwrap())
            .expect("write JSON output");
        println!("(matrix written to {path})");
    }
}
