//! The machine-readable performance baseline: time the hot kernels with
//! warmup + median-of-N and emit `out/BENCH_<label>.json`, the first
//! point of the perf trajectory CI gates against.
//!
//! Kernels:
//!
//! * the fast Chord DP through a reused [`ChordWorkspace`] (the
//!   steady-state repeated-solve path) vs the naive `O(n²k)` reference,
//!   plus the oracle+DP phase alone via [`PreparedChord`];
//! * the greedy Pastry trie DP through a reused [`PastryWorkspace`] and
//!   the exact per-row DP;
//! * Space-Saving stream updates;
//! * end-to-end `fig3` at `--quick` scale serially and over the pool
//!   (paper scale too without `--quick`), reporting speedup-vs-serial.
//!
//! Raw `ns_per_op` is machine-dependent, so the gate compares **units**:
//! each kernel's time divided by the time of a fixed SplitMix64 mixing
//! loop measured on the same machine in the same run. Units move far less
//! across hosts than nanoseconds do; the `--baseline` mode fails when any
//! gated kernel's units regress beyond the tolerance (default 25 %).
//!
//! Built with `--features count-allocs`, each workspace kernel also
//! reports `alloc_per_op` — allocator calls per steady-state solve,
//! measured by the counting global allocator — and the run **fails** if a
//! workspace kernel allocates at all: the zero-alloc contract is a hard
//! gate, not a statistic. Without the feature the field is `null`.
//!
//! The same build also fills the report's `memory` section: peak
//! live-heap bytes-per-node gauges for the monolithic stable driver and
//! the sharded scale engine (informational — the CI memory ceiling is
//! gated by `fig3_scale --max-bytes-per-node`, not here).
//!
//! ```text
//! perf_baseline [--quick] [--label NAME] [--threads N]
//!               [--baseline PATH] [--tolerance PCT]
//!               [--require-speedup MIN]
//! ```
//!
//! `--require-speedup MIN` fails the run when any parallel end-to-end
//! kernel's speedup-vs-serial falls below `MIN` — the CI guard that the
//! pool actually wins on a multi-core runner.
//!
//! To refresh the committed baseline:
//! `cargo run --release -p peercache-bench --features count-allocs --bin
//! perf_baseline -- --quick --label baseline &&
//! cp out/BENCH_baseline.json .`

use std::time::Instant;

use peercache_bench::json::Json;
use peercache_bench::{random_chord_problem, random_pastry_problem};
use peercache_core::chord::{select_fast, select_naive, ChordWorkspace, PreparedChord};
use peercache_core::pastry::{select_dp, select_greedy, PastryWorkspace};
use peercache_freq::{FrequencyEstimator, SpaceSaving};
use peercache_id::Id;
use peercache_par::with_threads;
use peercache_pastry::RoutingMode;
use peercache_sim::{
    fault_matrix_multi, fig3, ChurnConfig, ChurnRecomputeBench, FaultMatrixConfig, OverlayKind,
    Scale, SelectionBench, StableConfig,
};
use peercache_workload::{random_ids, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct KernelReport {
    kernel: String,
    config: String,
    ns_per_op: f64,
    /// ns_per_op divided by the calibration loop's ns-per-mix: the
    /// machine-normalised figure the regression gate compares.
    units: f64,
    ops_per_iter: u64,
    samples: usize,
    threads: usize,
    speedup_vs_serial: Option<f64>,
    /// Allocator calls per steady-state op, from the `count-allocs`
    /// counting allocator. `null` when the feature is off or the kernel
    /// is not alloc-instrumented; workspace kernels must report 0.
    alloc_per_op: Option<f64>,
    /// Whether the regression gate applies (end-to-end wall-clock kernels
    /// are informational: too load-sensitive to gate in CI).
    gated: bool,
}

/// One live-heap high-water measurement from the counting allocator:
/// the peak footprint of a named simulation region divided by its
/// population. Informational (never gated on units — heap layout is a
/// property of the build, not the host), present only under
/// `count-allocs`.
#[derive(Serialize)]
struct MemoryGauge {
    region: String,
    nodes: usize,
    peak_bytes: u64,
    bytes_per_node: f64,
}

#[derive(Serialize)]
struct BenchReport {
    label: String,
    quick: bool,
    threads: usize,
    calibration_ns_per_mix: f64,
    kernels: Vec<KernelReport>,
    /// Bytes-per-node gauges (empty without `count-allocs`).
    memory: Vec<MemoryGauge>,
}

struct Profile {
    quick: bool,
    /// Median-of-N samples for the micro kernels.
    samples: usize,
    warmup: usize,
    /// Samples for the end-to-end figure kernels.
    e2e_samples: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Median ns per call of `f` over `samples` timed runs after `warmup`
/// untimed ones.
fn time_median<F: FnMut()>(samples: usize, warmup: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    median(times)
}

/// Time the fixed reference workload: a SplitMix64-style mixing loop.
/// Returns ns per mix. Every kernel's `units` figure is its ns/op divided
/// by this, which cancels most of the host's single-core speed.
fn calibrate() -> f64 {
    const MIXES: u64 = 1 << 22;
    let ns = time_median(5, 1, || {
        let mut acc = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..MIXES {
            let mut z = acc.wrapping_add(i).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = z ^ (z >> 31);
        }
        // The accumulator escapes through a volatile-ish sink so the loop
        // cannot be folded away.
        std::hint::black_box(acc);
    });
    ns / MIXES as f64
}

/// Steady-state allocator calls per op of `f` under the counting
/// allocator: one untimed call absorbs any remaining one-time growth,
/// then a counted call measures the repeat-solve behaviour.
#[cfg(feature = "count-allocs")]
fn allocs_per_op<F: FnMut()>(ops: u64, mut f: F) -> Option<f64> {
    use peercache_bench::alloc_count::alloc_calls;
    f();
    let before = alloc_calls();
    f();
    Some((alloc_calls() - before) as f64 / ops as f64)
}

#[cfg(not(feature = "count-allocs"))]
fn allocs_per_op<F: FnMut()>(_ops: u64, _f: F) -> Option<f64> {
    None
}

/// The zero-alloc hard gate for workspace kernels (a no-op without
/// `count-allocs`, where nothing was measured).
fn require_zero_alloc(name: &str, alloc_per_op: Option<f64>) {
    if let Some(calls) = alloc_per_op {
        assert!(
            calls == 0.0,
            "{name} made {calls} allocator calls per steady-state solve; \
             the workspace contract is zero"
        );
    }
}

struct Args {
    profile: Profile,
    label: String,
    baseline: Option<String>,
    tolerance: f64,
    require_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut label = "local".to_string();
    let mut baseline = None;
    let mut tolerance = 25.0;
    let mut require_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().expect("--label takes a name"),
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--threads takes a positive integer");
                peercache_par::set_threads(n);
            }
            "--baseline" => baseline = Some(args.next().expect("--baseline takes a path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .expect("--tolerance takes a positive percentage");
            }
            "--require-speedup" => {
                require_speedup = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&m: &f64| m > 0.0)
                        .expect("--require-speedup takes a positive ratio"),
                );
            }
            other => panic!(
                "unknown argument {other}; usage: [--quick] [--label NAME] \
                 [--threads N] [--baseline PATH] [--tolerance PCT] \
                 [--require-speedup MIN]"
            ),
        }
    }
    let profile = if quick {
        Profile {
            quick,
            samples: 9,
            warmup: 2,
            e2e_samples: 3,
        }
    } else {
        Profile {
            quick,
            samples: 9,
            warmup: 2,
            e2e_samples: 1,
        }
    };
    Args {
        profile,
        label,
        baseline,
        tolerance,
        require_speedup,
    }
}

fn micro_kernels(profile: &Profile, calib: f64, kernels: &mut Vec<KernelReport>) {
    // Each row records the worker width that *actually ran* the kernel —
    // plumbed per call site, never assumed. A previous revision hardcoded
    // `threads: 1` here, which silently mislabelled any kernel that
    // touched the pool.
    let mut push =
        |name: &str, config: &str, ops: u64, threads: usize, ns_total: f64, alloc: Option<f64>| {
            let ns_per_op = ns_total / ops as f64;
            let alloc_note = alloc.map_or(String::new(), |a| format!("  ({a:.1} allocs/op)"));
            println!(
                "  {name:<24} {config:<28} {ns_per_op:>14.1} ns/op {:>12.2} units{alloc_note}",
                ns_per_op / calib
            );
            kernels.push(KernelReport {
                kernel: name.to_string(),
                config: config.to_string(),
                ns_per_op,
                units: ns_per_op / calib,
                ops_per_iter: ops,
                samples: profile.samples,
                threads,
                speedup_vs_serial: None,
                alloc_per_op: alloc,
                gated: true,
            });
        };

    // Solver kernel sizes are identical in --quick and full runs so the
    // kernel names line up with the committed --quick baseline.
    //
    // The two headline solver kernels time the steady-state repeated-solve
    // path — a warmed workspace driven through `solve_into` — because that
    // is what the sim drivers run in their inner loops. The one-shot
    // wrappers are this plus one workspace construction.
    let big = random_chord_problem(1024, 10, 1.2, 11);
    let mut chord_ws = ChordWorkspace::new();
    std::hint::black_box(chord_ws.solve_into(&big).expect("solvable"));
    let ns = time_median(profile.samples, profile.warmup, || {
        std::hint::black_box(chord_ws.solve_into(&big).expect("solvable"));
    });
    let alloc = allocs_per_op(1, || {
        std::hint::black_box(chord_ws.solve_into(&big).expect("solvable"));
    });
    require_zero_alloc("chord_fast_dp", alloc);
    push("chord_fast_dp", "n=1024 k=10 alpha=1.2", 1, 1, ns, alloc);

    let prepared = PreparedChord::new(&big).expect("well-formed");
    push(
        "chord_oracle_dp_phase",
        "n=1024 k=10 (rebase hoisted)",
        1,
        1,
        time_median(profile.samples, profile.warmup, || {
            std::hint::black_box(prepared.solve(10).expect("solvable"));
        }),
        None,
    );

    let small = random_chord_problem(256, 8, 1.2, 11);
    // Cross-check while we're here: the two solvers must agree on cost.
    let fast_cost = select_fast(&small).expect("solvable").cost;
    let naive_cost = select_naive(&small).expect("solvable").cost;
    assert!(
        (fast_cost - naive_cost).abs() < 1e-6,
        "fast ({fast_cost}) and naive ({naive_cost}) solvers disagree"
    );
    push(
        "chord_naive_dp",
        "n=256 k=8 alpha=1.2",
        1,
        1,
        time_median(profile.samples, profile.warmup, || {
            std::hint::black_box(select_naive(&small).expect("solvable"));
        }),
        None,
    );

    let pastry_big = random_pastry_problem(1024, 10, 1.2, 11);
    // Same cross-check on the Pastry side: the workspace path must cost
    // the same as the one-shot greedy it wraps.
    let mut pastry_ws = PastryWorkspace::new();
    let ws_cost = pastry_ws.solve_into(&pastry_big).expect("solvable").cost;
    let oneshot_cost = select_greedy(&pastry_big).expect("solvable").cost;
    assert!(
        (ws_cost - oneshot_cost).abs() < 1e-6,
        "workspace ({ws_cost}) and one-shot ({oneshot_cost}) greedy disagree"
    );
    let ns = time_median(profile.samples, profile.warmup, || {
        std::hint::black_box(pastry_ws.solve_into(&pastry_big).expect("solvable"));
    });
    let alloc = allocs_per_op(1, || {
        std::hint::black_box(pastry_ws.solve_into(&pastry_big).expect("solvable"));
    });
    require_zero_alloc("pastry_greedy_dp", alloc);
    push("pastry_greedy_dp", "n=1024 k=10 alpha=1.2", 1, 1, ns, alloc);

    let pastry_small = random_pastry_problem(256, 8, 1.2, 11);
    push(
        "pastry_exact_dp",
        "n=256 k=8 alpha=1.2",
        1,
        1,
        time_median(profile.samples, profile.warmup, || {
            std::hint::black_box(select_dp(&pastry_small).expect("solvable"));
        }),
        None,
    );

    // Space-Saving: one summary consuming a pre-generated Zipf stream of
    // owner observations (the churn driver's estimator hot path).
    const STREAM: usize = 100_000;
    let mut rng = StdRng::seed_from_u64(13);
    let peers = random_ids(peercache_id::IdSpace::paper(), 1024, &mut rng);
    let zipf = Zipf::new(peers.len(), 1.2).expect("valid Zipf");
    let stream: Vec<Id> = (0..STREAM).map(|_| peers[zipf.sample(&mut rng)]).collect();
    push(
        "space_saving_update",
        "capacity=64 stream=100k zipf1.2",
        STREAM as u64,
        1,
        time_median(profile.samples, profile.warmup, || {
            let mut top = SpaceSaving::new(64);
            for &p in &stream {
                top.observe(p);
            }
            std::hint::black_box(top.observations());
        }),
        None,
    );
}

/// The churn recompute-tick pair at the fig-4 operating point (Pastry,
/// `n = 1024`, `k = 10`, Zipf 1.2, 250 queries/tick): one tick of the
/// pre-refactor full path — snapshot every counter, re-solve every
/// node — against one tick of the retained incremental engine, which
/// re-solves only dirtied nodes and applies counter deltas to a live
/// optimizer. Both kernels run at a fixed size regardless of `--quick`
/// so the names line up with the committed baseline, and both fold
/// their installed selections into a checksum that must agree — the
/// in-bench restatement of the bit-identity contract the differential
/// tests pin. The incremental tick is also held to the zero-alloc
/// workspace contract.
fn churn_kernels(profile: &Profile, calib: f64, kernels: &mut Vec<KernelReport>) {
    const QUERIES_PER_TICK: usize = 250;
    let config = || {
        let mut c = ChurnConfig::paper_defaults(1024, 11);
        c.kind = OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        };
        c
    };
    let mut full = ChurnRecomputeBench::new(&config(), QUERIES_PER_TICK);
    let mut incremental = ChurnRecomputeBench::new(&config(), QUERIES_PER_TICK);
    // Parity cross-check before timing: the two paths must install
    // identical selections tick after tick.
    for tick in 0..3 {
        let (a, b) = (full.tick_full(), incremental.tick_incremental());
        assert_eq!(
            a, b,
            "full and incremental recompute diverged at warmup tick {tick}"
        );
    }

    let full_ns = time_median(profile.samples, profile.warmup, || {
        std::hint::black_box(full.tick_full());
    });
    let inc_ns = time_median(profile.samples, profile.warmup, || {
        std::hint::black_box(incremental.tick_incremental());
    });
    let alloc = allocs_per_op(1, || {
        std::hint::black_box(incremental.tick_incremental());
    });
    require_zero_alloc("churn_recompute_incremental", alloc);

    let speedup = full_ns / inc_ns;
    for (name, ns, alloc, speedup) in [
        ("churn_recompute_full", full_ns, None, None),
        ("churn_recompute_incremental", inc_ns, alloc, Some(speedup)),
    ] {
        let note = speedup.map_or(String::new(), |s| format!("  ({s:.2}x vs full tick)"));
        println!(
            "  {name:<24} {:<28} {ns:>14.1} ns/op {:>12.2} units{note}",
            "pastry n=1024 k=10 q/tick=250",
            ns / calib
        );
        kernels.push(KernelReport {
            kernel: name.to_string(),
            config: "churn recompute tick, pastry n=1024".to_string(),
            ns_per_op: ns,
            units: ns / calib,
            ops_per_iter: 1,
            samples: profile.samples,
            threads: 1,
            speedup_vs_serial: speedup,
            alloc_per_op: alloc,
            gated: true,
        });
    }
}

/// Sweep `par_map_chunked` chunk sizes over the aware-selection fan-out
/// that dominates fig3's stable builds (the `SELECT_CHUNK` knob in
/// `crates/sim/src/stable.rs`). The selected sets are identical at every
/// chunk size — only the dispatch economics move: small chunks buy pool
/// load-balance at the price of more task dispatches and more cold
/// `SelectScratch` warm-ups, large chunks the reverse. Informational
/// (ungated): the right value is host-dependent, and the sweep exists so
/// a retune is a measurement away instead of a guess.
fn chunk_sweep_kernels(profile: &Profile, calib: f64, kernels: &mut Vec<KernelReport>) {
    let pool_threads = peercache_par::threads();
    let par_threads = if pool_threads > 1 { pool_threads } else { 4 };
    // fig3's largest quick-scale point: Pastry at paper defaults.
    let config = StableConfig::paper_defaults(
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
        256,
        1,
    );
    let bench = SelectionBench::new(&config);
    let committed = SelectionBench::committed_chunk();
    let (mut best_chunk, mut best_ns) = (0usize, f64::INFINITY);
    for &chunk in &[8usize, 16, 32, 64, 128] {
        let ns = time_median(profile.samples, 1, || {
            std::hint::black_box(with_threads(par_threads, || bench.run(chunk)));
        });
        if ns < best_ns {
            (best_chunk, best_ns) = (chunk, ns);
        }
        let marker = if chunk == committed {
            "  (committed)"
        } else {
            ""
        };
        println!(
            "  select_fanout_c{chunk:<9} {:<28} {ns:>14.1} ns/op {:>12.2} units{marker}",
            format!("n=256 k=8 threads={par_threads}"),
            ns / calib
        );
        kernels.push(KernelReport {
            kernel: format!("select_fanout_c{chunk}"),
            config: "aware fan-out, pastry n=256".to_string(),
            ns_per_op: ns,
            units: ns / calib,
            ops_per_iter: 1,
            samples: profile.samples,
            threads: par_threads,
            speedup_vs_serial: None,
            alloc_per_op: None,
            gated: false,
        });
    }
    println!(
        "  best chunk this host: {best_chunk} (committed SELECT_CHUNK = {committed}; \
         retune crates/sim/src/stable.rs if they persistently disagree)"
    );
}

fn e2e_kernels(profile: &Profile, calib: f64, kernels: &mut Vec<KernelReport>) {
    // The parallel leg must actually be parallel: on a single-core host
    // the process pool defaults to width 1, and timing that leg at width
    // 1 while labelling it "parallel" is how the baseline once recorded
    // `threads: 1` with a sub-1.0 "speedup". Oversubscribing 4 workers
    // onto one core still exercises the pool machinery honestly, and the
    // recorded thread count is the width that really ran.
    let pool_threads = peercache_par::threads();
    let par_threads = if pool_threads > 1 { pool_threads } else { 4 };
    let scales: &[(&str, Scale)] = if profile.quick {
        &[("fig3_quick", Scale::quick())]
    } else {
        &[
            ("fig3_quick", Scale::quick()),
            ("fig3_paper", Scale::paper()),
        ]
    };
    let mut pair = |name: &str, config: &str, run: &mut dyn FnMut()| {
        let serial = time_median(profile.e2e_samples, 0, || {
            with_threads(1, &mut *run);
        });
        let parallel = time_median(profile.e2e_samples, 0, || {
            with_threads(par_threads, &mut *run);
        });
        for (suffix, threads, ns, speedup) in [
            ("serial", 1, serial, None),
            ("parallel", par_threads, parallel, Some(serial / parallel)),
        ] {
            let kernel = format!("{name}_{suffix}");
            println!(
                "  {kernel:<24} {:<28} {ns:>14.1} ns/op {:>12.2} units{}",
                format!("threads={threads}"),
                ns / calib,
                speedup.map_or(String::new(), |s| format!("  ({s:.2}x vs serial)")),
            );
            kernels.push(KernelReport {
                kernel,
                config: config.to_string(),
                ns_per_op: ns,
                units: ns / calib,
                ops_per_iter: 1,
                samples: profile.e2e_samples,
                threads,
                speedup_vs_serial: speedup,
                alloc_per_op: None,
                gated: false,
            });
        }
    };
    for (name, scale) in scales {
        pair(name, "end-to-end figure sweep", &mut || {
            std::hint::black_box(fig3(scale, 1));
        });
    }
    // The flattened fault-matrix fan-out: four substrates × twelve cells
    // as one 48-job wave, the shape `fault_matrix_multi` dispatches.
    let matrix_configs: Vec<FaultMatrixConfig> = [
        OverlayKind::Chord,
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
        OverlayKind::Tapestry { digit_bits: 1 },
        OverlayKind::SkipGraph,
    ]
    .into_iter()
    .map(|kind| {
        let mut stable = StableConfig::paper_defaults(kind, 64, 1);
        stable.items = Scale::quick().items;
        stable.queries = Scale::quick().queries;
        FaultMatrixConfig::paper_defaults(stable)
    })
    .collect();
    pair("fault_matrix_quick", "4 substrates x 12 cells", &mut || {
        std::hint::black_box(fault_matrix_multi(&matrix_configs));
    });
}

/// The bytes-per-node memory gauges: peak live-heap of the monolithic
/// stable driver against the sharded scale engine at a population the
/// materialised path could never hold per-node state for. Query counts
/// are trimmed — the peak is set by topology and slabs, not routing.
#[cfg(feature = "count-allocs")]
fn memory_gauges() -> Vec<MemoryGauge> {
    use peercache_bench::alloc_count::{peak_bytes, reset_peak};
    use peercache_sim::{run_scale_stable, run_stable, ScaleConfig};

    let mut gauges = Vec::new();
    let mut gauge = |region: &str, nodes: usize, run: &mut dyn FnMut()| {
        reset_peak();
        run();
        let peak = peak_bytes();
        let bytes_per_node = peak as f64 / nodes as f64;
        println!("  {region:<24} n={nodes:<8} peak {peak:>12} B {bytes_per_node:>12.1} B/node");
        gauges.push(MemoryGauge {
            region: region.to_string(),
            nodes,
            peak_bytes: peak,
            bytes_per_node,
        });
    };

    let mut stable = StableConfig::paper_defaults(
        OverlayKind::Pastry {
            digit_bits: 1,
            mode: RoutingMode::LocalityAware,
        },
        1024,
        1,
    );
    stable.queries = 5_000;
    gauge("stable_monolithic", stable.nodes, &mut || {
        std::hint::black_box(run_stable(&stable));
    });

    let mut scale = ScaleConfig::paper_defaults(16_384, 1);
    scale.queries = 5_000;
    gauge("scale_sharded", scale.nodes, &mut || {
        std::hint::black_box(run_scale_stable(&scale));
    });
    gauges
}

#[cfg(not(feature = "count-allocs"))]
fn memory_gauges() -> Vec<MemoryGauge> {
    Vec::new()
}

/// Compare a fresh report against a committed baseline; returns the
/// number of gated kernels that regressed beyond `tolerance` percent.
fn check_against_baseline(report: &BenchReport, path: &str, tolerance: f64) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    let base_kernels = doc
        .get("kernels")
        .and_then(Json::as_array)
        .expect("baseline has a kernels array");
    println!("\nregression gate vs {path} (tolerance {tolerance:.0} %, on normalised units):");
    let mut regressions = 0;
    for base in base_kernels {
        let name = base
            .get("kernel")
            .and_then(Json::as_str)
            .expect("baseline kernel has a name");
        if base.get("gated").and_then(Json::as_bool) != Some(true) {
            continue;
        }
        let base_units = base
            .get("units")
            .and_then(Json::as_f64)
            .expect("baseline kernel has units");
        let Some(fresh) = report.kernels.iter().find(|k| k.kernel == name) else {
            println!("  {name:<24} MISSING from this run");
            regressions += 1;
            continue;
        };
        let ratio = fresh.units / base_units;
        let verdict = if ratio > 1.0 + tolerance / 100.0 {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {name:<24} {base_units:>10.2} -> {:>10.2} units  ({:+.1} %)  {verdict}",
            fresh.units,
            (ratio - 1.0) * 100.0
        );
    }
    regressions
}

fn main() {
    let args = parse_args();
    let (profile, label) = (&args.profile, &args.label);
    let calib = calibrate();
    println!(
        "perf_baseline: label={label} quick={} threads={} calibration={calib:.3} ns/mix",
        profile.quick,
        peercache_par::threads()
    );
    let mut kernels = Vec::new();
    println!("solver micro-kernels (median of {}):", profile.samples);
    micro_kernels(profile, calib, &mut kernels);
    println!("churn recompute kernels (median of {}):", profile.samples);
    churn_kernels(profile, calib, &mut kernels);
    println!("selection chunk sweep (median of {}):", profile.samples);
    chunk_sweep_kernels(profile, calib, &mut kernels);
    println!("end-to-end sweeps (median of {}):", profile.e2e_samples);
    e2e_kernels(profile, calib, &mut kernels);
    if cfg!(feature = "count-allocs") {
        println!("memory gauges (count-allocs live-heap peaks):");
    }
    let memory = memory_gauges();

    let report = BenchReport {
        label: label.clone(),
        quick: profile.quick,
        threads: peercache_par::threads(),
        calibration_ns_per_mix: calib,
        kernels,
        memory,
    };
    std::fs::create_dir_all("out").expect("create out/ directory");
    let path = format!("out/BENCH_{label}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("report serialises"),
    )
    .expect("write bench report");
    println!("(report written to {path})");

    if let Some(min) = args.require_speedup {
        let mut failures = 0;
        for k in report.kernels.iter() {
            let Some(speedup) = k.speedup_vs_serial else {
                continue;
            };
            let verdict = if speedup < min {
                failures += 1;
                "BELOW MINIMUM"
            } else {
                "ok"
            };
            println!(
                "speedup gate: {:<24} {speedup:.2}x vs serial (minimum {min:.2}x)  {verdict}",
                k.kernel
            );
        }
        if failures > 0 {
            eprintln!("{failures} parallel kernel(s) below the {min:.2}x speedup minimum");
            std::process::exit(1);
        }
    }

    if let Some(base_path) = &args.baseline {
        let regressions = check_against_baseline(&report, base_path, args.tolerance);
        if regressions > 0 {
            eprintln!(
                "{regressions} kernel(s) regressed beyond {:.0} %",
                args.tolerance
            );
            std::process::exit(1);
        }
        println!("all gated kernels within tolerance");
    }
}
